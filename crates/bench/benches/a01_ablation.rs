//! Ablation benches for the design choices called out in DESIGN.md:
//!
//! * bucketed label index vs per-call sorting in the foremost sweep;
//! * Floyd vs partial-Fisher–Yates distinct sampling at the crossover;
//! * parallel vs sequential all-pairs sweeps (see also e02).

use criterion::{criterion_group, criterion_main, Criterion};
use ephemeral_core::urtn::sample_normalized_urt_clique;
use ephemeral_rng::default_rng;
use ephemeral_rng::sample::sample_indices;
use ephemeral_temporal::foremost::foremost;
use ephemeral_temporal::reference::foremost_arrivals_by_sorting;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("a01_ablation");
    group.sample_size(20);

    let n = 512;
    let mut rng = default_rng(1);
    let tn = sample_normalized_urt_clique(n, true, &mut rng);
    group.bench_function("foremost_bucketed_n512", |b| {
        b.iter(|| black_box(foremost(&tn, 0, 0).reached_count()))
    });
    group.bench_function("foremost_sorted_n512", |b| {
        b.iter(|| black_box(foremost_arrivals_by_sorting(&tn, 0, 0)))
    });

    // Distinct sampling: k ≪ n (Floyd branch) vs k ~ n/2 (partial shuffle).
    group.bench_function("sample_floyd_k32_of_1e6", |b| {
        let mut rng = default_rng(2);
        b.iter(|| black_box(sample_indices(1_000_000, 32, &mut rng)))
    });
    group.bench_function("sample_partial_fy_k500k_of_1e6", |b| {
        let mut rng = default_rng(3);
        b.iter(|| black_box(sample_indices(1_000_000, 500_000, &mut rng)))
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
