//! Adaptive vs fixed trial allocation: wall-clock to reach a target CI
//! width on the E02 kernel (mean TD of the normalized U-RT clique).
//!
//! The fixed baseline reproduces the old hard-coded per-`n` trial counts
//! (60 at this size). The adaptive runs stop as soon as the 95% CI
//! half-width reaches the target — typically well under the fixed count at
//! a loose target, and never beyond the cap at a tight one — which is
//! exactly the speed the sweep engine buys on low-variance cells.

use criterion::{criterion_group, criterion_main, Criterion};
use ephemeral_core::diameter::{clique_td_adaptive, clique_td_montecarlo};
use ephemeral_parallel::adaptive::AdaptiveConfig;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("adaptive_vs_fixed");
    group.sample_size(10);
    let n = 128;

    group.bench_function("fixed_60_trials_n128".to_string(), |b| {
        b.iter(|| black_box(clique_td_montecarlo(n, true, 60, 42)))
    });

    for (label, hw) in [("loose_ci_0.50", 0.5), ("tight_ci_0.15", 0.15)] {
        let cfg = AdaptiveConfig::new(hw)
            .with_min_trials(12)
            .with_batch(12)
            .with_max_trials(240);
        group.bench_function(format!("adaptive_{label}_n128"), |b| {
            b.iter(|| black_box(clique_td_adaptive(n, true, &cfg, 42)))
        });
    }

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
