//! The tentpole ablation of the differential cursor: maintaining the
//! all-pairs temporal closure across single-label moves via
//! [`DeltaCursor::apply_label_move`] vs recomputing it cold after every
//! move — on the workload the correlated what-if chains actually run,
//! sparse `G(n, p)` at average degree 4 with one uniform label per edge
//! over lifetime `a = 4n`. Each driver walks the same move+revert pairs
//! (so the network returns to its start state every iteration and both
//! drivers pay the same per-move label surgery); the cold driver then
//! re-sweeps with the event-driven engine — the *fastest* cold baseline
//! for this regime per `BENCH_PR5.json` — while the delta driver replays
//! only the buckets the move perturbed.
//!
//! A full run dumps the headline per-move numbers to `BENCH_PR6.json` at
//! the workspace root and asserts the n = 4096 acceptance bar (≥ 10×).
//! `-- --test` runs a reduced smoke configuration (n = 512, two samples,
//! no JSON) — the CI gate that keeps this bench compiling, running, and
//! bit-identical to the cold oracle.

use criterion::{criterion_group, criterion_main, Criterion};
use ephemeral_core::urtn::{propose_label_move, sample_urtn};
use ephemeral_graph::{generators, EdgeId};
use ephemeral_rng::default_rng;
use ephemeral_temporal::delta::DeltaCursor;
use ephemeral_temporal::sparse::{EngineChoice, SparseSweeper};
use ephemeral_temporal::wide::{EngineKind, WideSweeper};
use ephemeral_temporal::{TemporalNetwork, Time};
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Median wall-clock of `reps` runs after one warm-up call.
fn time_median<R>(reps: usize, mut f: impl FnMut() -> R) -> Duration {
    black_box(f());
    let mut samples: Vec<Duration> = (0..reps.max(1))
        .map(|_| {
            let start = Instant::now();
            black_box(f());
            start.elapsed()
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

struct Workload {
    name: &'static str,
    tn: TemporalNetwork,
    /// Valid single-label moves against the *initial* state. Every drive
    /// applies each as a move+revert pair, so the pre-state of every
    /// proposal is always the initial network and the drive is a closed
    /// loop both drivers can repeat.
    proposals: Vec<(EdgeId, Time, Time)>,
}

/// The number of move+revert pairs per drive; per-move figures divide by
/// `2 × PAIRS`.
const PAIRS: usize = 24;

fn workloads(smoke: bool) -> Vec<Workload> {
    let sizes: &[(&str, usize)] = if smoke {
        &[("gnp_n512_a4n", 512)]
    } else {
        &[("gnp_n1024_a4n", 1024), ("gnp_n4096_a4n", 4096)]
    };
    sizes
        .iter()
        .map(|&(name, n)| {
            let mut rng = default_rng(2);
            let g = generators::gnp(n, 4.0 / n as f64, false, &mut rng);
            let tn = sample_urtn(g, 4 * n as Time, &mut rng);
            // Keep only proposals `move_label` accepts (a draw landing on
            // a label the edge already carries is a rejected Gibbs step,
            // not a move).
            let mut rng = default_rng(13);
            let mut proposals = Vec::with_capacity(PAIRS);
            while proposals.len() < PAIRS {
                let (e, from, to) = propose_label_move(&tn, &mut rng);
                if from != to && !tn.labels(e).contains(&to) {
                    proposals.push((e, from, to));
                }
            }
            Workload {
                name,
                tn,
                proposals,
            }
        })
        .collect()
}

/// One cold pass: apply each move, recompute the full closure with the
/// event-driven engine, revert, recompute again. Returns the folded
/// reach total so the loop stays observable.
fn cold_drive(w: &mut Workload, sweeper: &mut SparseSweeper) -> usize {
    let n = w.tn.num_nodes() as u32;
    let mut reached = 0usize;
    for i in 0..w.proposals.len() {
        let (e, from, to) = w.proposals[i];
        w.tn.move_label(e, from, to).expect("proposal is valid");
        reached += sweeper.sweep(&w.tn, 0..n, 0, |_, _, _, _| {}).reached_bits;
        w.tn.move_label(e, to, from).expect("revert is valid");
        reached += sweeper.sweep(&w.tn, 0..n, 0, |_, _, _, _| {}).reached_bits;
    }
    reached
}

/// One differential pass over the same pairs: the cursor replays only
/// the perturbed buckets per move. Returns `(folded reach, buckets
/// replayed, moves applied)`.
fn delta_drive(w: &mut Workload, cursor: &mut DeltaCursor) -> (usize, usize, usize) {
    let (mut reached, mut replayed, mut applied) = (0usize, 0usize, 0usize);
    for i in 0..w.proposals.len() {
        let (e, from, to) = w.proposals[i];
        for &(a, b) in &[(from, to), (to, from)] {
            let delta = cursor
                .apply_label_move(&mut w.tn, e, a, b)
                .expect("proposal and revert are valid");
            reached += cursor.stats().reached_bits;
            replayed += delta.replayed_buckets;
            applied += 1;
        }
    }
    (reached, replayed, applied)
}

fn bench(c: &mut Criterion) {
    let smoke = std::env::args().any(|a| a == "--test");
    let mut loads = workloads(smoke);

    // Sanity before timing: the dispatch sends this regime event-driven,
    // and the maintained closure is bit-identical to a cold sweep at
    // every step of a move sequence (applied forward, no reverts — the
    // stronger check), then restored exactly by the reverts.
    for w in &mut loads {
        assert_eq!(
            EngineChoice::pick_for(&w.tn),
            EngineKind::Sparse,
            "{}",
            w.name
        );
        let n = w.tn.num_nodes();
        let mut cursor = DeltaCursor::new();
        let recorded = cursor.record_from(&w.tn, &mut SparseSweeper::new());
        let proposals = w.proposals.clone();
        for &(e, from, to) in &proposals {
            cursor.apply_label_move(&mut w.tn, e, from, to).unwrap();
        }
        let mut cold = WideSweeper::new();
        let stats = cold.sweep(&w.tn, 0..n as u32, 0, |_, _, _, _| {});
        assert_eq!(
            cursor.stats().reached_bits,
            stats.reached_bits,
            "{}",
            w.name
        );
        assert_eq!(
            cursor.stats().last_arrival,
            stats.last_arrival,
            "{}",
            w.name
        );
        for v in 0..n as u32 {
            for word in 0..cursor.words_per_row() {
                assert_eq!(
                    cursor.reach_word(v, word),
                    cold.reach_word(v, word),
                    "{} row {v} word {word}",
                    w.name
                );
            }
        }
        for &(e, from, to) in proposals.iter().rev() {
            cursor.apply_label_move(&mut w.tn, e, to, from).unwrap();
        }
        assert_eq!(
            cursor.stats().reached_bits,
            recorded.reached_bits,
            "{}",
            w.name
        );
    }

    let mut group = c.benchmark_group("delta_vs_cold");
    group.sample_size(if smoke { 2 } else { 10 });
    for w in &mut loads {
        if w.tn.num_nodes() > 1024 {
            continue; // the n = 4096 acceptance row is headline-only
        }
        let mut sweeper = SparseSweeper::new();
        group.bench_function(format!("{}_cold", w.name), |b| {
            b.iter(|| black_box(cold_drive(w, &mut sweeper)))
        });
        let mut cursor = DeltaCursor::new();
        cursor.record_from(&w.tn, &mut SparseSweeper::new());
        group.bench_function(format!("{}_delta", w.name), |b| {
            b.iter(|| black_box(delta_drive(w, &mut cursor)))
        });
    }
    group.finish();

    if smoke {
        return;
    }

    // Headline pass: median per-move timings, dumped as the
    // machine-readable perf trajectory (same shape as BENCH_PR4/5).
    let reps = 5;
    let moves_per_drive = 2 * PAIRS;
    let mut rows = Vec::new();
    for w in &mut loads {
        let n = w.tn.num_nodes();
        let cold_ns = {
            let mut sweeper = SparseSweeper::new();
            time_median(reps, || cold_drive(w, &mut sweeper)).as_nanos() as f64
                / moves_per_drive as f64
        };
        let mut cursor = DeltaCursor::new();
        cursor.record_from(&w.tn, &mut SparseSweeper::new());
        let delta_ns = time_median(reps, || delta_drive(w, &mut cursor)).as_nanos() as f64
            / moves_per_drive as f64;
        let (_, replayed, applied) = delta_drive(w, &mut cursor);
        let speedup = cold_ns / delta_ns;
        println!(
            "delta_vs_cold/{}: cold {:.1} µs/move, delta {:.1} µs/move, speedup {:.1}x, \
             {:.1} buckets replayed/move (occupied {}, lifetime {})",
            w.name,
            cold_ns / 1e3,
            delta_ns / 1e3,
            speedup,
            replayed as f64 / applied as f64,
            w.tn.occupied_times().len(),
            w.tn.lifetime(),
        );
        if n == 4096 {
            assert!(
                speedup >= 10.0,
                "acceptance bar: differential maintenance must be ≥ 10× at \
                 n = 4096 (measured {speedup:.1}×)"
            );
        }
        rows.push(format!(
            "    {{\"workload\":\"{}\",\"n\":{},\"edges\":{},\"lifetime\":{},\"occupied\":{},\"dispatch\":\"{}\",\"cold_ns_per_move\":{},\"delta_ns_per_move\":{},\"speedup\":{},\"replayed_buckets_per_move\":{},\"applied_moves\":{}}}",
            w.name,
            n,
            w.tn.graph().num_edges(),
            w.tn.lifetime(),
            w.tn.occupied_times().len(),
            EngineChoice::pick_for(&w.tn).name(),
            format_args!("{cold_ns:.0}"),
            format_args!("{delta_ns:.0}"),
            format_args!("{speedup:.2}"),
            format_args!("{:.2}", replayed as f64 / applied as f64),
            applied,
        ));
    }
    let json = format!(
        "{{\n  \"bench\":\"delta_vs_cold\",\n  \"pr\":6,\n  \"op\":\"closure_maintenance_per_label_move\",\n  \"threads\":1,\n  \"reps\":{reps},\n  \"results\":[\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_PR6.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("headline numbers written to BENCH_PR6.json"),
        Err(e) => eprintln!("could not write BENCH_PR6.json: {e}"),
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
