//! E01 kernel: one expansion-process run on a materialised U-RT clique,
//! plus the delayed-revelation oracle at large n.

use criterion::{criterion_group, criterion_main, Criterion};
use ephemeral_core::expansion::{expansion_process, ExpansionParams};
use ephemeral_core::expansion_oracle::expansion_oracle;
use ephemeral_core::urtn::sample_normalized_urt_clique;
use ephemeral_rng::default_rng;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e01_expansion");
    group.sample_size(10);

    let n = 1024;
    let params = ExpansionParams::practical(n);
    let mut rng = default_rng(1);
    let tn = sample_normalized_urt_clique(n, true, &mut rng);
    group.bench_function("exact_n1024", |b| {
        b.iter(|| black_box(expansion_process(&tn, 0, 1, &params)))
    });

    let big = 1_000_000u64;
    let paper = ExpansionParams::paper(big as usize);
    group.bench_function("oracle_n1e6", |b| {
        let mut rng = default_rng(2);
        b.iter(|| black_box(expansion_oracle(big, big as u32, &paper, &mut rng)))
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
