//! E02 kernel: exact instance temporal diameter (n foremost sweeps) of a
//! normalized U-RT clique.

use criterion::{criterion_group, criterion_main, Criterion};
use ephemeral_core::urtn::sample_normalized_urt_clique;
use ephemeral_parallel::available_threads;
use ephemeral_rng::default_rng;
use ephemeral_temporal::distance::instance_temporal_diameter;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e02_diameter");
    group.sample_size(10);

    for &n in &[256usize, 512] {
        let mut rng = default_rng(n as u64);
        let tn = sample_normalized_urt_clique(n, true, &mut rng);
        group.bench_function(format!("all_pairs_n{n}_seq"), |b| {
            b.iter(|| black_box(instance_temporal_diameter(&tn, 1)))
        });
        group.bench_function(format!("all_pairs_n{n}_par"), |b| {
            b.iter(|| black_box(instance_temporal_diameter(&tn, available_threads())))
        });
    }

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
