//! E03 kernel: G(n,p) generation + connectivity check at the threshold.

use criterion::{criterion_group, criterion_main, Criterion};
use ephemeral_graph::algo::is_connected;
use ephemeral_graph::generators::gnp;
use ephemeral_rng::default_rng;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e03_threshold");
    group.sample_size(20);

    for &n in &[1024usize, 8192] {
        let p = (n as f64).ln() / n as f64;
        group.bench_function(format!("gnp_connectivity_n{n}"), |b| {
            let mut rng = default_rng(3);
            b.iter(|| {
                let g = gnp(n, p, false, &mut rng);
                black_box(is_connected(&g))
            })
        });
    }

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
