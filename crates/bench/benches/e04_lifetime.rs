//! E04 kernel: foremost sweeps on long-lifetime U-RT cliques (the bucket
//! index must stay O(M + a) even when a ≫ n).

use criterion::{criterion_group, criterion_main, Criterion};
use ephemeral_core::urtn::sample_urt_clique_with_lifetime;
use ephemeral_rng::default_rng;
use ephemeral_temporal::foremost::foremost;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e04_lifetime");
    group.sample_size(20);

    let n = 512;
    for &ratio in &[1u32, 16] {
        let mut rng = default_rng(u64::from(ratio));
        let tn = sample_urt_clique_with_lifetime(n, true, n as u32 * ratio, &mut rng);
        group.bench_function(format!("foremost_n512_a{}x", ratio), |b| {
            b.iter(|| black_box(foremost(&tn, 0, 0).reached_count()))
        });
    }

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
