//! E05 kernel: the flooding protocol, exact and oracle.

use criterion::{criterion_group, criterion_main, Criterion};
use ephemeral_core::dissemination::{flood, flood_oracle_clique};
use ephemeral_core::urtn::sample_normalized_urt_clique;
use ephemeral_rng::default_rng;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e05_dissemination");
    group.sample_size(10);

    let n = 1024;
    let mut rng = default_rng(5);
    let tn = sample_normalized_urt_clique(n, true, &mut rng);
    group.bench_function("flood_exact_n1024", |b| b.iter(|| black_box(flood(&tn, 0))));

    group.bench_function("flood_oracle_n1e6", |b| {
        let mut rng = default_rng(6);
        b.iter(|| black_box(flood_oracle_clique(1_000_000, 1_000_000, &mut rng)))
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
