//! E06 kernel: star T_reach Monte Carlo (the O(n·r) fast path).

use criterion::{criterion_group, criterion_main, Criterion};
use ephemeral_core::star::star_treach_probability;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e06_star");
    group.sample_size(10);

    for &n in &[1024usize, 8192] {
        group.bench_function(format!("treach_mc_n{n}_r16_t200"), |b| {
            b.iter(|| black_box(star_treach_probability(n, 16, 200, 6, 1)))
        });
    }

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
