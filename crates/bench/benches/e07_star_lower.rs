//! E07 kernel: star T_reach at sublogarithmic budgets and large n (the
//! lower-bound regime stresses the sampler, not the checker).

use criterion::{criterion_group, criterion_main, Criterion};
use ephemeral_core::star::star_treach_probability;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e07_star_lower");
    group.sample_size(10);

    let n = 65_536;
    for &r in &[2usize, 4] {
        group.bench_function(format!("treach_mc_n64k_r{r}_t100"), |b| {
            b.iter(|| black_box(star_treach_probability(n, r, 100, 7, 1)))
        });
    }

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
