//! E08 kernel: the generic T_reach check (n foremost sweeps vs static BFS)
//! on a multi-labelled grid.

use criterion::{criterion_group, criterion_main, Criterion};
use ephemeral_core::urtn::sample_multi_urtn;
use ephemeral_graph::generators;
use ephemeral_rng::default_rng;
use ephemeral_temporal::reachability::treach_holds;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e08_general");
    group.sample_size(10);

    let g = generators::grid(16, 16);
    let n = g.num_nodes() as u32;
    let mut rng = default_rng(8);
    let tn = sample_multi_urtn(g, n, 32, &mut rng);
    group.bench_function("treach_grid16x16_r32_seq", |b| {
        b.iter(|| black_box(treach_holds(&tn, 1)))
    });
    group.bench_function("treach_grid16x16_r32_par", |b| {
        b.iter(|| black_box(treach_holds(&tn, ephemeral_parallel::available_threads())))
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
