//! E09 kernel: deterministic OPT schemes (construction + certification).

use criterion::{criterion_group, criterion_main, Criterion};
use ephemeral_core::opt::{best_scheme, box_scheme, spanning_tree_scheme};
use ephemeral_graph::generators;
use ephemeral_temporal::reachability::treach_holds;
use ephemeral_temporal::TemporalNetwork;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e09_por");
    group.sample_size(10);

    let g = generators::grid(12, 12);
    group.bench_function("box_scheme_grid12x12", |b| {
        b.iter(|| black_box(box_scheme(&g)))
    });
    group.bench_function("spanning_tree_scheme_grid12x12", |b| {
        b.iter(|| black_box(spanning_tree_scheme(&g, 0)))
    });
    group.bench_function("best_scheme_plus_certify_grid12x12", |b| {
        b.iter(|| {
            let s = best_scheme(&g).unwrap();
            let tn = TemporalNetwork::new(g.clone(), s.assignment, s.lifetime).unwrap();
            black_box(treach_holds(&tn, 1))
        })
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
