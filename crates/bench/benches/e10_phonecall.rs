//! E10 kernel: the phone-call baselines.

use criterion::{criterion_group, criterion_main, Criterion};
use ephemeral_phonecall::{push_broadcast, push_broadcast_with_memory, push_pull_broadcast};
use ephemeral_rng::default_rng;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10_phonecall");
    group.sample_size(20);

    let n = 16_384;
    group.bench_function("push_n16k", |b| {
        let mut rng = default_rng(1);
        b.iter(|| black_box(push_broadcast(n, 0, 100_000, &mut rng)))
    });
    group.bench_function("push_memory_n16k", |b| {
        let mut rng = default_rng(2);
        b.iter(|| black_box(push_broadcast_with_memory(n, 0, 100_000, &mut rng)))
    });
    group.bench_function("push_pull_n16k", |b| {
        let mut rng = default_rng(3);
        b.iter(|| black_box(push_pull_broadcast(n, 0, 100_000, &mut rng)))
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
