//! Ablation: the bit-parallel multi-source engine vs the scalar per-source
//! foremost loop, on the two workloads the Monte Carlo estimators hammer —
//! the dense normalized U-RT clique (diameter inner loop, Theorems 3–4) and
//! a sparse multi-label U-RTN (`T_reach`-style closure, §4). The engine
//! runs one sweep per 64 sources, so it should beat the scalar path by a
//! wide margin at n ≥ 256; the scalar sweep remains the correctness oracle
//! (`tests/engine_proptests.rs`), this bench is the speed side of that
//! contract.

use criterion::{criterion_group, criterion_main, Criterion};
use ephemeral_core::urtn::{sample_multi_urtn, sample_normalized_urt_clique};
use ephemeral_graph::generators;
use ephemeral_rng::default_rng;
use ephemeral_temporal::distance::{instance_temporal_diameter_reusing, InstanceDiameter};
use ephemeral_temporal::engine::BatchSweeper;
use ephemeral_temporal::foremost::foremost;
use ephemeral_temporal::{TemporalNetwork, Time, NEVER};
use std::hint::black_box;

/// The scalar reference: n independent foremost sweeps, reduced exactly
/// like the engine path.
fn scalar_instance_diameter(tn: &TemporalNetwork) -> InstanceDiameter {
    let n = tn.num_nodes();
    let mut max_finite: Time = 0;
    let mut unreachable_pairs = 0usize;
    for s in 0..n as u32 {
        for (v, &a) in foremost(tn, s, 0).arrivals().iter().enumerate() {
            if a == NEVER {
                unreachable_pairs += 1;
            } else if v != s as usize {
                max_finite = max_finite.max(a);
            }
        }
    }
    InstanceDiameter {
        max_finite,
        unreachable_pairs,
    }
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_vs_scalar");
    group.sample_size(10);

    // Dense: the 256-vertex directed normalized U-RT clique of §3.
    let mut rng = default_rng(1);
    let clique = sample_normalized_urt_clique(256, true, &mut rng);
    let mut sweeper = BatchSweeper::new();
    // Sanity: both paths agree before we time them.
    assert_eq!(
        instance_temporal_diameter_reusing(&clique, &mut sweeper),
        scalar_instance_diameter(&clique)
    );
    group.bench_function("clique_n256_engine", |b| {
        b.iter(|| black_box(instance_temporal_diameter_reusing(&clique, &mut sweeper)))
    });
    group.bench_function("clique_n256_scalar", |b| {
        b.iter(|| black_box(scalar_instance_diameter(&clique)))
    });

    // Sparse: a 1024-vertex U-RTN at average degree ~6 with r = 2 labels
    // per edge — the low-label-density regime of the §4 follow-up work.
    let mut rng = default_rng(2);
    let g = generators::gnp(1024, 6.0 / 1024.0, false, &mut rng);
    let sparse = sample_multi_urtn(g, 64, 2, &mut rng);
    let mut sweeper = BatchSweeper::new();
    assert_eq!(
        instance_temporal_diameter_reusing(&sparse, &mut sweeper),
        scalar_instance_diameter(&sparse)
    );
    group.bench_function("sparse_n1024_engine", |b| {
        b.iter(|| black_box(instance_temporal_diameter_reusing(&sparse, &mut sweeper)))
    });
    group.bench_function("sparse_n1024_scalar", |b| {
        b.iter(|| black_box(scalar_instance_diameter(&sparse)))
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
