//! Kernel-layer before/after: the explicit word kernels of
//! [`ephemeral_temporal::kernels`] against **verbatim copies of the
//! pre-kernel inner loops** they replaced (the wide engine's zip-based
//! apply/commit and the sparse engine's branchy sorted-`u32` merges, as
//! committed before the kernel layer landed) — measured in the same run,
//! on the same data, so the speedup column is an honest like-for-like.
//!
//! Two micro families carry the headline:
//!
//! * `clique4096_*` — the wide clique `n = 4096` closure inner-loop
//!   shape: `W = 64` words per frontier row, 4096 rows, one apply + one
//!   commit per row per pass over 64-byte-aligned slabs. Both the old
//!   zip loops and the unrolled kernels autovectorize here, so honest
//!   parity (≈1×) is the expected result — the row exists to prove the
//!   refactor did not *cost* anything.
//! * `a4n_merge_*` — the sparse engine's reacher-list merge throughput
//!   on a4n-shaped lists: a long-lived frontier absorbing a small
//!   bucket's worth of sources (the skewed regime, where the kernel's
//!   galloping path replaces the old element-at-a-time branchy walk)
//!   plus a balanced dual merge (where the branch-light min/mask walk
//!   replaces the old three-way `if/else if/else`).
//!
//! A full run refreshes the five PR7 end-to-end workload rows
//! (same fields, same seeds) and dumps everything to `BENCH_PR8.json`
//! at the workspace root. `-- --test` runs the runtime
//! kernel-vs-scalar bit-identity smoke, the PR8-vs-PR7 non-regression
//! gate (≥ 0.9× on the five shared workloads), and the
//! cancellation-overhead gate (armed `--cell-timeout` tokens must keep
//! end-to-end sweeps ≥ 0.97× of unarmed on the `BENCH_PR8.json` seed
//! families) — the greppable CI lines.

use criterion::{criterion_group, criterion_main, Criterion};
use ephemeral_core::urtn::{sample_normalized_urt_clique, sample_urtn};
use ephemeral_graph::{generators, NodeId};
use ephemeral_parallel::faults::CancelToken;
use ephemeral_rng::default_rng;
use ephemeral_temporal::distance::InstanceDiameter;
use ephemeral_temporal::kernels::{self, scalar, AlignedSlab, MaskEmitter};
use ephemeral_temporal::sparse::{EngineChoice, SparseSweeper};
use ephemeral_temporal::wide::{cache_block_count, source_blocks, FrontierEngine, WideSweeper};
use ephemeral_temporal::{TemporalNetwork, Time};
use std::hint::black_box;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// The pre-kernel baselines: verbatim copies of the loops the kernel layer
// replaced, kept here as the honest "before" side of every speedup row.
// ---------------------------------------------------------------------------

/// The wide engine's apply loop as committed before the kernel layer:
/// word-at-a-time zip over the block slice.
fn baseline_apply(bf: &[u64], bt: &[u64], dt: &mut [u64]) -> u64 {
    let mut any = 0u64;
    for ((&bf, &bt), dt) in bf.iter().zip(bt).zip(dt) {
        let f = bf & !bt;
        *dt |= f;
        any |= f;
    }
    any
}

/// The wide engine's per-row commit loop as committed before the kernel
/// layer: word-at-a-time, callback guard per word.
fn baseline_commit(dv: &mut [u64], bv: &mut [u64], mut on_reach: impl FnMut(usize, u64)) -> u32 {
    let mut row_fresh = 0u32;
    for (w, (d, b)) in dv.iter_mut().zip(bv.iter_mut()).enumerate() {
        let fresh = *d & !*b;
        *d = 0;
        *b |= fresh;
        row_fresh += fresh.count_ones();
        if fresh != 0 {
            on_reach(w, fresh);
        }
    }
    row_fresh
}

/// The sparse engine's one-sided merge as committed before the kernel
/// layer: element-at-a-time three-way branch, no galloping, no reserve.
fn baseline_merge_into(
    d: &[u32],
    src: &[u32],
    out: &mut Vec<u32>,
    dst: NodeId,
    t: Time,
    on_reach: &mut impl FnMut(NodeId, usize, u64, Time),
) -> u32 {
    out.clear();
    let mut em = MaskEmitter::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < d.len() && j < src.len() {
        let x = d[i];
        let y = src[j];
        out.push(x.min(y));
        if x < y {
            i += 1;
        } else if y < x {
            em.push(y, dst, t, on_reach);
            j += 1;
        } else {
            i += 1;
            j += 1;
        }
    }
    out.extend_from_slice(&d[i..]);
    out.extend_from_slice(&src[j..]);
    for &y in &src[j..] {
        em.push(y, dst, t, on_reach);
    }
    em.finish(dst, t, on_reach)
}

/// The sparse engine's dual merge as committed before the kernel layer:
/// the same three-way branch shape, emitting both sides' exclusives.
#[allow(clippy::too_many_arguments)]
fn baseline_merge_dual(
    a: &[u32],
    b: &[u32],
    out: &mut Vec<u32>,
    u: NodeId,
    v: NodeId,
    t: Time,
    on_reach: &mut impl FnMut(NodeId, usize, u64, Time),
) -> (u32, u32) {
    out.clear();
    let mut em_u = MaskEmitter::new();
    let mut em_v = MaskEmitter::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        let x = a[i];
        let y = b[j];
        out.push(x.min(y));
        if x < y {
            em_v.push(x, v, t, on_reach);
            i += 1;
        } else if y < x {
            em_u.push(y, u, t, on_reach);
            j += 1;
        } else {
            i += 1;
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    for &x in &a[i..] {
        em_v.push(x, v, t, on_reach);
    }
    out.extend_from_slice(&b[j..]);
    for &y in &b[j..] {
        em_u.push(y, u, t, on_reach);
    }
    (em_u.finish(u, t, on_reach), em_v.finish(v, t, on_reach))
}

// ---------------------------------------------------------------------------
// Micro-workload scaffolding
// ---------------------------------------------------------------------------

/// Median wall-clock of `reps` runs after one warm-up call.
fn time_median<R>(reps: usize, mut f: impl FnMut() -> R) -> Duration {
    black_box(f());
    let mut samples: Vec<Duration> = (0..reps.max(1))
        .map(|_| {
            let start = Instant::now();
            black_box(f());
            start.elapsed()
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Deterministic word patterns (dense/sparse mix) into a fresh slab.
fn patterned_slab(seed: u64, len: usize) -> AlignedSlab {
    let mut s = AlignedSlab::new();
    s.resize_zeroed(len);
    let mut state = seed | 1;
    for (i, w) in s.words_mut().iter_mut().enumerate() {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        *w = if i % 5 == 0 { 0 } else { state };
    }
    s
}

/// A sorted duplicate-free lane list of `len` lanes spread over `stride`
/// steps (stride > 1 leaves gaps for the other side's exclusives).
fn strided_lanes(start: u32, len: usize, stride: u32) -> Vec<u32> {
    (0..len as u32).map(|i| start + i * stride).collect()
}

/// The wide clique n=4096 closure inner-loop shape, one full pass:
/// apply row (v+1) → v then commit row v, for all 4096 rows of W = 64
/// words. `kernel: true` routes through the kernel layer, `false`
/// through the verbatim pre-kernel loops. Returns (any-fold, fresh
/// total, callback count) so both sides stay observable and comparable.
fn clique_pass(before: &mut AlignedSlab, delta: &mut AlignedSlab, kernel: bool) -> (u64, u32, u32) {
    let rows = before.len() / CLIQUE_W;
    let before = before.words_mut();
    let delta = delta.words_mut();
    let (mut any, mut fresh, mut calls) = (0u64, 0u32, 0u32);
    for v in 0..rows {
        let from = (v + 1) % rows;
        let (lo, hi) = (v.min(from) * CLIQUE_W, v.max(from) * CLIQUE_W);
        let (head, tail) = before.split_at_mut(hi);
        let (bf, bt) = if from > v {
            (&tail[..CLIQUE_W], &mut head[lo..lo + CLIQUE_W])
        } else {
            (&head[lo..lo + CLIQUE_W] as &[u64], &mut tail[..CLIQUE_W])
        };
        let dt = &mut delta[v * CLIQUE_W..(v + 1) * CLIQUE_W];
        if kernel {
            any |= kernels::ornot_accumulate(dt, bf, bt);
            fresh += kernels::commit_fresh(dt, bt, |_, _| calls += 1);
        } else {
            any |= baseline_apply(bf, bt, dt);
            fresh += baseline_commit(dt, bt, |_, _| calls += 1);
        }
    }
    (any, fresh, calls)
}

const CLIQUE_W: usize = 64; // 4096 lanes per frontier row

// ---------------------------------------------------------------------------
// Runtime bit-identity smoke (kernel vs scalar reference, this binary)
// ---------------------------------------------------------------------------

/// Assert every kernel agrees with its scalar reference on a spread of
/// ragged lengths and patterns — the runtime cousin of the
/// `kernel_proptests` differential suite, run by CI on every push.
fn kernel_identity_smoke() {
    for seed in 1..5u64 {
        for len in [0usize, 1, 7, 8, 63, 64, 65, 200, 257] {
            let a = patterned_slab(seed ^ 0x11, len);
            let b = patterned_slab(seed ^ 0x22, len);
            let mut d1 = patterned_slab(seed ^ 0x33, len);
            let mut d2 = d1.words().to_vec();
            let any1 = kernels::ornot_accumulate(d1.words_mut(), a.words(), b.words());
            let any2 = scalar::ornot_accumulate(&mut d2, a.words(), b.words());
            assert_eq!(d1.words(), &d2[..], "ornot seed {seed} len {len}");
            assert_eq!(any1, any2);

            let mut dk = patterned_slab(seed ^ 0x44, len);
            let mut bk = patterned_slab(seed ^ 0x55, len);
            let (mut ds, mut bs) = (dk.words().to_vec(), bk.words().to_vec());
            let (mut e1, mut e2) = (Vec::new(), Vec::new());
            let t1 = kernels::commit_fresh(dk.words_mut(), bk.words_mut(), |w, f| e1.push((w, f)));
            let t2 = scalar::commit_fresh(&mut ds, &mut bs, |w, f| e2.push((w, f)));
            assert_eq!(
                (dk.words(), bk.words(), &e1, t1),
                (&ds[..], &bs[..], &e2, t2),
                "commit seed {seed} len {len}"
            );
            assert_eq!(
                kernels::popcount_words(bk.words()),
                scalar::popcount_words(&bs)
            );
        }
    }
    // Merge kernels vs references, both skew regimes.
    let long = strided_lanes(0, 5000, 3);
    let short = strided_lanes(1, 40, 301);
    let mut out = Vec::new();
    for (d, s) in [(&long, &short), (&short, &long), (&long, &long)] {
        let mut got = Vec::new();
        let fresh = kernels::merge_into_emitting(d, s, &mut out, 1, 2, &mut |_, w, m, _| {
            got.push((w, m));
        });
        let excl = scalar::exclusives(d, s);
        assert_eq!(out, scalar::merge_union(d, s));
        assert_eq!(fresh as usize, excl.len());
        assert_eq!(got, scalar::grouped_masks(&excl));
    }
    let (mut gu, mut gv) = (Vec::new(), Vec::new());
    let (fu, fv) =
        kernels::merge_dual_emitting(&long, &short, &mut out, 1, 2, 3, &mut |v, w, m, _| {
            if v == 1 {
                gu.push((w, m));
            } else {
                gv.push((w, m));
            }
        });
    assert_eq!(out, scalar::merge_union(&long, &short));
    assert_eq!(fu as usize, scalar::exclusives(&long, &short).len());
    assert_eq!(fv as usize, scalar::exclusives(&short, &long).len());
    assert_eq!(
        gu,
        scalar::grouped_masks(&scalar::exclusives(&long, &short))
    );
    assert_eq!(
        gv,
        scalar::grouped_masks(&scalar::exclusives(&short, &long))
    );
    println!("kernel smoke: kernels bit-identical to scalar reference");
}

// ---------------------------------------------------------------------------
// End-to-end rows: the five PR7 workloads, same seeds, same fields
// ---------------------------------------------------------------------------

struct Workload {
    name: &'static str,
    tn: TemporalNetwork,
}

/// The avg-degree-4 `G(n, p)` at lifetime `a = 4n` (the PR5/PR7 seed
/// stream).
fn gnp_a4n(n: usize) -> TemporalNetwork {
    let mut rng = default_rng(4);
    let g = generators::gnp(n, 4.0 / n as f64, false, &mut rng);
    sample_urtn(g, 4 * n as Time, &mut rng)
}

/// The five PR7 headline workloads, identical seeds and names, so the
/// PR8 rows diff cleanly against `BENCH_PR7.json`.
fn end_to_end_workloads() -> Vec<Workload> {
    let mut out = Vec::new();
    let mut rng = default_rng(2);
    let g = generators::gnp(4096, 4.0 / 4096.0, false, &mut rng);
    out.push(Workload {
        name: "gnp_n4096_a4n",
        tn: sample_urtn(g, 4 * 4096, &mut rng),
    });
    let mut rng = default_rng(3);
    let p = 1.5 * 4096f64.ln() / 4096.0;
    let g = generators::gnp(4096, p, false, &mut rng);
    out.push(Workload {
        name: "gnp_crit_n4096",
        tn: sample_urtn(g, 4096, &mut rng),
    });
    let mut rng = default_rng(1);
    out.push(Workload {
        name: "clique_n1024",
        tn: sample_normalized_urt_clique(1024, true, &mut rng),
    });
    for (name, n) in [("gnp_n16384_a4n", 16384usize), ("gnp_n65536_a4n", 65536)] {
        out.push(Workload {
            name,
            tn: gnp_a4n(n),
        });
    }
    out
}

/// All-pairs closure / instance diameter, single-threaded, exactly as
/// `sparse_vs_wide` times it.
fn all_pairs<S: FrontierEngine>(
    tn: &TemporalNetwork,
    sweeper: &mut S,
    blocks: usize,
) -> (InstanceDiameter, usize, bool) {
    let n = tn.num_nodes();
    let mut max_finite: Time = 0;
    let mut unreachable_pairs = 0usize;
    let mut buckets = 0usize;
    let mut reached = 0usize;
    for block in source_blocks(n, blocks) {
        let stats = sweeper.sweep(tn, block, 0, |_, _, _, _| {});
        max_finite = max_finite.max(stats.last_arrival);
        unreachable_pairs += stats.unreached_pairs(n);
        buckets = buckets.max(stats.buckets_visited);
        reached += stats.reached_bits;
    }
    (
        InstanceDiameter {
            max_finite,
            unreachable_pairs,
        },
        buckets,
        reached == n * n,
    )
}

// ---------------------------------------------------------------------------
// Trend gate: PR8 vs PR7 on the five shared end-to-end workloads
// ---------------------------------------------------------------------------

/// Extract `(workload, speedup)` pairs from a headline JSON dump by
/// string scan (same format as `sparse_vs_wide`).
fn scan_speedups(json: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in json.lines() {
        let Some(rest) = line.trim().strip_prefix("{\"workload\":\"") else {
            continue;
        };
        let Some(end) = rest.find('"') else { continue };
        let name = &rest[..end];
        let Some(tail) = rest.find("\"speedup\":").map(|i| &rest[i + 10..]) else {
            continue;
        };
        let value: String = tail
            .chars()
            .take_while(|c| c.is_ascii_digit() || *c == '.')
            .collect();
        if let Ok(s) = value.parse::<f64>() {
            out.push((name.to_owned(), s));
        }
    }
    out
}

/// The `-- --test` non-regression gate: the committed `BENCH_PR8.json`
/// end-to-end speedups must stay within 0.9× of the committed
/// `BENCH_PR7.json` at every one of the five shared workloads — the
/// kernel layer must not have cost either engine its standing.
fn check_pr8_trend() {
    let pr7 = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_PR7.json"));
    let pr8 = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_PR8.json"));
    let (Ok(pr7), Ok(pr8)) = (pr7, pr8) else {
        println!("kernel trend: committed baselines missing, skipping");
        return;
    };
    let baseline = scan_speedups(&pr7);
    let current = scan_speedups(&pr8);
    assert!(
        !baseline.is_empty() && !current.is_empty(),
        "both baselines must carry speedup rows"
    );
    let mut shared = 0usize;
    for (name, s7) in &baseline {
        let Some((_, s8)) = current.iter().find(|(n, _)| n == name) else {
            continue;
        };
        shared += 1;
        assert!(
            *s8 >= 0.9 * s7,
            "speedup regression on {name}: PR7 {s7:.2}x -> PR8 {s8:.2}x"
        );
        println!("kernel trend {name}: PR7 {s7:.2}x -> PR8 {s8:.2}x ok");
    }
    assert!(
        shared >= 5,
        "the five shared workloads must survive renames"
    );
    println!("kernel trend: PR8 within 0.9x of PR7 on {shared} shared workloads");
}

// ---------------------------------------------------------------------------
// Cancellation-overhead gate: an armed token must ride (almost) for free
// ---------------------------------------------------------------------------

/// Unarmed-vs-armed end-to-end nanoseconds for one engine on one
/// workload: best (minimum) of 15 samples per arm, two passes each,
/// interleaved A/B/B/A so frequency drift cannot masquerade as
/// checkpoint cost — the minimum is the robust estimator for a
/// pure-overhead comparison, where the true cost is one relaxed load
/// per bucket and everything above the floor is scheduler noise. The
/// armed runs carry a live, never-firing, deadline-bearing token — the
/// exact `--cell-timeout` configuration, including the
/// every-64th-bucket clock read.
fn cancel_overhead_ns<S: FrontierEngine>(
    tn: &TemporalNetwork,
    sweeper: &mut S,
    blocks: usize,
    arm: &mut dyn FnMut(&mut S, Option<CancelToken>),
) -> (u128, u128) {
    let token = CancelToken::with_deadline(Duration::from_secs(3600));
    let mut sample = |armed: bool, sweeper: &mut S| -> u128 {
        arm(sweeper, armed.then(|| token.clone()));
        black_box(all_pairs::<S>(tn, sweeper, blocks));
        (0..15)
            .map(|_| {
                let start = Instant::now();
                black_box(all_pairs::<S>(tn, sweeper, blocks));
                start.elapsed().as_nanos()
            })
            .min()
            .unwrap_or(u128::MAX)
    };
    let u1 = sample(false, sweeper);
    let a1 = sample(true, sweeper);
    let a2 = sample(true, sweeper);
    let u2 = sample(false, sweeper);
    arm(sweeper, None);
    (u1.min(u2), a1.min(a2))
}

/// The `-- --test` cancellation-overhead gate: bucket-boundary token
/// checkpoints must keep the end-to-end closure numbers at ≥ 0.97× of
/// the fault-free trajectory committed in `BENCH_PR8.json`. Raw baseline
/// nanoseconds do not transfer across machines, so the gate re-times the
/// PR8 seed families at smoke size, armed vs unarmed in the same
/// process, and holds the armed sweeps to that same 0.97× budget on both
/// engines.
fn check_cancellation_overhead() {
    let pr8 = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_PR8.json"));
    let Ok(pr8) = pr8 else {
        println!("cancellation overhead: committed baseline missing, skipping");
        return;
    };
    assert!(
        !scan_speedups(&pr8).is_empty(),
        "BENCH_PR8.json must carry the end-to-end speedup rows"
    );
    let mut checked = 0usize;
    let mut gate = |name: &str, engine: &str, (unarmed, armed): (u128, u128)| {
        let ratio = unarmed as f64 / armed as f64;
        assert!(
            ratio >= 0.97,
            "cancellation overhead on {name}/{engine}: \
             unarmed {unarmed} ns vs armed {armed} ns ({ratio:.3}x < 0.97x)"
        );
        println!(
            "cancellation overhead {name}/{engine}: unarmed {:.3} ms, armed {:.3} ms, {ratio:.2}x ok",
            unarmed as f64 / 1e6,
            armed as f64 / 1e6,
        );
        checked += 1;
    };
    // The sparse engine on the a4n seed family (PR8's sparse-dispatch
    // rows) and the wide engine on the clique control (its wide-dispatch
    // row), both at smoke size.
    let tn = gnp_a4n(1024);
    let mut sparse = SparseSweeper::new();
    gate(
        "gnp_n1024_a4n",
        "sparse",
        cancel_overhead_ns(&tn, &mut sparse, 1, &mut |s, t| s.set_cancel_token(t)),
    );
    let mut rng = default_rng(1);
    let clique = sample_normalized_urt_clique(256, true, &mut rng);
    let mut wide = WideSweeper::new();
    gate(
        "clique_n256",
        "wide",
        cancel_overhead_ns(&clique, &mut wide, cache_block_count(256), &mut |s, t| {
            s.set_cancel_token(t)
        }),
    );
    assert_eq!(checked, 2, "both engines must pass through the gate");
    println!("cancellation overhead: armed sweeps within 0.97x of unarmed on the PR8 families");
}

// ---------------------------------------------------------------------------
// The benchmark
// ---------------------------------------------------------------------------

fn bench(c: &mut Criterion) {
    let smoke = std::env::args().any(|a| a == "--test");

    kernel_identity_smoke();

    // Bit-identity of the clique pass itself: baseline and kernel runs
    // from identical seeds must land on identical slabs, callback
    // counts and fresh totals.
    {
        let rows = if smoke { 64 } else { 512 };
        let mut b1 = patterned_slab(9, rows * CLIQUE_W);
        let mut d1 = AlignedSlab::new();
        d1.resize_zeroed(rows * CLIQUE_W);
        let mut b2 = patterned_slab(9, rows * CLIQUE_W);
        let mut d2 = AlignedSlab::new();
        d2.resize_zeroed(rows * CLIQUE_W);
        for _ in 0..3 {
            let r1 = clique_pass(&mut b1, &mut d1, true);
            let r2 = clique_pass(&mut b2, &mut d2, false);
            assert_eq!(r1, r2, "clique pass diverged");
            assert_eq!(b1.words(), b2.words());
            assert_eq!(d1.words(), d2.words());
        }
        println!("kernel smoke: apply/commit passes bit-identical to pre-kernel loops");
    }

    // Criterion group: the micro kernels under the statistical harness.
    let mut group = c.benchmark_group("kernels");
    group.sample_size(if smoke { 2 } else { 10 });
    let rows = if smoke { 64 } else { 4096 };
    let mut before = patterned_slab(1, rows * CLIQUE_W);
    let mut delta = AlignedSlab::new();
    delta.resize_zeroed(rows * CLIQUE_W);
    group.bench_function("clique4096_apply_commit_kernel", |b| {
        b.iter(|| black_box(clique_pass(&mut before, &mut delta, true)))
    });
    group.bench_function("clique4096_apply_commit_baseline", |b| {
        b.iter(|| black_box(clique_pass(&mut before, &mut delta, false)))
    });
    let d_len = if smoke { 2000 } else { 50_000 };
    let long = strided_lanes(0, d_len, 3);
    let short = strided_lanes(1, 64, (d_len / 32) as u32 | 1);
    let mut out = Vec::new();
    group.bench_function("a4n_merge_skew_kernel", |b| {
        b.iter(|| {
            black_box(kernels::merge_into_emitting(
                &long,
                &short,
                &mut out,
                0,
                1,
                &mut |_, _, _, _| {},
            ))
        })
    });
    group.bench_function("a4n_merge_skew_baseline", |b| {
        b.iter(|| {
            black_box(baseline_merge_into(
                &long,
                &short,
                &mut out,
                0,
                1,
                &mut |_, _, _, _| {},
            ))
        })
    });
    group.finish();

    if smoke {
        check_pr8_trend();
        check_cancellation_overhead();
        return;
    }

    // Micro rows: median timings, kernel vs verbatim pre-kernel loops on
    // the same data, same run.
    let reps = 9;
    let mut kernel_rows = Vec::new();
    let mut record = |name: &str, baseline_ns: u128, kernel_ns: u128| {
        let speedup = baseline_ns as f64 / kernel_ns as f64;
        println!(
            "kernels/{name}: baseline {:.3} ms, kernel {:.3} ms, speedup {:.2}x",
            baseline_ns as f64 / 1e6,
            kernel_ns as f64 / 1e6,
            speedup,
        );
        kernel_rows.push(format!(
            "    {{\"workload\":\"{name}\",\"baseline_ns\":{baseline_ns},\"kernel_ns\":{kernel_ns},\"speedup\":{}}}",
            format_args!("{speedup:.2}"),
        ));
        speedup
    };

    // The wide clique n=4096 closure shape: 4096 rows × 64 words.
    let kernel_ns = time_median(reps, || clique_pass(&mut before, &mut delta, true)).as_nanos();
    let baseline_ns = time_median(reps, || clique_pass(&mut before, &mut delta, false)).as_nanos();
    record("clique4096_apply_commit", baseline_ns, kernel_ns);

    // Popcount over the clique-sized closure matrix.
    let bits = patterned_slab(7, rows * CLIQUE_W);
    let kernel_ns = time_median(reps, || kernels::popcount_words(bits.words())).as_nanos();
    let baseline_ns = time_median(reps, || scalar::popcount_words(bits.words())).as_nanos();
    record("clique4096_popcount", baseline_ns, kernel_ns);

    // The a4n merge throughput rows: a long-lived frontier (50k lanes)
    // absorbing one small bucket's sources — the galloping regime — and
    // a balanced dual merge. Each timed call performs `m` merges.
    let m = 200usize;
    let mut sink = 0u64;
    let kernel_ns = time_median(reps, || {
        for _ in 0..m {
            sink += u64::from(kernels::merge_into_emitting(
                &long,
                &short,
                &mut out,
                0,
                1,
                &mut |_, _, _, _| {},
            ));
        }
        sink
    })
    .as_nanos();
    let baseline_ns = time_median(reps, || {
        for _ in 0..m {
            sink += u64::from(baseline_merge_into(
                &long,
                &short,
                &mut out,
                0,
                1,
                &mut |_, _, _, _| {},
            ));
        }
        sink
    })
    .as_nanos();
    let headline = record("a4n_merge_skew", baseline_ns, kernel_ns);

    let a = strided_lanes(0, 600, 3);
    let b = strided_lanes(1, 600, 3);
    let kernel_ns = time_median(reps, || {
        for _ in 0..m {
            let (fu, fv) =
                kernels::merge_dual_emitting(&a, &b, &mut out, 0, 1, 2, &mut |_, _, _, _| {});
            sink += u64::from(fu) + u64::from(fv);
        }
        sink
    })
    .as_nanos();
    let baseline_ns = time_median(reps, || {
        for _ in 0..m {
            let (fu, fv) = baseline_merge_dual(&a, &b, &mut out, 0, 1, 2, &mut |_, _, _, _| {});
            sink += u64::from(fu) + u64::from(fv);
        }
        sink
    })
    .as_nanos();
    record("a4n_merge_balanced", baseline_ns, kernel_ns);
    black_box(sink);
    assert!(
        headline >= 1.3,
        "the galloping merge must clear 1.3x over the pre-kernel walk (got {headline:.2}x)"
    );

    // End-to-end refresh: the five PR7 workloads, same fields, so the
    // committed trajectory diffs release over release.
    let mut rows_json = Vec::new();
    for w in &end_to_end_workloads() {
        let n = w.tn.num_nodes();
        let wide_reps = if n > 16384 { 1 } else { 5 };
        let mut sweeper = WideSweeper::new();
        let wide_ns = time_median(wide_reps, || {
            all_pairs::<WideSweeper>(&w.tn, &mut sweeper, cache_block_count(n))
        })
        .as_nanos();
        let mut sparse_sweeper = SparseSweeper::new();
        let sparse_ns = time_median(5, || {
            all_pairs::<SparseSweeper>(&w.tn, &mut sparse_sweeper, 1)
        })
        .as_nanos();
        let (_, buckets, all_reached) = all_pairs::<SparseSweeper>(&w.tn, &mut sparse_sweeper, 1);
        let speedup = wide_ns as f64 / sparse_ns as f64;
        println!(
            "kernel_bench/{}: wide {:.3} ms, sparse {:.3} ms, speedup {:.2}x, engine {}",
            w.name,
            wide_ns as f64 / 1e6,
            sparse_ns as f64 / 1e6,
            speedup,
            EngineChoice::pick_for(&w.tn).name(),
        );
        rows_json.push(format!(
            "    {{\"workload\":\"{}\",\"n\":{},\"edges\":{},\"lifetime\":{},\"occupied\":{},\"dispatch\":\"{}\",\"wide_ns\":{},\"sparse_ns\":{},\"speedup\":{},\"sparse_buckets_visited\":{},\"all_reached\":{}}}",
            w.name,
            n,
            w.tn.graph().num_edges(),
            w.tn.lifetime(),
            w.tn.occupied_times().len(),
            EngineChoice::pick_for(&w.tn).name(),
            wide_ns,
            sparse_ns,
            format_args!("{speedup:.2}"),
            buckets,
            all_reached,
        ));
    }

    let json = format!(
        "{{\n  \"bench\":\"kernel_bench\",\n  \"pr\":8,\n  \"op\":\"all_pairs_closure_diameter\",\n  \"threads\":1,\n  \"reps\":{reps},\n  \"results\":[\n{}\n  ],\n  \"kernels\":[\n{}\n  ]\n}}\n",
        rows_json.join(",\n"),
        kernel_rows.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_PR8.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("headline numbers written to BENCH_PR8.json"),
        Err(e) => eprintln!("could not write BENCH_PR8.json: {e}"),
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
