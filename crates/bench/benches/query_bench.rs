//! PR10 load test of the point-query layer: batched resident
//! [`QuerySession`] service vs dispatched cold sweeps, on the corpus the
//! service actually targets — sparse `G(4096, p)` at average degree 4,
//! lifetime `a = 4n`, one uniform label per edge, 64-way concurrency.
//!
//! Three ways to answer the same 512 mixed point queries:
//!
//! * **resident** — one warm session, arrivals coalesced into 64-lane
//!   batches (what `ephemeral-serve` does per instance);
//! * **cold single-source** — every query dispatched alone as a scalar
//!   `foremost` sweep (the pre-session probe path and the differential
//!   oracle);
//! * **cold all-pairs** — every query answered by running a full cold
//!   all-pairs closure sweep (the pre-PR10 all-pairs entry points).
//!
//! Latency percentiles come from an open-loop discrete-event simulation:
//! arrivals draw exponential inter-arrival gaps from a derived seed
//! stream, service times are *measured* per batch/query, and the queue
//! is replayed arithmetically — no sleeping, so the numbers are stable
//! on loaded CI machines.
//!
//! A full run dumps `BENCH_PR10.json` at the workspace root and asserts
//! the acceptance bars; `-- --test` runs a reduced query count and
//! prints greppable gate lines instead of the JSON dump.

use criterion::{criterion_group, criterion_main, Criterion};
use ephemeral_core::urtn::sample_urtn;
use ephemeral_graph::generators;
use ephemeral_rng::distr::Exponential;
use ephemeral_rng::{RandomSource, SeedSequence};
use ephemeral_serve::protocol::ServeStats;
use ephemeral_serve::server::{serve_lines, ServeConfig};
use ephemeral_temporal::engine::MAX_LANES;
use ephemeral_temporal::session::{PointAnswer, PointQuery, QuerySession};
use ephemeral_temporal::sparse::{EngineChoice, SparseSweeper};
use ephemeral_temporal::wide::EngineKind;
use ephemeral_temporal::{TemporalNetwork, Time};
use std::hint::black_box;
use std::time::Instant;

const CONCURRENCY: usize = 64;

fn corpus(n: usize) -> TemporalNetwork {
    let mut rng = ephemeral_rng::default_rng(10);
    let g = generators::gnp(n, 4.0 / n as f64, false, &mut rng);
    sample_urtn(g, 4 * n as Time, &mut rng)
}

/// A mixed query stream from a derived seed stream: half foremost, a
/// quarter bounded reaches, a quarter distance rows.
fn query_stream(n: u32, lifetime: Time, count: usize, seq: &SeedSequence) -> Vec<PointQuery> {
    let mut rng = seq.rng(3);
    (0..count)
        .map(|_| {
            let u = rng.bounded_u32(n);
            let v = rng.bounded_u32(n);
            match rng.bounded_u32(4) {
                0 | 1 => PointQuery::Foremost { u, v },
                2 => PointQuery::Reaches {
                    u,
                    v,
                    by: 1 + rng.bounded_u32(lifetime),
                },
                _ => PointQuery::DistanceRow {
                    u,
                    horizon: 1 + rng.bounded_u32(lifetime),
                },
            }
        })
        .collect()
}

/// Open-loop arrival times: exponential gaps at `rate` per nanosecond.
fn arrivals(count: usize, rate_per_ns: f64, seq: &SeedSequence) -> Vec<f64> {
    let gap = Exponential::new(rate_per_ns);
    let mut rng = seq.rng(4);
    let mut t = 0.0f64;
    (0..count)
        .map(|_| {
            t += gap.sample(&mut rng);
            t
        })
        .collect()
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

/// Simulate a single-server queue where the server takes everything
/// that has arrived (up to `width` queries) as one batch and `measure`
/// returns the batch's service time in ns. Returns sorted per-query
/// latencies (ns) and the mean batch occupancy.
fn simulate_batched(
    arrive: &[f64],
    queries: &[PointQuery],
    width: usize,
    mut measure: impl FnMut(&[PointQuery]) -> f64,
) -> (Vec<f64>, f64) {
    let mut latencies = Vec::with_capacity(queries.len());
    let mut occupancy = Vec::new();
    let mut clock = 0.0f64;
    let mut next = 0;
    while next < queries.len() {
        let start = clock.max(arrive[next]);
        let mut take = 1;
        while next + take < queries.len() && take < width && arrive[next + take] <= start {
            take += 1;
        }
        let service = measure(&queries[next..next + take]);
        let done = start + service;
        for &at in &arrive[next..next + take] {
            latencies.push(done - at);
        }
        occupancy.push(take as f64);
        clock = done;
        next += take;
    }
    latencies.sort_unstable_by(f64::total_cmp);
    let mean_occ = occupancy.iter().sum::<f64>() / occupancy.len() as f64;
    (latencies, mean_occ)
}

/// One cold dispatched query: a scalar single-source `foremost` sweep —
/// what every point query cost before the session layer (the probe
/// paths of `ReachabilityMatrix`, `treach`, and the scenario metrics
/// dispatched exactly this per source), and simultaneously the
/// semantics oracle the resident answers must match bit for bit.
fn cold_single(tn: &TemporalNetwork, q: &PointQuery) -> PointAnswer {
    use ephemeral_temporal::foremost::{foremost, foremost_with_horizon};
    use ephemeral_temporal::NEVER;
    match *q {
        PointQuery::Foremost { u, v } => {
            let t = foremost(tn, u, 0).arrivals()[v as usize];
            PointAnswer::Foremost((t != NEVER).then_some(t))
        }
        PointQuery::Reaches { u, v, by } => {
            let t = foremost_with_horizon(tn, u, 0, by).arrivals()[v as usize];
            let arrival = (t != NEVER).then_some(t);
            PointAnswer::Reaches {
                reached: arrival.is_some(),
                arrival,
            }
        }
        PointQuery::DistanceRow { u, horizon } => {
            let run = foremost_with_horizon(tn, u, 0, horizon);
            PointAnswer::DistanceRow(run.arrivals().to_vec())
        }
    }
}

/// Wall-clock ns of one full cold all-pairs closure sweep (the engine
/// the density dispatch selects for this corpus).
fn allpairs_cold_ns(tn: &TemporalNetwork) -> f64 {
    let n = tn.num_nodes() as u32;
    let start = Instant::now();
    let mut sweeper = SparseSweeper::new();
    let stats = sweeper.sweep(tn, 0..n, 0, |_, _, _, _| {});
    black_box(stats);
    start.elapsed().as_nanos() as f64
}

/// Run the same corpus through the protocol layer end to end and report
/// its counters (cache hit rate, batch totals).
fn protocol_pass(n: usize, queries: &[PointQuery]) -> ServeStats {
    let mut script = format!(
        "{{\"op\":\"load\",\"instance\":\"corpus\",\"gnp\":{{\"nodes\":{n},\"avg_degree\":4.0,\
         \"seed\":10}},\"directed\":false,\"lifetime\":{},\"labels_per_edge\":1,\
         \"label_seed\":10}}\n",
        4 * n
    );
    for q in queries {
        match *q {
            PointQuery::Foremost { u, v } => script.push_str(&format!(
                "{{\"op\":\"query\",\"instance\":\"corpus\",\"type\":\"foremost\",\"u\":{u},\
                 \"v\":{v}}}\n"
            )),
            PointQuery::Reaches { u, v, by } => script.push_str(&format!(
                "{{\"op\":\"query\",\"instance\":\"corpus\",\"type\":\"reaches\",\"u\":{u},\
                 \"v\":{v},\"by\":{by}}}\n"
            )),
            PointQuery::DistanceRow { u, horizon } => script.push_str(&format!(
                "{{\"op\":\"query\",\"instance\":\"corpus\",\"type\":\"distance_row\",\"u\":{u},\
                 \"horizon\":{horizon}}}\n"
            )),
        }
    }
    let mut out = Vec::new();
    let summary =
        serve_lines(script.as_bytes(), &mut out, &ServeConfig::default()).expect("in-memory io");
    assert_eq!(summary.stats.failed, 0);
    summary.stats
}

#[allow(clippy::too_many_lines)]
fn bench(c: &mut Criterion) {
    let smoke = std::env::args().any(|a| a == "--test");
    let n = 4096usize;
    let count = if smoke { 192 } else { 512 };
    let mut tn = corpus(n);
    assert_eq!(
        EngineChoice::pick_for(&tn),
        EngineKind::Sparse,
        "the load-test corpus sits in the sparse regime"
    );
    let seq = SeedSequence::new(0x10_2014);
    let queries = query_stream(n as u32, tn.lifetime(), count, &seq);

    // Bit-identity before timing: the coalesced resident batches must
    // answer exactly what cold singleton dispatches answer.
    let mut session = QuerySession::new(tn);
    let mut resident_answers = Vec::with_capacity(count);
    for chunk in queries.chunks(MAX_LANES) {
        resident_answers.extend(session.answer_batch(chunk));
    }
    let (tn_back, _) = session.into_parts();
    tn = tn_back;
    for (i, q) in queries.iter().enumerate() {
        assert_eq!(resident_answers[i], cold_single(&tn, q), "query {i}: {q:?}");
    }
    println!("query smoke: resident lane batches bit-identical to the scalar foremost oracle");

    let mut group = c.benchmark_group("query_bench");
    group.sample_size(if smoke { 2 } else { 10 });
    {
        let mut session = QuerySession::new(tn);
        group.bench_function("resident_batched", |b| {
            b.iter(|| {
                let mut sum = 0usize;
                for chunk in queries.chunks(MAX_LANES) {
                    sum += session.answer_batch(chunk).len();
                }
                black_box(sum)
            })
        });
        let (back, _) = session.into_parts();
        tn = back;
    }
    group.bench_function("cold_single_source_x16", |b| {
        b.iter(|| {
            for q in &queries[..16] {
                black_box(cold_single(&tn, q));
            }
        })
    });
    group.finish();

    // ---- headline: measured service costs + open-loop latency sim ----

    // Mean resident batch cost calibrates the arrival rate so the
    // open-loop stream keeps ~CONCURRENCY queries in flight. Medians
    // over several full passes — a single pass is too noisy to gate on.
    let reps = if smoke { 3 } else { 9 };
    let mut session = QuerySession::new(tn);
    let resident_total_ns = {
        let mut samples: Vec<f64> = (0..=reps)
            .map(|_| {
                let start = Instant::now();
                for chunk in queries.chunks(MAX_LANES) {
                    black_box(session.answer_batch(chunk));
                }
                start.elapsed().as_nanos() as f64
            })
            .collect();
        samples.remove(0); // warm-up pass
        samples.sort_unstable_by(f64::total_cmp);
        samples[samples.len() / 2]
    };
    let batch_ns = resident_total_ns / queries.chunks(MAX_LANES).count() as f64;
    let rate_per_ns = CONCURRENCY as f64 / batch_ns;
    let arrive = arrivals(count, rate_per_ns, &seq);

    let (resident_lat, occupancy) = simulate_batched(&arrive, &queries, MAX_LANES, |chunk| {
        let start = Instant::now();
        black_box(session.answer_batch(chunk));
        start.elapsed().as_nanos() as f64
    });

    // The ≥10× acceptance bar is about *point* queries (reaches /
    // foremost): row queries deliberately dispatch through the
    // density-chosen row engine one source at a time — correct, but
    // nothing to amortize across lanes — so gate on the point-query
    // component of the stream.
    let points: Vec<PointQuery> = queries
        .iter()
        .filter(|q| !matches!(q, PointQuery::DistanceRow { .. }))
        .copied()
        .collect();
    assert!(points.len() >= count / 2, "the stream is point-query heavy");
    let point_resident_ns = {
        let mut samples: Vec<f64> = (0..=reps)
            .map(|_| {
                let start = Instant::now();
                for chunk in points.chunks(MAX_LANES) {
                    black_box(session.answer_batch(chunk));
                }
                start.elapsed().as_nanos() as f64 / points.len() as f64
            })
            .collect();
        samples.remove(0);
        samples.sort_unstable_by(f64::total_cmp);
        samples[samples.len() / 2]
    };
    let (tn_back, _) = session.into_parts();
    tn = tn_back;
    let point_cold_ns = {
        let mut samples: Vec<f64> = (0..3)
            .map(|_| {
                let start = Instant::now();
                for q in &points {
                    black_box(cold_single(&tn, q));
                }
                start.elapsed().as_nanos() as f64 / points.len() as f64
            })
            .collect();
        samples.sort_unstable_by(f64::total_cmp);
        samples[samples.len() / 2]
    };

    // Cold single-source: same arrivals, every query its own dispatch.
    let (cold_lat, _) = simulate_batched(&arrive, &queries, 1, |chunk| {
        let start = Instant::now();
        black_box(cold_single(&tn, &chunk[0]));
        start.elapsed().as_nanos() as f64
    });

    // Cold all-pairs: same arrivals, every query pays one full sweep
    // (measured once — it does not depend on the query).
    let ap_ns = allpairs_cold_ns(&tn);
    let (allpairs_lat, _) = simulate_batched(&arrive, &queries, 1, |_| ap_ns);

    let resident_service_ns = resident_total_ns / count as f64;
    let cold_mean_ns = {
        // Service cost alone (queueing excluded), median over passes.
        let mut samples: Vec<f64> = (0..3)
            .map(|_| {
                let start = Instant::now();
                for q in &queries {
                    black_box(cold_single(&tn, q));
                }
                start.elapsed().as_nanos() as f64 / count as f64
            })
            .collect();
        samples.sort_unstable_by(f64::total_cmp);
        samples[samples.len() / 2]
    };
    let mixed_speedup = cold_mean_ns / resident_service_ns;
    let point_speedup = point_cold_ns / point_resident_ns;
    let stats = protocol_pass(n, &queries);
    #[allow(clippy::cast_precision_loss)]
    let hit_rate = stats.hits as f64 / (stats.hits + stats.misses).max(1) as f64;

    let p = |lat: &[f64], q: f64| percentile(lat, q) / 1e3;
    println!(
        "query load (mixed): resident {:.1} µs/query service ({:.1} lanes/batch mean), cold \
         single-source {:.1} µs/query, speedup {mixed_speedup:.1}x",
        resident_service_ns / 1e3,
        occupancy,
        cold_mean_ns / 1e3,
    );
    println!(
        "query load (point): resident {:.2} µs/query, cold single-source {:.1} µs/query, \
         speedup {point_speedup:.1}x over {} point queries",
        point_resident_ns / 1e3,
        point_cold_ns / 1e3,
        points.len(),
    );
    println!(
        "query latency (µs): resident p50 {:.1} p95 {:.1} p99 {:.1} | cold single-source \
         p50 {:.1} p95 {:.1} p99 {:.1} | cold all-pairs p50 {:.1} p95 {:.1} p99 {:.1}",
        p(&resident_lat, 0.50),
        p(&resident_lat, 0.95),
        p(&resident_lat, 0.99),
        p(&cold_lat, 0.50),
        p(&cold_lat, 0.95),
        p(&cold_lat, 0.99),
        p(&allpairs_lat, 0.50),
        p(&allpairs_lat, 0.95),
        p(&allpairs_lat, 0.99),
    );
    println!(
        "query cache: hit rate {hit_rate:.3} over {} protocol queries",
        stats.queries
    );

    assert!(
        point_speedup >= 10.0,
        "acceptance bar: batched resident point queries must be ≥ 10× cheaper per query \
         than dispatched cold single-source sweeps (measured {point_speedup:.1}×)"
    );
    println!("query gate: resident batched >= 10x cold single-source per query");
    let resident_p99 = percentile(&resident_lat, 0.99);
    let allpairs_p99 = percentile(&allpairs_lat, 0.99);
    assert!(
        allpairs_p99 >= 0.9 * resident_p99,
        "acceptance bar: resident p99 ({resident_p99:.0} ns) must not regress below 0.9× of \
         serving the same stream via cold all-pairs sweeps (p99 {allpairs_p99:.0} ns)"
    );
    println!("query gate: resident p99 within 0.9x of cold all-pairs service");

    if smoke {
        return;
    }

    let row = format!(
        "    {{\"workload\":\"gnp_n{n}_a4n\",\"n\":{n},\"edges\":{},\"lifetime\":{},\
         \"dispatch\":\"{}\",\"queries\":{count},\"concurrency\":{CONCURRENCY},\
         \"resident_ns_per_query\":{:.0},\"cold_single_ns_per_query\":{:.0},\
         \"allpairs_ns_per_sweep\":{:.0},\"mixed_speedup_vs_cold_single\":{:.2},\
         \"point_resident_ns_per_query\":{:.0},\"point_cold_ns_per_query\":{:.0},\
         \"point_speedup_vs_cold_single\":{:.2},\
         \"batch_occupancy\":{:.1},\"cache_hit_rate\":{:.4},\
         \"resident_p50_ns\":{:.0},\"resident_p95_ns\":{:.0},\"resident_p99_ns\":{:.0},\
         \"cold_single_p99_ns\":{:.0},\"allpairs_p99_ns\":{:.0}}}",
        tn.graph().num_edges(),
        tn.lifetime(),
        EngineChoice::pick_for(&tn).name(),
        resident_service_ns,
        cold_mean_ns,
        ap_ns,
        mixed_speedup,
        point_resident_ns,
        point_cold_ns,
        point_speedup,
        occupancy,
        hit_rate,
        percentile(&resident_lat, 0.50),
        percentile(&resident_lat, 0.95),
        resident_p99,
        percentile(&cold_lat, 0.99),
        allpairs_p99,
    );
    let json = format!(
        "{{\n  \"bench\":\"query_bench\",\n  \"pr\":10,\n  \
         \"op\":\"resident_point_queries_vs_cold_dispatch\",\n  \"threads\":1,\n  \
         \"results\":[\n{row}\n  ]\n}}\n"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_PR10.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("headline numbers written to BENCH_PR10.json"),
        Err(e) => eprintln!("could not write BENCH_PR10.json: {e}"),
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
