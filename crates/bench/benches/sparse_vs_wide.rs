//! Ablation: the event-driven sparse-frontier engine vs the wide engine
//! for the **all-pairs closure / instance diameter**, on the workloads
//! the paper's connectivity results live on — sparse `G(n, p)` at average
//! degree 4 with lifetime `a = 4n` (mostly-empty buckets, no saturation
//! exit possible on disconnected instances: `BENCH_PR4.json` shows the
//! wide engine visiting all 6,328 occupied buckets there) and `G(n, p)`
//! at the `c·ln n / n` connectivity threshold. A dense clique workload
//! rides along as the control: the density-aware dispatch keeps *that*
//! on the wide engine, and the numbers show why.
//!
//! Beyond the criterion timings, a full run dumps the headline numbers —
//! wide ns, sparse ns, speedup — to `BENCH_PR5.json` at the workspace
//! root, including the scaling rows at n = 16384 and n = 65536 where the
//! wide engine's `W = ⌈n/64⌉` per-edge cost takes over and the
//! event-driven engine's advantage crosses and then dwarfs the 3×
//! acceptance bar (at n = 65536 the wide frontier matrices alone are
//! ~1 GiB; the sparse arena holds a few MiB of reached pairs). `-- --test`
//! runs a reduced smoke configuration (small sizes, two samples, no
//! JSON) — the CI gate that keeps this bench compiling and running.

use criterion::{criterion_group, criterion_main, Criterion};
use ephemeral_core::urtn::{sample_normalized_urt_clique, sample_urtn};
use ephemeral_graph::generators;
use ephemeral_rng::default_rng;
use ephemeral_temporal::distance::InstanceDiameter;
use ephemeral_temporal::sparse::{EngineChoice, SparseSweeper};
use ephemeral_temporal::wide::{
    cache_block_count, source_blocks, EngineKind, FrontierEngine, WideStats, WideSweeper,
};
use ephemeral_temporal::{TemporalNetwork, Time};
use std::hint::black_box;
use std::time::{Duration, Instant};

/// All-pairs closure / instance diameter through a full-width engine,
/// exactly as the entry points drive it single-threaded: the wide engine
/// sweeps cache-sized column blocks, the event-driven sparse engine one
/// full-width pass (its arena is cache-light; blocking would only
/// multiply the bucket walk).
fn all_pairs<S: FrontierEngine>(
    tn: &TemporalNetwork,
    sweeper: &mut S,
    blocks: usize,
) -> (InstanceDiameter, WideStats) {
    let n = tn.num_nodes();
    let mut max_finite: Time = 0;
    let mut unreachable_pairs = 0usize;
    let mut folded = WideStats {
        lanes: 0,
        reached_bits: 0,
        last_arrival: 0,
        buckets_visited: 0,
    };
    for block in source_blocks(n, blocks) {
        let stats = sweeper.sweep(tn, block, 0, |_, _, _, _| {});
        max_finite = max_finite.max(stats.last_arrival);
        unreachable_pairs += stats.unreached_pairs(n);
        folded.lanes += stats.lanes;
        folded.reached_bits += stats.reached_bits;
        folded.last_arrival = folded.last_arrival.max(stats.last_arrival);
        folded.buckets_visited = folded.buckets_visited.max(stats.buckets_visited);
    }
    (
        InstanceDiameter {
            max_finite,
            unreachable_pairs,
        },
        folded,
    )
}

/// Median wall-clock of `reps` runs after one warm-up call.
fn time_median<R>(reps: usize, mut f: impl FnMut() -> R) -> Duration {
    black_box(f());
    let mut samples: Vec<Duration> = (0..reps.max(1))
        .map(|_| {
            let start = Instant::now();
            black_box(f());
            start.elapsed()
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

struct Workload {
    name: &'static str,
    tn: TemporalNetwork,
}

fn workloads(smoke: bool) -> Vec<Workload> {
    let mut out = Vec::new();
    // Sparse availability: G(n, p) at average degree 4, one uniform label
    // per edge over lifetime a = 4n — the PR4 headline workload the wide
    // engine could not save (no saturation exit on disconnected
    // instances).
    let gnp_n = if smoke { 512 } else { 4096 };
    let mut rng = default_rng(2);
    let g = generators::gnp(gnp_n, 4.0 / gnp_n as f64, false, &mut rng);
    out.push(Workload {
        name: if smoke {
            "gnp_n512_a4n"
        } else {
            "gnp_n4096_a4n"
        },
        tn: sample_urtn(g, 4 * gnp_n as Time, &mut rng),
    });
    // The connectivity-threshold regime: G(n, p) at p = 1.5·ln n / n,
    // normalized lifetime a = n — diffuse buckets but high average
    // degree: the dispatch keeps the wide engine here (reach sets grow
    // towards n and reacher-list merges lose; the timing rows record
    // exactly that).
    let mut rng = default_rng(3);
    let p = 1.5 * (gnp_n as f64).ln() / gnp_n as f64;
    let g = generators::gnp(gnp_n, p, false, &mut rng);
    out.push(Workload {
        name: if smoke {
            "gnp_crit_n512"
        } else {
            "gnp_crit_n4096"
        },
        tn: sample_urtn(g, gnp_n as Time, &mut rng),
    });
    // Dense control: the normalized U-RT clique, where the dispatch keeps
    // the wide engine.
    let clique_n = if smoke { 256 } else { 1024 };
    let mut rng = default_rng(1);
    out.push(Workload {
        name: if smoke { "clique_n256" } else { "clique_n1024" },
        tn: sample_normalized_urt_clique(clique_n, true, &mut rng),
    });
    if !smoke {
        // The scaling rows: the wide engine's per-edge cost grows with
        // W = ceil(n/64) while the event-driven engine's merge cost tracks
        // the (n-independent) reacher-list sizes, so the speedup widens
        // with n — past the 3x acceptance bar from n = 16384 up, and to
        // feasibility-defining factors at n = 65536.
        for (name, n) in [("gnp_n16384_a4n", 16384usize), ("gnp_n65536_a4n", 65536)] {
            let mut rng = default_rng(4);
            let g = generators::gnp(n, 4.0 / n as f64, false, &mut rng);
            out.push(Workload {
                name,
                tn: sample_urtn(g, 4 * n as Time, &mut rng),
            });
        }
    }
    out
}

fn bench(c: &mut Criterion) {
    let smoke = std::env::args().any(|a| a == "--test");
    let loads = workloads(smoke);

    // Sanity before timing: the engines agree, and the dispatch model
    // sends the constant-degree workloads event-driven while the clique
    // (dense buckets) and the near-threshold G(n,p) (high degree, long
    // reach lists) keep the wide engine.
    for w in &loads {
        let expected = if w.name.starts_with("clique") || w.name.starts_with("gnp_crit") {
            EngineKind::Wide
        } else {
            EngineKind::Sparse
        };
        assert_eq!(EngineChoice::pick_for(&w.tn), expected, "{}", w.name);
        let n = w.tn.num_nodes();
        if n <= 4096 {
            let (wide, _) =
                all_pairs::<WideSweeper>(&w.tn, &mut WideSweeper::new(), cache_block_count(n));
            let (sparse, _) = all_pairs::<SparseSweeper>(&w.tn, &mut SparseSweeper::new(), 1);
            assert_eq!(wide, sparse, "{}", w.name);
        }
    }

    let mut group = c.benchmark_group("sparse_vs_wide");
    group.sample_size(if smoke { 2 } else { 10 });
    for w in &loads {
        let n = w.tn.num_nodes();
        if n > 4096 {
            continue; // the scaling rows are headline-only
        }
        let mut sweeper = WideSweeper::new();
        group.bench_function(format!("{}_wide", w.name), |b| {
            b.iter(|| {
                black_box(all_pairs::<WideSweeper>(
                    &w.tn,
                    &mut sweeper,
                    cache_block_count(n),
                ))
            })
        });
        let mut sweeper = SparseSweeper::new();
        group.bench_function(format!("{}_sparse", w.name), |b| {
            b.iter(|| black_box(all_pairs::<SparseSweeper>(&w.tn, &mut sweeper, 1)))
        });
    }
    group.finish();

    if smoke {
        return;
    }

    // Headline pass: median timings (the big scaling rows included),
    // dumped as the machine-readable perf trajectory.
    let reps = 5;
    let mut rows = Vec::new();
    for w in &loads {
        let n = w.tn.num_nodes();
        let wide_ns = {
            let mut sweeper = WideSweeper::new();
            // One rep is plenty for the big scaling rows (seconds each).
            let wide_reps = if n > 16384 { 1 } else { reps };
            time_median(wide_reps, || {
                all_pairs::<WideSweeper>(&w.tn, &mut sweeper, cache_block_count(n))
            })
            .as_nanos()
        };
        let mut sparse_sweeper = SparseSweeper::new();
        let sparse_ns = time_median(reps, || {
            all_pairs::<SparseSweeper>(&w.tn, &mut sparse_sweeper, 1)
        })
        .as_nanos();
        let (_, stats) = all_pairs::<SparseSweeper>(&w.tn, &mut sparse_sweeper, 1);
        let speedup = wide_ns as f64 / sparse_ns as f64;
        println!(
            "sparse_vs_wide/{}: wide {:.3} ms, sparse {:.3} ms, speedup {:.2}x, engine {}, \
             buckets visited {} (occupied {}, lifetime {})",
            w.name,
            wide_ns as f64 / 1e6,
            sparse_ns as f64 / 1e6,
            speedup,
            EngineChoice::pick_for(&w.tn).name(),
            stats.buckets_visited,
            w.tn.occupied_times().len(),
            w.tn.lifetime(),
        );
        rows.push(format!(
            "    {{\"workload\":\"{}\",\"n\":{},\"edges\":{},\"lifetime\":{},\"occupied\":{},\"dispatch\":\"{}\",\"wide_ns\":{},\"sparse_ns\":{},\"speedup\":{},\"sparse_buckets_visited\":{},\"all_reached\":{}}}",
            w.name,
            n,
            w.tn.graph().num_edges(),
            w.tn.lifetime(),
            w.tn.occupied_times().len(),
            EngineChoice::pick_for(&w.tn).name(),
            wide_ns,
            sparse_ns,
            format_args!("{speedup:.2}"),
            stats.buckets_visited,
            stats.all_reached(n),
        ));
    }
    let json = format!(
        "{{\n  \"bench\":\"sparse_vs_wide\",\n  \"pr\":5,\n  \"op\":\"all_pairs_closure_diameter\",\n  \"threads\":1,\n  \"reps\":{reps},\n  \"results\":[\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_PR5.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("headline numbers written to BENCH_PR5.json"),
        Err(e) => eprintln!("could not write BENCH_PR5.json: {e}"),
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
