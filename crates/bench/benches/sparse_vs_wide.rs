//! Ablation: the event-driven sparse-frontier engine vs the wide engine
//! for the **all-pairs closure / instance diameter**, on the workloads
//! the paper's connectivity results live on — sparse `G(n, p)` at average
//! degree 4 with lifetime `a = 4n` (mostly-empty buckets, no saturation
//! exit possible on disconnected instances) and `G(n, p)` at the
//! `c·ln n / n` connectivity threshold. A dense clique workload rides
//! along as the control: the density-aware dispatch keeps *that* on the
//! wide engine, and the numbers show why.
//!
//! Beyond the criterion timings, a full run dumps the headline numbers to
//! `BENCH_PR7.json` at the workspace root: the PR5-compatible
//! wide-vs-sparse rows (same workloads, same fields — the perf
//! trajectory the `--test` trend gate checks against the committed
//! `BENCH_PR5.json`), plus an **n-scaling series** of the avg-degree-4
//! family from n = 4096 up to n = 1,048,576. Each scaling row times the
//! single-stream sweep, the sharded event-driven fold at 1/2/8 shards
//! (contiguous source shards, per-worker arena + agenda over the shared
//! bucket index, folded in shard order — bit-identical by construction,
//! asserted here), and the streaming-closure row scan that popcounts the
//! full reachability under the default byte budget without ever holding
//! an `n × ⌈n/64⌉` matrix. `-- --test` runs a reduced smoke
//! configuration (small sizes, two samples, no JSON) extended with the
//! sharded thread-count-invariance row, the speedup trend gate, and the
//! cancellation-overhead gate (armed `--cell-timeout` tokens must keep
//! end-to-end sweeps ≥ 0.97× of unarmed on the `BENCH_PR8.json` seed
//! families).

use criterion::{criterion_group, criterion_main, Criterion};
use ephemeral_core::urtn::{sample_normalized_urt_clique, sample_urtn};
use ephemeral_graph::generators;
use ephemeral_parallel::faults::CancelToken;
use ephemeral_parallel::par_map_with;
use ephemeral_rng::default_rng;
use ephemeral_temporal::distance::InstanceDiameter;
use ephemeral_temporal::sparse::{EngineChoice, SparseSweeper, DEFAULT_CLOSURE_BUDGET_BYTES};
use ephemeral_temporal::wide::{
    cache_block_count, source_blocks, EngineKind, FrontierEngine, WideStats, WideSweeper,
};
use ephemeral_temporal::{TemporalNetwork, Time};
use std::hint::black_box;
use std::time::{Duration, Instant};

/// All-pairs closure / instance diameter through a full-width engine,
/// exactly as the entry points drive it single-threaded: the wide engine
/// sweeps cache-sized column blocks, the event-driven sparse engine one
/// full-width pass (its arena is cache-light; blocking would only
/// multiply the bucket walk).
fn all_pairs<S: FrontierEngine>(
    tn: &TemporalNetwork,
    sweeper: &mut S,
    blocks: usize,
) -> (InstanceDiameter, WideStats) {
    let n = tn.num_nodes();
    let mut max_finite: Time = 0;
    let mut unreachable_pairs = 0usize;
    let mut folded = WideStats::empty();
    for block in source_blocks(n, blocks) {
        let stats = sweeper.sweep(tn, block, 0, |_, _, _, _| {});
        max_finite = max_finite.max(stats.last_arrival);
        unreachable_pairs += stats.unreached_pairs(n);
        folded.absorb(&stats);
    }
    (
        InstanceDiameter {
            max_finite,
            unreachable_pairs,
        },
        folded,
    )
}

/// The sharded event-driven fold exactly as `EngineChoice::dispatch`
/// schedules it for the parallel entry points: contiguous source shards,
/// one arena + agenda per worker over the shared bucket index, per-shard
/// stats folded in canonical shard order. Returns the fold plus the
/// *summed* bucket visits (the folded stats keep the max — the
/// cross-engine observable; the sum is the sharded work: each shard
/// visits only its causal cone).
fn sharded_all_pairs(tn: &TemporalNetwork, shards: usize) -> (InstanceDiameter, WideStats, usize) {
    let n = tn.num_nodes();
    let blocks = source_blocks(n, shards);
    let per_shard = par_map_with(&blocks, shards, SparseSweeper::new, |sweeper, _, block| {
        sweeper.sweep(tn, block.clone(), 0, |_, _, _, _| {})
    });
    let mut max_finite: Time = 0;
    let mut unreachable_pairs = 0usize;
    let mut folded = WideStats::empty();
    let mut buckets_total = 0usize;
    for stats in &per_shard {
        max_finite = max_finite.max(stats.last_arrival);
        unreachable_pairs += stats.unreached_pairs(n);
        buckets_total += stats.buckets_visited;
        folded.absorb(stats);
    }
    (
        InstanceDiameter {
            max_finite,
            unreachable_pairs,
        },
        folded,
        buckets_total,
    )
}

/// Median wall-clock of `reps` runs after one warm-up call.
fn time_median<R>(reps: usize, mut f: impl FnMut() -> R) -> Duration {
    black_box(f());
    let mut samples: Vec<Duration> = (0..reps.max(1))
        .map(|_| {
            let start = Instant::now();
            black_box(f());
            start.elapsed()
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

struct Workload {
    name: &'static str,
    tn: TemporalNetwork,
}

/// The avg-degree-4 `G(n, p)` at lifetime `a = 4n` — the scaling family
/// (the PR5 rows at 16384/65536 drew from the same seed stream).
fn gnp_a4n(n: usize) -> TemporalNetwork {
    let mut rng = default_rng(4);
    let g = generators::gnp(n, 4.0 / n as f64, false, &mut rng);
    sample_urtn(g, 4 * n as Time, &mut rng)
}

fn workloads(smoke: bool) -> Vec<Workload> {
    let mut out = Vec::new();
    // Sparse availability: G(n, p) at average degree 4, one uniform label
    // per edge over lifetime a = 4n — the PR4 headline workload the wide
    // engine could not save (no saturation exit on disconnected
    // instances).
    let gnp_n = if smoke { 512 } else { 4096 };
    let mut rng = default_rng(2);
    let g = generators::gnp(gnp_n, 4.0 / gnp_n as f64, false, &mut rng);
    out.push(Workload {
        name: if smoke {
            "gnp_n512_a4n"
        } else {
            "gnp_n4096_a4n"
        },
        tn: sample_urtn(g, 4 * gnp_n as Time, &mut rng),
    });
    // The connectivity-threshold regime: G(n, p) at p = 1.5·ln n / n,
    // normalized lifetime a = n — diffuse buckets but high average
    // degree: the dispatch keeps the wide engine here (reach sets grow
    // towards n and reacher-list merges lose; the timing rows record
    // exactly that).
    let mut rng = default_rng(3);
    let p = 1.5 * (gnp_n as f64).ln() / gnp_n as f64;
    let g = generators::gnp(gnp_n, p, false, &mut rng);
    out.push(Workload {
        name: if smoke {
            "gnp_crit_n512"
        } else {
            "gnp_crit_n4096"
        },
        tn: sample_urtn(g, gnp_n as Time, &mut rng),
    });
    // Dense control: the normalized U-RT clique, where the dispatch keeps
    // the wide engine.
    let clique_n = if smoke { 256 } else { 1024 };
    let mut rng = default_rng(1);
    out.push(Workload {
        name: if smoke { "clique_n256" } else { "clique_n1024" },
        tn: sample_normalized_urt_clique(clique_n, true, &mut rng),
    });
    if !smoke {
        // The PR5 scaling rows: the wide engine's per-edge cost grows
        // with W = ceil(n/64) while the event-driven engine's merge cost
        // tracks the (n-independent) reacher-list sizes, so the speedup
        // widens with n. Kept with their PR5 names so the `--test` trend
        // gate can compare shared workloads release over release.
        for (name, n) in [("gnp_n16384_a4n", 16384usize), ("gnp_n65536_a4n", 65536)] {
            out.push(Workload {
                name,
                tn: gnp_a4n(n),
            });
        }
    }
    out
}

/// Extract `(workload, speedup)` pairs from a headline JSON dump by
/// string scan (rows are one per line; scaling rows with `"speedup":null`
/// are skipped).
fn scan_speedups(json: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in json.lines() {
        let Some(rest) = line.trim().strip_prefix("{\"workload\":\"") else {
            continue;
        };
        let Some(end) = rest.find('"') else { continue };
        let name = &rest[..end];
        let Some(tail) = rest.find("\"speedup\":").map(|i| &rest[i + 10..]) else {
            continue;
        };
        let value: String = tail
            .chars()
            .take_while(|c| c.is_ascii_digit() || *c == '.')
            .collect();
        if let Ok(s) = value.parse::<f64>() {
            out.push((name.to_owned(), s));
        }
    }
    out
}

/// The `-- --test` trend gate: the freshly committed `BENCH_PR7.json`
/// must not regress the committed `BENCH_PR5.json` speedups at shared
/// workloads (a 2× slack absorbs timer noise on loaded CI hosts; a real
/// regression — the event-driven engine losing its asymptotics — shows
/// up as an order of magnitude), and the PR7 avg-degree-4 family's
/// speedup must stay monotone non-decreasing in n (slack 0.8).
fn check_speedup_trend() {
    let pr5 = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_PR5.json"));
    let pr7 = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_PR7.json"));
    let (Ok(pr5), Ok(pr7)) = (pr5, pr7) else {
        println!("speedup trend: committed baselines missing, skipping");
        return;
    };
    let baseline = scan_speedups(&pr5);
    let current = scan_speedups(&pr7);
    assert!(
        !baseline.is_empty() && !current.is_empty(),
        "both baselines must carry speedup rows"
    );
    let mut shared = 0usize;
    for (name, s5) in &baseline {
        let Some((_, s7)) = current.iter().find(|(n, _)| n == name) else {
            continue;
        };
        shared += 1;
        assert!(
            *s7 >= 0.5 * s5,
            "speedup regression on {name}: PR5 {s5:.2}x -> PR7 {s7:.2}x"
        );
        println!("speedup trend {name}: PR5 {s5:.2}x -> PR7 {s7:.2}x ok");
    }
    assert!(shared >= 3, "the shared workload set must survive renames");
    // Monotone in n within the PR7 a4n family.
    let mut family: Vec<(usize, f64)> = current
        .iter()
        .filter(|(name, _)| name.starts_with("gnp_n") && name.ends_with("_a4n"))
        .filter_map(|(name, s)| {
            name["gnp_n".len()..name.len() - "_a4n".len()]
                .parse::<usize>()
                .ok()
                .map(|n| (n, *s))
        })
        .collect();
    family.sort_unstable_by_key(|&(n, _)| n);
    assert!(family.len() >= 3, "the a4n scaling family must be present");
    for pair in family.windows(2) {
        let ((n0, s0), (n1, s1)) = (pair[0], pair[1]);
        assert!(
            s1 >= 0.8 * s0,
            "a4n speedup must widen with n: {s0:.2}x at n={n0} but {s1:.2}x at n={n1}"
        );
    }
    println!(
        "speedup trend: a4n family monotone over {} sizes",
        family.len()
    );
}

/// Unarmed-vs-armed end-to-end nanoseconds for one engine on one
/// workload: best (minimum) of 15 samples per arm, two passes each,
/// interleaved A/B/B/A so frequency drift cannot masquerade as
/// checkpoint cost — the minimum is the robust estimator for a
/// pure-overhead comparison, where the true cost is one relaxed load
/// per bucket and everything above the floor is scheduler noise. The
/// armed runs carry a live, never-firing, deadline-bearing token — the
/// exact `--cell-timeout` configuration, including the
/// every-64th-bucket clock read.
fn cancel_overhead_ns<S: FrontierEngine>(
    tn: &TemporalNetwork,
    sweeper: &mut S,
    blocks: usize,
    arm: &mut dyn FnMut(&mut S, Option<CancelToken>),
) -> (u128, u128) {
    let token = CancelToken::with_deadline(Duration::from_secs(3600));
    let mut sample = |armed: bool, sweeper: &mut S| -> u128 {
        arm(sweeper, armed.then(|| token.clone()));
        black_box(all_pairs::<S>(tn, sweeper, blocks));
        (0..15)
            .map(|_| {
                let start = Instant::now();
                black_box(all_pairs::<S>(tn, sweeper, blocks));
                start.elapsed().as_nanos()
            })
            .min()
            .unwrap_or(u128::MAX)
    };
    let u1 = sample(false, sweeper);
    let a1 = sample(true, sweeper);
    let a2 = sample(true, sweeper);
    let u2 = sample(false, sweeper);
    arm(sweeper, None);
    (u1.min(u2), a1.min(a2))
}

/// The `-- --test` cancellation-overhead gate: bucket-boundary token
/// checkpoints must keep the end-to-end closure numbers at ≥ 0.97× of
/// the fault-free trajectory committed in `BENCH_PR8.json`. Raw baseline
/// nanoseconds do not transfer across machines, so the gate re-times the
/// PR8 seed families at smoke size, armed vs unarmed in the same
/// process, and holds the armed sweeps to that same 0.97× budget on both
/// engines.
fn check_cancellation_overhead() {
    let pr8 = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_PR8.json"));
    let Ok(pr8) = pr8 else {
        println!("cancellation overhead: committed baseline missing, skipping");
        return;
    };
    assert!(
        !scan_speedups(&pr8).is_empty(),
        "BENCH_PR8.json must carry the end-to-end speedup rows"
    );
    let mut checked = 0usize;
    let mut gate = |name: &str, engine: &str, (unarmed, armed): (u128, u128)| {
        let ratio = unarmed as f64 / armed as f64;
        assert!(
            ratio >= 0.97,
            "cancellation overhead on {name}/{engine}: \
             unarmed {unarmed} ns vs armed {armed} ns ({ratio:.3}x < 0.97x)"
        );
        println!(
            "cancellation overhead {name}/{engine}: unarmed {:.3} ms, armed {:.3} ms, {ratio:.2}x ok",
            unarmed as f64 / 1e6,
            armed as f64 / 1e6,
        );
        checked += 1;
    };
    // The sparse engine on the a4n seed family (PR8's sparse-dispatch
    // rows) and the wide engine on the clique control (its wide-dispatch
    // row), both at smoke size.
    let tn = gnp_a4n(1024);
    let mut sparse = SparseSweeper::new();
    gate(
        "gnp_n1024_a4n",
        "sparse",
        cancel_overhead_ns(&tn, &mut sparse, 1, &mut |s, t| s.set_cancel_token(t)),
    );
    let mut rng = default_rng(1);
    let clique = sample_normalized_urt_clique(256, true, &mut rng);
    let mut wide = WideSweeper::new();
    gate(
        "clique_n256",
        "wide",
        cancel_overhead_ns(&clique, &mut wide, cache_block_count(256), &mut |s, t| {
            s.set_cancel_token(t)
        }),
    );
    assert_eq!(checked, 2, "both engines must pass through the gate");
    println!("cancellation overhead: armed sweeps within 0.97x of unarmed on the PR8 families");
}

fn bench(c: &mut Criterion) {
    let smoke = std::env::args().any(|a| a == "--test");
    let loads = workloads(smoke);

    // Sanity before timing: the engines agree, and the dispatch model
    // sends the constant-degree workloads event-driven while the clique
    // (dense buckets) and the near-threshold G(n,p) (high degree, long
    // reach lists) keep the wide engine.
    for w in &loads {
        let expected = if w.name.starts_with("clique") || w.name.starts_with("gnp_crit") {
            EngineKind::Wide
        } else {
            EngineKind::Sparse
        };
        assert_eq!(EngineChoice::pick_for(&w.tn), expected, "{}", w.name);
        let n = w.tn.num_nodes();
        if n <= 4096 {
            let (wide, _) =
                all_pairs::<WideSweeper>(&w.tn, &mut WideSweeper::new(), cache_block_count(n));
            let (sparse, _) = all_pairs::<SparseSweeper>(&w.tn, &mut SparseSweeper::new(), 1);
            assert_eq!(wide, sparse, "{}", w.name);
        }
    }

    let mut group = c.benchmark_group("sparse_vs_wide");
    group.sample_size(if smoke { 2 } else { 10 });
    for w in &loads {
        let n = w.tn.num_nodes();
        if n > 4096 {
            continue; // the scaling rows are headline-only
        }
        let mut sweeper = WideSweeper::new();
        group.bench_function(format!("{}_wide", w.name), |b| {
            b.iter(|| {
                black_box(all_pairs::<WideSweeper>(
                    &w.tn,
                    &mut sweeper,
                    cache_block_count(n),
                ))
            })
        });
        let mut sweeper = SparseSweeper::new();
        group.bench_function(format!("{}_sparse", w.name), |b| {
            b.iter(|| black_box(all_pairs::<SparseSweeper>(&w.tn, &mut sweeper, 1)))
        });
    }
    group.finish();

    if smoke {
        // The sharded smoke row: the 1/2/8-shard event-driven folds must
        // be bit-identical (same diameter, same reached bits, same last
        // arrival) — the thread-count-invariance gate CI runs on every
        // push.
        let w = loads
            .iter()
            .find(|w| w.name.ends_with("_a4n"))
            .expect("the smoke set carries the sparse gnp row");
        let (d1, s1, _) = sharded_all_pairs(&w.tn, 1);
        for shards in [2usize, 8] {
            let (d, s, _) = sharded_all_pairs(&w.tn, shards);
            assert_eq!(d, d1, "{} shards", shards);
            assert_eq!(s.reached_bits, s1.reached_bits, "{} shards", shards);
            assert_eq!(s.last_arrival, s1.last_arrival, "{} shards", shards);
        }
        println!(
            "sharded smoke: 1/2/8-shard folds bit-identical on {}",
            w.name
        );
        check_speedup_trend();
        check_cancellation_overhead();
        return;
    }

    // Headline pass: median timings (the big scaling rows included),
    // dumped as the machine-readable perf trajectory. Kept field- and
    // workload-compatible with BENCH_PR5.json so the trend gate can
    // diff releases.
    let reps = 5;
    let mut rows = Vec::new();
    let mut wide_ns_by_n: Vec<(usize, u128)> = Vec::new();
    for w in &loads {
        let n = w.tn.num_nodes();
        let wide_ns = {
            let mut sweeper = WideSweeper::new();
            // One rep is plenty for the big scaling rows (seconds each).
            let wide_reps = if n > 16384 { 1 } else { reps };
            time_median(wide_reps, || {
                all_pairs::<WideSweeper>(&w.tn, &mut sweeper, cache_block_count(n))
            })
            .as_nanos()
        };
        if w.name.ends_with("_a4n") {
            wide_ns_by_n.push((n, wide_ns));
        }
        let mut sparse_sweeper = SparseSweeper::new();
        let sparse_ns = time_median(reps, || {
            all_pairs::<SparseSweeper>(&w.tn, &mut sparse_sweeper, 1)
        })
        .as_nanos();
        let (_, stats) = all_pairs::<SparseSweeper>(&w.tn, &mut sparse_sweeper, 1);
        let speedup = wide_ns as f64 / sparse_ns as f64;
        println!(
            "sparse_vs_wide/{}: wide {:.3} ms, sparse {:.3} ms, speedup {:.2}x, engine {}, \
             buckets visited {} (occupied {}, lifetime {})",
            w.name,
            wide_ns as f64 / 1e6,
            sparse_ns as f64 / 1e6,
            speedup,
            EngineChoice::pick_for(&w.tn).name(),
            stats.buckets_visited,
            w.tn.occupied_times().len(),
            w.tn.lifetime(),
        );
        rows.push(format!(
            "    {{\"workload\":\"{}\",\"n\":{},\"edges\":{},\"lifetime\":{},\"occupied\":{},\"dispatch\":\"{}\",\"wide_ns\":{},\"sparse_ns\":{},\"speedup\":{},\"sparse_buckets_visited\":{},\"all_reached\":{}}}",
            w.name,
            n,
            w.tn.graph().num_edges(),
            w.tn.lifetime(),
            w.tn.occupied_times().len(),
            EngineChoice::pick_for(&w.tn).name(),
            wide_ns,
            sparse_ns,
            format_args!("{speedup:.2}"),
            stats.buckets_visited,
            stats.all_reached(n),
        ));
    }

    // The n-scaling series: the avg-degree-4 family from the PR5 sizes
    // up to a million vertices. Shared sizes reuse the wide timings from
    // the pass above; beyond n = 65536 the wide engine's
    // `occupied · ⌈n/64⌉` fill is minutes-to-hours and is not timed
    // (`"wide_ns":null` — the feasibility gap IS the result). Each row
    // also times the sharded event-driven fold at 1/2/8 shards and the
    // streaming-closure row scan under the default byte budget.
    let mut scaling_rows = Vec::new();
    for &n in &[4096usize, 16384, 65536, 262_144, 1_048_576] {
        let built;
        let tn: &TemporalNetwork = match loads
            .iter()
            .find(|w| w.name.ends_with("_a4n") && w.tn.num_nodes() == n)
        {
            Some(w) => &w.tn,
            None => {
                built = gnp_a4n(n);
                &built
            }
        };
        // The worker-aware dispatch keeps this family event-driven even
        // at 8 workers — the sharded fold below is the configuration the
        // parallel entry points actually run.
        assert_eq!(
            EngineChoice::pick_for_parallel(tn, 8),
            EngineKind::Sparse,
            "n = {n}"
        );
        let scale_reps = if n >= 262_144 { 1 } else { 3 };
        let mut sweeper = SparseSweeper::new();
        let sparse_ns = time_median(scale_reps, || {
            all_pairs::<SparseSweeper>(tn, &mut sweeper, 1)
        })
        .as_nanos();
        let (single_d, stats) = all_pairs::<SparseSweeper>(tn, &mut sweeper, 1);
        let mut shard_ns = [0u128; 3];
        let mut sharded_buckets = 0usize;
        for (i, shards) in [1usize, 2, 8].into_iter().enumerate() {
            shard_ns[i] = time_median(scale_reps, || sharded_all_pairs(tn, shards)).as_nanos();
            let (d, s, buckets) = sharded_all_pairs(tn, shards);
            assert_eq!(d, single_d, "sharded fold at {shards} shards, n = {n}");
            assert_eq!(s.reached_bits, stats.reached_bits);
            assert_eq!(s.last_arrival, stats.last_arrival);
            if shards == 8 {
                sharded_buckets = buckets;
            }
        }
        // The streaming closure: popcount the full reachability through
        // the visitor (one pooled row, never an n × ⌈n/64⌉ matrix), and
        // touch the LRU block cache under the default byte budget.
        let stream_start = Instant::now();
        let mut reached_pairs = 0usize;
        SparseSweeper::for_each_reach_row(&mut sweeper, |_, row| {
            reached_pairs += row.iter().map(|w| w.count_ones() as usize).sum::<usize>();
        });
        let stream_rows_ns = stream_start.elapsed().as_nanos();
        assert_eq!(reached_pairs, stats.reached_bits, "n = {n}");
        let words = FrontierEngine::words_per_row(&sweeper);
        let closure_block_bytes = 256 * words * 8; // CLOSURE_BLOCK_ROWS rows
        let query_start = Instant::now();
        let mut query_bits = 0u32;
        for v in [0u32, (n as u32) / 2, n as u32 - 1] {
            for w in [0usize, words / 2, words - 1] {
                query_bits |= (sweeper.reach_word(v, w) != 0) as u32;
            }
        }
        let query_ns = query_start.elapsed().as_nanos();
        black_box(query_bits);
        let wide_ns = wide_ns_by_n.iter().find(|&&(m, _)| m == n).map(|&(_, t)| t);
        let (wide_field, speedup_field) = match wide_ns {
            Some(t) => (t.to_string(), format!("{:.2}", t as f64 / sparse_ns as f64)),
            None => ("null".to_owned(), "null".to_owned()),
        };
        println!(
            "scaling/n={n}: sparse {:.3} ms, shards 1/2/8 {:.3}/{:.3}/{:.3} ms, \
             stream {:.3} ms, {} reached pairs, arena hiwater {} words, {} compactions",
            sparse_ns as f64 / 1e6,
            shard_ns[0] as f64 / 1e6,
            shard_ns[1] as f64 / 1e6,
            shard_ns[2] as f64 / 1e6,
            stream_rows_ns as f64 / 1e6,
            reached_pairs,
            stats.arena_hiwater_words,
            stats.compactions,
        );
        scaling_rows.push(format!(
            "    {{\"workload\":\"scale_n{n}_a4n\",\"n\":{},\"edges\":{},\"occupied\":{},\"wide_ns\":{},\"sparse_ns\":{},\"speedup\":{},\"shard1_ns\":{},\"shard2_ns\":{},\"shard8_ns\":{},\"shard8_buckets_visited\":{},\"single_buckets_visited\":{},\"reached_pairs\":{},\"stream_rows_ns\":{},\"closure_query_ns\":{},\"closure_budget_bytes\":{},\"closure_block_bytes\":{},\"arena_hiwater_words\":{},\"compactions\":{}}}",
            n,
            tn.graph().num_edges(),
            tn.occupied_times().len(),
            wide_field,
            sparse_ns,
            speedup_field,
            shard_ns[0],
            shard_ns[1],
            shard_ns[2],
            sharded_buckets,
            stats.buckets_visited,
            reached_pairs,
            stream_rows_ns,
            query_ns,
            DEFAULT_CLOSURE_BUDGET_BYTES,
            closure_block_bytes,
            stats.arena_hiwater_words,
            stats.compactions,
        ));
    }

    let json = format!(
        "{{\n  \"bench\":\"sparse_vs_wide\",\n  \"pr\":7,\n  \"op\":\"all_pairs_closure_diameter\",\n  \"threads\":1,\n  \"reps\":{reps},\n  \"results\":[\n{}\n  ],\n  \"scaling\":[\n{}\n  ]\n}}\n",
        rows.join(",\n"),
        scaling_rows.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_PR7.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("headline numbers written to BENCH_PR7.json"),
        Err(e) => eprintln!("could not write BENCH_PR7.json: {e}"),
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
