//! Ablation: the single-pass wide-frontier engine vs per-batch sweeping
//! for the **all-pairs closure / instance diameter**, on the two workloads
//! the issue tracker's perf acceptance names — the dense normalized U-RT
//! clique (n = 1024 / 4096, where saturation early-exit cuts the pass to
//! `O(diameter)` buckets and the single index walk amortises the
//! per-edge-visit overhead ≈64×) and a sparse `G(n, p)` at lifetime
//! `a = 4n` (mostly-empty buckets, where the occupied-times skip list
//! replaces 64 cold walks of a long index with one walk of its non-empty
//! entries).
//!
//! Beyond the criterion timings, a full run dumps the headline numbers —
//! batch ns, wide ns, speedup, and the early-exit observability
//! (`buckets_visited ≪ a` on the dense family) — to `BENCH_PR4.json` at
//! the workspace root, so the repo carries a machine-readable perf
//! trajectory (`--save-baseline` in spirit; the vendored criterion has no
//! baselines). `-- --test` runs a reduced smoke configuration (small
//! sizes, two samples, no JSON) — the CI gate that keeps this bench
//! compiling and running.

use criterion::{criterion_group, criterion_main, Criterion};
use ephemeral_core::urtn::{sample_normalized_urt_clique, sample_urtn};
use ephemeral_graph::generators;
use ephemeral_rng::default_rng;
use ephemeral_temporal::distance::InstanceDiameter;
use ephemeral_temporal::engine::{batch_count, batch_range, BatchSweeper};
use ephemeral_temporal::wide::{cache_block_count, source_blocks, WideStats, WideSweeper};
use ephemeral_temporal::{TemporalNetwork, Time};
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Per-batch reference: the pre-wide all-pairs closure loop — one 64-lane
/// engine sweep per batch of sources, re-walking the bucket index per
/// batch (with the engine's own per-batch saturation exit).
fn batch_all_pairs(tn: &TemporalNetwork, sweeper: &mut BatchSweeper) -> InstanceDiameter {
    let n = tn.num_nodes();
    let mut sources = [0u32; 64];
    let mut max_finite: Time = 0;
    let mut unreachable_pairs = 0usize;
    for b in 0..batch_count(n) {
        let mut lanes = 0;
        for s in batch_range(n, b) {
            sources[lanes] = s;
            lanes += 1;
        }
        let stats = sweeper.sweep(tn, &sources[..lanes], 0, |_, _, _| {});
        max_finite = max_finite.max(stats.last_arrival);
        unreachable_pairs += stats.unreached_pairs(n);
    }
    InstanceDiameter {
        max_finite,
        unreachable_pairs,
    }
}

/// The wide engine as the entry points drive it: one single-pass sweep
/// per cache-sized column block (`⌈n/1024⌉` passes; a single pass up to
/// n = 1024), each walking only the occupied buckets with saturation
/// early-exit. Exactly `instance_temporal_diameter_scratch`'s wide path,
/// with the sweep stats kept for the early-exit observability.
fn wide_all_pairs(
    tn: &TemporalNetwork,
    sweeper: &mut WideSweeper,
) -> (InstanceDiameter, WideStats) {
    let n = tn.num_nodes();
    let mut max_finite: Time = 0;
    let mut unreachable_pairs = 0usize;
    let mut folded = WideStats::empty();
    for block in source_blocks(n, cache_block_count(n)) {
        let stats = sweeper.sweep(tn, block, 0, |_, _, _, _| {});
        max_finite = max_finite.max(stats.last_arrival);
        unreachable_pairs += stats.unreached_pairs(n);
        folded.absorb(&stats);
    }
    (
        InstanceDiameter {
            max_finite,
            unreachable_pairs,
        },
        folded,
    )
}

/// Median wall-clock of `reps` runs after one warm-up call.
fn time_median<R>(reps: usize, mut f: impl FnMut() -> R) -> Duration {
    black_box(f());
    let mut samples: Vec<Duration> = (0..reps.max(1))
        .map(|_| {
            let start = Instant::now();
            black_box(f());
            start.elapsed()
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

struct Workload {
    name: &'static str,
    tn: TemporalNetwork,
}

fn workloads(smoke: bool) -> Vec<Workload> {
    let (clique_sizes, gnp_n): (&[usize], usize) = if smoke {
        (&[256], 512)
    } else {
        (&[1024, 4096], 4096)
    };
    let mut out = Vec::new();
    for &n in clique_sizes {
        let mut rng = default_rng(1);
        out.push(Workload {
            name: match n {
                256 => "clique_n256",
                1024 => "clique_n1024",
                _ => "clique_n4096",
            },
            tn: sample_normalized_urt_clique(n, true, &mut rng),
        });
    }
    // Sparse availability: G(n, p) at average degree 4, one uniform label
    // per edge over lifetime a = 4n — most buckets empty, the
    // Akrida–Spirakis-style sparse regime.
    let mut rng = default_rng(2);
    let g = generators::gnp(gnp_n, 4.0 / gnp_n as f64, false, &mut rng);
    out.push(Workload {
        name: if smoke {
            "gnp_n512_a4n"
        } else {
            "gnp_n4096_a4n"
        },
        tn: sample_urtn(g, 4 * gnp_n as Time, &mut rng),
    });
    out
}

fn bench(c: &mut Criterion) {
    let smoke = std::env::args().any(|a| a == "--test");
    let loads = workloads(smoke);

    // Sanity before timing: both engines agree on every workload.
    for w in &loads {
        let batch = batch_all_pairs(&w.tn, &mut BatchSweeper::new());
        let (wide, _) = wide_all_pairs(&w.tn, &mut WideSweeper::new());
        assert_eq!(batch, wide, "{}", w.name);
    }

    let mut group = c.benchmark_group("wide_vs_batch");
    group.sample_size(if smoke { 2 } else { 10 });
    for w in &loads {
        // The 4096-clique takes ~1 s per batched run; leave it to the JSON
        // headline pass below and keep criterion on the smaller sizes.
        if w.name == "clique_n4096" {
            continue;
        }
        let mut sweeper = BatchSweeper::new();
        group.bench_function(format!("{}_batch", w.name), |b| {
            b.iter(|| black_box(batch_all_pairs(&w.tn, &mut sweeper)))
        });
        let mut sweeper = WideSweeper::new();
        group.bench_function(format!("{}_wide", w.name), |b| {
            b.iter(|| black_box(wide_all_pairs(&w.tn, &mut sweeper)))
        });
    }
    group.finish();

    if smoke {
        return;
    }

    // Headline pass: median-of-3 timings for every workload (the 4096s
    // included), dumped as the machine-readable perf trajectory.
    let reps = 3;
    let mut rows = Vec::new();
    for w in &loads {
        let mut batch_sweeper = BatchSweeper::new();
        let batch_ns = time_median(reps, || batch_all_pairs(&w.tn, &mut batch_sweeper)).as_nanos();
        let mut wide_sweeper = WideSweeper::new();
        let wide_ns = time_median(reps, || wide_all_pairs(&w.tn, &mut wide_sweeper)).as_nanos();
        let (_, stats) = wide_all_pairs(&w.tn, &mut wide_sweeper);
        let speedup = batch_ns as f64 / wide_ns as f64;
        println!(
            "wide_vs_batch/{}: batch {:.3} ms, wide {:.3} ms, speedup {:.2}x, \
             buckets visited {}/{} (lifetime {}, occupied {})",
            w.name,
            batch_ns as f64 / 1e6,
            wide_ns as f64 / 1e6,
            speedup,
            stats.buckets_visited,
            w.tn.lifetime(),
            w.tn.lifetime(),
            w.tn.occupied_times().len(),
        );
        rows.push(format!(
            "    {{\"workload\":\"{}\",\"n\":{},\"edges\":{},\"lifetime\":{},\"occupied\":{},\"batch_ns\":{},\"wide_ns\":{},\"speedup\":{:.2},\"wide_buckets_visited\":{},\"all_reached\":{}}}",
            w.name,
            w.tn.num_nodes(),
            w.tn.graph().num_edges(),
            w.tn.lifetime(),
            w.tn.occupied_times().len(),
            batch_ns,
            wide_ns,
            speedup,
            stats.buckets_visited,
            stats.all_reached(w.tn.num_nodes()),
        ));
    }
    let json = format!(
        "{{\n  \"bench\":\"wide_vs_batch\",\n  \"pr\":4,\n  \"op\":\"all_pairs_closure_diameter\",\n  \"threads\":1,\n  \"reps\":{reps},\n  \"results\":[\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_PR4.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("headline numbers written to BENCH_PR4.json"),
        Err(e) => eprintln!("could not write BENCH_PR4.json: {e}"),
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
