//! Regenerate the paper's experiment tables, or run a scenario sweep.
//!
//! ```text
//! cargo run --release -p ephemeral-bench --bin experiments            # all, full fidelity
//! cargo run --release -p ephemeral-bench --bin experiments -- --quick # smoke pass
//! cargo run --release -p ephemeral-bench --bin experiments -- e02 e06 # selected ids
//! cargo run --release -p ephemeral-bench --bin experiments -- --format json --quick
//!
//! # Scenario sweep: adaptive CI-driven grid over families × label models,
//! # streamed as JSON lines (one row per completed cell, canonical order).
//! cargo run --release -p ephemeral-bench --bin experiments -- sweep --quick
//! cargo run --release -p ephemeral-bench --bin experiments -- sweep --out sweep.jsonl
//! # …killed mid-grid? Resume: completed cells are re-emitted verbatim and
//! # only the missing ones are computed — the final file is byte-identical
//! # to an uninterrupted run.
//! cargo run --release -p ephemeral-bench --bin experiments -- \
//!     sweep --resume sweep.jsonl --out sweep.jsonl
//!
//! # Long-lived reachability service: JSON-lines protocol on stdin→stdout
//! # (or --tcp ADDR), instances resident in a sharded byte-budgeted cache.
//! cargo run --release -p ephemeral-bench --bin experiments -- serve
//! cargo run --release -p ephemeral-bench --bin experiments -- \
//!     serve --shards 4 --budget-mb 512 --deadline-ms 2000
//! ```
//!
//! Default output is the markdown that EXPERIMENTS.md embeds;
//! `--format json` (or `--format=json`) emits JSON lines instead — one
//! object per table row (and one per footnote), tagged with the
//! `experiment` id and `table` title, so perf/accuracy trajectories can be
//! tracked by machine across runs. Sweep mode emits JSON lines only.

use ephemeral_bench::sweep::{run_sweep_with, SweepOptions, SweepSpec};
use ephemeral_bench::{all_experiments, ExpConfig};
use ephemeral_serve::server::{run_stdin, serve_listener, ServeConfig};
use std::io::Write;
use std::time::Instant;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Markdown,
    Json,
}

/// Parsed command line: one pass partitions the args into flags and ids,
/// so a value-taking flag can never be mistaken for an experiment id.
struct Cli {
    quick: bool,
    format: Format,
    ids: Vec<String>,
}

fn parse_args(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli {
        quick: false,
        format: Format::Markdown,
        ids: Vec::new(),
    };
    fn format_value(value: &str) -> Result<Format, String> {
        match value {
            "markdown" | "md" => Ok(Format::Markdown),
            "json" => Ok(Format::Json),
            other => Err(format!("unknown format '{other}' (markdown | json)")),
        }
    }
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--quick" {
            cli.quick = true;
        } else if a == "--format" {
            let value = it.next().ok_or("--format needs a value")?;
            cli.format = format_value(value)?;
        } else if let Some(value) = a.strip_prefix("--format=") {
            cli.format = format_value(value)?;
        } else if a.starts_with("--") {
            return Err(format!("unknown flag '{a}'"));
        } else {
            cli.ids.push(a.clone());
        }
    }
    Ok(cli)
}

/// Parsed `sweep` subcommand line.
struct SweepCli {
    quick: bool,
    seed: Option<u64>,
    threads: Option<usize>,
    resume: Option<String>,
    out: Option<String>,
    /// `--cell-timeout <seconds>`: per-attempt wall-clock watchdog,
    /// cooperative (checked at engine bucket boundaries). 0 disables.
    cell_timeout: Option<f64>,
    /// `--max-attempts <k>`: evaluation attempts per cell before the
    /// quarantined `"status":"failed"` row.
    max_attempts: Option<u32>,
}

fn parse_sweep_args(args: &[String]) -> Result<SweepCli, String> {
    let mut cli = SweepCli {
        quick: false,
        seed: None,
        threads: None,
        resume: None,
        out: None,
        cell_timeout: None,
        max_attempts: None,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value_of = |flag: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match a.as_str() {
            "--quick" => cli.quick = true,
            "--seed" => {
                cli.seed = Some(
                    value_of("--seed")?
                        .parse()
                        .map_err(|e| format!("bad --seed: {e}"))?,
                );
            }
            "--threads" => {
                cli.threads = Some(
                    value_of("--threads")?
                        .parse()
                        .map_err(|e| format!("bad --threads: {e}"))?,
                );
            }
            "--resume" => cli.resume = Some(value_of("--resume")?),
            "--cell-timeout" => {
                cli.cell_timeout = Some(
                    value_of("--cell-timeout")?
                        .parse()
                        .map_err(|e| format!("bad --cell-timeout: {e}"))?,
                );
            }
            "--max-attempts" => {
                let k: u32 = value_of("--max-attempts")?
                    .parse()
                    .map_err(|e| format!("bad --max-attempts: {e}"))?;
                if k == 0 {
                    return Err("--max-attempts must be at least 1".to_owned());
                }
                cli.max_attempts = Some(k);
            }
            "--out" => cli.out = Some(value_of("--out")?),
            "--format" => {
                let v = value_of("--format")?;
                if v != "json" {
                    return Err(format!("sweep emits JSON lines only, not '{v}'"));
                }
            }
            other if other.strip_prefix("--format=").is_some() => {
                if other != "--format=json" {
                    return Err(format!("sweep emits JSON lines only, not '{other}'"));
                }
            }
            other => return Err(format!("unknown sweep argument '{other}'")),
        }
    }
    Ok(cli)
}

fn run_sweep_mode(args: &[String]) -> Result<(), String> {
    let cli = parse_sweep_args(args)?;
    let seed = cli.seed.unwrap_or(ExpConfig::full().seed);
    let threads = cli
        .threads
        .unwrap_or_else(ephemeral_parallel::available_threads);
    let spec = if cli.quick {
        SweepSpec::quick(seed)
    } else {
        SweepSpec::full(seed)
    };
    let resume: Vec<String> = match &cli.resume {
        Some(path) => std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read --resume {path}: {e}"))?
            .lines()
            .map(str::to_owned)
            .collect(),
        None => Vec::new(),
    };
    let cells = spec.cells().len();
    eprintln!(
        "# sweep: mode={}, seed={seed}, threads={threads}, cells={cells}, resumed={}",
        if cli.quick { "quick" } else { "full" },
        resume.len().min(cells)
    );
    let mut opts = SweepOptions::default();
    if let Some(k) = cli.max_attempts {
        opts.max_attempts = k;
    }
    if let Some(secs) = cli.cell_timeout {
        if !secs.is_finite() || secs < 0.0 {
            return Err(format!("bad --cell-timeout: {secs}"));
        }
        opts.cell_timeout = (secs > 0.0).then(|| std::time::Duration::from_secs_f64(secs));
    }
    let started = Instant::now();
    let mut file = match &cli.out {
        Some(path) => Some(
            std::fs::File::create(path).map_err(|e| format!("cannot create --out {path}: {e}"))?,
        ),
        None => None,
    };
    run_sweep_with(&spec, threads, &resume, opts, |row| {
        println!("{row}");
        if let Some(f) = &mut file {
            writeln!(f, "{row}").expect("write --out row");
        }
    });
    eprintln!("# sweep done in {:.1}s", started.elapsed().as_secs_f64());
    Ok(())
}

/// `experiments serve`: the long-lived reachability service. Speaks the
/// JSON-lines protocol on stdin→stdout by default, or on a TCP listener
/// with `--tcp ADDR` (one connection at a time; `--connections K` stops
/// after K, for smoke tests).
fn run_serve_mode(args: &[String]) -> Result<(), String> {
    let mut cfg = ServeConfig::default();
    let mut tcp: Option<String> = None;
    let mut connections: Option<usize> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value_of = |flag: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--shards" => {
                cfg.shards = value_of("--shards")?
                    .parse()
                    .map_err(|e| format!("bad --shards: {e}"))?;
                if cfg.shards == 0 {
                    return Err("--shards must be at least 1".into());
                }
            }
            "--budget-mb" => {
                let mb: usize = value_of("--budget-mb")?
                    .parse()
                    .map_err(|e| format!("bad --budget-mb: {e}"))?;
                cfg.byte_budget = mb << 20;
            }
            "--deadline-ms" => {
                let ms: u64 = value_of("--deadline-ms")?
                    .parse()
                    .map_err(|e| format!("bad --deadline-ms: {e}"))?;
                cfg.deadline = Some(std::time::Duration::from_millis(ms));
            }
            "--tcp" => tcp = Some(value_of("--tcp")?),
            "--connections" => {
                connections = Some(
                    value_of("--connections")?
                        .parse()
                        .map_err(|e| format!("bad --connections: {e}"))?,
                );
            }
            other => return Err(format!("unknown serve argument '{other}'")),
        }
    }
    eprintln!(
        "# serve: shards={}, budget={}MiB, deadline={:?}, front={}",
        cfg.shards,
        cfg.byte_budget >> 20,
        cfg.deadline,
        tcp.as_deref().unwrap_or("stdin")
    );
    if let Some(addr) = tcp {
        let listener =
            std::net::TcpListener::bind(&addr).map_err(|e| format!("bind {addr}: {e}"))?;
        eprintln!(
            "# serve: listening on {}",
            listener.local_addr().map_err(|e| e.to_string())?
        );
        serve_listener(&listener, &cfg, connections).map_err(|e| e.to_string())?;
    } else {
        let summary = run_stdin(&cfg).map_err(|e| e.to_string())?;
        eprintln!(
            "# serve: {} requests, {} queries in {} batches, {} failed, hit rate {:.3}",
            summary.requests,
            summary.stats.queries,
            summary.stats.batches,
            summary.stats.failed,
            summary.stats.hits as f64 / (summary.stats.hits + summary.stats.misses).max(1) as f64
        );
    }
    Ok(())
}

fn main() {
    // Deterministic fault injection for CI and soak runs: a malformed
    // spec panics loudly here, before any work runs. The guard pins the
    // schedule for the whole process.
    let _faults = ephemeral_parallel::faults::install_from_env();
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().is_some_and(|a| a == "sweep") {
        if let Err(e) = run_sweep_mode(&args[1..]) {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
        return;
    }
    if args.first().is_some_and(|a| a == "serve") {
        if let Err(e) = run_serve_mode(&args[1..]) {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
        return;
    }
    let Cli { quick, format, ids } = match parse_args(&args) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let cfg = if quick {
        ExpConfig::quick()
    } else {
        ExpConfig::full()
    };

    eprintln!(
        "# experiments: mode={}, seed={}, threads={}",
        if quick { "quick" } else { "full" },
        cfg.seed,
        cfg.threads
    );

    let total = Instant::now();
    for exp in all_experiments() {
        if !ids.is_empty() && !ids.iter().any(|id| id.as_str() == exp.id) {
            continue;
        }
        eprintln!("## running {} …", exp.id);
        let started = Instant::now();
        let tables = (exp.run)(&cfg);
        match format {
            Format::Markdown => {
                println!("## {}\n", exp.title);
                for t in &tables {
                    print!("{}", t.render());
                }
            }
            Format::Json => {
                // Tag every line with the experiment so a whole run can be
                // concatenated into one trajectory file.
                for t in &tables {
                    for line in t.render_json_lines().lines() {
                        let tagged = format!(
                            "{{\"experiment\":\"{}\",{}",
                            exp.id,
                            line.strip_prefix('{').expect("rows are JSON objects")
                        );
                        println!("{tagged}");
                    }
                }
            }
        }
        eprintln!(
            "## {} done in {:.1}s",
            exp.id,
            started.elapsed().as_secs_f64()
        );
    }
    eprintln!("# all done in {:.1}s", total.elapsed().as_secs_f64());
}
