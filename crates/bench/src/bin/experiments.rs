//! Regenerate the paper's experiment tables.
//!
//! ```text
//! cargo run --release -p ephemeral-bench --bin experiments            # all, full fidelity
//! cargo run --release -p ephemeral-bench --bin experiments -- --quick # smoke pass
//! cargo run --release -p ephemeral-bench --bin experiments -- e02 e06 # selected ids
//! cargo run --release -p ephemeral-bench --bin experiments -- --format json --quick
//! ```
//!
//! Default output is the markdown that EXPERIMENTS.md embeds;
//! `--format json` (or `--format=json`) emits JSON lines instead — one
//! object per table row (and one per footnote), tagged with the
//! `experiment` id and `table` title, so perf/accuracy trajectories can be
//! tracked by machine across runs.

use ephemeral_bench::{all_experiments, ExpConfig};
use std::time::Instant;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Markdown,
    Json,
}

/// Parsed command line: one pass partitions the args into flags and ids,
/// so a value-taking flag can never be mistaken for an experiment id.
struct Cli {
    quick: bool,
    format: Format,
    ids: Vec<String>,
}

fn parse_args(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli {
        quick: false,
        format: Format::Markdown,
        ids: Vec::new(),
    };
    fn format_value(value: &str) -> Result<Format, String> {
        match value {
            "markdown" | "md" => Ok(Format::Markdown),
            "json" => Ok(Format::Json),
            other => Err(format!("unknown format '{other}' (markdown | json)")),
        }
    }
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--quick" {
            cli.quick = true;
        } else if a == "--format" {
            let value = it.next().ok_or("--format needs a value")?;
            cli.format = format_value(value)?;
        } else if let Some(value) = a.strip_prefix("--format=") {
            cli.format = format_value(value)?;
        } else if a.starts_with("--") {
            return Err(format!("unknown flag '{a}'"));
        } else {
            cli.ids.push(a.clone());
        }
    }
    Ok(cli)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Cli { quick, format, ids } = match parse_args(&args) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let cfg = if quick {
        ExpConfig::quick()
    } else {
        ExpConfig::full()
    };

    eprintln!(
        "# experiments: mode={}, seed={}, threads={}",
        if quick { "quick" } else { "full" },
        cfg.seed,
        cfg.threads
    );

    let total = Instant::now();
    for exp in all_experiments() {
        if !ids.is_empty() && !ids.iter().any(|id| id.as_str() == exp.id) {
            continue;
        }
        eprintln!("## running {} …", exp.id);
        let started = Instant::now();
        let tables = (exp.run)(&cfg);
        match format {
            Format::Markdown => {
                println!("## {}\n", exp.title);
                for t in &tables {
                    print!("{}", t.render());
                }
            }
            Format::Json => {
                // Tag every line with the experiment so a whole run can be
                // concatenated into one trajectory file.
                for t in &tables {
                    for line in t.render_json_lines().lines() {
                        let tagged = format!(
                            "{{\"experiment\":\"{}\",{}",
                            exp.id,
                            line.strip_prefix('{').expect("rows are JSON objects")
                        );
                        println!("{tagged}");
                    }
                }
            }
        }
        eprintln!(
            "## {} done in {:.1}s",
            exp.id,
            started.elapsed().as_secs_f64()
        );
    }
    eprintln!("# all done in {:.1}s", total.elapsed().as_secs_f64());
}
