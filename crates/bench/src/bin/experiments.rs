//! Regenerate the paper's experiment tables.
//!
//! ```text
//! cargo run --release -p ephemeral-bench --bin experiments            # all, full fidelity
//! cargo run --release -p ephemeral-bench --bin experiments -- --quick # smoke pass
//! cargo run --release -p ephemeral-bench --bin experiments -- e02 e06 # selected ids
//! ```
//!
//! Output is the markdown that EXPERIMENTS.md embeds.

use ephemeral_bench::{all_experiments, ExpConfig};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let ids: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    let cfg = if quick {
        ExpConfig::quick()
    } else {
        ExpConfig::full()
    };

    eprintln!(
        "# experiments: mode={}, seed={}, threads={}",
        if quick { "quick" } else { "full" },
        cfg.seed,
        cfg.threads
    );

    let total = Instant::now();
    for exp in all_experiments() {
        if !ids.is_empty() && !ids.iter().any(|id| id.as_str() == exp.id) {
            continue;
        }
        eprintln!("## running {} …", exp.id);
        let started = Instant::now();
        let tables = (exp.run)(&cfg);
        println!("## {}\n", exp.title);
        for t in &tables {
            print!("{}", t.render());
        }
        eprintln!(
            "## {} done in {:.1}s",
            exp.id,
            started.elapsed().as_secs_f64()
        );
    }
    eprintln!("# all done in {:.1}s", total.elapsed().as_secs_f64());
}
