//! E01 — the expansion process (Fig. 1, Theorems 1–2).
//!
//! Claim: on the directed normalized U-RT clique, the frontiers `Γᵢ(s)`
//! grow geometrically until they hold `Θ(√n)` vertices after
//! `d + 1 = Θ(log n)` levels, and the matching step then succeeds w.h.p.
//! Shape to reproduce: success rate → 1 as `n` grows; final frontier
//! tracking `√n`; arrival bound `Θ(log n)`.

use crate::table::{f, Table};
use crate::ExpConfig;
use ephemeral_core::expansion::{expansion_process, ExpansionParams};
use ephemeral_core::expansion_oracle::expansion_oracle;
use ephemeral_core::urtn::{resample_single, sample_normalized_urt_clique};

/// Run E01.
#[must_use]
pub fn run(cfg: &ExpConfig) -> Vec<Table> {
    let seq = cfg.seq(0xE01);
    let mut exact = Table::new(
        "E01a · exact expansion on the directed normalized U-RT clique (practical constants)",
        &[
            "n",
            "trials",
            "d",
            "success",
            "mean |Γ1|",
            "mean |Γ_{d+1}|",
            "√n",
            "arrival bound",
            "3·ln n",
        ],
    );
    let sizes: &[usize] = if cfg.quick {
        &[128, 256]
    } else {
        &[128, 256, 512, 1024, 2048]
    };
    for (si, &n) in sizes.iter().enumerate() {
        let trials = cfg.scale(if n >= 2048 { 15 } else { 40 }, 5);
        let params = ExpansionParams::practical(n);
        let mut rng = seq.rng(si as u64);
        let base = sample_normalized_urt_clique(n, true, &mut rng);
        let mut successes = 0usize;
        let mut g1_sum = 0.0;
        let mut gd_sum = 0.0;
        let mut bound = 0;
        for _ in 0..trials {
            let tn = resample_single(&base, &mut rng);
            let out = expansion_process(&tn, 0, 1, &params);
            successes += usize::from(out.success);
            g1_sum += out.forward_levels[0] as f64;
            gd_sum += *out.forward_levels.last().unwrap() as f64;
            bound = out.arrival_bound;
        }
        exact.row(vec![
            n.to_string(),
            trials.to_string(),
            params.d.to_string(),
            format!("{successes}/{trials}"),
            f(g1_sum / trials as f64, 1),
            f(gd_sum / trials as f64, 1),
            f((n as f64).sqrt(), 1),
            bound.to_string(),
            f(3.0 * (n as f64).ln(), 1),
        ]);
    }
    exact.note(
        "success = matching arc found in ∆*; bound = 3·c1·ln n + 2·d·c2 (Thm 3 arrival guarantee).",
    );

    let mut oracle = Table::new(
        "E01b · delayed-revelation oracle at large n (paper constants c1=33, c1·c2=1024)",
        &[
            "n",
            "trials",
            "d",
            "success",
            "mean |Γ1|",
            "c1·ln n",
            "mean |Γ_{d+1}|",
            "√n",
        ],
    );
    let big_sizes: &[u64] = if cfg.quick {
        &[100_000]
    } else {
        &[100_000, 1_000_000, 10_000_000]
    };
    for (si, &n) in big_sizes.iter().enumerate() {
        let trials = cfg.scale(200, 20);
        let params = ExpansionParams::paper(n as usize);
        let mut rng = seq.rng(1000 + si as u64);
        let mut successes = 0usize;
        let mut g1_sum = 0.0;
        let mut gd_sum = 0.0;
        for _ in 0..trials {
            let out = expansion_oracle(n, n as u32, &params, &mut rng);
            successes += usize::from(out.success);
            g1_sum += out.forward_levels[0] as f64;
            gd_sum += *out.forward_levels.last().unwrap() as f64;
        }
        oracle.row(vec![
            n.to_string(),
            trials.to_string(),
            params.d.to_string(),
            format!("{successes}/{trials}"),
            f(g1_sum / trials as f64, 1),
            f(33.0 * (n as f64).ln(), 1),
            f(gd_sum / trials as f64, 1),
            f((n as f64).sqrt(), 1),
        ]);
    }
    oracle
        .note("Theorem 3 predicts success with probability ≥ 1 − 3/n³ under the paper constants.");

    vec![exact, oracle]
}
