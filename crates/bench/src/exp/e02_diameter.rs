//! E02 — the temporal diameter of the normalized U-RT clique
//! (Theorems 3–4): `TD = Θ(log n)` w.h.p. and in expectation.
//!
//! Shape to reproduce: `TD/ln n` flat (a constant γ), `R²` of the
//! `TD ≈ a + γ·log₂ n` fit near 1, zero infinite instances.

use crate::table::{f, Table};
use crate::ExpConfig;
use ephemeral_core::diameter::clique_td_montecarlo;
use ephemeral_parallel::stats::fit_log2;

/// Run E02.
#[must_use]
pub fn run(cfg: &ExpConfig) -> Vec<Table> {
    let mut t = Table::new(
        "E02 · temporal diameter TD of the directed normalized U-RT clique",
        &[
            "n",
            "trials",
            "mean TD",
            "sd",
            "min",
            "max",
            "TD/ln n",
            "TD/log2 n",
            "infinite",
        ],
    );
    let sizes: &[usize] = if cfg.quick {
        &[64, 128, 256]
    } else {
        &[64, 128, 256, 512, 1024, 2048]
    };
    let mut ns = Vec::new();
    let mut means = Vec::new();
    for &n in sizes {
        let trials = cfg.scale(
            match n {
                0..=256 => 60,
                257..=1024 => 30,
                _ => 12,
            },
            5,
        );
        let est = clique_td_montecarlo(n, true, trials, cfg.seed ^ 0xE02 ^ (n as u64) << 20);
        ns.push(n);
        means.push(est.finite.mean);
        t.row(vec![
            n.to_string(),
            trials.to_string(),
            f(est.finite.mean, 2),
            f(est.finite.sd, 2),
            f(est.finite.min, 0),
            f(est.finite.max, 0),
            f(est.gamma_ln, 3),
            f(est.gamma_log2, 3),
            est.infinite_instances.to_string(),
        ]);
    }
    let fit = fit_log2(&ns, &means);
    t.note(format!(
        "fit TD ≈ {:.2} + {:.3}·log2 n with R² = {:.4} — Theorem 4 predicts a clean γ·log n law (infinite must be 0: the clique always has the direct arc).",
        fit.intercept, fit.slope, fit.r2
    ));
    vec![t]
}
