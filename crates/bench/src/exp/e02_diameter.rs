//! E02 — the temporal diameter of the normalized U-RT clique
//! (Theorems 3–4): `TD = Θ(log n)` w.h.p. and in expectation.
//!
//! Shape to reproduce: `TD/ln n` flat (a constant γ), `R²` of the
//! `TD ≈ a + γ·log₂ n` fit near 1, zero infinite instances.
//!
//! Trials are allocated adaptively: each size runs batches until the 95%
//! CI half-width of the mean TD reaches the target (or the per-size cap —
//! tight where instances are cheap, generous where they are ~100 MB).

use crate::table::{f, Table};
use crate::ExpConfig;
use ephemeral_core::diameter::clique_td_adaptive;
use ephemeral_parallel::stats::fit_log2;

/// Run E02.
#[must_use]
pub fn run(cfg: &ExpConfig) -> Vec<Table> {
    let mut t = Table::new(
        "E02 · temporal diameter TD of the directed normalized U-RT clique (adaptive trials, target CI ±0.25)",
        &[
            "n",
            "trials",
            "mean TD",
            "±95%",
            "sd",
            "TD/ln n",
            "TD/log2 n",
            "infinite",
        ],
    );
    let sizes: &[usize] = if cfg.quick {
        &[64, 128, 256]
    } else {
        &[64, 128, 256, 512, 1024, 2048]
    };
    let seq = cfg.seq(0xE02);
    let mut ns = Vec::new();
    let mut means = Vec::new();
    for &n in sizes {
        // The CI target is uniform; the cap scales down with instance cost
        // so the big sizes stay affordable even if noisy.
        let cap = match n {
            0..=256 => 1200,
            257..=1024 => 300,
            _ => 60,
        };
        let acfg = cfg.adaptive(0.25, cap);
        let est = clique_td_adaptive(n, true, &acfg, seq.derive(n as u64));
        ns.push(n);
        means.push(est.finite.mean());
        t.row(vec![
            n.to_string(),
            est.trials.to_string(),
            f(est.finite.mean(), 2),
            f(est.half_width, 2),
            f(est.finite.sd(), 2),
            f(est.gamma_ln, 3),
            f(est.gamma_log2, 3),
            est.infinite_instances.to_string(),
        ]);
    }
    let fit = fit_log2(&ns, &means);
    t.note(format!(
        "fit TD ≈ {:.2} + {:.3}·log2 n with R² = {:.4} — Theorem 4 predicts a clean γ·log n law (infinite must be 0: the clique always has the direct arc).",
        fit.intercept, fit.slope, fit.r2
    ));
    vec![t]
}
