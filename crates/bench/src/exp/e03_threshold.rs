//! E03 — the Erdős–Rényi connectivity threshold (§3.4 remark, §3.6).
//!
//! Both lower bounds in the paper reduce to: the arcs labelled `≤ k` of a
//! U-RT clique form `G(n, k/a)`, and `G(n,p)` is disconnected w.h.p. while
//! `p < ln n/n`. Shape to reproduce: a sharp S-curve in `c` where
//! `p = c·ln n/n`, crossing near `c = 1`, steeper as `n` grows.

use crate::table::{f, Table};
use crate::ExpConfig;
use ephemeral_core::lifetime::gnp_connectivity_probability;
use ephemeral_core::urtn::sample_normalized_urt_clique;
use ephemeral_rng::SeedSequence;
use ephemeral_temporal::foremost::foremost_with_horizon;

/// Run E03.
#[must_use]
pub fn run(cfg: &ExpConfig) -> Vec<Table> {
    let mut t = Table::new(
        "E03a · P[G(n,p) connected] around p = c·ln n/n",
        &[
            "n", "c=0.50", "c=0.75", "c=1.00", "c=1.25", "c=1.50", "c=2.00",
        ],
    );
    let sizes: &[usize] = if cfg.quick {
        &[256]
    } else {
        &[256, 1024, 4096]
    };
    let cs = [0.5, 0.75, 1.0, 1.25, 1.5, 2.0];
    for &n in sizes {
        let trials = cfg.scale(60, 10);
        let mut cells = vec![n.to_string()];
        for &c in &cs {
            let p = c * (n as f64).ln() / n as f64;
            let prob = gnp_connectivity_probability(n, p, trials, cfg.seed ^ 0xE03, cfg.threads);
            cells.push(f(prob.estimate, 3));
        }
        t.row(cells);
    }
    t.note("the crossover sharpens around c = 1 as n grows — the classical threshold the paper's lower bounds lean on.");

    // Direct form of the Theorem-5 mechanics on the temporal object itself:
    // truncate a U-RT clique's labels at horizon k = c·ln n and measure
    // source-side temporal reach.
    let mut h = Table::new(
        "E03b · U-RT clique truncated at horizon k = c·ln n: fraction of vertices reached from a source",
        &["n", "c=0.50", "c=1.00", "c=2.00", "c=4.00"],
    );
    let n = if cfg.quick { 256 } else { 1024 };
    let trials = cfg.scale(30, 5);
    let seq = SeedSequence::new(cfg.seed ^ 0xE03B);
    let mut cells = vec![n.to_string()];
    for &c in &[0.5, 1.0, 2.0, 4.0] {
        let k = (c * (n as f64).ln()).ceil() as u32;
        let mut frac = 0.0;
        for trial in 0..trials {
            let mut rng = seq.rng(trial as u64);
            let tn = sample_normalized_urt_clique(n, true, &mut rng);
            let run = foremost_with_horizon(&tn, 0, 0, k);
            frac += run.reached_count() as f64 / n as f64;
        }
        cells.push(f(frac / trials as f64, 3));
    }
    h.row(cells);
    h.note("below the threshold only a vanishing fraction is temporally reachable within k steps — the diameter cannot be o(log n) (§3.4 remark).");

    vec![t, h]
}
