//! E03 — the Erdős–Rényi connectivity threshold (§3.4 remark, §3.6).
//!
//! Both lower bounds in the paper reduce to: the arcs labelled `≤ k` of a
//! U-RT clique form `G(n, k/a)`, and `G(n,p)` is disconnected w.h.p. while
//! `p < ln n/n`. Shape to reproduce: a sharp S-curve in `c` where
//! `p = c·ln n/n`, crossing near `c = 1`, steeper as `n` grows.

use crate::table::{f, Table};
use crate::ExpConfig;
use ephemeral_core::lifetime::gnp_connectivity_probability_adaptive;
use ephemeral_core::urtn::sample_normalized_urt_clique;
use ephemeral_temporal::foremost::foremost_with_horizon;

/// Run E03.
#[must_use]
pub fn run(cfg: &ExpConfig) -> Vec<Table> {
    let mut t = Table::new(
        "E03a · P[G(n,p) connected] around p = c·ln n/n (adaptive trials per cell)",
        &[
            "n", "c=0.50", "c=0.75", "c=1.00", "c=1.25", "c=1.50", "c=2.00", "trials",
        ],
    );
    let sizes: &[usize] = if cfg.quick {
        &[256]
    } else {
        &[256, 1024, 4096]
    };
    let cs = [0.5, 0.75, 1.0, 1.25, 1.5, 2.0];
    let seq = cfg.seq(0xE03);
    // One seed stream per (n, c) cell; the Wilson half-width decides how
    // many trials each cell actually pays for — pennies at the saturated
    // ends of the S-curve, the full budget only near the c = 1 crossover.
    let acfg = cfg.adaptive(0.05, 400);
    for (ni, &n) in sizes.iter().enumerate() {
        let mut cells = vec![n.to_string()];
        let mut spent = 0usize;
        for (ci, &c) in cs.iter().enumerate() {
            let p = c * (n as f64).ln() / n as f64;
            let prob = gnp_connectivity_probability_adaptive(
                n,
                p,
                &acfg,
                seq.derive((ni * cs.len() + ci) as u64),
                cfg.threads,
            );
            spent += prob.proportion.trials;
            cells.push(f(prob.proportion.estimate, 3));
        }
        cells.push(spent.to_string());
        t.row(cells);
    }
    t.note("the crossover sharpens around c = 1 as n grows — the classical threshold the paper's lower bounds lean on. The trials column totals a row's adaptive spend: the flat ends of the curve converge in a couple of batches.");

    // Direct form of the Theorem-5 mechanics on the temporal object itself:
    // truncate a U-RT clique's labels at horizon k = c·ln n and measure
    // source-side temporal reach.
    let mut h = Table::new(
        "E03b · U-RT clique truncated at horizon k = c·ln n: fraction of vertices reached from a source",
        &["n", "c=0.50", "c=1.00", "c=2.00", "c=4.00"],
    );
    let n = if cfg.quick { 256 } else { 1024 };
    let trials = cfg.scale(30, 5);
    let seq = cfg.seq(0xE03B);
    let mut cells = vec![n.to_string()];
    for &c in &[0.5, 1.0, 2.0, 4.0] {
        let k = (c * (n as f64).ln()).ceil() as u32;
        let mut frac = 0.0;
        for trial in 0..trials {
            let mut rng = seq.rng(trial as u64);
            let tn = sample_normalized_urt_clique(n, true, &mut rng);
            let run = foremost_with_horizon(&tn, 0, 0, k);
            frac += run.reached_count() as f64 / n as f64;
        }
        cells.push(f(frac / trials as f64, 3));
    }
    h.row(cells);
    h.note("below the threshold only a vanishing fraction is temporally reachable within k steps — the diameter cannot be o(log n) (§3.4 remark).");

    vec![t, h]
}
