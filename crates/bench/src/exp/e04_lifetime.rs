//! E04 — temporal diameter vs lifetime (Theorem 5).
//!
//! With one uniform label per arc from `{1, …, a}`, `a ≫ n` forces
//! `TD = Ω((a/n)·ln n)`. Shape to reproduce: `TD` grows linearly in the
//! ratio `a/n`, and the measured `TD / ((a/n)·ln n)` ratio stays bounded
//! (≥ some constant) rather than decaying.

use crate::table::{f, Table};
use crate::ExpConfig;
use ephemeral_core::bounds::lifetime_bound;
use ephemeral_core::diameter::clique_td_with_lifetime_adaptive;

/// Run E04.
#[must_use]
pub fn run(cfg: &ExpConfig) -> Vec<Table> {
    let mut t = Table::new(
        "E04 · TD of the U-RT clique as the lifetime a grows (directed, one label/arc; adaptive trials)",
        &[
            "n",
            "a/n",
            "a",
            "trials",
            "mean TD",
            "±95%",
            "sd",
            "(a/n)·ln n",
            "TD / bound",
        ],
    );
    let sizes: &[usize] = if cfg.quick { &[128] } else { &[128, 256, 512] };
    let ratios: &[u32] = if cfg.quick {
        &[1, 4, 16]
    } else {
        &[1, 2, 4, 8, 16]
    };
    let seq = cfg.seq(0xE04);
    for &n in sizes {
        for &ratio in ratios {
            let a = (n as u32) * ratio;
            // TD (and its sd) scale with a/n, so the precision target does
            // too: a fixed absolute width would starve small-`a` rows and
            // overspend on large ones.
            let target = 0.05 * lifetime_bound(n, u64::from(a)).max(4.0);
            let acfg = cfg.adaptive(target, if n >= 512 { 80 } else { 250 });
            let est = clique_td_with_lifetime_adaptive(
                n,
                true,
                a,
                &acfg,
                seq.derive((n as u64) << 8 | u64::from(ratio)),
            );
            let bound = lifetime_bound(n, u64::from(a));
            t.row(vec![
                n.to_string(),
                ratio.to_string(),
                a.to_string(),
                est.trials.to_string(),
                f(est.finite.mean(), 1),
                f(est.half_width, 1),
                f(est.finite.sd(), 1),
                f(bound, 1),
                f(est.finite.mean() / bound, 2),
            ]);
        }
    }
    t.note("Theorem 5: TD must be Ω((a/n)·log n) — the last column should stay bounded away from 0 as a/n grows (static phone-call-style models cannot capture this). Trials are CI-driven at ±5% of the bound.");
    vec![t]
}
