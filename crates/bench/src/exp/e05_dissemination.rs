//! E05 — the §3.5 dissemination protocol.
//!
//! Shape to reproduce: broadcast time `O(log n)` (tracking `ln n` within a
//! small constant), message count a constant fraction of all `n(n−1)`
//! arcs (`Θ(n²)` — the price of having no algorithmic randomness).

use crate::table::{f, Table};
use crate::ExpConfig;
use ephemeral_core::dissemination::{flood_montecarlo, flood_oracle_clique};
use ephemeral_graph::generators;
use ephemeral_parallel::stats::Summary;

/// Run E05.
#[must_use]
pub fn run(cfg: &ExpConfig) -> Vec<Table> {
    let seq = cfg.seq(0xE05);
    let mut exact = Table::new(
        "E05a · flooding a message through the U-RT clique (exact instances)",
        &[
            "n",
            "trials",
            "mean time",
            "sd",
            "ln n",
            "time/ln n",
            "mean messages",
            "n(n-1)",
            "msg fraction",
        ],
    );
    let sizes: &[usize] = if cfg.quick {
        &[256]
    } else {
        &[256, 512, 1024, 2048]
    };
    for (si, &n) in sizes.iter().enumerate() {
        let trials = cfg.scale(if n >= 2048 { 10 } else { 30 }, 4);
        // Per-worker scratch reuse + parallel trials via flood_montecarlo.
        let g = generators::clique(n, true);
        let est = flood_montecarlo(&g, n as u32, 0, trials, seq.derive(si as u64), cfg.threads);
        assert_eq!(est.incomplete, 0, "clique floods fully");
        let s = est.broadcast_times;
        let arcs = (n * (n - 1)) as f64;
        exact.row(vec![
            n.to_string(),
            trials.to_string(),
            f(s.mean, 2),
            f(s.sd, 2),
            f((n as f64).ln(), 2),
            f(s.mean / (n as f64).ln(), 2),
            f(est.mean_messages, 0),
            f(arcs, 0),
            f(est.mean_messages / arcs, 3),
        ]);
    }
    exact.note("time/ln n should be a flat constant (Thm 4 + §3.5); msg fraction stays Θ(1) — blind flooding uses Θ(n²) messages.");

    let mut oracle = Table::new(
        "E05b · oracle flooding at web scale",
        &[
            "n",
            "trials",
            "mean time",
            "ln n",
            "time/ln n",
            "E[messages]",
        ],
    );
    let big: &[u64] = if cfg.quick {
        &[100_000]
    } else {
        &[10_000, 100_000, 1_000_000, 10_000_000]
    };
    for (si, &n) in big.iter().enumerate() {
        let trials = cfg.scale(40, 8);
        let mut rng = seq.rng(500 + si as u64);
        let mut times = Vec::with_capacity(trials);
        let mut msgs = 0.0;
        for _ in 0..trials {
            let out = flood_oracle_clique(n, n as u32, &mut rng);
            times.push(f64::from(out.broadcast_time.expect("oracle floods fully")));
            msgs += out.expected_messages;
        }
        let s = Summary::from_samples(&times);
        oracle.row(vec![
            n.to_string(),
            trials.to_string(),
            f(s.mean, 2),
            f((n as f64).ln(), 2),
            f(s.mean / (n as f64).ln(), 2),
            format!("{:.3e}", msgs / trials as f64),
        ]);
    }
    oracle.note("the time/ln n constant persists across four orders of magnitude.");

    vec![exact, oracle]
}
