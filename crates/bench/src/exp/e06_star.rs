//! E06 — the star's reachability threshold (Fig. 2, Theorem 6(a)).
//!
//! Shape to reproduce: `P[T_reach]` rises from ≈0 to ≈1 as `r` passes
//! `Θ(log n)`; the minimal `r*` divided by `log₂ n` stabilises.

use crate::table::{f, Table};
use crate::ExpConfig;
use ephemeral_core::star::{
    minimal_r_star, star_failure_upper_bound, star_treach_probability, two_split_probability,
};

/// Run E06.
#[must_use]
pub fn run(cfg: &ExpConfig) -> Vec<Table> {
    let n = if cfg.quick { 256 } else { 1024 };
    let trials = cfg.scale(500, 60);
    let mut sweep = Table::new(
        format!(
            "E06a · star K_{{1,{}}}: P[T_reach] vs labels-per-edge r (lifetime = n = {n})",
            n - 1
        ),
        &[
            "r",
            "P[T_reach]",
            "wilson 95% lo",
            "hi",
            "paper lower bound",
            "2-split per pair",
        ],
    );
    let rs: &[usize] = if cfg.quick {
        &[2, 6, 10, 14, 18, 26]
    } else {
        &[2, 4, 6, 8, 10, 12, 14, 16, 20, 24, 28, 32, 40]
    };
    for &r in rs {
        let p = star_treach_probability(n, r, trials, cfg.seq(0xE06).derive(r as u64), cfg.threads);
        sweep.row(vec![
            r.to_string(),
            f(p.estimate, 4),
            f(p.lo, 4),
            f(p.hi, 4),
            f(1.0 - star_failure_upper_bound(n, r), 4),
            f(two_split_probability(r), 4),
        ]);
    }
    sweep.note("Theorem 6(a): r = ρ·log n labels (ρ > 8) strongly guarantee T_reach; the measured curve crosses far earlier — the paper's constants are loose, the Θ(log n) shape is what matters.");

    let mut scaling = Table::new(
        "E06b · minimal r* with P[T_reach] ≥ 1 − 1/n, vs n",
        &["n", "r*", "log2 n", "r*/log2 n"],
    );
    let exps: &[u32] = if cfg.quick {
        &[6, 8]
    } else {
        &[6, 7, 8, 9, 10, 11, 12]
    };
    for &e in exps {
        let n = 1usize << e;
        let target = 1.0 - 1.0 / n as f64;
        let r = minimal_r_star(
            n,
            target,
            cfg.scale(500, 80),
            cfg.seq(0xE06B).derive(u64::from(e)),
            cfg.threads,
        );
        scaling.row(vec![
            n.to_string(),
            r.to_string(),
            f(f64::from(e), 0),
            f(r as f64 / f64::from(e), 2),
        ]);
    }
    scaling.note("the ratio column flattening is the Θ(log n) law of Theorem 6.");

    vec![sweep, scaling]
}
