//! E07 — the star's lower bound (Theorem 6(b)).
//!
//! With `k = log n / β(n)` labels per edge, `β(n) → ∞`, some leaf pair has
//! no journey w.h.p. Shape to reproduce: for fixed `β`-family, the success
//! probability *decreases* with `n` — a sublogarithmic budget cannot keep
//! up — while `r = Θ(log n)` (E06) keeps it near 1.

use crate::table::{f, Table};
use crate::ExpConfig;
use ephemeral_core::star::star_treach_probability;

/// Run E07.
#[must_use]
pub fn run(cfg: &ExpConfig) -> Vec<Table> {
    let mut t = Table::new(
        "E07 · star with sublogarithmic budgets r = log2(n)/β(n): P[T_reach] must fall with n",
        &[
            "n",
            "log2 n",
            "r (β=√log n)",
            "P",
            "r (β=log log n)",
            "P",
            "r = log2 n (control)",
            "P",
        ],
    );
    let exps: &[u32] = if cfg.quick {
        &[8, 10]
    } else {
        &[8, 10, 12, 14, 16]
    };
    let trials = cfg.scale(400, 60);
    for &e in exps {
        let n = 1usize << e;
        let log2n = f64::from(e);
        let r_sqrt = ((log2n / log2n.sqrt()).floor() as usize).max(1);
        let r_loglog = ((log2n / log2n.ln().max(1.0)).floor() as usize).max(1);
        let r_full = e as usize;
        let seq = cfg.seq(0xE07).child(u64::from(e));
        let p_sqrt = star_treach_probability(n, r_sqrt, trials, seq.derive(0), cfg.threads);
        let p_loglog = star_treach_probability(n, r_loglog, trials, seq.derive(1), cfg.threads);
        let p_full = star_treach_probability(n, r_full, trials, seq.derive(2), cfg.threads);
        t.row(vec![
            n.to_string(),
            f(log2n, 0),
            r_sqrt.to_string(),
            f(p_sqrt.estimate, 3),
            r_loglog.to_string(),
            f(p_loglog.estimate, 3),
            r_full.to_string(),
            f(p_full.estimate, 3),
        ]);
    }
    t.note("Theorem 6(b): any r = log n/β(n) with β → ∞ fails w.h.p.; the two sublogarithmic columns decay with n while the Θ(log n) control column holds steady or rises.");
    vec![t]
}
