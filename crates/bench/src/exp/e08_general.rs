//! E08 — general graphs: measured minimal `r*` vs Theorem 7's sufficient
//! budget `2·d(G)·ln n` (Fig. 3's box structure).
//!
//! Shape to reproduce: `r*` never exceeds the budget; `r*` grows with the
//! diameter across families; for the path family `r*` tracks `d·log n`
//! growth.

use crate::table::{f, Table};
use crate::ExpConfig;
use ephemeral_core::por::theorem7_r;
use ephemeral_core::reachability_whp::{minimal_r_adaptive, whp_target};
use ephemeral_graph::algo::diameter;
use ephemeral_graph::{generators, Graph};
use ephemeral_rng::SeedSequence;

fn families(n_side: usize, quick: bool, seed: u64) -> Vec<(String, Graph)> {
    let n = n_side * n_side; // 64 by default
    let seq = SeedSequence::new(seed);
    let mut rng = seq.rng(0);
    let mut out = vec![
        ("star".to_owned(), generators::star(n)),
        ("cycle".to_owned(), generators::cycle(n)),
        (
            format!("grid {n_side}x{n_side}"),
            generators::grid(n_side, n_side),
        ),
        ("binary tree".to_owned(), generators::binary_tree(n - 1)),
        (
            "hypercube".to_owned(),
            generators::hypercube((n as f64).log2() as u32),
        ),
    ];
    if !quick {
        out.push(("path".to_owned(), generators::path(n)));
        // A connected G(n,p) sample just above the threshold.
        let p = 2.5 * (n as f64).ln() / n as f64;
        loop {
            let g = generators::gnp(n, p, false, &mut rng);
            if ephemeral_graph::algo::is_connected(&g) {
                out.push(("G(n, 2.5 ln n/n)".to_string(), g));
                break;
            }
        }
    }
    out
}

/// Run E08.
#[must_use]
pub fn run(cfg: &ExpConfig) -> Vec<Table> {
    let mut t = Table::new(
        "E08a · minimal r* for T_reach w.h.p. vs Theorem 7 budget 2·d·ln n (n = 64; adaptive probes)",
        &[
            "family",
            "n",
            "m",
            "d(G)",
            "r*",
            "P at r*",
            "probe trials",
            "2·d·ln n",
            "r*/budget",
        ],
    );
    let seq = cfg.seq(0xE08);
    // Each probed r runs only as many trials as its Wilson interval needs:
    // probes far from the threshold (p̂ ≈ 0 or 1 — most of the doubling +
    // binary search) stop after a couple of batches, probes at the
    // threshold spend the cap.
    let acfg = cfg.adaptive(0.04, 300);
    for (fi, (name, g)) in families(8, cfg.quick, seq.derive(0))
        .into_iter()
        .enumerate()
    {
        let n = g.num_nodes();
        let d = diameter(&g).expect("families are connected");
        let res = minimal_r_adaptive(
            &g,
            n as u32,
            whp_target(n),
            &acfg,
            seq.derive(1 + fi as u64),
            cfg.threads,
        );
        let budget = theorem7_r(n, d);
        t.row(vec![
            name,
            n.to_string(),
            g.num_edges().to_string(),
            d.to_string(),
            res.r.to_string(),
            f(res.probability.estimate, 3),
            res.probability.trials.to_string(),
            f(budget, 1),
            f(res.r as f64 / budget, 3),
        ]);
    }
    t.note("Theorem 7: r > 2·d·ln n always suffices — the ratio column must stay < 1 (typically ≪ 1: the theorem's union bound is loose). 'probe trials' is the adaptive spend at the accepted r*.");

    let mut scaling = Table::new(
        "E08b · path P_n: r* growth against the d·log n budget",
        &["n", "d", "r*", "2·d·ln n", "r*/budget"],
    );
    let sizes: &[usize] = if cfg.quick {
        &[16, 32]
    } else {
        &[16, 32, 64, 128]
    };
    let seq_b = cfg.seq(0xE08B);
    for &n in sizes {
        let g = generators::path(n);
        let d = diameter(&g).unwrap();
        let res = minimal_r_adaptive(
            &g,
            n as u32,
            whp_target(n),
            &acfg,
            seq_b.derive(n as u64),
            cfg.threads,
        );
        let budget = theorem7_r(n, d);
        scaling.row(vec![
            n.to_string(),
            d.to_string(),
            res.r.to_string(),
            f(budget, 1),
            f(res.r as f64 / budget, 3),
        ]);
    }
    scaling.note("the path's diameter is n−1, so the budget is Θ(n·log n) labels per edge — and indeed r* grows superlogarithmically here, unlike on small-diameter families.");

    vec![t, scaling]
}
