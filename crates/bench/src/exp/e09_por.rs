//! E09 — the Price of Randomness (Definition 8, Theorems 6 & 8).
//!
//! Shape to reproduce: the star's PoR = r*/2 grows like `log n`
//! (Theorem 6); every family's measured bracket sits under Theorem 8's
//! `(2·d·ln n)·m/(n−1)` ceiling.

use crate::table::{f, Table};
use crate::ExpConfig;
use ephemeral_core::por::por_report;
use ephemeral_core::star::minimal_r_star;
use ephemeral_graph::generators;

/// Run E09.
#[must_use]
pub fn run(cfg: &ExpConfig) -> Vec<Table> {
    let mut t = Table::new(
        "E09a · Price of Randomness bracket per family (PoR = m·r*/OPT)",
        &[
            "family",
            "n",
            "m",
            "d",
            "r*",
            "OPT upper (scheme)",
            "PoR in [lo, hi]",
            "Thm 8 bound",
        ],
    );
    let trials = cfg.scale(60, 12);
    let fams: Vec<(&str, ephemeral_graph::Graph)> = vec![
        ("star", generators::star(64)),
        ("wheel", generators::wheel(64)),
        ("cycle", generators::cycle(64)),
        ("grid 8x8", generators::grid(8, 8)),
        ("binary tree", generators::binary_tree(63)),
        ("hypercube Q6", generators::hypercube(6)),
        ("clique", generators::clique(32, false)),
    ];
    for (fi, (name, g)) in fams.into_iter().enumerate() {
        let Some(rep) = por_report(
            &g,
            name,
            trials,
            cfg.seq(0xE09).derive(fi as u64),
            cfg.threads,
        ) else {
            continue;
        };
        t.row(vec![
            rep.name.clone(),
            rep.n.to_string(),
            rep.m.to_string(),
            rep.diameter.to_string(),
            rep.r.to_string(),
            format!("{} ({})", rep.opt_upper, rep.opt_scheme),
            format!("[{:.1}, {:.1}]", rep.por_lower, rep.por_upper),
            f(rep.theorem8, 1),
        ]);
    }
    t.note("OPT is NP-hard in general; the bracket divides m·r* by the best certified scheme (lo) and by the universal n−1 lower bound (hi). For the star OPT = 2m is exact, so lo is the true PoR.");

    let mut star = Table::new(
        "E09b · the star's PoR = r*/2 is Θ(log n) (Theorem 6)",
        &["n", "r*", "PoR = r*/2", "log2 n", "PoR/log2 n"],
    );
    let exps: &[u32] = if cfg.quick { &[6, 8] } else { &[6, 8, 10, 12] };
    for &e in exps {
        let n = 1usize << e;
        let r = minimal_r_star(
            n,
            1.0 - 1.0 / n as f64,
            cfg.scale(400, 60),
            cfg.seq(0xE09B).derive(u64::from(e)),
            cfg.threads,
        );
        let por = r as f64 / 2.0;
        star.row(vec![
            n.to_string(),
            r.to_string(),
            f(por, 1),
            f(f64::from(e), 0),
            f(por / f64::from(e), 3),
        ]);
    }
    star.note("PoR(star) = m·r*/(2m) = r*/2; the flat last column is Theorem 6's Θ(log n).");

    vec![t, star]
}
