//! E10 — random temporal networks vs the random phone-call model (§1.1).
//!
//! Shape to reproduce: all three spread in `Θ(log n)` rounds (push close to
//! Frieze–Grimmett `log₂ n + ln n`); message complexity separates the
//! models — flooding `Θ(n²)`, push `Θ(n log n)`, push–pull fewer
//! transmissions than push.

use crate::table::{f, Table};
use crate::ExpConfig;
use ephemeral_core::bounds;
use ephemeral_core::dissemination::{flood, flood_oracle_clique};
use ephemeral_core::urtn::{resample_single, sample_normalized_urt_clique};
use ephemeral_phonecall::{push_broadcast, push_pull_broadcast};

/// Run E10.
#[must_use]
pub fn run(cfg: &ExpConfig) -> Vec<Table> {
    let seq = cfg.seq(0xE10);
    let mut rounds = Table::new(
        "E10a · broadcast time: temporal flood vs push vs push–pull (complete graph)",
        &[
            "n",
            "flood time",
            "push rounds",
            "push-pull rounds",
            "log2n+ln n (FG)",
            "flood/ln n",
        ],
    );
    let mut msgs = Table::new(
        "E10b · message complexity: the separation the paper highlights",
        &[
            "n",
            "flood msgs",
            "n(n-1)",
            "push msgs",
            "n·ln n",
            "push-pull transmissions",
            "n·lnln n",
        ],
    );
    let sizes: &[usize] = if cfg.quick {
        &[256, 1024]
    } else {
        &[256, 512, 1024, 2048]
    };
    let trials = cfg.scale(15, 4);
    for (si, &n) in sizes.iter().enumerate() {
        let mut rng = seq.rng(si as u64);
        let base = sample_normalized_urt_clique(n, true, &mut rng);
        let mut flood_t = 0.0;
        let mut flood_m = 0.0;
        let mut push_r = 0.0;
        let mut push_m = 0.0;
        let mut pp_r = 0.0;
        let mut pp_m = 0.0;
        for _ in 0..trials {
            let tn = resample_single(&base, &mut rng);
            let fo = flood(&tn, 0);
            flood_t += f64::from(fo.broadcast_time.expect("clique floods fully"));
            flood_m += fo.messages as f64;
            let po = push_broadcast(n, 0, 100_000, &mut rng);
            push_r += f64::from(po.rounds);
            push_m += po.messages as f64;
            let ppo = push_pull_broadcast(n, 0, 100_000, &mut rng);
            pp_r += f64::from(ppo.rounds);
            pp_m += ppo.transmissions as f64;
        }
        let tf = trials as f64;
        rounds.row(vec![
            n.to_string(),
            f(flood_t / tf, 1),
            f(push_r / tf, 1),
            f(pp_r / tf, 1),
            f(bounds::frieze_grimmett(n), 1),
            f(flood_t / tf / (n as f64).ln(), 2),
        ]);
        msgs.row(vec![
            n.to_string(),
            f(flood_m / tf, 0),
            f((n * (n - 1)) as f64, 0),
            f(push_m / tf, 0),
            f(bounds::push_message_scale(n), 0),
            f(pp_m / tf, 0),
            f(bounds::karp_transmissions(n), 0),
        ]);
    }
    rounds.note("all three are Θ(log n) in time; the temporal model achieves it with randomness frozen in the input (no algorithmic choices).");
    msgs.note("flooding pays Θ(n²) messages; push pays Θ(n log n); push–pull's transmissions undercut push (Karp et al. reach O(n·log log n) with their termination rule).");

    // Huge-n comparison using the oracle flood vs FG curve.
    let mut oracle = Table::new(
        "E10c · temporal flood time keeps tracking ln n at web scale (oracle)",
        &["n", "flood time (mean)", "ln n", "FG push curve"],
    );
    let big: &[u64] = if cfg.quick {
        &[1_000_000]
    } else {
        &[100_000, 1_000_000, 10_000_000]
    };
    for (si, &n) in big.iter().enumerate() {
        let mut rng = seq.rng(900 + si as u64);
        let t = cfg.scale(30, 6);
        let mut sum = 0.0;
        for _ in 0..t {
            sum += f64::from(
                flood_oracle_clique(n, n as u32, &mut rng)
                    .broadcast_time
                    .expect("completes"),
            );
        }
        oracle.row(vec![
            n.to_string(),
            f(sum / t as f64, 1),
            f((n as f64).ln(), 1),
            f(bounds::frieze_grimmett(n as usize), 1),
        ]);
    }

    vec![rounds, msgs, oracle]
}
