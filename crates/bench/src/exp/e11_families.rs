//! E11 — temporal diameter and connectivity **across graph families**: the
//! generalization the scenario engine exists for.
//!
//! The paper's Θ(log n) temporal-diameter picture is proved for the clique
//! (where a single uniform label per arc always preserves reachability).
//! Follow-up work asks what survives on sparse random availability and
//! structured substrates. Shape to reproduce: under UNI-CASE (one label per
//! edge) **only** the dense families stay temporally connected — every
//! sparse substrate's instance diameter is almost surely infinite and
//! `P[T_reach] ≈ 0`; granting `r = ⌈2·ln n⌉` labels per edge rescues every
//! family, with the finite TD now tracking the substrate's static diameter
//! rather than `log n` alone.

use crate::table::{f, Table};
use crate::ExpConfig;
use ephemeral_core::scenario::{GraphFamily, LabelModelSpec, LifetimeRule, Metric, Scenario};

/// Run E11.
#[must_use]
pub fn run(cfg: &ExpConfig) -> Vec<Table> {
    let n = if cfg.quick { 64 } else { 144 };
    let seq = cfg.seq(0xE11);
    let acfg = cfg.adaptive(0.3, 800);
    let families = GraphFamily::catalog();
    let r_log = (2.0 * (n as f64).ln()).ceil() as usize;

    let mut single = Table::new(
        format!("E11a · one uniform label per edge (UNI-CASE), n ≈ {n}: the clique-only picture"),
        &[
            "family",
            "nodes",
            "edges",
            "P[T_reach]",
            "±",
            "TD (finite)",
            "inf. frac",
            "trials",
        ],
    );
    let mut multi = Table::new(
        format!("E11b · r = ⌈2·ln n⌉ = {r_log} labels per edge, n ≈ {n}: every family rescued"),
        &[
            "family",
            "nodes",
            "P[T_reach]",
            "±",
            "TD (finite)",
            "±",
            "inf. frac",
            "TD/ln n",
            "trials",
        ],
    );

    for (fi, &family) in families.iter().enumerate() {
        let cell = |model, metric| Scenario {
            family,
            model,
            lifetime: LifetimeRule::EqualsN,
            metric,
            n,
        };
        // One derived seed stream per (family, model, metric) cell.
        let fam_seq = seq.child(fi as u64);

        let td1 = cell(LabelModelSpec::UniformSingle, Metric::TemporalDiameter).evaluate(
            &acfg,
            fam_seq.derive(0),
            cfg.threads,
        );
        let tr1 = cell(LabelModelSpec::UniformSingle, Metric::TreachProbability).evaluate(
            &acfg,
            fam_seq.derive(1),
            cfg.threads,
        );
        single.row(vec![
            family.name(),
            td1.nodes.to_string(),
            td1.edges.to_string(),
            f(tr1.estimate, 3),
            f(tr1.half_width, 3),
            if td1.failures < 1.0 {
                f(td1.estimate, 1)
            } else {
                "∞".to_owned()
            },
            f(td1.failures, 2),
            (td1.trials + tr1.trials).to_string(),
        ]);

        let td_r = cell(
            LabelModelSpec::UniformMulti { r: r_log },
            Metric::TemporalDiameter,
        )
        .evaluate(&acfg, fam_seq.derive(2), cfg.threads);
        let tr_r = cell(
            LabelModelSpec::UniformMulti { r: r_log },
            Metric::TreachProbability,
        )
        .evaluate(&acfg, fam_seq.derive(3), cfg.threads);
        let ln_n = (td_r.nodes.max(2) as f64).ln();
        multi.row(vec![
            family.name(),
            td_r.nodes.to_string(),
            f(tr_r.estimate, 3),
            f(tr_r.half_width, 3),
            f(td_r.estimate, 1),
            if td_r.half_width.is_finite() {
                f(td_r.half_width, 1)
            } else {
                "-".to_owned()
            },
            f(td_r.failures, 2),
            f(td_r.estimate / ln_n, 2),
            (td_r.trials + tr_r.trials).to_string(),
        ]);
    }

    single.note("the clique (and other dense families) are the only substrates where one random label per edge preserves reachability — sparse families sit at P[T_reach] ≈ 0 with almost surely infinite temporal diameter, so Theorems 3–4 genuinely are a clique phenomenon.");
    multi.note("a Θ(log n) per-edge budget (Theorem 7 mechanics) restores temporal connectivity everywhere; TD/ln n now separates the families by their static diameter — the torus and bipartite columns bracket the clique's constant.");
    vec![single, multi]
}
