//! E12 — correlated what-if chains: the differential cursor as an
//! estimator, not just a kernel.
//!
//! The sweeps in E02–E11 redraw **every** label between trials; each
//! trial pays a cold all-source sweep. A what-if analysis asks the
//! complementary question: *how does connectivity respond to one label
//! moving?* — a single-site Gibbs chain whose consecutive states differ
//! in one label. [`treach_probability_correlated`] walks such chains
//! with the closure maintained by
//! [`DeltaCursor::apply_label_move`](ephemeral_temporal::delta::DeltaCursor::apply_label_move),
//! reading each sample in O(1) from the maintained bit count.
//!
//! Shape to reproduce, on sparse `G(n, p)` at average degree 4 with
//! `a = 4n`: the chain estimate of the mean temporally reachable pair
//! count agrees with cold independent resampling (same stationary law —
//! resampling one uniform label of a uniform edge preserves the product
//! uniform distribution, and the chain *starts* stationary), while the
//! per-sample work collapses from a full sweep over every occupied
//! bucket to a handful of replayed buckets. `P[T_reach]` itself is
//! structurally 0 in this regime (any diameter-2 pair needs
//! `l_i < l_j` and `l_j < l_i` at once), which is why the ladder tracks
//! the continuous observable.

use crate::table::{f, Table};
use crate::ExpConfig;
use ephemeral_core::correlated::treach_probability_correlated;
use ephemeral_core::urtn::{placeholder_network, resample_single_in_place};
use ephemeral_graph::generators;
use ephemeral_temporal::distance::instance_temporal_diameter_scratch;
use ephemeral_temporal::wide::SweepScratch;
use ephemeral_temporal::{LabelAssignment, Time};

/// Run E12.
#[must_use]
pub fn run(cfg: &ExpConfig) -> Vec<Table> {
    let sizes: &[usize] = if cfg.quick {
        &[48, 96]
    } else {
        &[128, 256, 512, 1024]
    };
    let seq = cfg.seq(0xE12);
    let chains = 8;
    let steps = cfg.scale(400, 40);
    let cold_trials = cfg.scale(200, 24);

    let mut t = Table::new(
        format!(
            "E12 · correlated what-if ladder on G(n, 4/n), a = 4n: mean reachable pairs, \
             {chains} chains × {steps} differential moves vs {cold_trials} cold redraws"
        ),
        &[
            "n",
            "edges",
            "occupied",
            "delta pairs",
            "±",
            "cold pairs",
            "±",
            "replayed/move",
            "work ratio",
            "moves",
        ],
    );

    for (si, &n) in sizes.iter().enumerate() {
        let nseq = seq.child(si as u64);
        let mut rng = nseq.rng(0);
        let graph = generators::gnp(n, 4.0 / n as f64, false, &mut rng);
        let lifetime = 4 * n as Time;

        // The differential side: Gibbs chains maintained by the cursor.
        let delta = treach_probability_correlated(
            &graph,
            lifetime,
            chains,
            steps,
            nseq.derive(1),
            cfg.threads,
        );

        // The cold side: independent full redraws, each paying a complete
        // dispatched sweep; reachable ordered pairs = n(n−1) − unreachable.
        let mut tn = placeholder_network(&graph, lifetime);
        let mut spare = LabelAssignment::default();
        let mut scratch = SweepScratch::new();
        let mut rng = nseq.rng(2);
        let off_diag = n * (n - 1);
        let mut samples = Vec::with_capacity(cold_trials);
        for _ in 0..cold_trials {
            resample_single_in_place(&mut tn, &mut spare, &mut rng);
            let d = instance_temporal_diameter_scratch(&tn, &mut scratch);
            samples.push((off_diag - d.unreachable_pairs) as f64);
        }
        let cold_mean = samples.iter().sum::<f64>() / cold_trials as f64;
        let cold_var =
            samples.iter().map(|s| (s - cold_mean).powi(2)).sum::<f64>() / (cold_trials - 1) as f64;
        let cold_half = 1.96 * (cold_var / cold_trials as f64).sqrt();

        let occupied = tn.occupied_times().len();
        let replayed_per_move = delta.replayed_buckets as f64 / delta.applied_moves.max(1) as f64;
        t.row(vec![
            n.to_string(),
            graph.num_edges().to_string(),
            occupied.to_string(),
            f(delta.mean_reachable_pairs, 1),
            f(delta.reach_half_width, 1),
            f(cold_mean, 1),
            f(cold_half, 1),
            f(replayed_per_move, 1),
            f(occupied as f64 / replayed_per_move, 1),
            delta.applied_moves.to_string(),
        ]);
    }

    t.note(
        "both columns estimate the same stationary mean (single-site uniform resampling \
         preserves the product-uniform law, and every chain starts from a fresh draw), so \
         the intervals overlap; the delta half-width is the between-chain construction — \
         honest under within-chain autocorrelation, and wider per sample for it. The work \
         ratio is the cost collapse per sample: a cold redraw sweeps every occupied bucket, \
         a differential move replays only the perturbed ones (BENCH_PR6.json records the \
         wall-clock counterpart). P[T_reach] itself is structurally 0 on these substrates — \
         a single uniform label cannot orient both directions of a diameter-2 pair — hence \
         the ladder reports the continuous pair count.",
    );
    vec![t]
}
