//! One module per experiment (see the crate docs for the id ↔ claim map).

pub mod e01_expansion;
pub mod e02_diameter;
pub mod e03_threshold;
pub mod e04_lifetime;
pub mod e05_dissemination;
pub mod e06_star;
pub mod e07_star_lower;
pub mod e08_general;
pub mod e09_por;
pub mod e10_phonecall;
pub mod e11_families;
pub mod e12_whatif;
pub mod x01_design;
pub mod x02_fcase;
