//! X01 (extension, paper §6) — designed availability: deterministic
//! backbone + random extras.
//!
//! The paper's conclusions announce "designing the availability of a net
//! (by combining random availabilities and optimal local availabilities)"
//! as the next research step. This experiment measures the natural
//! trade-off curve: a spanning-tree backbone guarantees reachability at
//! `(n−1)·d(T)` labels; each extra random label on the chords buys
//! latency — average temporal distance — without ever breaking the
//! guarantee.

use crate::table::{f, Table};
use crate::ExpConfig;
use ephemeral_core::design::{average_temporal_distance, backbone_with_random_extras};
use ephemeral_graph::generators;

/// Run X01.
#[must_use]
pub fn run(cfg: &ExpConfig) -> Vec<Table> {
    let mut t = Table::new(
        "X01 · backbone + r random extra labels per chord (8x8 torus, lifetime = 64)",
        &[
            "r extras",
            "trials",
            "total labels",
            "avg temporal distance",
            "missing pairs",
            "latency vs backbone",
        ],
    );
    let g = generators::torus(8, 8);
    let lifetime = 64;
    let seq = cfg.seq(0x9001);
    let trials = cfg.scale(20, 5);
    let mut baseline = None;
    for &r in &[0usize, 1, 2, 4, 8, 16] {
        let mut labels = 0.0;
        let mut avg = 0.0;
        let mut missing_total = 0usize;
        for trial in 0..trials {
            let mut rng = seq.rng((r as u64) << 32 | trial as u64);
            let d = backbone_with_random_extras(&g, 0, r, lifetime, &mut rng)
                .expect("torus is connected");
            labels += d.network.assignment().total_labels() as f64;
            let (a, missing) = average_temporal_distance(&d.network, cfg.threads);
            avg += a;
            missing_total += missing;
        }
        labels /= trials as f64;
        avg /= trials as f64;
        let base = *baseline.get_or_insert(avg);
        t.row(vec![
            r.to_string(),
            trials.to_string(),
            f(labels, 0),
            f(avg, 2),
            missing_total.to_string(),
            format!("{:+.1}%", (avg / base - 1.0) * 100.0),
        ]);
    }
    t.note("reachability stays certain (missing pairs = 0) while random extras cut the average journey arrival — the cost/performance dial of §6.");
    vec![t]
}
