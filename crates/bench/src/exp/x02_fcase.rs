//! X02 (extension, paper §2 note) — F-CASE label distributions.
//!
//! The paper defines F-RTNs ("labels selected per a distribution F") as a
//! prospective study. This experiment compares `P[T_reach]` on the star
//! under uniform, early-skewed (Zipf) and late-skewed (reversed-Zipf)
//! label laws at equal per-edge budgets: reachability needs *spread* —
//! a leaf must leave early **and** be enterable late — so any skew should
//! hurt, and symmetric spread should win.

use crate::table::{f, Table};
use crate::ExpConfig;
use ephemeral_core::models::{LabelModel, UniformMulti, ZipfMulti};
use ephemeral_graph::generators;
use ephemeral_parallel::MonteCarlo;
use ephemeral_rng::RandomSource;
use ephemeral_temporal::reachability::treach_holds;
use ephemeral_temporal::{LabelAssignment, TemporalNetwork, Time};

fn probability_with<F>(
    graph: &ephemeral_graph::Graph,
    lifetime: Time,
    trials: usize,
    seed: u64,
    threads: usize,
    assign: F,
) -> f64
where
    F: Fn(usize, &mut dyn RandomSource) -> LabelAssignment + Sync,
{
    MonteCarlo::new(trials, seed)
        .with_threads(threads)
        .success_probability(|_, rng| {
            let assignment = assign(graph.num_edges(), rng);
            let tn = TemporalNetwork::new(graph.clone(), assignment, lifetime)
                .expect("model labels fit");
            treach_holds(&tn, 1)
        })
        .estimate
}

/// Run X02.
#[must_use]
pub fn run(cfg: &ExpConfig) -> Vec<Table> {
    let n = if cfg.quick { 64 } else { 128 };
    let g = generators::star(n);
    let lifetime = n as Time;
    let trials = cfg.scale(200, 40);
    let mut t = Table::new(
        format!(
            "X02 · star K_{{1,{}}}: P[T_reach] under different label distributions F",
            n - 1
        ),
        &[
            "r",
            "uniform",
            "zipf s=1.0 (early-skew)",
            "reverse-zipf (late-skew)",
            "half-half split",
        ],
    );
    for &r in &[4usize, 8, 12, 16, 24] {
        let seq = cfg.seq(0xF0CA).child(r as u64);
        let uniform = UniformMulti { lifetime, r };
        let zipf = ZipfMulti::new(lifetime, r, 1.0);
        let p_uni = probability_with(
            &g,
            lifetime,
            trials,
            seq.derive(0),
            cfg.threads,
            |m, rng| uniform.assign(m, rng),
        );
        let p_zipf = probability_with(
            &g,
            lifetime,
            trials,
            seq.derive(1),
            cfg.threads,
            |m, rng| zipf.assign(m, rng),
        );
        // Late skew: mirror the zipf draw t ↦ lifetime + 1 − t.
        let zipf_mirror = ZipfMulti::new(lifetime, r, 1.0);
        let p_late = probability_with(
            &g,
            lifetime,
            trials,
            seq.derive(2),
            cfg.threads,
            |m, rng| {
                let a = zipf_mirror.assign(m, rng);
                LabelAssignment::from_fn(m, |e| {
                    a.labels(e).iter().map(|&t| lifetime + 1 - t).collect()
                })
                .expect("mirrored labels stay in range")
            },
        );
        // Structured spread: half the draws uniform in the early half, half
        // in the late half (a deterministic-ish "design" for the 2-split
        // journeys of Theorem 6a).
        let p_split = probability_with(
            &g,
            lifetime,
            trials,
            seq.derive(3),
            cfg.threads,
            |m, rng| {
                LabelAssignment::from_fn(m, |_| {
                    let half = lifetime / 2;
                    (0..r)
                        .map(|i| {
                            if i % 2 == 0 {
                                rng.range_u32(1, half)
                            } else {
                                rng.range_u32(half + 1, lifetime)
                            }
                        })
                        .collect()
                })
                .expect("labels in range")
            },
        );
        t.row(vec![
            r.to_string(),
            f(p_uni, 3),
            f(p_zipf, 3),
            f(p_late, 3),
            f(p_split, 3),
        ]);
    }
    t.note("the engineered 2-split spread (one early + one late draw per edge) saturates already at tiny budgets — it guarantees the Thm 6a journey structure deterministically; one-sided skews shift the threshold modestly, showing the binding constraint is having both an early and a late label per edge, not the label law's shape.");
    vec![t]
}
