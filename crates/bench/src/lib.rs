//! # ephemeral-bench
//!
//! The experiment harness that regenerates every quantitative claim of the
//! paper (see DESIGN.md §4 for the experiment ↔ theorem map):
//!
//! | id | claim |
//! |----|-------|
//! | E01 | Fig. 1 / Thm 1–2: expansion frontiers grow geometrically to `Θ(√n)` |
//! | E02 | Thm 3–4: `TD(K_n) = Θ(log n)` — fit of `γ` |
//! | E03 | §3.4/§3.6: `G(n,p)` connectivity threshold at `ln n / n` |
//! | E04 | Thm 5: `TD = Ω((a/n)·log n)` once `a ≫ n` |
//! | E05 | §3.5: flooding time `O(log n)`, messages `Θ(n²)` |
//! | E06 | Fig. 2 / Thm 6(a): star threshold at `r = Θ(log n)` |
//! | E07 | Thm 6(b): `r = log n / β(n)` labels fail w.h.p. |
//! | E08 | Fig. 3 / Thm 7: box budget `2·d·ln n` vs measured `r*` |
//! | E09 | Thm 6/8: Price of Randomness, measured vs bound |
//! | E10 | §1.1: temporal flood vs push / push–pull baselines |
//! | E11 | Generalization: TD + connectivity across graph families (the clique's Θ(log n) vs sparse substrates) |
//! | E12 | Correlated what-if chains: Gibbs resampling with the closure maintained differentially (`delta` cursor) vs cold redraws |
//!
//! Run everything: `cargo run --release -p ephemeral-bench --bin experiments`
//! (add `--quick` for a fast smoke pass, or experiment ids to filter).
//! `experiments sweep` runs the declarative scenario [`sweep`] instead —
//! an adaptive CI-driven grid over families × label models, streamed as
//! resumable JSON lines (`--resume <file>` skips completed cells and
//! reproduces the uninterrupted output byte-for-byte).
//! The Criterion benches (`cargo bench`) time the computational kernels
//! behind each experiment at a fixed size; `adaptive_vs_fixed` measures
//! what CI-driven stopping buys over the old hard-coded trial counts, and
//! `wide_vs_batch` measures the single-pass wide-frontier engine against
//! per-batch sweeping (dumping headline numbers to `BENCH_PR4.json`; its
//! `-- --test` mode is the CI smoke gate). Sweep rows carry an `"engine"`
//! field (`wide`/`batch`/`scalar`) naming the journey engine that served
//! each cell.
//!
//! E02/E03/E04/E08 allocate their trials adaptively (see
//! [`ExpConfig::adaptive`]); the remaining tables keep fixed counts where
//! a fixed design is the point (e.g. E06's fixed-`r` probability curve).
//! All per-cell seeds come from [`ExpConfig::seq`] —
//! `SeedSequence::derive` streams, never ad-hoc xor mixing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exp;
pub mod sweep;
pub mod table;

use ephemeral_parallel::adaptive::AdaptiveConfig;
use ephemeral_rng::SeedSequence;
pub use table::Table;

/// Global experiment configuration.
#[derive(Debug, Clone, Copy)]
pub struct ExpConfig {
    /// Reduce sizes/trials for a fast smoke pass.
    pub quick: bool,
    /// Master seed (every experiment derives from it deterministically).
    pub seed: u64,
    /// Worker threads.
    pub threads: usize,
}

impl ExpConfig {
    /// Default full-fidelity configuration.
    #[must_use]
    pub fn full() -> Self {
        Self {
            quick: false,
            seed: 20140623, // SPAA'14 opened June 23, 2014
            threads: ephemeral_parallel::available_threads(),
        }
    }

    /// Quick smoke-pass configuration.
    #[must_use]
    pub fn quick() -> Self {
        Self {
            quick: true,
            ..Self::full()
        }
    }

    /// Pick `full` or `quick` value depending on the mode.
    #[must_use]
    pub const fn scale(&self, full: usize, quick: usize) -> usize {
        if self.quick {
            quick
        } else {
            full
        }
    }

    /// The experiment's seed stream: a [`SeedSequence`] child keyed by an
    /// experiment tag. Every per-cell seed inside an experiment must come
    /// from `cfg.seq(TAG).derive(stream)` — derived streams cannot collide,
    /// unlike the xor mixing this replaced.
    #[must_use]
    pub fn seq(&self, tag: u64) -> SeedSequence {
        SeedSequence::new(self.seed).child(tag)
    }

    /// Adaptive stopping knobs for a CI-driven experiment cell: the given
    /// target half-width and trial cap at full fidelity, both relaxed by
    /// ~an order of magnitude in `--quick` mode.
    #[must_use]
    pub fn adaptive(&self, target_half_width: f64, max_trials: usize) -> AdaptiveConfig {
        if self.quick {
            AdaptiveConfig::new(target_half_width * 4.0)
                .with_min_trials(6)
                .with_batch(6)
                .with_max_trials((max_trials / 10).clamp(6, 60))
        } else {
            AdaptiveConfig::new(target_half_width)
                .with_min_trials(12)
                .with_batch(24)
                .with_max_trials(max_trials.max(12))
        }
    }
}

/// One experiment: id, descriptive title, and the runner producing tables.
pub struct Experiment {
    /// Short id (`"e01"`, …).
    pub id: &'static str,
    /// Human-readable title.
    pub title: &'static str,
    /// Runner.
    pub run: fn(&ExpConfig) -> Vec<Table>,
}

/// Every experiment, in paper order.
#[must_use]
pub fn all_experiments() -> Vec<Experiment> {
    vec![
        Experiment {
            id: "e01",
            title: "E01 · Expansion process frontiers (Fig. 1, Thm 1-2)",
            run: exp::e01_expansion::run,
        },
        Experiment {
            id: "e02",
            title: "E02 · Temporal diameter of the normalized U-RT clique (Thm 3-4)",
            run: exp::e02_diameter::run,
        },
        Experiment {
            id: "e03",
            title: "E03 · Erdős–Rényi connectivity threshold (§3.4, §3.6)",
            run: exp::e03_threshold::run,
        },
        Experiment {
            id: "e04",
            title: "E04 · Temporal diameter vs lifetime (Thm 5)",
            run: exp::e04_lifetime::run,
        },
        Experiment {
            id: "e05",
            title: "E05 · Dissemination protocol (§3.5)",
            run: exp::e05_dissemination::run,
        },
        Experiment {
            id: "e06",
            title: "E06 · Star reachability threshold (Fig. 2, Thm 6a)",
            run: exp::e06_star::run,
        },
        Experiment {
            id: "e07",
            title: "E07 · Star lower bound: sublogarithmic budgets fail (Thm 6b)",
            run: exp::e07_star_lower::run,
        },
        Experiment {
            id: "e08",
            title: "E08 · Box-scheme budget vs measured minimal r (Fig. 3, Thm 7)",
            run: exp::e08_general::run,
        },
        Experiment {
            id: "e09",
            title: "E09 · Price of Randomness (Thm 6, Thm 8)",
            run: exp::e09_por::run,
        },
        Experiment {
            id: "e10",
            title: "E10 · Temporal flooding vs the random phone-call model (§1.1)",
            run: exp::e10_phonecall::run,
        },
        Experiment {
            id: "e11",
            title:
                "E11 · Temporal diameter and connectivity across graph families (scenario engine)",
            run: exp::e11_families::run,
        },
        Experiment {
            id: "e12",
            title:
                "E12 · Correlated what-if chains: differential closure maintenance as an estimator",
            run: exp::e12_whatif::run,
        },
        Experiment {
            id: "x01",
            title: "X01 · Extension: designed availability — backbone + random extras (§6)",
            run: exp::x01_design::run,
        },
        Experiment {
            id: "x02",
            title: "X02 · Extension: F-CASE label distributions (§2 note)",
            run: exp::x02_fcase::run,
        },
    ]
}
