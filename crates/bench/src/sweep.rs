//! The scenario sweep engine: expand a declarative grid of graph families ×
//! label models × lifetime rules × metrics × sizes into cells, schedule the
//! cells across a worker pool, and stream **one JSON-lines row per
//! completed cell** — in canonical grid order, so output is reproducible
//! and resumable.
//!
//! ## Determinism and resume
//!
//! Every cell's seed is derived from the sweep seed and the cell's grid
//! index through [`SeedSequence::derive`] (no xor mixing — streams cannot
//! collide), and [`Scenario::evaluate`] is deterministic in `(cell, seed)`
//! regardless of scheduling. Rows are emitted in grid order. Consequently a
//! sweep killed mid-grid leaves a clean prefix of the full output; running
//! again with `--resume <file>` re-emits the surviving rows **verbatim**,
//! computes only the missing cells, and produces byte-identical final
//! output to an uninterrupted run. A truncated trailing line (the kill
//! landed mid-write) is detected and ignored.

use crate::table::json_string;
use ephemeral_core::scenario::{
    GraphFamily, LabelModelSpec, LifetimeRule, Metric, Scenario, ScenarioOutcome,
};
use ephemeral_parallel::adaptive::AdaptiveConfig;
use ephemeral_parallel::ThreadPool;
use ephemeral_rng::SeedSequence;
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};

/// Stream tag under the sweep seed reserved for per-cell seeds.
const CELL_STREAM: u64 = 0x5EED;

/// A declarative sweep grid: the cross product of every axis, plus the
/// adaptive stopping knobs shared by all cells.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// Substrate families.
    pub families: Vec<GraphFamily>,
    /// Label models.
    pub models: Vec<LabelModelSpec>,
    /// Lifetime rules.
    pub lifetimes: Vec<LifetimeRule>,
    /// Metrics.
    pub metrics: Vec<Metric>,
    /// Target vertex counts.
    pub sizes: Vec<usize>,
    /// Stopping knobs for every cell.
    pub adaptive: AdaptiveConfig,
    /// Master seed; cell `i` uses `SeedSequence::new(seed).child(CELL_STREAM).derive(i)`.
    pub seed: u64,
}

impl SweepSpec {
    /// The full-fidelity default grid: the whole scenario catalog, single
    /// and multi-label UNI-CASE, temporal diameter + `T_reach` (cold
    /// trials and differentially maintained Gibbs chains), three sizes.
    #[must_use]
    pub fn full(seed: u64) -> Self {
        Self {
            families: GraphFamily::catalog(),
            models: vec![
                LabelModelSpec::UniformSingle,
                LabelModelSpec::UniformMulti { r: 4 },
            ],
            lifetimes: vec![LifetimeRule::EqualsN],
            metrics: vec![
                Metric::TemporalDiameter,
                Metric::TreachProbability,
                Metric::TreachCorrelated,
            ],
            sizes: vec![64, 144, 256],
            adaptive: AdaptiveConfig::new(0.25)
                .with_min_trials(24)
                .with_batch(24)
                .with_max_trials(1_500),
            seed,
        }
    }

    /// A small smoke grid (the `--quick` preset and the CI gate). The
    /// sizes straddle the batch crossover so the quick grid exercises —
    /// and its rows report — all three sweep engines: `batch` at n = 36,
    /// `wide` on the n = 224 clique and near-threshold G(n,p) (whose
    /// high degree keeps it off the event-driven engine), `sparse` on
    /// the n = 224 star.
    #[must_use]
    pub fn quick(seed: u64) -> Self {
        Self {
            families: vec![
                GraphFamily::Clique { directed: true },
                GraphFamily::Gnp { c: 1.5 },
                GraphFamily::Star,
            ],
            models: vec![
                LabelModelSpec::UniformSingle,
                LabelModelSpec::UniformMulti { r: 4 },
            ],
            lifetimes: vec![LifetimeRule::EqualsN],
            metrics: vec![
                Metric::TemporalDiameter,
                Metric::TreachProbability,
                Metric::TreachCorrelated,
            ],
            sizes: vec![36, 224],
            adaptive: AdaptiveConfig::new(1.0)
                .with_min_trials(8)
                .with_batch(8)
                .with_max_trials(48),
            seed,
        }
    }

    /// Expand the grid into cells, in canonical order (family, model,
    /// lifetime, metric, size — innermost last). Output rows appear in
    /// exactly this order.
    #[must_use]
    pub fn cells(&self) -> Vec<Scenario> {
        let mut out = Vec::new();
        for &family in &self.families {
            for &model in &self.models {
                for &lifetime in &self.lifetimes {
                    for &metric in &self.metrics {
                        for &n in &self.sizes {
                            out.push(Scenario {
                                family,
                                model,
                                lifetime,
                                metric,
                                n,
                            });
                        }
                    }
                }
            }
        }
        out
    }

    /// The derived seed of cell `index` — a dedicated
    /// [`SeedSequence::derive`] stream per cell, so no two cells (and no
    /// cell and any other experiment) can share draws.
    #[must_use]
    pub fn cell_seed(&self, index: usize) -> u64 {
        SeedSequence::new(self.seed)
            .child(CELL_STREAM)
            .derive(index as u64)
    }

    /// A fingerprint of everything that determines a cell's row bytes:
    /// the row format version, the seed, the adaptive stopping knobs, and
    /// the full grid. Stamped into every row so `--resume` can tell rows
    /// of *this* sweep apart from a file produced with a different seed,
    /// mode, grid or row schema — mismatched rows are recomputed instead
    /// of silently corrupting the output (splicing old-format rows in
    /// would break the byte-identical resume contract).
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        // FNV-1a over a canonical description; stability across runs of
        // one version is all that matters.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
        };
        // Bumped whenever render_row's schema changes — or the meaning of
        // a field: rowfmt 3 switched the `engine` value from the n-only
        // dispatch prediction to the engine that actually answered the
        // cell (probe-served T_reach cells now say "batch", sparse
        // instances "sparse"); rowfmt 4 added the `treachd` correlated
        // metric and the `delta_replayed_buckets` field attributing the
        // differential cursor's replay work; rowfmt 5 added the sparse
        // engine's arena accounting (`arena_hiwater_words`,
        // `compactions`). Rows written by an older binary are recomputed
        // rather than spliced in verbatim.
        eat(b"rowfmt:5");
        eat(&self.seed.to_le_bytes());
        eat(&self.adaptive.target_half_width.to_bits().to_le_bytes());
        eat(&self.adaptive.confidence.to_bits().to_le_bytes());
        eat(&self.adaptive.min_trials.to_le_bytes());
        eat(&self.adaptive.max_trials.to_le_bytes());
        eat(&self.adaptive.batch.to_le_bytes());
        for cell in self.cells() {
            eat(cell.id().as_bytes());
            eat(b"/");
        }
        h
    }
}

/// Render one completed cell as a JSON-lines row. All numeric fields use
/// fixed formatting, so re-rendering the same outcome is byte-stable.
/// `fingerprint` is the owning spec's [`SweepSpec::fingerprint`]. The
/// `engine` field names the journey engine that **actually answered**
/// the cell (`"wide"` / `"sparse"` / `"batch"` / `"scalar"`, the
/// heaviest path across its trials — a `T_reach` cell decided entirely
/// by the 64-lane probe block reports `"batch"` whatever the density
/// dispatch would have predicted), so a perf regression in the sweep
/// path is attributable to the engine that produced it.
#[must_use]
pub fn render_row(fingerprint: u64, cell: &Scenario, out: &ScenarioOutcome) -> String {
    let half_width = if out.half_width.is_finite() {
        format!("{:.4}", out.half_width)
    } else {
        "null".to_owned()
    };
    format!(
        "{{\"cell\":{},\"spec\":\"{fingerprint:016x}\",\"family\":{},\"model\":{},\"lifetime\":{},\"metric\":{},\"n\":{},\"nodes\":{},\"edges\":{},\"a\":{},\"engine\":{},\"trials\":{},\"converged\":{},\"estimate\":{:.4},\"half_width\":{},\"failures\":{:.4},\"delta_replayed_buckets\":{},\"arena_hiwater_words\":{},\"compactions\":{}}}",
        json_string(&cell.id()),
        json_string(&cell.family.name()),
        json_string(&cell.model.name()),
        json_string(&cell.lifetime.name()),
        json_string(cell.metric.name()),
        cell.n,
        out.nodes,
        out.edges,
        out.lifetime,
        json_string(out.engine),
        out.trials,
        out.converged,
        out.estimate,
        half_width,
        out.failures,
        out.delta_replayed_buckets,
        out.arena_hiwater_words,
        out.compactions,
    )
}

/// Extract the cell id of a sweep row, or `None` if the line is not a
/// complete row (e.g. the torn trailing line of a killed run).
#[must_use]
pub fn parse_cell_id(line: &str) -> Option<&str> {
    let rest = line.strip_prefix("{\"cell\":\"")?;
    let end = rest.find('"')?;
    if !line.ends_with('}') {
        return None;
    }
    Some(&rest[..end])
}

/// Run the sweep: compute every cell not already present in `resume`
/// (lines of a previous, possibly interrupted run of the **same spec** —
/// rows whose spec fingerprint doesn't match are recomputed, so a file
/// from a different seed, mode or grid cannot silently corrupt the
/// output), stream rows in canonical order through `emit` as cells
/// complete, and return the full row list.
///
/// Cells are scheduled across a [`ThreadPool`] of `threads` workers, each
/// cell evaluated single-threaded — per-cell results are deterministic, so
/// neither the pool size nor scheduling order can change any byte of the
/// output.
///
/// # Panics
/// If a cell evaluation panics (the panic is forwarded with the cell id
/// rather than hanging the stream).
pub fn run_sweep(
    spec: &SweepSpec,
    threads: usize,
    resume: &[String],
    mut emit: impl FnMut(&str),
) -> Vec<String> {
    let cells = spec.cells();
    let fingerprint = spec.fingerprint();
    let spec_tag = format!("\"spec\":\"{fingerprint:016x}\"");
    let mut cached: HashMap<&str, &str> = HashMap::new();
    for line in resume {
        if let Some(id) = parse_cell_id(line) {
            if line.contains(&spec_tag) {
                cached.entry(id).or_insert(line.as_str());
            }
        }
    }

    // Slot per cell: pre-fill from the resume file, compute the rest. A
    // panicking evaluation fills its slot with the panic message so the
    // streaming loop can forward it instead of waiting forever.
    type Slots = Arc<(Mutex<Vec<Option<Result<String, String>>>>, Condvar)>;
    let slots: Slots = Arc::new((Mutex::new(vec![None; cells.len()]), Condvar::new()));
    let pool = ThreadPool::new(threads.max(1));
    let cfg = spec.adaptive;
    for (i, cell) in cells.iter().enumerate() {
        let id = cell.id();
        if let Some(&line) = cached.get(id.as_str()) {
            slots.0.lock().expect("sweep slots lock")[i] = Some(Ok(line.to_owned()));
            continue;
        }
        let slots = Arc::clone(&slots);
        let cell = *cell;
        let seed = spec.cell_seed(i);
        pool.execute(move || {
            let result = std::panic::catch_unwind(|| {
                let outcome = cell.evaluate(&cfg, seed, 1);
                render_row(fingerprint, &cell, &outcome)
            })
            .map_err(|payload| {
                payload
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_owned())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_owned())
            });
            let mut guard = slots.0.lock().expect("sweep slots lock");
            guard[i] = Some(result);
            drop(guard);
            slots.1.notify_all();
        });
    }

    // Stream rows in canonical order as they become available.
    let mut rows = Vec::with_capacity(cells.len());
    for (i, cell) in cells.iter().enumerate() {
        let mut guard = slots.0.lock().expect("sweep slots lock");
        while guard[i].is_none() {
            guard = slots.1.wait(guard).expect("sweep slots wait");
        }
        let row = match guard[i].take().expect("slot filled") {
            Ok(row) => row,
            Err(msg) => panic!("sweep cell {} failed: {msg}", cell.id()),
        };
        drop(guard);
        emit(&row);
        rows.push(row);
    }
    pool.wait_idle();
    rows
}
