//! The scenario sweep engine: expand a declarative grid of graph families ×
//! label models × lifetime rules × metrics × sizes into cells, schedule the
//! cells across a worker pool, and stream **one JSON-lines row per
//! completed cell** — in canonical grid order, so output is reproducible
//! and resumable.
//!
//! ## Determinism and resume
//!
//! Every cell's seed is derived from the sweep seed and the cell's grid
//! index through [`SeedSequence::derive`] (no xor mixing — streams cannot
//! collide), and [`Scenario::evaluate`] is deterministic in `(cell, seed)`
//! regardless of scheduling. Rows are emitted in grid order. Consequently a
//! sweep killed mid-grid leaves a clean prefix of the full output; running
//! again with `--resume <file>` re-emits the surviving rows **verbatim**,
//! computes only the missing cells, and produces byte-identical final
//! output to an uninterrupted run. A truncated trailing line (the kill
//! landed mid-write) is detected and ignored.
//!
//! ## Fault isolation
//!
//! A cell whose evaluation panics — an injected fault, a cell-timeout
//! cancellation, or a genuine bug — does **not** take the sweep down.
//! The worker retries the cell up to [`SweepOptions::max_attempts`]
//! times (the seed is re-derived from the cell index, so a retried cell
//! produces a byte-identical row to a fault-free run); a cell that fails
//! every attempt is quarantined into a `"status":"failed"` row carrying
//! the panic message and, when the fault was injected, the failpoint
//! that fired. The stream never hangs: every cell posts exactly one row.
//! `--resume` treats failed rows as retryable — they are recomputed, so
//! resuming after the fault clears converges to the fault-free output.

use crate::table::json_string;
use ephemeral_core::scenario::{
    GraphFamily, LabelModelSpec, LifetimeRule, Metric, Scenario, ScenarioOutcome,
};
use ephemeral_parallel::adaptive::AdaptiveConfig;
use ephemeral_parallel::faults::{self, CancelToken, WorkerPanic};
use ephemeral_parallel::ThreadPool;
use ephemeral_rng::SeedSequence;
use std::collections::HashMap;
use std::panic::AssertUnwindSafe;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Stream tag under the sweep seed reserved for per-cell seeds.
const CELL_STREAM: u64 = 0x5EED;

/// A declarative sweep grid: the cross product of every axis, plus the
/// adaptive stopping knobs shared by all cells.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// Substrate families.
    pub families: Vec<GraphFamily>,
    /// Label models.
    pub models: Vec<LabelModelSpec>,
    /// Lifetime rules.
    pub lifetimes: Vec<LifetimeRule>,
    /// Metrics.
    pub metrics: Vec<Metric>,
    /// Target vertex counts.
    pub sizes: Vec<usize>,
    /// Stopping knobs for every cell.
    pub adaptive: AdaptiveConfig,
    /// Master seed; cell `i` uses `SeedSequence::new(seed).child(CELL_STREAM).derive(i)`.
    pub seed: u64,
}

impl SweepSpec {
    /// The full-fidelity default grid: the whole scenario catalog, single
    /// and multi-label UNI-CASE, temporal diameter + `T_reach` (cold
    /// trials and differentially maintained Gibbs chains), three sizes.
    #[must_use]
    pub fn full(seed: u64) -> Self {
        Self {
            families: GraphFamily::catalog(),
            models: vec![
                LabelModelSpec::UniformSingle,
                LabelModelSpec::UniformMulti { r: 4 },
            ],
            lifetimes: vec![LifetimeRule::EqualsN],
            metrics: vec![
                Metric::TemporalDiameter,
                Metric::TreachProbability,
                Metric::TreachCorrelated,
            ],
            sizes: vec![64, 144, 256],
            adaptive: AdaptiveConfig::new(0.25)
                .with_min_trials(24)
                .with_batch(24)
                .with_max_trials(1_500),
            seed,
        }
    }

    /// A small smoke grid (the `--quick` preset and the CI gate). The
    /// sizes straddle the batch crossover so the quick grid exercises —
    /// and its rows report — all three sweep engines: `batch` at n = 36,
    /// `wide` on the n = 224 clique and near-threshold G(n,p) (whose
    /// high degree keeps it off the event-driven engine), `sparse` on
    /// the n = 224 star.
    #[must_use]
    pub fn quick(seed: u64) -> Self {
        Self {
            families: vec![
                GraphFamily::Clique { directed: true },
                GraphFamily::Gnp { c: 1.5 },
                GraphFamily::Star,
            ],
            models: vec![
                LabelModelSpec::UniformSingle,
                LabelModelSpec::UniformMulti { r: 4 },
            ],
            lifetimes: vec![LifetimeRule::EqualsN],
            metrics: vec![
                Metric::TemporalDiameter,
                Metric::TreachProbability,
                Metric::TreachCorrelated,
            ],
            sizes: vec![36, 224],
            adaptive: AdaptiveConfig::new(1.0)
                .with_min_trials(8)
                .with_batch(8)
                .with_max_trials(48),
            seed,
        }
    }

    /// Expand the grid into cells, in canonical order (family, model,
    /// lifetime, metric, size — innermost last). Output rows appear in
    /// exactly this order.
    #[must_use]
    pub fn cells(&self) -> Vec<Scenario> {
        let mut out = Vec::new();
        for &family in &self.families {
            for &model in &self.models {
                for &lifetime in &self.lifetimes {
                    for &metric in &self.metrics {
                        for &n in &self.sizes {
                            out.push(Scenario {
                                family,
                                model,
                                lifetime,
                                metric,
                                n,
                            });
                        }
                    }
                }
            }
        }
        out
    }

    /// The derived seed of cell `index` — a dedicated
    /// [`SeedSequence::derive`] stream per cell, so no two cells (and no
    /// cell and any other experiment) can share draws.
    #[must_use]
    pub fn cell_seed(&self, index: usize) -> u64 {
        SeedSequence::new(self.seed)
            .child(CELL_STREAM)
            .derive(index as u64)
    }

    /// A fingerprint of everything that determines a cell's row bytes:
    /// the row format version, the seed, the adaptive stopping knobs, and
    /// the full grid. Stamped into every row so `--resume` can tell rows
    /// of *this* sweep apart from a file produced with a different seed,
    /// mode, grid or row schema — mismatched rows are recomputed instead
    /// of silently corrupting the output (splicing old-format rows in
    /// would break the byte-identical resume contract).
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        // FNV-1a over a canonical description; stability across runs of
        // one version is all that matters.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
        };
        // Bumped whenever render_row's schema changes — or the meaning of
        // a field: rowfmt 3 switched the `engine` value from the n-only
        // dispatch prediction to the engine that actually answered the
        // cell (probe-served T_reach cells now say "batch", sparse
        // instances "sparse"); rowfmt 4 added the `treachd` correlated
        // metric and the `delta_replayed_buckets` field attributing the
        // differential cursor's replay work; rowfmt 5 added the sparse
        // engine's arena accounting (`arena_hiwater_words`,
        // `compactions`); rowfmt 6 added the `degraded` budget-pressure
        // count, the `status` field, and the quarantined
        // `"status":"failed"` row shape. Rows written by an older binary
        // are recomputed rather than spliced in verbatim.
        eat(b"rowfmt:6");
        eat(&self.seed.to_le_bytes());
        eat(&self.adaptive.target_half_width.to_bits().to_le_bytes());
        eat(&self.adaptive.confidence.to_bits().to_le_bytes());
        eat(&self.adaptive.min_trials.to_le_bytes());
        eat(&self.adaptive.max_trials.to_le_bytes());
        eat(&self.adaptive.batch.to_le_bytes());
        for cell in self.cells() {
            eat(cell.id().as_bytes());
            eat(b"/");
        }
        h
    }
}

/// Render one completed cell as a JSON-lines row. All numeric fields use
/// fixed formatting, so re-rendering the same outcome is byte-stable.
/// `fingerprint` is the owning spec's [`SweepSpec::fingerprint`]. The
/// `engine` field names the journey engine that **actually answered**
/// the cell (`"wide"` / `"sparse"` / `"batch"` / `"scalar"`, the
/// heaviest path across its trials — a `T_reach` cell decided entirely
/// by the 64-lane probe block reports `"batch"` whatever the density
/// dispatch would have predicted), so a perf regression in the sweep
/// path is attributable to the engine that produced it.
#[must_use]
pub fn render_row(fingerprint: u64, cell: &Scenario, out: &ScenarioOutcome) -> String {
    let half_width = if out.half_width.is_finite() {
        format!("{:.4}", out.half_width)
    } else {
        "null".to_owned()
    };
    format!(
        "{{\"cell\":{},\"spec\":\"{fingerprint:016x}\",\"family\":{},\"model\":{},\"lifetime\":{},\"metric\":{},\"n\":{},\"nodes\":{},\"edges\":{},\"a\":{},\"engine\":{},\"trials\":{},\"converged\":{},\"estimate\":{:.4},\"half_width\":{},\"failures\":{:.4},\"delta_replayed_buckets\":{},\"arena_hiwater_words\":{},\"compactions\":{},\"degraded\":{},\"status\":\"ok\"}}",
        json_string(&cell.id()),
        json_string(&cell.family.name()),
        json_string(&cell.model.name()),
        json_string(&cell.lifetime.name()),
        json_string(cell.metric.name()),
        cell.n,
        out.nodes,
        out.edges,
        out.lifetime,
        json_string(out.engine),
        out.trials,
        out.converged,
        out.estimate,
        half_width,
        out.failures,
        out.delta_replayed_buckets,
        out.arena_hiwater_words,
        out.compactions,
        out.degraded,
    )
}

/// Render the quarantine row of a cell that failed every retry: same
/// `cell`/`spec` head as a healthy row (so [`parse_cell_id`] and the
/// resume scan treat it uniformly) with `"status":"failed"` instead of
/// measurements, plus the attempt count, the panic message, and — when
/// the failure was injected or a cancellation — the failpoint / reason,
/// so a red sweep names its own trigger. Resume treats these rows as
/// retryable: they are never spliced into later output verbatim.
#[must_use]
pub fn render_failed_row(
    fingerprint: u64,
    cell: &Scenario,
    attempts: u32,
    panic: &WorkerPanic,
) -> String {
    let failpoint = match &panic.injected {
        Some(f) => json_string(f.site),
        None => "null".to_owned(),
    };
    let cancelled = match panic.cancelled {
        Some(faults::CancelReason::TimedOut) => "\"timed-out\"".to_owned(),
        Some(faults::CancelReason::Requested) => "\"requested\"".to_owned(),
        None => "null".to_owned(),
    };
    format!(
        "{{\"cell\":{},\"spec\":\"{fingerprint:016x}\",\"status\":\"failed\",\"attempts\":{attempts},\"failpoint\":{failpoint},\"cancelled\":{cancelled},\"error\":{}}}",
        json_string(&cell.id()),
        json_string(&panic.message),
    )
}

/// Is this line a quarantined [`render_failed_row`] row? Failed rows are
/// retryable: resume recomputes them instead of re-emitting verbatim.
#[must_use]
pub fn is_failed_row(line: &str) -> bool {
    line.contains("\"status\":\"failed\"")
}

/// Per-sweep robustness knobs of [`run_sweep_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepOptions {
    /// Evaluation attempts per cell before quarantine (≥ 1). The default
    /// 3 rides out one-shot injected faults (attempt counters advance on
    /// every firing decision, so a deterministic schedule that fired on
    /// attempt 0 passes attempt 1) while bounding the wall-clock a
    /// genuinely broken cell can burn.
    pub max_attempts: u32,
    /// Per-attempt wall-clock budget, enforced by a cooperative
    /// [`CancelToken`] checked at every bucket boundary of every engine
    /// (`None` = no watchdog). A timed-out attempt unwinds with a
    /// structured cancellation and counts against `max_attempts`.
    pub cell_timeout: Option<Duration>,
}

impl Default for SweepOptions {
    fn default() -> Self {
        Self {
            max_attempts: 3,
            cell_timeout: None,
        }
    }
}

/// Extract the cell id of a sweep row, or `None` if the line is not a
/// complete row (e.g. the torn trailing line of a killed run).
#[must_use]
pub fn parse_cell_id(line: &str) -> Option<&str> {
    let rest = line.strip_prefix("{\"cell\":\"")?;
    let end = rest.find('"')?;
    if !line.ends_with('}') {
        return None;
    }
    Some(&rest[..end])
}

/// Run the sweep: compute every cell not already present in `resume`
/// (lines of a previous, possibly interrupted run of the **same spec** —
/// rows whose spec fingerprint doesn't match are recomputed, so a file
/// from a different seed, mode or grid cannot silently corrupt the
/// output), stream rows in canonical order through `emit` as cells
/// complete, and return the full row list.
///
/// Cells are scheduled across a [`ThreadPool`] of `threads` workers, each
/// cell evaluated single-threaded — per-cell results are deterministic, so
/// neither the pool size nor scheduling order can change any byte of the
/// output.
///
/// Equivalent to [`run_sweep_with`] under [`SweepOptions::default`]:
/// bounded retry, no cell timeout.
pub fn run_sweep(
    spec: &SweepSpec,
    threads: usize,
    resume: &[String],
    emit: impl FnMut(&str),
) -> Vec<String> {
    run_sweep_with(spec, threads, resume, SweepOptions::default(), emit)
}

/// Compute one cell's row under the per-cell fault discipline: bounded
/// retry with the same derived seed — evaluation is deterministic in
/// `(cell, seed)`, so a retry that survives its faults produces the
/// byte-identical row of a fault-free run, and injected one-shot
/// schedules pass on retry because their attempt counters advanced when
/// they fired — then quarantine into a [`render_failed_row`] after
/// [`SweepOptions::max_attempts`] unwinds.
fn evaluate_cell_row(
    cell: &Scenario,
    cfg: &AdaptiveConfig,
    seed: u64,
    fingerprint: u64,
    index: usize,
    opts: SweepOptions,
) -> String {
    let mut last: Option<WorkerPanic> = None;
    for _attempt in 0..opts.max_attempts {
        let token = opts.cell_timeout.map(CancelToken::with_deadline);
        match std::panic::catch_unwind(AssertUnwindSafe(|| {
            faults::hit(faults::site::SWEEP_CELL, index as u64);
            let outcome = cell.evaluate_with_cancel(cfg, seed, 1, token);
            let rendered = render_row(fingerprint, cell, &outcome);
            faults::hit(faults::site::SWEEP_EMIT, index as u64);
            rendered
        })) {
            Ok(row) => return row,
            Err(payload) => {
                last = Some(WorkerPanic::from_payload(index, payload.as_ref()));
            }
        }
    }
    let panic = last.as_ref().expect("quarantine implies a caught panic");
    render_failed_row(fingerprint, cell, opts.max_attempts, panic)
}

/// [`run_sweep`] with explicit robustness knobs. Panic isolation is
/// per-cell: an attempt that unwinds (injected fault, watchdog timeout,
/// genuine bug) is retried up to [`SweepOptions::max_attempts`] times
/// with the same derived seed — a successful retry's row is
/// byte-identical to a fault-free run — and a cell that exhausts its
/// attempts posts a `"status":"failed"` quarantine row instead of
/// hanging or killing the stream. A job that dies **inside the pool
/// itself** (the `pool::job` failpoint fires before the cell body runs)
/// never fills its slot; the streaming loop detects the orphaned slot
/// through the pool's panicked-job count and recomputes the cell inline
/// — same seed, same discipline, same bytes — so the stream cannot hang
/// whatever layer the fault lands in.
pub fn run_sweep_with(
    spec: &SweepSpec,
    threads: usize,
    resume: &[String],
    opts: SweepOptions,
    mut emit: impl FnMut(&str),
) -> Vec<String> {
    assert!(opts.max_attempts >= 1, "at least one attempt per cell");
    let cells = spec.cells();
    let fingerprint = spec.fingerprint();
    let spec_tag = format!("\"spec\":\"{fingerprint:016x}\"");
    let mut cached: HashMap<&str, &str> = HashMap::new();
    for line in resume {
        if let Some(id) = parse_cell_id(line) {
            // Failed rows are retryable: recompute, never splice.
            if line.contains(&spec_tag) && !is_failed_row(line) {
                cached.entry(id).or_insert(line.as_str());
            }
        }
    }

    // Slot per cell: pre-fill from the resume file, compute the rest.
    // Every cell posts exactly one row — measured or quarantined — so
    // the streaming loop can never wait forever.
    type Slots = Arc<(Mutex<Vec<Option<String>>>, Condvar)>;
    let slots: Slots = Arc::new((Mutex::new(vec![None; cells.len()]), Condvar::new()));
    let pool = ThreadPool::new(threads.max(1));
    let cfg = spec.adaptive;
    for (i, cell) in cells.iter().enumerate() {
        let id = cell.id();
        if let Some(&line) = cached.get(id.as_str()) {
            slots.0.lock().expect("sweep slots lock")[i] = Some(line.to_owned());
            continue;
        }
        let slots = Arc::clone(&slots);
        let cell = *cell;
        let seed = spec.cell_seed(i);
        pool.execute(move || {
            let row = evaluate_cell_row(&cell, &cfg, seed, fingerprint, i, opts);
            let mut guard = slots.0.lock().expect("sweep slots lock");
            guard[i] = Some(row);
            drop(guard);
            slots.1.notify_all();
        });
    }

    // Stream rows in canonical order as they become available. A slot
    // can stay empty forever only if its job died inside the pool (the
    // `pool::job` failpoint fires before the cell body's own
    // catch_unwind is armed), so the wait is bounded: once every
    // submitted job is accounted for — filled a slot or counted panicked
    // — any still-empty slot is orphaned and the cell is recomputed
    // inline with the same seed and retry discipline (bytes can't
    // differ: the dead job never reached a failpoint the recompute
    // skips). `synthesized` keeps the accounting exact when several
    // jobs die: each inline row consumes one panicked job.
    let mut rows = Vec::with_capacity(cells.len());
    let mut synthesized = 0usize;
    for i in 0..cells.len() {
        let mut guard = slots.0.lock().expect("sweep slots lock");
        loop {
            if guard[i].is_some() {
                break;
            }
            let ever_filled = i + guard[i..].iter().filter(|s| s.is_some()).count();
            if ever_filled + pool.panicked_jobs() >= cells.len() + synthesized {
                drop(guard);
                let row =
                    evaluate_cell_row(&cells[i], &cfg, spec.cell_seed(i), fingerprint, i, opts);
                synthesized += 1;
                guard = slots.0.lock().expect("sweep slots lock");
                if guard[i].is_none() {
                    guard[i] = Some(row);
                }
                break;
            }
            let (g, _timeout) = slots
                .1
                .wait_timeout(guard, Duration::from_millis(20))
                .expect("sweep slots wait");
            guard = g;
        }
        let row = guard[i].take().expect("slot filled");
        drop(guard);
        emit(&row);
        rows.push(row);
    }
    pool.wait_idle();
    rows
}
