//! Markdown table rendering for experiment reports.

/// A titled markdown table with optional footnotes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
}

impl Table {
    /// New table with a title and column headers.
    #[must_use]
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Self {
            title: title.into(),
            header: header.iter().map(|&s| s.to_owned()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append a row (must match the header width).
    ///
    /// # Panics
    /// If the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width {} != header width {}",
            cells.len(),
            self.header.len()
        );
        self.rows.push(cells);
        self
    }

    /// Append a footnote printed under the table.
    pub fn note(&mut self, note: impl Into<String>) -> &mut Self {
        self.notes.push(note.into());
        self
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Is the table empty of data rows?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as column-aligned GitHub-flavoured markdown.
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("### {}\n\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for (cell, w) in cells.iter().zip(widths) {
                line.push_str(&format!(" {cell:<w$} |"));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        let mut sep = String::from("|");
        for w in &widths {
            sep.push_str(&format!("{:-<width$}|", "", width = w + 2));
        }
        sep.push('\n');
        out.push_str(&sep);
        let _ = cols;
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        for note in &self.notes {
            out.push_str(&format!("\n> {note}\n"));
        }
        out.push('\n');
        out
    }
}

/// Format helper: fixed-precision float cell.
#[must_use]
pub fn f(x: f64, digits: usize) -> String {
    format!("{x:.digits$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut t = Table::new("demo", &["n", "value"]);
        t.row(vec!["8".into(), "1.5".into()]);
        t.row(vec!["1024".into(), "12.25".into()]);
        t.note("a footnote");
        let s = t.render();
        assert!(s.starts_with("### demo"));
        assert!(s.contains("| n    | value |"));
        assert!(s.contains("| 1024 | 12.25 |"));
        assert!(s.contains("> a footnote"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f(1.23456, 2), "1.23");
        assert_eq!(f(10.0, 0), "10");
    }
}
