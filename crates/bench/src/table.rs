//! Markdown and JSON-lines table rendering for experiment reports.

/// A titled markdown table with optional footnotes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
}

impl Table {
    /// New table with a title and column headers.
    #[must_use]
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Self {
            title: title.into(),
            header: header.iter().map(|&s| s.to_owned()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append a row (must match the header width).
    ///
    /// # Panics
    /// If the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width {} != header width {}",
            cells.len(),
            self.header.len()
        );
        self.rows.push(cells);
        self
    }

    /// Append a footnote printed under the table.
    pub fn note(&mut self, note: impl Into<String>) -> &mut Self {
        self.notes.push(note.into());
        self
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Is the table empty of data rows?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as column-aligned GitHub-flavoured markdown.
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("### {}\n\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for (cell, w) in cells.iter().zip(widths) {
                line.push_str(&format!(" {cell:<w$} |"));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        let mut sep = String::from("|");
        for w in &widths {
            sep.push_str(&format!("{:-<width$}|", "", width = w + 2));
        }
        sep.push('\n');
        out.push_str(&sep);
        let _ = cols;
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        for note in &self.notes {
            out.push_str(&format!("\n> {note}\n"));
        }
        out.push('\n');
        out
    }

    /// Render as machine-readable JSON lines: one object per data row
    /// (`{"table": <title>, "<column>": <cell>, …}`) followed by one object
    /// per footnote (`{"table": <title>, "note": <text>}`). Cells stay
    /// strings — they are already formatted for the report — so downstream
    /// tooling can parse numbers with full knowledge of the printed
    /// precision. This is the `--format json` payload of the `experiments`
    /// binary, the format perf/accuracy trajectories are tracked in.
    #[must_use]
    pub fn render_json_lines(&self) -> String {
        let mut out = String::new();
        for row in &self.rows {
            out.push_str("{\"table\":");
            out.push_str(&json_string(&self.title));
            for (key, cell) in self.header.iter().zip(row) {
                out.push(',');
                out.push_str(&json_string(key));
                out.push(':');
                out.push_str(&json_string(cell));
            }
            out.push_str("}\n");
        }
        for note in &self.notes {
            out.push_str("{\"table\":");
            out.push_str(&json_string(&self.title));
            out.push_str(",\"note\":");
            out.push_str(&json_string(note));
            out.push_str("}\n");
        }
        out
    }
}

/// Minimal JSON string encoder (RFC 8259 escapes; no external deps).
/// Shared with the sweep subsystem's row rendering.
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Format helper: fixed-precision float cell.
#[must_use]
pub fn f(x: f64, digits: usize) -> String {
    format!("{x:.digits$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut t = Table::new("demo", &["n", "value"]);
        t.row(vec!["8".into(), "1.5".into()]);
        t.row(vec!["1024".into(), "12.25".into()]);
        t.note("a footnote");
        let s = t.render();
        assert!(s.starts_with("### demo"));
        assert!(s.contains("| n    | value |"));
        assert!(s.contains("| 1024 | 12.25 |"));
        assert!(s.contains("> a footnote"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn renders_json_lines() {
        let mut t = Table::new("demo \"quoted\"", &["n", "value"]);
        t.row(vec!["8".into(), "1.5".into()]);
        t.row(vec!["1024".into(), "12.25".into()]);
        t.note("a\nnote");
        let s = t.render_json_lines();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(
            lines[0],
            "{\"table\":\"demo \\\"quoted\\\"\",\"n\":\"8\",\"value\":\"1.5\"}"
        );
        assert_eq!(
            lines[1],
            "{\"table\":\"demo \\\"quoted\\\"\",\"n\":\"1024\",\"value\":\"12.25\"}"
        );
        assert_eq!(
            lines[2],
            "{\"table\":\"demo \\\"quoted\\\"\",\"note\":\"a\\nnote\"}"
        );
    }

    #[test]
    fn json_escapes_control_characters() {
        assert_eq!(json_string("a\u{1}b"), "\"a\\u0001b\"");
        assert_eq!(json_string("tab\there"), "\"tab\\there\"");
        assert_eq!(json_string("back\\slash"), "\"back\\\\slash\"");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f(1.23456, 2), "1.23");
        assert_eq!(f(10.0, 0), "10");
    }
}
