//! The panic-at-every-failpoint suite: deterministic fault schedules
//! aimed at each site of the [`faults::site`] catalog in turn, driven
//! through the sweep runner — proving that every injected fault either
//! rides out on the bounded retry (byte-identical row) or quarantines
//! into a `"status":"failed"` row, that the stream never hangs whatever
//! layer the fault lands in, and that `--resume` converges to the
//! fault-free bytes once the fault clears.
//!
//! The fault registry is process-global, so these tests live in their
//! own integration binary (own process — the main sweep suite never
//! sees an installed schedule) and serialize on [`SERIAL`]: a schedule
//! installed by one test must not fire inside another's fault-free
//! baseline.

use ephemeral_bench::sweep::{is_failed_row, run_sweep, run_sweep_with, SweepOptions, SweepSpec};
use ephemeral_core::scenario::{GraphFamily, LabelModelSpec, LifetimeRule, Metric};
use ephemeral_parallel::adaptive::AdaptiveConfig;
use ephemeral_parallel::faults::{self, Fault, FaultSchedule};
use std::sync::Mutex;
use std::time::Duration;

/// Serializes whole tests (not just schedule installation): a fault-free
/// baseline computed while a sibling test's schedule is live would be
/// anything but fault-free.
static SERIAL: Mutex<()> = Mutex::new(());

fn collect(spec: &SweepSpec, threads: usize, resume: &[String]) -> Vec<String> {
    let mut streamed = Vec::new();
    let rows = run_sweep(spec, threads, resume, |row| streamed.push(row.to_owned()));
    assert_eq!(rows, streamed, "emit callback must see every row, in order");
    rows
}

/// A 4-cell grid cheap enough to sweep repeatedly under fault schedules.
fn micro_spec(seed: u64) -> SweepSpec {
    SweepSpec {
        families: vec![GraphFamily::Star],
        models: vec![
            LabelModelSpec::UniformSingle,
            LabelModelSpec::UniformMulti { r: 4 },
        ],
        lifetimes: vec![LifetimeRule::EqualsN],
        metrics: vec![Metric::TemporalDiameter, Metric::TreachCorrelated],
        sizes: vec![16],
        adaptive: AdaptiveConfig::new(0.5)
            .with_min_trials(4)
            .with_batch(4)
            .with_max_trials(12),
        seed,
    }
}

#[test]
fn injected_panics_at_every_failpoint_recover_or_quarantine_and_resume_converges() {
    let _serial = SERIAL
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    // The panic-at-every-failpoint sweep: under a deterministic one-shot
    // panic schedule aimed at each site of the catalog in turn, every
    // cell must post exactly one row — either the byte-identical row of
    // the fault-free run (the bounded retry rode out the fault) or a
    // quarantined "status":"failed" row — and a --resume style rerun
    // with the faults cleared must converge to fault-free bytes.
    let spec = micro_spec(11);
    let clean = collect(&spec, 2, &[]);
    for (k, site) in faults::site::ALL.iter().enumerate() {
        let guard = faults::install(
            FaultSchedule::new(0xFA17 + k as u64, 1.0, Fault::Panic).sites(&[site]),
        );
        let rows = collect(&spec, 2, &[]);
        let fired = guard.fired();
        drop(guard);
        assert_eq!(rows.len(), clean.len(), "site {site}: stream must not hang");
        for (row, clean_row) in rows.iter().zip(&clean) {
            assert!(
                row == clean_row || is_failed_row(row),
                "site {site}: row is neither clean nor quarantined: {row}"
            );
        }
        if [
            "sweep::cell",
            "sweep::emit",
            "engine::bucket",
            "adaptive::trial",
        ]
        .contains(site)
        {
            assert!(fired > 0, "site {site} never fired");
        }
        if ["sweep::cell", "sweep::emit"].contains(site) {
            // One-shot faults keyed by cell index: the retry must ride
            // every one of them out — no quarantine, identical bytes.
            assert_eq!(rows, clean, "site {site}: retry must converge");
        }
        // Fault cleared: failed rows are retryable, clean rows are cache
        // hits — the resumed sweep converges to fault-free bytes.
        let resumed = collect(&spec, 2, &rows);
        assert_eq!(resumed, clean, "site {site}: resume must converge");
    }
}

#[test]
fn injected_delay_with_cell_timeout_quarantines_then_recovers_on_resume() {
    let _serial = SERIAL
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    // A one-shot injected stall longer than the per-cell watchdog: the
    // first attempt of each cell times out (cooperatively, at a bucket
    // boundary), the retry runs stall-free and must reproduce fault-free
    // bytes. With a schedule stalling *every* attempt the cell must
    // quarantine as timed-out instead of hanging the sweep.
    let spec = micro_spec(12);
    let clean = collect(&spec, 2, &[]);
    let opts = SweepOptions {
        max_attempts: 2,
        cell_timeout: Some(Duration::from_millis(80)),
    };
    let run = |resume: &[String]| {
        let mut streamed = Vec::new();
        let rows = run_sweep_with(&spec, 2, resume, opts, |row| streamed.push(row.to_owned()));
        assert_eq!(rows, streamed);
        rows
    };
    // One-shot stall at the first engine bucket of each cell.
    let guard = faults::install(
        FaultSchedule::new(0xDE1A, 1.0, Fault::Delay(300)).sites(&["engine::bucket"]),
    );
    let rows = run(&[]);
    assert!(guard.fired() > 0);
    drop(guard);
    assert_eq!(rows.len(), clean.len(), "stream must not hang");
    // Every attempt stalls: quarantine, attributed to the watchdog.
    let guard = faults::install(
        FaultSchedule::new(0xDE1B, 1.0, Fault::Delay(300))
            .sites(&["engine::bucket"])
            .fires(u32::MAX),
    );
    let stuck = run(&[]);
    drop(guard);
    assert_eq!(stuck.len(), clean.len(), "stream must not hang");
    let timed_out = stuck.iter().filter(|r| is_failed_row(r)).count();
    assert!(
        timed_out > 0,
        "persistent stalls must quarantine: {stuck:?}"
    );
    for row in stuck.iter().filter(|r| is_failed_row(r)) {
        assert!(row.contains("\"cancelled\":\"timed-out\""), "{row}");
    }
    // Faults cleared: resuming from either run converges to clean bytes.
    assert_eq!(run(&rows), clean);
    assert_eq!(run(&stuck), clean);
}
