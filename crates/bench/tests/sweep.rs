//! The sweep engine's contracts: canonical-order streaming, byte-identical
//! interrupt/resume, and thread-count invariance — exercised through both
//! the library API and the `experiments sweep` CLI.

use ephemeral_bench::sweep::{is_failed_row, parse_cell_id, run_sweep, SweepSpec};
use ephemeral_core::scenario::{GraphFamily, LabelModelSpec, LifetimeRule, Metric};
use ephemeral_parallel::adaptive::AdaptiveConfig;
use std::process::Command;

/// A grid small enough for debug-mode tests but with every axis populated
/// and at least one noisy cell (so the adaptive trial counts differ).
fn tiny_spec(seed: u64) -> SweepSpec {
    SweepSpec {
        families: vec![
            GraphFamily::Clique { directed: true },
            GraphFamily::Gnp { c: 1.5 },
            GraphFamily::Star,
        ],
        models: vec![
            LabelModelSpec::UniformSingle,
            LabelModelSpec::UniformMulti { r: 4 },
        ],
        lifetimes: vec![LifetimeRule::EqualsN],
        metrics: vec![
            Metric::TemporalDiameter,
            Metric::TreachProbability,
            Metric::TreachCorrelated,
        ],
        sizes: vec![16, 24],
        adaptive: AdaptiveConfig::new(0.5)
            .with_min_trials(4)
            .with_batch(4)
            .with_max_trials(20),
        seed,
    }
}

fn collect(spec: &SweepSpec, threads: usize, resume: &[String]) -> Vec<String> {
    let mut streamed = Vec::new();
    let rows = run_sweep(spec, threads, resume, |row| streamed.push(row.to_owned()));
    assert_eq!(rows, streamed, "emit callback must see every row, in order");
    rows
}

#[test]
fn rows_come_out_in_canonical_grid_order() {
    let spec = tiny_spec(1);
    let cells = spec.cells();
    let rows = collect(&spec, 4, &[]);
    assert_eq!(rows.len(), cells.len());
    for (row, cell) in rows.iter().zip(&cells) {
        assert_eq!(parse_cell_id(row), Some(cell.id().as_str()), "{row}");
    }
}

#[test]
fn correlated_rows_attribute_replay_work_and_cold_rows_report_zero() {
    let spec = tiny_spec(1);
    let rows = collect(&spec, 4, &[]);
    let (mut delta_rows, mut cold_rows) = (0, 0);
    for row in &rows {
        assert!(row.contains("\"delta_replayed_buckets\":"), "{row}");
        if row.contains("/treachd\"") {
            delta_rows += 1;
            assert!(
                !row.contains("\"delta_replayed_buckets\":0,"),
                "a correlated chain always replays some buckets: {row}"
            );
        } else {
            cold_rows += 1;
            assert!(
                row.contains("\"delta_replayed_buckets\":0,"),
                "cold-trial metrics never touch the cursor: {row}"
            );
        }
        // The tiny grid sits below the batch crossover, so the sparse
        // engine (and its arena) never runs: the accounting fields are
        // present and zero — pinning the rowfmt 6 schema tail.
        assert!(
            row.ends_with(
                "\"arena_hiwater_words\":0,\"compactions\":0,\"degraded\":0,\"status\":\"ok\"}"
            ),
            "batch-served rows carry zero arena accounting: {row}"
        );
    }
    assert!(delta_rows > 0 && cold_rows > 0);
}

#[test]
fn interrupted_sweep_resumes_byte_identically() {
    let spec = tiny_spec(2);
    let full = collect(&spec, 2, &[]);
    // Kill the sweep "mid-grid" at every possible point, including a torn
    // trailing line: the resumed output must equal the uninterrupted one
    // byte for byte.
    for cut in [0, 1, full.len() / 2, full.len() - 1, full.len()] {
        let mut prefix: Vec<String> = full[..cut].to_vec();
        if cut < full.len() {
            // Simulate a write torn mid-row by the kill.
            prefix.push(full[cut][..full[cut].len() / 2].to_owned());
        }
        let resumed = collect(&spec, 2, &prefix);
        assert_eq!(resumed, full, "cut at {cut}");
    }
}

#[test]
fn resume_reuses_cached_rows_verbatim() {
    let spec = tiny_spec(3);
    let full = collect(&spec, 1, &[]);
    // Doctor one cached row with a value the engine would never produce; a
    // resume must trust the file rather than recompute the cell.
    let mut doctored = full.clone();
    doctored[0] = doctored[0].replace("\"trials\":", "\"marker\":123,\"trials\":");
    let resumed = collect(&spec, 1, &doctored[..1]);
    assert_eq!(resumed[0], doctored[0], "cached row must be kept verbatim");
    assert_eq!(&resumed[1..], &full[1..]);
}

#[test]
fn sweep_is_thread_invariant() {
    let spec = tiny_spec(4);
    let base = collect(&spec, 1, &[]);
    for threads in [2, 8] {
        assert_eq!(collect(&spec, threads, &[]), base, "threads={threads}");
    }
}

#[test]
fn different_seeds_change_results_but_not_cell_ids() {
    let a = collect(&tiny_spec(5), 2, &[]);
    let b = collect(&tiny_spec(6), 2, &[]);
    assert_ne!(a, b);
    let ids_a: Vec<_> = a
        .iter()
        .map(|r| parse_cell_id(r).unwrap().to_owned())
        .collect();
    let ids_b: Vec<_> = b
        .iter()
        .map(|r| parse_cell_id(r).unwrap().to_owned())
        .collect();
    assert_eq!(ids_a, ids_b);
}

#[test]
fn resume_rows_from_a_different_spec_are_recomputed() {
    // Same grid, different seed: ids match but the fingerprint differs, so
    // the stale rows must be ignored — the output equals a fresh run, not a
    // splice of two incompatible sweeps.
    let stale = collect(&tiny_spec(7), 2, &[]);
    let spec = tiny_spec(8);
    let fresh = collect(&spec, 2, &[]);
    assert_ne!(stale, fresh);
    let resumed = collect(&spec, 2, &stale);
    assert_eq!(resumed, fresh, "stale-seed rows must not be reused");
}

#[test]
fn panicking_cell_quarantines_into_failed_row_instead_of_hanging() {
    // n = 1 trips the `scenario families need at least two vertices`
    // assert inside the worker on every attempt; run_sweep must neither
    // deadlock nor kill the stream — each broken cell posts exactly one
    // quarantined row naming the failure, in canonical order.
    let mut spec = tiny_spec(9);
    spec.sizes = vec![1];
    let rows = collect(&spec, 2, &[]);
    assert_eq!(rows.len(), spec.cells().len());
    for (row, cell) in rows.iter().zip(&spec.cells()) {
        assert!(is_failed_row(row), "{row}");
        assert_eq!(parse_cell_id(row), Some(cell.id().as_str()), "{row}");
        assert!(row.contains("\"attempts\":3"), "{row}");
        assert!(row.contains("at least two vertices"), "{row}");
    }
    // Failed rows are retryable, not cache hits: resuming from them (with
    // the defect still present) recomputes and quarantines again.
    let resumed = collect(&spec, 2, &rows);
    assert_eq!(resumed, rows);
}

#[test]
fn parse_cell_id_rejects_torn_and_foreign_lines() {
    assert_eq!(
        parse_cell_id(r#"{"cell":"star/n=16/uni1/a=n/td","trials":4}"#),
        Some("star/n=16/uni1/a=n/td")
    );
    assert_eq!(
        parse_cell_id(r#"{"cell":"star/n=16/uni1/a=n/td","tri"#),
        None
    );
    assert_eq!(parse_cell_id(r#"{"table":"E02","n":"64"}"#), None);
    assert_eq!(parse_cell_id(""), None);
}

fn run_cli(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_experiments"))
        .args(args)
        .output()
        .expect("experiments binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn cli_quick_sweep_emits_one_json_row_per_cell() {
    let (ok, stdout, stderr) = run_cli(&["sweep", "--quick", "--format", "json", "--seed", "7"]);
    assert!(ok, "{stderr}");
    let expected = SweepSpec::quick(7).cells();
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), expected.len(), "{stdout}");
    for (line, cell) in lines.iter().zip(&expected) {
        assert_eq!(parse_cell_id(line), Some(cell.id().as_str()), "{line}");
    }
    // The quick grid straddles the batch crossover and mixes dense and
    // sparse substrates, so all three sweep engines must appear in its
    // rows (the CI gate greps for the same three tags).
    for tag in [
        "\"engine\":\"batch\"",
        "\"engine\":\"wide\"",
        "\"engine\":\"sparse\"",
    ] {
        assert!(
            lines.iter().any(|l| l.contains(tag)),
            "quick grid rows miss {tag}: {stdout}"
        );
    }
}

#[test]
fn all_filtered_cells_terminate_at_the_cap_with_null_half_width() {
    // A single-label star *always* has an infinite instance diameter (the
    // leaf behind the maximum label cannot reach any other leaf), so every
    // trial of this cell is filtered: the adaptive loop must still stop at
    // the trial cap, the half-width must render as null (never NaN), and
    // the row must record the full excluded fraction.
    let spec = SweepSpec {
        families: vec![GraphFamily::Star],
        models: vec![LabelModelSpec::UniformSingle],
        lifetimes: vec![LifetimeRule::EqualsN],
        metrics: vec![Metric::TemporalDiameter],
        sizes: vec![224],
        adaptive: AdaptiveConfig::new(0.5)
            .with_min_trials(4)
            .with_batch(4)
            .with_max_trials(12),
        seed: 21,
    };
    let rows = collect(&spec, 2, &[]);
    assert_eq!(rows.len(), 1);
    let row = &rows[0];
    assert!(row.contains("\"trials\":12"), "{row}");
    assert!(row.contains("\"converged\":false"), "{row}");
    assert!(row.contains("\"half_width\":null"), "{row}");
    assert!(row.contains("\"failures\":1.0000"), "{row}");
    assert!(row.contains("\"estimate\":0.0000"), "{row}");
    assert!(
        row.contains("\"engine\":\"sparse\""),
        "a 224-star dispatches event-driven: {row}"
    );
    assert!(
        !row.contains("\"arena_hiwater_words\":0,"),
        "a sparse-served cell reports its arena high-water mark: {row}"
    );
}

#[test]
fn cli_resume_round_trip_is_byte_identical() {
    let dir = std::env::temp_dir().join(format!("ephemeral-sweep-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let out_path = dir.join("sweep.jsonl");
    let out = out_path.to_str().unwrap();

    let (ok, full_stdout, stderr) = run_cli(&["sweep", "--quick", "--seed", "3", "--out", out]);
    assert!(ok, "{stderr}");
    let full_file = std::fs::read_to_string(&out_path).unwrap();
    assert_eq!(full_file, full_stdout);

    // Simulate the kill: truncate the file mid-grid, mid-line.
    let keep: String = full_file
        .lines()
        .take(5)
        .map(|l| format!("{l}\n"))
        .collect::<String>()
        + "{\"cell\":\"torn";
    std::fs::write(&out_path, &keep).unwrap();

    let (ok, resumed_stdout, stderr) = run_cli(&[
        "sweep", "--quick", "--seed", "3", "--resume", out, "--out", out,
    ]);
    assert!(ok, "{stderr}");
    assert_eq!(
        resumed_stdout, full_stdout,
        "stdout must match the uninterrupted run"
    );
    assert_eq!(
        std::fs::read_to_string(&out_path).unwrap(),
        full_file,
        "--out file must match the uninterrupted run"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cli_rejects_markdown_format_and_unknown_flags() {
    let (ok, _, stderr) = run_cli(&["sweep", "--format", "markdown"]);
    assert!(!ok);
    assert!(stderr.contains("JSON lines only"), "{stderr}");
    let (ok, _, stderr) = run_cli(&["sweep", "--frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown sweep argument"), "{stderr}");
}
