//! Closed-form theoretical curves quoted by the paper, used as the
//! comparison columns of the experiment tables.

/// Theorem 4's upper bound shape: `γ·ln n`.
#[must_use]
pub fn gamma_ln(n: usize, gamma: f64) -> f64 {
    gamma * (n.max(2) as f64).ln()
}

/// Theorem 5's lower bound shape for lifetime `a ≫ n`: `(a/n)·ln n`.
#[must_use]
pub fn lifetime_bound(n: usize, a: u64) -> f64 {
    a as f64 / n.max(1) as f64 * (n.max(2) as f64).ln()
}

/// Frieze–Grimmett broadcast time for the random phone-call push model on
/// the complete graph: `log₂ n + ln n` (+o(log n)).
#[must_use]
pub fn frieze_grimmett(n: usize) -> f64 {
    let nf = n.max(2) as f64;
    nf.log2() + nf.ln()
}

/// Karp et al.'s transmission bound for push–pull: `Θ(n·ln ln n)`.
#[must_use]
pub fn karp_transmissions(n: usize) -> f64 {
    let nf = (n.max(3)) as f64;
    nf * nf.ln().ln().max(0.1)
}

/// The Erdős–Rényi connectivity threshold `p = ln n / n`.
#[must_use]
pub fn connectivity_threshold(n: usize) -> f64 {
    (n.max(2) as f64).ln() / n.max(2) as f64
}

/// The push protocol's expected message count on the complete graph when it
/// runs for `rounds` rounds: one transmission per informed node per round —
/// `Θ(n log n)` in total.
#[must_use]
pub fn push_message_scale(n: usize) -> f64 {
    let nf = n.max(2) as f64;
    nf * nf.ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curves_are_monotone_in_n() {
        {
            let f = gamma_ln as fn(usize, f64) -> f64;
            assert!(f(1000, 1.0) > f(100, 1.0));
        }
        assert!(frieze_grimmett(1 << 16) > frieze_grimmett(1 << 8));
        assert!(karp_transmissions(10_000) > karp_transmissions(100));
        assert!(push_message_scale(10_000) > push_message_scale(100));
    }

    #[test]
    fn lifetime_bound_is_linear_in_a() {
        let x = lifetime_bound(128, 128);
        let y = lifetime_bound(128, 256);
        assert!((y / x - 2.0).abs() < 1e-12);
    }

    #[test]
    fn threshold_decreases_in_n() {
        assert!(connectivity_threshold(100) > connectivity_threshold(10_000));
        // ln(n)/n at n = e² ≈ 7.39: sanity value.
        assert!((connectivity_threshold(100) - 100f64.ln() / 100.0).abs() < 1e-12);
    }

    #[test]
    fn frieze_grimmett_known_value() {
        // log2(1024) + ln(1024) = 10 + 6.931…
        assert!((frieze_grimmett(1024) - (10.0 + 1024f64.ln())).abs() < 1e-9);
    }

    #[test]
    fn degenerate_inputs_are_clamped() {
        assert!(gamma_ln(0, 1.0) > 0.0);
        assert!(connectivity_threshold(1) > 0.0);
        assert!(karp_transmissions(1) > 0.0);
    }
}
