//! Correlated what-if estimation of `P[T_reach]` through the
//! differential cursor.
//!
//! The Monte Carlo estimators in [`reachability_whp`](crate::reachability_whp)
//! redraw **every** label between trials, so each trial pays a cold
//! all-source sweep. This module explores the complementary regime the
//! [`DeltaCursor`](ephemeral_temporal::delta::DeltaCursor) exists for:
//! single-site Gibbs chains where consecutive assignments differ in one
//! label, so each step replays only the handful of perturbed buckets
//! instead of sweeping cold.
//!
//! Per step the `T_reach` sample itself is O(1): journeys are paths, so
//! temporal reach is a subset of static reach source by source, and the
//! **total** maintained bit count equals the static total iff every
//! source matches ([`static_reachable_pairs`]). No per-step sweep, no
//! per-step comparison pass.
//!
//! ## Statistics, honestly
//!
//! Within a chain consecutive samples are highly correlated (they share
//! all but one label), so they are *not* independent draws from the
//! UNI-CASE distribution conditioned on anything useful — but each
//! chain's *marginal* per-step distribution is exactly UNI-CASE once
//! the chain starts from a fresh uniform draw, because resampling a
//! uniformly chosen label of a uniformly chosen edge to a fresh uniform
//! value maps the product-uniform distribution to itself (the move is a
//! Gibbs update whose stationary law is the i.i.d. prior, and the
//! chain *starts* stationary). The estimate is therefore unbiased; only
//! the *variance* is inflated by autocorrelation. The reported
//! half-width comes from the spread of the per-chain means across
//! independent chains — the standard batch-means construction — and
//! stays honest regardless of the within-chain correlation length. For
//! the same reason [`minimal_r`](crate::reachability_whp::minimal_r)
//! keeps its independent cold draws: its bisection wants the tightest
//! CI per sweep, not the cheapest sample per step.

use crate::urtn::{placeholder_network, propose_label_move, resample_single_in_place};
use ephemeral_graph::algo::{bfs_distances, connected_components, UNREACHABLE};
use ephemeral_graph::Graph;
use ephemeral_parallel::par_map_with;
use ephemeral_rng::SeedSequence;
use ephemeral_temporal::wide::SweepScratch;
use ephemeral_temporal::{LabelAssignment, Time};

/// Seed stream tag for the per-chain rng streams.
const CHAIN_STREAM: u64 = 0xC0;

/// Ordered static reachability count of `graph`, **including** each
/// vertex reaching itself — the `reached_bits` total a temporal closure
/// attains exactly when the assignment satisfies `T_reach`
/// (Definition 6). Undirected graphs sum squared component sizes;
/// directed graphs run one BFS per source.
#[must_use]
pub fn static_reachable_pairs(graph: &Graph) -> usize {
    if graph.is_directed() {
        (0..graph.num_nodes() as u32)
            .map(|s| {
                bfs_distances(graph, s)
                    .iter()
                    .filter(|&&d| d != UNREACHABLE)
                    .count()
            })
            .sum()
    } else {
        connected_components(graph)
            .sizes
            .iter()
            .map(|&s| (s as usize) * (s as usize))
            .sum()
    }
}

/// The result of [`treach_probability_correlated`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorrelatedTreach {
    /// Mean of the per-chain `T_reach` frequencies (unbiased for the
    /// UNI-CASE probability; see the module-level statistics note).
    pub estimate: f64,
    /// `1.96 ×` the standard error of the per-chain means — a 95%
    /// interval built from *independent* chains only, immune to the
    /// within-chain autocorrelation (`∞` when `chains < 2`).
    pub half_width: f64,
    /// Independent chains run.
    pub chains: usize,
    /// Gibbs steps proposed per chain (samples per chain is one more:
    /// the freshly drawn starting state counts).
    pub steps_per_chain: usize,
    /// Total `T_reach` samples taken (`chains × (steps_per_chain + 1)`).
    pub samples: usize,
    /// Proposals actually applied (no-op and colliding draws are
    /// rejected by the move semantics and re-sample the same state).
    pub applied_moves: usize,
    /// Total buckets the differential cursor replayed across every
    /// applied move — the work a cold driver would have spent full
    /// sweeps on.
    pub replayed_buckets: usize,
    /// Mean temporally reachable **ordered off-diagonal** pairs per
    /// sample — the free continuous observable of the maintained
    /// closure (`reached_bits − n`, read in O(1) per step).
    pub mean_reachable_pairs: f64,
    /// `1.96 ×` the between-chain standard error of the per-chain
    /// reachable-pair means (`∞` when `chains < 2`).
    pub reach_half_width: f64,
}

/// Estimate `P[T_reach]` under UNI-CASE labels on `graph` with the
/// given `lifetime`, using `chains` independent single-site Gibbs
/// chains of `steps_per_chain` moves each, every chain maintained
/// differentially by a [`DeltaCursor`](ephemeral_temporal::delta::DeltaCursor)
/// (one recorded sweep per chain, then one
/// [`apply_label_move`](ephemeral_temporal::delta::DeltaCursor::apply_label_move)
/// per step).
///
/// Deterministic in `(graph, lifetime, chains, steps_per_chain, seed)`
/// — never in `threads`: each chain's rng stream is keyed by its index.
///
/// # Panics
/// If `graph` has no edges, `lifetime == 0`, or `chains == 0`.
#[must_use]
pub fn treach_probability_correlated(
    graph: &Graph,
    lifetime: Time,
    chains: usize,
    steps_per_chain: usize,
    seed: u64,
    threads: usize,
) -> CorrelatedTreach {
    assert!(graph.num_edges() > 0, "chains need at least one edge");
    assert!(chains > 0, "at least one chain is required");
    let target = static_reachable_pairs(graph);
    let ids: Vec<u64> = (0..chains as u64).collect();
    let init = || {
        (
            placeholder_network(graph, lifetime),
            LabelAssignment::default(),
            SweepScratch::new(),
        )
    };
    let n = graph.num_nodes();
    let per_chain = par_map_with(&ids, threads, init, |(tn, spare, scratch), _, &c| {
        let mut rng = SeedSequence::new(seed).child(CHAIN_STREAM).rng(c);
        resample_single_in_place(tn, spare, &mut rng);
        let (stats, _) = scratch.record_delta(tn);
        let mut hits = usize::from(stats.reached_bits == target);
        let mut reach_sum = (stats.reached_bits - n) as u64;
        let mut applied = 0usize;
        let mut replayed = 0usize;
        for _ in 0..steps_per_chain {
            let (e, from, to) = propose_label_move(tn, &mut rng);
            if let Some(a) = scratch.delta.apply_label_move(tn, e, from, to) {
                applied += 1;
                replayed += a.replayed_buckets;
            }
            let reached = scratch.delta.stats().reached_bits;
            hits += usize::from(reached == target);
            reach_sum += (reached - n) as u64;
        }
        (hits, applied, replayed, reach_sum)
    });

    let samples_per_chain = steps_per_chain + 1;
    let mean_and_se = |means: &[f64]| {
        let mean = means.iter().sum::<f64>() / chains as f64;
        let half = if chains >= 2 {
            let var = means.iter().map(|m| (m - mean).powi(2)).sum::<f64>() / (chains - 1) as f64;
            1.96 * (var / chains as f64).sqrt()
        } else {
            f64::INFINITY
        };
        (mean, half)
    };
    let hit_means: Vec<f64> = per_chain
        .iter()
        .map(|&(hits, ..)| hits as f64 / samples_per_chain as f64)
        .collect();
    let reach_means: Vec<f64> = per_chain
        .iter()
        .map(|&(.., reach)| reach as f64 / samples_per_chain as f64)
        .collect();
    let (estimate, half_width) = mean_and_se(&hit_means);
    let (mean_reachable_pairs, reach_half_width) = mean_and_se(&reach_means);
    CorrelatedTreach {
        estimate,
        half_width,
        chains,
        steps_per_chain,
        samples: chains * samples_per_chain,
        applied_moves: per_chain.iter().map(|&(_, a, _, _)| a).sum(),
        replayed_buckets: per_chain.iter().map(|&(_, _, r, _)| r).sum(),
        mean_reachable_pairs,
        reach_half_width,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ephemeral_graph::{generators, GraphBuilder};
    use ephemeral_temporal::reachability::treach_holds;

    #[test]
    fn static_pairs_count_components_and_directions() {
        // Two undirected components of sizes 3 and 2: 9 + 4.
        let mut b = GraphBuilder::new_undirected(5);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(3, 4);
        assert_eq!(static_reachable_pairs(&b.build().unwrap()), 13);
        // Directed path 0→1→2: sources reach 3, 2, 1 vertices.
        let mut b = GraphBuilder::new_directed(3);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        assert_eq!(static_reachable_pairs(&b.build().unwrap()), 6);
    }

    #[test]
    fn clique_chains_always_hold() {
        // The undirected clique satisfies T_reach under any single
        // labelling (the direct edge is a one-hop journey), so every
        // sample in every chain hits.
        let g = generators::clique(12, false);
        let out = treach_probability_correlated(&g, 12, 3, 40, 7, 2);
        assert_eq!(out.estimate, 1.0);
        assert_eq!(out.samples, 3 * 41);
        assert!(out.applied_moves > 0);
        assert_eq!(out.half_width, 0.0);
        assert_eq!(out.mean_reachable_pairs, (12 * 11) as f64);
        assert_eq!(out.reach_half_width, 0.0);
    }

    #[test]
    fn star_chains_essentially_never_hold() {
        let g = generators::star(16);
        let out = treach_probability_correlated(&g, 16, 3, 40, 7, 2);
        assert!(out.estimate < 0.3, "estimate {}", out.estimate);
    }

    #[test]
    fn differential_samples_match_cold_reevaluation() {
        // Replay chain 0's exact rng stream with a cold full T_reach
        // check per step; the differential estimator's hit count must
        // agree sample for sample.
        let g = generators::cycle(24);
        let lifetime = 36;
        let (seed, steps) = (11, 60);
        let out = treach_probability_correlated(&g, lifetime, 1, steps, seed, 1);
        let mut rng = SeedSequence::new(seed).child(CHAIN_STREAM).rng(0);
        let mut tn = placeholder_network(&g, lifetime);
        let mut spare = LabelAssignment::default();
        resample_single_in_place(&mut tn, &mut spare, &mut rng);
        let mut hits = usize::from(treach_holds(&tn, 1));
        let mut applied = 0usize;
        for _ in 0..steps {
            let (e, from, to) = propose_label_move(&tn, &mut rng);
            applied += usize::from(tn.move_label(e, from, to).is_some());
            hits += usize::from(treach_holds(&tn, 1));
        }
        assert_eq!(out.applied_moves, applied);
        assert_eq!(out.estimate, hits as f64 / (steps + 1) as f64);
    }

    #[test]
    fn estimation_is_deterministic_and_thread_invariant() {
        let mut rng = ephemeral_rng::default_rng(3);
        let g = generators::gnp(48, 0.12, false, &mut rng);
        let base = treach_probability_correlated(&g, 48, 4, 30, 5, 1);
        for threads in [2, 8] {
            let again = treach_probability_correlated(&g, 48, 4, 30, 5, threads);
            assert_eq!(again, base, "threads {threads}");
        }
        assert_ne!(treach_probability_correlated(&g, 48, 4, 30, 6, 2), base);
        assert!(base.half_width.is_finite());
    }
}
