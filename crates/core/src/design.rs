//! Availability design (§6, "conclusions and further research"): *"the
//! subject of designing the availability of a net (by combining random
//! availabilities and optimal local availabilities) is a subject of our
//! current research."*
//!
//! This module implements the natural first instantiation of that
//! programme: a **deterministic backbone + random extras** design. A BFS
//! spanning tree receives the box-scheme labels (guaranteeing `T_reach`
//! outright, at `(n−1)·d(T)` labels), and every non-tree edge buys `r`
//! additional uniformly random availability slots. Reachability is then
//! certain; what the random extras buy is *latency* — shorter foremost
//! journeys — so the design question becomes a measurable cost/performance
//! trade-off: labels spent vs average temporal distance.

use crate::models::{LabelModel, UniformMulti};
use ephemeral_graph::algo::bfs_tree;
use ephemeral_graph::{Graph, NodeId};
use ephemeral_parallel::par_for;
use ephemeral_rng::RandomSource;
use ephemeral_temporal::foremost::foremost;
use ephemeral_temporal::{LabelAssignment, TemporalNetwork, Time, NEVER};

/// A designed temporal network: deterministic tree backbone + `r` random
/// labels on each non-tree edge.
#[derive(Debug, Clone)]
pub struct DesignedNetwork {
    /// The network.
    pub network: TemporalNetwork,
    /// Labels spent on the backbone.
    pub backbone_labels: usize,
    /// Labels spent on random extras.
    pub random_labels: usize,
}

/// Build the backbone + extras design over a connected graph.
///
/// The backbone tree edges carry `{1, …, d(T)}` (box scheme on the BFS tree
/// rooted at `root`); every non-tree edge carries `r_extra` i.i.d. uniform
/// labels from `{1, …, lifetime}`.
///
/// Returns `None` if the graph is disconnected.
///
/// # Panics
/// If `root` is out of range or `lifetime` is smaller than the backbone
/// needs.
#[must_use]
pub fn backbone_with_random_extras(
    g: &Graph,
    root: NodeId,
    r_extra: usize,
    lifetime: Time,
    rng: &mut impl RandomSource,
) -> Option<DesignedNetwork> {
    let n = g.num_nodes();
    let tree = bfs_tree(g, root);
    if !tree.is_spanning() {
        return None;
    }
    // Tree height bounds the tree diameter by 2·height; the box depth
    // 2·height is always sufficient and avoids a second diameter pass.
    let depth = (2 * tree.height()).max(1);
    assert!(
        depth <= lifetime,
        "backbone needs lifetime >= {depth}, got {lifetime}"
    );
    let mut is_tree_edge = vec![false; g.num_edges()];
    for &e in &tree.edges {
        is_tree_edge[e as usize] = true;
    }
    let extras_model = UniformMulti {
        lifetime,
        r: r_extra.max(1),
    };
    let extras = if r_extra > 0 {
        Some(extras_model.assign(g.num_edges(), rng))
    } else {
        None
    };
    let backbone: Vec<Time> = (1..=depth).collect();
    let mut backbone_labels = 0usize;
    let mut random_labels = 0usize;
    let assignment = LabelAssignment::from_fn(g.num_edges(), |e| {
        if is_tree_edge[e as usize] {
            backbone_labels += backbone.len();
            backbone.clone()
        } else if let Some(extras) = &extras {
            let l = extras.labels(e).to_vec();
            random_labels += l.len();
            l
        } else {
            vec![]
        }
    })?;
    let network = TemporalNetwork::new(g.clone(), assignment, lifetime).ok()?;
    let _ = n;
    Some(DesignedNetwork {
        network,
        backbone_labels,
        random_labels,
    })
}

/// Average finite temporal distance over all ordered pairs (and the count
/// of unreachable pairs) — the latency metric of the design trade-off.
#[must_use]
pub fn average_temporal_distance(tn: &TemporalNetwork, threads: usize) -> (f64, usize) {
    let n = tn.num_nodes();
    let per_source = par_for(n, threads, |s| {
        let run = foremost(tn, s as NodeId, 0);
        let mut sum = 0u64;
        let mut count = 0usize;
        let mut missing = 0usize;
        for (v, &a) in run.arrivals().iter().enumerate() {
            if v == s {
                continue;
            }
            if a == NEVER {
                missing += 1;
            } else {
                sum += u64::from(a);
                count += 1;
            }
        }
        (sum, count, missing)
    });
    let mut sum = 0u64;
    let mut count = 0usize;
    let mut missing = 0usize;
    for (s, c, m) in per_source {
        sum += s;
        count += c;
        missing += m;
    }
    let avg = if count == 0 {
        0.0
    } else {
        sum as f64 / count as f64
    };
    (avg, missing)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ephemeral_graph::generators;
    use ephemeral_rng::default_rng;
    use ephemeral_temporal::reachability::treach_holds;

    #[test]
    fn backbone_alone_guarantees_reachability() {
        let g = generators::grid(5, 5);
        let mut rng = default_rng(1);
        let d = backbone_with_random_extras(&g, 0, 0, 25, &mut rng).unwrap();
        assert!(treach_holds(&d.network, 2));
        assert_eq!(d.random_labels, 0);
        assert!(d.backbone_labels >= g.num_nodes() - 1);
    }

    #[test]
    fn extras_never_break_reachability() {
        let g = generators::grid(4, 6);
        for r in [1usize, 4, 16] {
            let mut rng = default_rng(r as u64);
            let d = backbone_with_random_extras(&g, 0, r, 24, &mut rng).unwrap();
            assert!(treach_holds(&d.network, 2), "r = {r}");
            assert!(d.random_labels > 0);
        }
    }

    #[test]
    fn extras_reduce_average_latency() {
        // On a torus (many non-tree edges) random extras open shortcuts.
        let g = generators::torus(6, 6);
        let mut rng = default_rng(7);
        let plain = backbone_with_random_extras(&g, 0, 0, 36, &mut rng).unwrap();
        let (base_avg, base_missing) = average_temporal_distance(&plain.network, 2);
        assert_eq!(base_missing, 0);

        let mut improved = 0;
        const RUNS: usize = 5;
        for seed in 0..RUNS as u64 {
            let mut rng = default_rng(100 + seed);
            let rich = backbone_with_random_extras(&g, 0, 8, 36, &mut rng).unwrap();
            let (avg, missing) = average_temporal_distance(&rich.network, 2);
            assert_eq!(missing, 0);
            if avg < base_avg {
                improved += 1;
            }
        }
        assert!(
            improved >= RUNS - 1,
            "extras should shorten journeys ({improved}/{RUNS} runs improved)"
        );
    }

    #[test]
    fn disconnected_graph_returns_none() {
        let mut b = ephemeral_graph::GraphBuilder::new_undirected(4);
        b.add_edge(0, 1);
        let g = b.build().unwrap();
        let mut rng = default_rng(9);
        assert!(backbone_with_random_extras(&g, 0, 2, 10, &mut rng).is_none());
    }

    #[test]
    fn label_accounting_matches_assignment() {
        let g = generators::cycle(10);
        let mut rng = default_rng(11);
        let d = backbone_with_random_extras(&g, 0, 3, 20, &mut rng).unwrap();
        // The stored assignment equals the reported accounting exactly:
        // the counters are incremented with the *stored* (deduplicated)
        // label sets.
        assert_eq!(
            d.network.assignment().total_labels(),
            d.backbone_labels + d.random_labels
        );
        // Cycle on 10 nodes: 9 tree edges, 1 chord with ≤ 3 random labels.
        assert!(d.random_labels >= 1 && d.random_labels <= 3);
    }

    #[test]
    #[should_panic(expected = "backbone needs lifetime")]
    fn short_lifetime_panics() {
        let g = generators::path(10);
        let mut rng = default_rng(13);
        let _ = backbone_with_random_extras(&g, 0, 0, 3, &mut rng);
    }
}
