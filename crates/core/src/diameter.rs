//! Monte Carlo estimation of the Temporal Diameter (Definition 5,
//! Theorems 3–4).
//!
//! `TD(G) = E[max_{s,t} δ(s,t)]` over the random labelling. Per trial we
//! draw a fresh UNI-CASE assignment into per-worker scratch buffers over a
//! shared graph CSR, rebuild the time-edge index in place, and compute the
//! instance diameter exactly through whichever journey engine the
//! density-aware `EngineChoice` selects — the single-pass wide-frontier
//! sweep on dense instances above the batch crossover, the event-driven
//! sparse sweep on sparse ones, the 64-lane batched engine below — then
//! summarise across trials. Theorem 4 predicts `TD ≤ γ·log n` w.h.p. for
//! the directed normalized U-RT clique; experiment E02 fits `γ`.

use ephemeral_graph::{generators, Graph};
use ephemeral_parallel::adaptive::{
    run_adaptive, AdaptiveConfig, AdaptiveRun, FilteredMeanAccumulator,
};
use ephemeral_parallel::stats::{OnlineStats, Summary};
use ephemeral_parallel::{available_threads, par_for_with};
use ephemeral_rng::SeedSequence;
use ephemeral_temporal::distance::{
    instance_temporal_diameter, instance_temporal_diameter_scratch,
};
use ephemeral_temporal::wide::SweepScratch;
use ephemeral_temporal::{LabelAssignment, TemporalNetwork, Time};

/// Monte Carlo estimate of the temporal diameter of a random temporal
/// network family.
#[derive(Debug, Clone, PartialEq)]
pub struct TemporalDiameterEstimate {
    /// Summary of the finite instance diameters.
    pub finite: Summary,
    /// Trials whose instance diameter was infinite (some pair unreachable).
    pub infinite_instances: usize,
    /// Total trials.
    pub trials: usize,
    /// `mean / ln n` — the empirical `γ` against the natural log.
    pub gamma_ln: f64,
    /// `mean / log₂ n` — the empirical `γ` against the binary log.
    pub gamma_log2: f64,
}

/// Per-worker trial scratch: one owned copy of the network whose labels are
/// redrawn in place each trial, the spare assignment the draw writes into,
/// and both journey-engine sweepers — so a full Monte Carlo run performs no
/// per-trial allocation once the buffers are warm (locked in by the
/// allocation regression test in `tests/alloc_regression.rs`).
struct TrialScratch {
    tn: TemporalNetwork,
    spare: LabelAssignment,
    sweeper: SweepScratch,
}

impl TrialScratch {
    fn new(graph: &Graph, lifetime: Time) -> Self {
        Self {
            tn: crate::urtn::placeholder_network(graph, lifetime),
            spare: LabelAssignment::default(),
            sweeper: SweepScratch::new(),
        }
    }

    /// Draw trial `trial`'s labels into the spare buffers, swap them into
    /// the network, and return the instance diameter. The engine is
    /// picked per instance by the density-aware dispatch (batched below
    /// the crossover, wide/sparse by occupied-bucket fill above it);
    /// `inner_threads > 1` additionally shards the instance across
    /// workers, 1 reuses this scratch's sweepers. All paths report
    /// identical numbers.
    fn run_trial(
        &mut self,
        seq: &SeedSequence,
        trial: usize,
        inner_threads: usize,
    ) -> (Time, bool) {
        let mut rng = seq.rng(trial as u64);
        crate::urtn::resample_single_in_place(&mut self.tn, &mut self.spare, &mut rng);
        let d = if inner_threads <= 1 {
            instance_temporal_diameter_scratch(&self.tn, &mut self.sweeper)
        } else {
            instance_temporal_diameter(&self.tn, inner_threads)
        };
        match d.value() {
            Some(v) => (v, true),
            None => (d.max_finite, false),
        }
    }
}

/// Estimate `TD` of the UNI-CASE model over a fixed graph. Each worker owns
/// one copy of the graph CSR for the whole run; each trial redraws labels
/// into per-worker scratch and runs the batch engine — batches × threads,
/// not sources × threads.
///
/// # Panics
/// If `trials == 0`, the graph is empty, or `lifetime == 0`.
#[must_use]
pub fn td_montecarlo(
    graph: &Graph,
    lifetime: Time,
    trials: usize,
    seed: u64,
    threads: usize,
) -> TemporalDiameterEstimate {
    assert!(trials > 0, "need at least one trial");
    let n = graph.num_nodes();
    assert!(n > 0, "graph must be non-empty");
    let seq = SeedSequence::new(seed);

    // Memory strategy: for large graphs a clique instance is ~100 MB, so
    // trials run sequentially with batch-level parallelism inside; for
    // small graphs one trial's few batches cannot feed many threads, so we
    // fan out across trials instead (one scratch per worker).
    let big = graph.num_edges() >= 1 << 20;
    let results: Vec<(Time, bool)> = if big {
        let mut scratch = TrialScratch::new(graph, lifetime);
        (0..trials)
            .map(|i| scratch.run_trial(&seq, i, threads))
            .collect()
    } else {
        par_for_with(
            trials,
            threads,
            || TrialScratch::new(graph, lifetime),
            |scratch, i| scratch.run_trial(&seq, i, 1),
        )
    };

    summarise(results, n)
}

fn summarise(results: Vec<(Time, bool)>, n: usize) -> TemporalDiameterEstimate {
    let trials = results.len();
    let finite_samples: Vec<f64> = results
        .iter()
        .filter(|&&(_, finite)| finite)
        .map(|&(v, _)| f64::from(v))
        .collect();
    let infinite_instances = trials - finite_samples.len();
    let finite = Summary::from_samples(&finite_samples);
    let ln_n = (n.max(2) as f64).ln();
    let log2_n = (n.max(2) as f64).log2();
    TemporalDiameterEstimate {
        gamma_ln: finite.mean / ln_n,
        gamma_log2: finite.mean / log2_n,
        finite,
        infinite_instances,
        trials,
    }
}

/// [`td_montecarlo`] with **adaptive** trial allocation: batches run until
/// the CI half-width of the mean finite instance diameter reaches the
/// config's target, or its trial cap. Trials are spent only where variance
/// demands them — a low-variance size stops early, a noisy one keeps
/// sampling. Deterministic in `(graph, lifetime, cfg, seed)` regardless of
/// `threads`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveDiameterEstimate {
    /// Moments of the finite instance diameters.
    pub finite: OnlineStats,
    /// CI half-width of the finite mean at the config's confidence level.
    pub half_width: f64,
    /// Did the run hit the target precision before the cap?
    pub converged: bool,
    /// Trials whose instance diameter was infinite (some pair unreachable).
    pub infinite_instances: usize,
    /// Total trials executed.
    pub trials: usize,
    /// `mean / ln n` — the empirical `γ` against the natural log.
    pub gamma_ln: f64,
    /// `mean / log₂ n` — the empirical `γ` against the binary log.
    pub gamma_log2: f64,
}

/// Adaptive-stopping estimate of `TD` over a fixed graph (see
/// [`AdaptiveDiameterEstimate`]). Uses the same per-worker scratch loop as
/// [`td_montecarlo`]; large graphs (≥ 2²⁰ edges) run trials sequentially
/// with batch-level engine parallelism instead, without changing any
/// reported number.
///
/// # Panics
/// If the graph is empty or `lifetime == 0`.
#[must_use]
pub fn td_montecarlo_adaptive(
    graph: &Graph,
    lifetime: Time,
    cfg: &AdaptiveConfig,
    seed: u64,
    threads: usize,
) -> AdaptiveDiameterEstimate {
    let n = graph.num_nodes();
    assert!(n > 0, "graph must be non-empty");
    let seq = SeedSequence::new(seed);
    let big = graph.num_edges() >= 1 << 20;
    let (outer_threads, inner_threads) = if big { (1, threads) } else { (threads, 1) };
    let run: AdaptiveRun<FilteredMeanAccumulator> = run_adaptive(
        cfg,
        seed,
        outer_threads,
        || TrialScratch::new(graph, lifetime),
        |scratch, trial, _| {
            // TrialScratch derives the trial generator itself from `seq`
            // (identical construction — the rng handed in is untouched).
            let (v, finite) = scratch.run_trial(&seq, trial, inner_threads);
            (f64::from(v), finite)
        },
    );
    let finite = run.accumulator.accepted;
    let ln_n = (n.max(2) as f64).ln();
    let log2_n = (n.max(2) as f64).log2();
    AdaptiveDiameterEstimate {
        gamma_ln: finite.mean() / ln_n,
        gamma_log2: finite.mean() / log2_n,
        finite,
        half_width: run.half_width,
        converged: run.converged,
        infinite_instances: run.accumulator.rejected,
        trials: run.trials,
    }
}

/// Estimate `TD` of the directed (or undirected) normalized U-RT clique —
/// the headline quantity of §3.
#[must_use]
pub fn clique_td_montecarlo(
    n: usize,
    directed: bool,
    trials: usize,
    seed: u64,
) -> TemporalDiameterEstimate {
    let graph = generators::clique(n, directed);
    td_montecarlo(&graph, n as Time, trials, seed, available_threads())
}

/// Estimate `TD` of a U-RT clique with an arbitrary lifetime (Theorem 5's
/// regime when `lifetime ≫ n`).
#[must_use]
pub fn clique_td_with_lifetime(
    n: usize,
    directed: bool,
    lifetime: Time,
    trials: usize,
    seed: u64,
) -> TemporalDiameterEstimate {
    let graph = generators::clique(n, directed);
    td_montecarlo(&graph, lifetime, trials, seed, available_threads())
}

/// Adaptive-stopping estimate of `TD` of the normalized U-RT clique.
#[must_use]
pub fn clique_td_adaptive(
    n: usize,
    directed: bool,
    cfg: &AdaptiveConfig,
    seed: u64,
) -> AdaptiveDiameterEstimate {
    let graph = generators::clique(n, directed);
    td_montecarlo_adaptive(&graph, n as Time, cfg, seed, available_threads())
}

/// Adaptive-stopping estimate of `TD` of a U-RT clique with an arbitrary
/// lifetime (Theorem 5's regime).
#[must_use]
pub fn clique_td_with_lifetime_adaptive(
    n: usize,
    directed: bool,
    lifetime: Time,
    cfg: &AdaptiveConfig,
    seed: u64,
) -> AdaptiveDiameterEstimate {
    let graph = generators::clique(n, directed);
    td_montecarlo_adaptive(&graph, lifetime, cfg, seed, available_threads())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn urt_clique_diameter_is_logarithmic() {
        let est = clique_td_montecarlo(128, true, 20, 1);
        assert_eq!(est.trials, 20);
        assert_eq!(est.infinite_instances, 0, "clique instances are connected");
        // Θ(log n): between log2(n)/2 and 8·ln n at this size.
        let ln_n = 128f64.ln();
        assert!(
            est.finite.mean > 0.5 * 128f64.log2(),
            "mean {}",
            est.finite.mean
        );
        assert!(est.finite.mean < 8.0 * ln_n, "mean {}", est.finite.mean);
        assert!(est.gamma_ln > 0.0 && est.gamma_log2 > 0.0);
    }

    #[test]
    fn undirected_clique_behaves_like_directed() {
        // Remark 1: the undirected case is not significantly different.
        let dir = clique_td_montecarlo(64, true, 15, 2);
        let und = clique_td_montecarlo(64, false, 15, 2);
        assert_eq!(und.infinite_instances, 0);
        // Undirected labels serve both directions: diameter within 2x.
        assert!(und.finite.mean <= dir.finite.mean * 1.5 + 2.0);
    }

    #[test]
    fn estimates_are_deterministic() {
        let a = clique_td_montecarlo(32, true, 10, 3);
        let b = clique_td_montecarlo(32, true, 10, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn sparse_graphs_report_infinite_instances() {
        // A path with a single uniform label per edge is almost never
        // temporally connected.
        let graph = generators::path(16);
        let est = td_montecarlo(&graph, 16, 10, 4, 2);
        assert!(est.infinite_instances > 5, "{}", est.infinite_instances);
    }

    #[test]
    fn diameter_grows_with_lifetime() {
        // Theorem 5 mechanics: larger lifetime stretches the diameter.
        let short = clique_td_with_lifetime(64, true, 64, 10, 5);
        let long = clique_td_with_lifetime(64, true, 64 * 8, 10, 5);
        assert!(
            long.finite.mean > short.finite.mean * 2.0,
            "short {} long {}",
            short.finite.mean,
            long.finite.mean
        );
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn zero_trials_panics() {
        let graph = generators::path(4);
        let _ = td_montecarlo(&graph, 4, 0, 0, 1);
    }

    #[test]
    fn adaptive_draws_the_same_trial_streams_as_fixed() {
        // With the stopping rule disabled (cap == min == fixed count), the
        // adaptive estimator must reproduce td_montecarlo's samples exactly.
        let graph = generators::clique(48, true);
        let fixed = td_montecarlo(&graph, 48, 24, 5, 2);
        let cfg = AdaptiveConfig::new(0.0)
            .with_min_trials(24)
            .with_max_trials(24)
            .with_batch(8);
        let adaptive = td_montecarlo_adaptive(&graph, 48, &cfg, 5, 2);
        assert_eq!(adaptive.trials, 24);
        assert_eq!(adaptive.infinite_instances, fixed.infinite_instances);
        assert_eq!(
            adaptive.finite.mean().to_bits(),
            fixed.finite.mean.to_bits()
        );
        assert_eq!(adaptive.finite.min(), fixed.finite.min);
        assert_eq!(adaptive.finite.max(), fixed.finite.max);
    }

    #[test]
    fn adaptive_estimate_is_thread_invariant_and_converges() {
        let graph = generators::clique(32, true);
        let cfg = AdaptiveConfig::new(0.5)
            .with_min_trials(8)
            .with_batch(8)
            .with_max_trials(400);
        let base = td_montecarlo_adaptive(&graph, 32, &cfg, 9, 1);
        for threads in [2, 8] {
            let other = td_montecarlo_adaptive(&graph, 32, &cfg, 9, threads);
            assert_eq!(base, other, "threads={threads}");
        }
        assert!(base.converged);
        assert!(base.half_width <= 0.5);
        assert!(base.trials >= 8 && base.trials <= 400);
        assert_eq!(base.infinite_instances, 0);
    }

    #[test]
    fn adaptive_clique_wrappers_track_the_log_law() {
        let cfg = AdaptiveConfig::new(1.0)
            .with_min_trials(8)
            .with_batch(8)
            .with_max_trials(64);
        let est = clique_td_adaptive(64, true, &cfg, 11);
        assert!(est.finite.mean() > 0.5 * 64f64.log2());
        assert!(est.finite.mean() < 8.0 * 64f64.ln());
        let long = clique_td_with_lifetime_adaptive(64, true, 64 * 8, &cfg, 11);
        assert!(long.finite.mean() > est.finite.mean() * 2.0);
    }
}
