//! Monte Carlo estimation of the Temporal Diameter (Definition 5,
//! Theorems 3–4).
//!
//! `TD(G) = E[max_{s,t} δ(s,t)]` over the random labelling. Per trial we
//! draw a fresh UNI-CASE assignment into per-worker scratch buffers over a
//! shared graph CSR, rebuild the time-edge index in place, and compute the
//! instance diameter exactly through the bit-parallel engine (one sweep per
//! batch of 64 sources instead of `n` scalar sweeps), then summarise across
//! trials. Theorem 4 predicts `TD ≤ γ·log n` w.h.p. for the directed
//! normalized U-RT clique; experiment E02 fits `γ`.

use ephemeral_graph::{generators, Graph};
use ephemeral_parallel::stats::Summary;
use ephemeral_parallel::{available_threads, par_for_with};
use ephemeral_rng::SeedSequence;
use ephemeral_temporal::distance::{
    instance_temporal_diameter, instance_temporal_diameter_reusing,
};
use ephemeral_temporal::engine::BatchSweeper;
use ephemeral_temporal::{LabelAssignment, TemporalNetwork, Time};

/// Monte Carlo estimate of the temporal diameter of a random temporal
/// network family.
#[derive(Debug, Clone, PartialEq)]
pub struct TemporalDiameterEstimate {
    /// Summary of the finite instance diameters.
    pub finite: Summary,
    /// Trials whose instance diameter was infinite (some pair unreachable).
    pub infinite_instances: usize,
    /// Total trials.
    pub trials: usize,
    /// `mean / ln n` — the empirical `γ` against the natural log.
    pub gamma_ln: f64,
    /// `mean / log₂ n` — the empirical `γ` against the binary log.
    pub gamma_log2: f64,
}

/// Per-worker trial scratch: one owned copy of the network whose labels are
/// redrawn in place each trial, the spare assignment the draw writes into,
/// and the engine sweeper — so a full Monte Carlo run performs no
/// per-trial allocation once the buffers are warm (locked in by the
/// allocation regression test in `tests/alloc_regression.rs`).
struct TrialScratch {
    tn: TemporalNetwork,
    spare: LabelAssignment,
    sweeper: BatchSweeper,
}

impl TrialScratch {
    fn new(graph: &Graph, lifetime: Time) -> Self {
        Self {
            tn: crate::urtn::placeholder_network(graph, lifetime),
            spare: LabelAssignment::default(),
            sweeper: BatchSweeper::new(),
        }
    }

    /// Draw trial `trial`'s labels into the spare buffers, swap them into
    /// the network, and return the instance diameter (engine batches run on
    /// `inner_threads`; 1 reuses this scratch's sweeper).
    fn run_trial(
        &mut self,
        seq: &SeedSequence,
        trial: usize,
        inner_threads: usize,
    ) -> (Time, bool) {
        let mut rng = seq.rng(trial as u64);
        crate::urtn::resample_single_in_place(&mut self.tn, &mut self.spare, &mut rng);
        let d = if inner_threads <= 1 {
            instance_temporal_diameter_reusing(&self.tn, &mut self.sweeper)
        } else {
            instance_temporal_diameter(&self.tn, inner_threads)
        };
        match d.value() {
            Some(v) => (v, true),
            None => (d.max_finite, false),
        }
    }
}

/// Estimate `TD` of the UNI-CASE model over a fixed graph. Each worker owns
/// one copy of the graph CSR for the whole run; each trial redraws labels
/// into per-worker scratch and runs the batch engine — batches × threads,
/// not sources × threads.
///
/// # Panics
/// If `trials == 0`, the graph is empty, or `lifetime == 0`.
#[must_use]
pub fn td_montecarlo(
    graph: &Graph,
    lifetime: Time,
    trials: usize,
    seed: u64,
    threads: usize,
) -> TemporalDiameterEstimate {
    assert!(trials > 0, "need at least one trial");
    let n = graph.num_nodes();
    assert!(n > 0, "graph must be non-empty");
    let seq = SeedSequence::new(seed);

    // Memory strategy: for large graphs a clique instance is ~100 MB, so
    // trials run sequentially with batch-level parallelism inside; for
    // small graphs one trial's few batches cannot feed many threads, so we
    // fan out across trials instead (one scratch per worker).
    let big = graph.num_edges() >= 1 << 20;
    let results: Vec<(Time, bool)> = if big {
        let mut scratch = TrialScratch::new(graph, lifetime);
        (0..trials)
            .map(|i| scratch.run_trial(&seq, i, threads))
            .collect()
    } else {
        par_for_with(
            trials,
            threads,
            || TrialScratch::new(graph, lifetime),
            |scratch, i| scratch.run_trial(&seq, i, 1),
        )
    };

    summarise(results, n)
}

fn summarise(results: Vec<(Time, bool)>, n: usize) -> TemporalDiameterEstimate {
    let trials = results.len();
    let finite_samples: Vec<f64> = results
        .iter()
        .filter(|&&(_, finite)| finite)
        .map(|&(v, _)| f64::from(v))
        .collect();
    let infinite_instances = trials - finite_samples.len();
    let finite = Summary::from_samples(&finite_samples);
    let ln_n = (n.max(2) as f64).ln();
    let log2_n = (n.max(2) as f64).log2();
    TemporalDiameterEstimate {
        gamma_ln: finite.mean / ln_n,
        gamma_log2: finite.mean / log2_n,
        finite,
        infinite_instances,
        trials,
    }
}

/// Estimate `TD` of the directed (or undirected) normalized U-RT clique —
/// the headline quantity of §3.
#[must_use]
pub fn clique_td_montecarlo(
    n: usize,
    directed: bool,
    trials: usize,
    seed: u64,
) -> TemporalDiameterEstimate {
    let graph = generators::clique(n, directed);
    td_montecarlo(&graph, n as Time, trials, seed, available_threads())
}

/// Estimate `TD` of a U-RT clique with an arbitrary lifetime (Theorem 5's
/// regime when `lifetime ≫ n`).
#[must_use]
pub fn clique_td_with_lifetime(
    n: usize,
    directed: bool,
    lifetime: Time,
    trials: usize,
    seed: u64,
) -> TemporalDiameterEstimate {
    let graph = generators::clique(n, directed);
    td_montecarlo(&graph, lifetime, trials, seed, available_threads())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn urt_clique_diameter_is_logarithmic() {
        let est = clique_td_montecarlo(128, true, 20, 1);
        assert_eq!(est.trials, 20);
        assert_eq!(est.infinite_instances, 0, "clique instances are connected");
        // Θ(log n): between log2(n)/2 and 8·ln n at this size.
        let ln_n = 128f64.ln();
        assert!(
            est.finite.mean > 0.5 * 128f64.log2(),
            "mean {}",
            est.finite.mean
        );
        assert!(est.finite.mean < 8.0 * ln_n, "mean {}", est.finite.mean);
        assert!(est.gamma_ln > 0.0 && est.gamma_log2 > 0.0);
    }

    #[test]
    fn undirected_clique_behaves_like_directed() {
        // Remark 1: the undirected case is not significantly different.
        let dir = clique_td_montecarlo(64, true, 15, 2);
        let und = clique_td_montecarlo(64, false, 15, 2);
        assert_eq!(und.infinite_instances, 0);
        // Undirected labels serve both directions: diameter within 2x.
        assert!(und.finite.mean <= dir.finite.mean * 1.5 + 2.0);
    }

    #[test]
    fn estimates_are_deterministic() {
        let a = clique_td_montecarlo(32, true, 10, 3);
        let b = clique_td_montecarlo(32, true, 10, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn sparse_graphs_report_infinite_instances() {
        // A path with a single uniform label per edge is almost never
        // temporally connected.
        let graph = generators::path(16);
        let est = td_montecarlo(&graph, 16, 10, 4, 2);
        assert!(est.infinite_instances > 5, "{}", est.infinite_instances);
    }

    #[test]
    fn diameter_grows_with_lifetime() {
        // Theorem 5 mechanics: larger lifetime stretches the diameter.
        let short = clique_td_with_lifetime(64, true, 64, 10, 5);
        let long = clique_td_with_lifetime(64, true, 64 * 8, 10, 5);
        assert!(
            long.finite.mean > short.finite.mean * 2.0,
            "short {} long {}",
            short.finite.mean,
            long.finite.mean
        );
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn zero_trials_panics() {
        let graph = generators::path(4);
        let _ = td_montecarlo(&graph, 4, 0, 0, 1);
    }
}
