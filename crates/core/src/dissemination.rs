//! The §3.5 dissemination protocol and its accounting.
//!
//! Protocol: *"∀u: if u has the message, then when an arc out of u becomes
//! available, send the message through that arc."* The informed set of this
//! protocol evolves exactly like the foremost-journey sweep (every node is
//! informed at its temporal distance from the source), so the broadcast
//! time equals the source's temporal eccentricity; what the protocol adds
//! is **message accounting** — every available out-arc of an informed node
//! fires, whether useful or not, which is the `Θ(n²)`-messages behaviour
//! the paper contrasts with the phone-call model's `O(n log log n)`.

use ephemeral_graph::{Graph, NodeId};
use ephemeral_parallel::stats::Summary;
use ephemeral_parallel::MonteCarlo;
use ephemeral_rng::distr::Binomial;
use ephemeral_rng::RandomSource;
use ephemeral_temporal::foremost::foremost;
use ephemeral_temporal::{LabelAssignment, TemporalNetwork, Time};

/// Result of one protocol run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FloodOutcome {
    /// Time each vertex first held the message
    /// ([`NEVER`](ephemeral_temporal::NEVER) = never informed; the source
    /// holds it from time 0).
    pub informed_time: Vec<Time>,
    /// Number of vertices that ever received the message (incl. source).
    pub informed_count: usize,
    /// Time the last vertex was informed, or `None` if some vertex was
    /// never informed within the lifetime.
    pub broadcast_time: Option<Time>,
    /// Total messages transmitted: one per time-edge whose tail was
    /// informed strictly before the edge's availability time.
    pub messages: u64,
}

/// Run the protocol on a concrete temporal network instance.
///
/// ```
/// use ephemeral_core::{dissemination::flood, urtn};
/// use ephemeral_rng::default_rng;
///
/// let mut rng = default_rng(1);
/// let tn = urtn::sample_normalized_urt_clique(64, true, &mut rng);
/// let out = flood(&tn, 0);
/// assert_eq!(out.informed_count, 64);          // the clique always floods
/// assert!(out.broadcast_time.unwrap() <= 64);  // …within the lifetime
/// ```
///
/// # Panics
/// If `source` is out of range.
#[must_use]
pub fn flood(tn: &TemporalNetwork, source: NodeId) -> FloodOutcome {
    let run = foremost(tn, source, 0);
    let informed_time = run.arrivals().to_vec();
    let informed_count = run.reached_count();
    let n = tn.num_nodes();
    let broadcast_time = if informed_count == n {
        informed_time
            .iter()
            .enumerate()
            .filter(|&(v, _)| v != source as usize)
            .map(|(_, &t)| t)
            .max()
            .or(Some(0))
    } else {
        None
    };

    // Message accounting: every time-edge fires once per direction whose
    // tail is informed before the label.
    let directed = tn.graph().is_directed();
    let mut messages = 0u64;
    for t in 1..=tn.lifetime() {
        for &e in tn.edges_at(t) {
            let (u, v) = tn.graph().endpoints(e);
            if informed_time[u as usize] < t {
                messages += 1;
            }
            if !directed && informed_time[v as usize] < t {
                messages += 1;
            }
        }
    }

    FloodOutcome {
        informed_time,
        informed_count,
        broadcast_time,
        messages,
    }
}

/// Monte Carlo summary of repeated protocol runs over fresh UNI-CASE
/// labellings of one graph.
#[derive(Debug, Clone, PartialEq)]
pub struct FloodEstimate {
    /// Summary of the broadcast times of the trials that covered everyone.
    pub broadcast_times: Summary,
    /// Trials in which some vertex was never informed within the lifetime.
    pub incomplete: usize,
    /// Mean protocol messages per trial (complete or not).
    pub mean_messages: f64,
    /// Total trials.
    pub trials: usize,
}

/// Run [`flood`] from `source` over `trials` fresh UNI-CASE labellings of
/// `graph`. Each worker owns one copy of the graph CSR; per trial the
/// labels are redrawn into scratch buffers and the time-edge index is
/// rebuilt in place, so the loop does not reallocate the network (the
/// batch-scheduled sibling of `diameter::td_montecarlo` — flooding itself
/// is inherently single-source, so the per-trial sweep stays scalar at
/// every size: sweep rows attribute it as engine `"scalar"`, never
/// `"wide"`).
///
/// # Panics
/// If `trials == 0`, `lifetime == 0`, or `source` is out of range.
#[must_use]
pub fn flood_montecarlo(
    graph: &Graph,
    lifetime: Time,
    source: NodeId,
    trials: usize,
    seed: u64,
    threads: usize,
) -> FloodEstimate {
    assert!(trials > 0, "need at least one trial");
    let outcomes: Vec<(Option<Time>, u64)> = MonteCarlo::new(trials, seed)
        .with_threads(threads)
        .run_with(
            || {
                (
                    crate::urtn::placeholder_network(graph, lifetime),
                    LabelAssignment::default(),
                )
            },
            |(tn, spare), _, rng| {
                crate::urtn::resample_single_in_place(tn, spare, rng);
                let out = flood(tn, source);
                (out.broadcast_time, out.messages)
            },
        );
    let times: Vec<f64> = outcomes
        .iter()
        .filter_map(|&(t, _)| t.map(f64::from))
        .collect();
    let messages: f64 = outcomes.iter().map(|&(_, m)| m as f64).sum();
    FloodEstimate {
        broadcast_times: Summary::from_samples(&times),
        incomplete: trials - times.len(),
        mean_messages: messages / trials as f64,
        trials,
    }
}

/// Oracle version for a virtual directed U-RT clique of `n` vertices and
/// lifetime `a`, never materialising the `Θ(n²)` arcs.
///
/// Exactness note (DESIGN.md §3): for a vertex informed at time `τ`, the
/// probability that a given still-unrevealed out-arc fires at a later time
/// `t` is `1/(a − (t−1−τ))` conditioned on not having fired in `(τ, t)`;
/// the oracle uses the unconditioned `1/a`, an `O(t/a)` underestimate. The
/// broadcast completes by `O(log n) ≪ a` steps, so the bias is negligible
/// — and the exact [`flood`] covers every size we can materialise.
#[must_use]
pub fn flood_oracle_clique(
    n: u64,
    lifetime: Time,
    rng: &mut impl RandomSource,
) -> FloodOracleOutcome {
    assert!(n >= 1, "clique requires at least one vertex");
    let a = f64::from(lifetime);
    let mut uninformed = n - 1;
    let mut informed_before: u64 = 0; // informed strictly before current t
    let mut informed_at_t: u64 = 1; // the source at τ = 0
    let mut informed_counts = Vec::new(); // cumulative count per time step
    let mut broadcast_time = None;
    let mut expected_messages = 0.0f64;

    for t in 1..=lifetime {
        informed_before += informed_at_t;
        // Each uninformed vertex is hit iff one of the `informed_before`
        // arcs pointing at it carries label exactly t: prob 1/a each,
        // independent across arcs.
        let q = 1.0 - (1.0 - 1.0 / a).powf(informed_before as f64);
        let hits = if uninformed > 0 {
            Binomial::new(uninformed, q).sample(rng)
        } else {
            0
        };
        uninformed -= hits;
        informed_at_t = hits;
        informed_counts.push(n - uninformed);
        // Each informed vertex sends on each out-arc whose label exceeds its
        // informed time; in expectation each of the `informed_before` nodes
        // fires (n−1)/a arcs at time t.
        expected_messages += informed_before as f64 * (n - 1) as f64 / a;
        if uninformed == 0 && broadcast_time.is_none() {
            broadcast_time = Some(t);
            break;
        }
    }

    FloodOracleOutcome {
        n,
        broadcast_time,
        informed_counts,
        expected_messages,
    }
}

/// Outcome of the oracle flood.
#[derive(Debug, Clone, PartialEq)]
pub struct FloodOracleOutcome {
    /// Number of vertices of the virtual clique.
    pub n: u64,
    /// Time everyone was informed, or `None` if the lifetime expired first.
    pub broadcast_time: Option<Time>,
    /// Cumulative informed count after each simulated time step.
    pub informed_counts: Vec<u64>,
    /// Expected number of protocol messages sent up to completion.
    pub expected_messages: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::urtn::sample_normalized_urt_clique;
    use ephemeral_graph::generators;
    use ephemeral_rng::default_rng;
    use ephemeral_temporal::LabelAssignment;

    #[test]
    fn flood_on_deterministic_path() {
        let g = generators::path(4);
        let labels = LabelAssignment::single(vec![1, 2, 3]).unwrap();
        let tn = TemporalNetwork::new(g, labels, 3).unwrap();
        let out = flood(&tn, 0);
        assert_eq!(out.informed_time, vec![0, 1, 2, 3]);
        assert_eq!(out.broadcast_time, Some(3));
        assert_eq!(out.informed_count, 4);
        // Messages: each undirected edge fires towards both endpoints when
        // available and tail informed: 0-1@1 (0 informed): 1 message;
        // 1-2@2 (1 informed at 1 < 2): 1; also 1->0 resend? edge 0-1 only has
        // label 1, 1 informed at 1 not < 1: no. 2-3@3: tail 2 informed at 2 < 3: 1.
        // Edge 1-2@2 also fires from 2? 2 informed at 2, not < 2. Total 3.
        assert_eq!(out.messages, 3);
    }

    #[test]
    fn flood_counts_wasted_messages() {
        // Star with all edges at times {1,2}: centre informs everyone at 1,
        // then at 2 every leaf (informed at 1) sends back: n-1 wasted.
        let n = 6;
        let g = generators::star(n);
        let labels = LabelAssignment::from_vecs(vec![vec![1, 2]; n - 1]).unwrap();
        let tn = TemporalNetwork::new(g, labels, 2).unwrap();
        let out = flood(&tn, 0);
        assert_eq!(out.broadcast_time, Some(1));
        // t=1: centre fires n-1 messages. t=2: centre fires n-1 again, and
        // each of the n-1 leaves fires 1 back: total (n-1)·3.
        assert_eq!(out.messages, 3 * (n as u64 - 1));
    }

    #[test]
    fn flood_reports_failure_to_cover() {
        let g = generators::path(3);
        let labels = LabelAssignment::single(vec![2, 1]).unwrap();
        let tn = TemporalNetwork::new(g, labels, 2).unwrap();
        let out = flood(&tn, 0);
        assert_eq!(out.broadcast_time, None);
        assert_eq!(out.informed_count, 2);
    }

    #[test]
    fn clique_flood_is_logarithmic() {
        let n = 512;
        let mut rng = default_rng(11);
        let tn = sample_normalized_urt_clique(n, true, &mut rng);
        let out = flood(&tn, 0);
        assert_eq!(out.informed_count, n, "URT clique floods completely");
        let bt = f64::from(out.broadcast_time.unwrap());
        let bound = 8.0 * (n as f64).ln();
        assert!(bt <= bound, "broadcast {bt} > 8·ln n = {bound}");
        // Message count is Θ(n²)-ish: every arc with label above its
        // tail's informed time fires; at least (n-1) and at most n(n-1).
        assert!(out.messages >= (n as u64 - 1));
        assert!(out.messages <= (n as u64) * (n as u64 - 1));
    }

    #[test]
    fn flood_montecarlo_summarises_and_is_thread_invariant() {
        let g = generators::clique(64, true);
        let a = flood_montecarlo(&g, 64, 0, 12, 9, 1);
        let b = flood_montecarlo(&g, 64, 0, 12, 9, 4);
        assert_eq!(a, b, "thread count must not change the estimate");
        assert_eq!(a.trials, 12);
        assert_eq!(a.incomplete, 0, "the clique always floods");
        let ln_n = 64f64.ln();
        assert!(
            a.broadcast_times.mean <= 8.0 * ln_n,
            "{}",
            a.broadcast_times.mean
        );
        assert!(a.broadcast_times.mean >= 2.0);
        assert!(a.mean_messages >= 63.0);
    }

    #[test]
    fn flood_montecarlo_reports_incomplete_trials() {
        // Single-label paths almost never flood end to end.
        let g = generators::path(12);
        let est = flood_montecarlo(&g, 12, 0, 20, 3, 2);
        assert!(est.incomplete > 10, "{}", est.incomplete);
    }

    #[test]
    fn oracle_matches_exact_scale() {
        // Broadcast time of the oracle at n=512 should be in the same
        // ballpark as the exact simulation.
        let n = 512u64;
        let mut rng = default_rng(12);
        let out = flood_oracle_clique(n, n as Time, &mut rng);
        let bt = f64::from(out.broadcast_time.expect("oracle flood completes"));
        assert!(bt <= 8.0 * (n as f64).ln(), "broadcast {bt}");
        assert!(out.expected_messages > 0.0);
        // Informed counts are monotone.
        assert!(out.informed_counts.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn oracle_scales_to_huge_n() {
        let n = 1_000_000u64;
        let mut rng = default_rng(13);
        let out = flood_oracle_clique(n, n as Time, &mut rng);
        let bt = f64::from(out.broadcast_time.expect("completes"));
        // Θ(log n): comfortably under 4·ln n and at least log2 n / 2.
        assert!(bt <= 4.0 * (n as f64).ln(), "bt {bt}");
        assert!(bt >= (n as f64).log2() / 2.0, "bt {bt}");
    }

    #[test]
    fn singleton_clique_floods_instantly() {
        let mut rng = default_rng(14);
        let out = flood_oracle_clique(1, 10, &mut rng);
        assert_eq!(out.broadcast_time, Some(1));
        let g = generators::clique(1, true);
        let labels = LabelAssignment::from_vecs(vec![]).unwrap();
        let tn = TemporalNetwork::new(g, labels, 1).unwrap();
        let exact = flood(&tn, 0);
        assert_eq!(exact.broadcast_time, Some(0));
        assert_eq!(exact.informed_count, 1);
    }
}
