//! Algorithm 1 of the paper: the **Expansion Process** on the directed
//! normalized uniform random temporal clique.
//!
//! The process grows a forward frontier out of the source `s` through
//! disjoint, increasing label windows
//! `∆₁ = (0, c₁·ln n]`, `∆ᵢ = (c₁·ln n + (i−2)c₂, c₁·ln n + (i−1)c₂]`,
//! and a backward frontier out of the target `t` through the mirrored
//! windows `∆'ᵢ`, then looks for a single *matching* arc labelled inside
//! `∆* = (c₁·ln n + d·c₂, 2c₁·ln n + d·c₂]` connecting the two `Θ(√n)`
//! frontiers. Theorems 1–3 show each stage succeeds with probability
//! `1 − O(n⁻³)`, certifying a journey with arrival `≤ 3c₁·ln n + 2d·c₂ =
//! Θ(log n)`.
//!
//! This module is the exact, materialised-instance implementation; see
//! [`crate::expansion_oracle`] for the lazily revealed variant that scales
//! to millions of vertices.

use ephemeral_graph::NodeId;
use ephemeral_temporal::{Journey, TemporalNetwork, Time, TimeEdge};

/// The constants of Algorithm 1 (`c₁`, `c₂`, and the expansion depth `d`).
///
/// The paper's proof picks `c₁ ≥ 33` and `c₁·c₂ ≥ 1024` so the Chernoff
/// bounds hold with exponent 4; those constants only fit inside the
/// lifetime for very large `n`. [`ExpansionParams::practical`] picks small
/// constants that exhibit the same `Θ(log n)` behaviour at laptop scales —
/// the theorem is an existence statement about constants, so sweeping both
/// is exactly the experiment E01 runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExpansionParams {
    /// Chernoff constant of the wide windows (`∆₁`, `∆*`, `∆'₁`), of length
    /// `c₁·ln n` each.
    pub c1: f64,
    /// Width of the narrow geometric-growth windows `∆₂, …, ∆_{d+1}`.
    pub c2: f64,
    /// Number of narrow windows per side.
    pub d: usize,
}

impl ExpansionParams {
    /// The constants used in the paper's proof (`c₁ = 33`,
    /// `c₁·c₂ = 1024`), with the depth chosen by the proof's formula. Only
    /// fits inside the lifetime for large `n` — check [`Self::fits`].
    #[must_use]
    pub fn paper(n: usize) -> Self {
        let c1 = 33.0;
        let c2 = 1024.0 / 33.0;
        let d = Self::depth_for(n, c1, c2 / 8.0);
        Self { c1, c2, d }
    }

    /// Small practical constants (`c₁ = 2`, `c₂ = 4`) with the depth chosen
    /// for the *expected* growth factor and clamped so the windows fit
    /// inside the normalized lifetime `a = n`.
    #[must_use]
    pub fn practical(n: usize) -> Self {
        let c1 = 2.0;
        let c2 = 4.0;
        let mut d = Self::depth_for(n, c1, c2 / 2.0);
        let mut p = Self { c1, c2, d };
        while d > 0 && !p.fits(n, n as Time) {
            d -= 1;
            p = Self { c1, c2, d };
        }
        p
    }

    /// Smallest `d` with `c₁·ln n · growth^d ≥ √n` (0 when `Γ₁` alone is
    /// expected to reach `√n`).
    fn depth_for(n: usize, c1: f64, growth: f64) -> usize {
        if n < 2 {
            return 0;
        }
        let nf = n as f64;
        let start = c1 * nf.ln();
        let target = nf.sqrt();
        if start >= target || growth <= 1.0 {
            return 0;
        }
        ((target / start).ln() / growth.ln()).ceil().max(0.0) as usize
    }

    /// The concrete (integer) label windows for a given `n`.
    #[must_use]
    pub fn intervals(&self, n: usize) -> Intervals {
        let l1 = (self.c1 * (n.max(2) as f64).ln()).ceil().max(1.0) as Time;
        let c = self.c2.ceil().max(1.0) as Time;
        Intervals { l1, c, d: self.d }
    }

    /// Does the full window layout end by `lifetime`?
    #[must_use]
    pub fn fits(&self, n: usize, lifetime: Time) -> bool {
        self.intervals(n).total_end() <= lifetime
    }
}

/// Concrete window boundaries. Every window is a half-open label interval
/// `(lo, hi]`, matching the paper's notation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Intervals {
    /// Length of the wide windows `∆₁`, `∆*`, `∆'₁` (`⌈c₁·ln n⌉`).
    pub l1: Time,
    /// Length of the narrow windows (`⌈c₂⌉`).
    pub c: Time,
    /// Number of narrow windows per side.
    pub d: usize,
}

impl Intervals {
    /// Forward window `∆ᵢ`, `i ∈ {1, …, d+1}`, as `(lo, hi]`.
    ///
    /// # Panics
    /// If `i` is out of range.
    #[must_use]
    pub fn forward(&self, i: usize) -> (Time, Time) {
        assert!((1..=self.d + 1).contains(&i), "forward window index {i}");
        if i == 1 {
            (0, self.l1)
        } else {
            let lo = self.l1 + (i as Time - 2) * self.c;
            (lo, lo + self.c)
        }
    }

    /// The matching window `∆*` as `(lo, hi]`.
    #[must_use]
    pub fn matching(&self) -> (Time, Time) {
        let lo = self.l1 + self.d as Time * self.c;
        (lo, lo + self.l1)
    }

    /// Backward window `∆'ᵢ`, `i ∈ {1, …, d+1}`, as `(lo, hi]`. Note the
    /// reversal: `∆'_{d+1}` is the earliest backward window and `∆'₁` the
    /// latest (adjacent to the deadline).
    ///
    /// # Panics
    /// If `i` is out of range.
    #[must_use]
    pub fn backward(&self, i: usize) -> (Time, Time) {
        assert!((1..=self.d + 1).contains(&i), "backward window index {i}");
        let base = 2 * self.l1 + self.d as Time * self.c;
        if i == 1 {
            let lo = base + self.d as Time * self.c;
            (lo, lo + self.l1)
        } else {
            // ∆'ᵢ = (2c₁ln n + (2d−i+1)c₂, 2c₁ln n + (2d−i+2)c₂]
            let lo = base + (self.d as Time + 1 - i as Time) * self.c;
            (lo, lo + self.c)
        }
    }

    /// The end of the last window, `3c₁·ln n + 2d·c₂` — the guaranteed
    /// arrival bound on success.
    #[must_use]
    pub fn total_end(&self) -> Time {
        3 * self.l1 + 2 * self.d as Time * self.c
    }
}

/// Result of one run of the expansion process.
#[derive(Debug, Clone)]
pub struct ExpansionOutcome {
    /// Did the matching step find a connecting arc?
    pub success: bool,
    /// On success, the certified journey `s → … → t`.
    pub journey: Option<Journey>,
    /// `|Γᵢ(s)|` for `i = 1, …, d+1`.
    pub forward_levels: Vec<usize>,
    /// `|Γ'ᵢ(t)|` for `i = 1, …, d+1`.
    pub backward_levels: Vec<usize>,
    /// The arrival bound `3c₁·ln n + 2d·c₂` the journey respects.
    pub arrival_bound: Time,
}

const UNSET: u32 = u32::MAX;

/// Does edge `e` of `tn` carry a label in `(lo, hi]`? Returns it if so.
#[inline]
fn label_in(tn: &TemporalNetwork, e: u32, lo: Time, hi: Time) -> Option<Time> {
    let labels = tn.labels(e);
    let idx = labels.partition_point(|&l| l <= lo);
    labels.get(idx).copied().filter(|&l| l <= hi)
}

/// Run Algorithm 1 from `s` towards `t` on a (typically clique) temporal
/// network. Works on any graph, directed or undirected; the probabilistic
/// guarantees of Theorems 1–3 apply to the directed normalized U-RT clique.
///
/// # Panics
/// If `s == t`, either endpoint is out of range, or the window layout does
/// not fit in the network's lifetime (check [`ExpansionParams::fits`]).
#[must_use]
pub fn expansion_process(
    tn: &TemporalNetwork,
    s: NodeId,
    t: NodeId,
    params: &ExpansionParams,
) -> ExpansionOutcome {
    let n = tn.num_nodes();
    assert!(
        (s as usize) < n && (t as usize) < n,
        "endpoints out of range"
    );
    assert_ne!(s, t, "expansion process requires distinct endpoints");
    let iv = params.intervals(n);
    assert!(
        iv.total_end() <= tn.lifetime(),
        "windows end at {} beyond lifetime {}",
        iv.total_end(),
        tn.lifetime()
    );
    let g = tn.graph();

    // ---- Forward expansion out of s --------------------------------------
    let mut fwd_parent = vec![UNSET; n]; // predecessor towards s
    let mut fwd_label = vec![0 as Time; n]; // label used to enter the vertex
    let mut fwd_level = vec![UNSET; n]; // which Γ_i the vertex joined
    let mut frontier: Vec<NodeId> = vec![s];
    fwd_parent[s as usize] = s; // marks visited
    let mut forward_levels = Vec::with_capacity(iv.d + 1);
    for i in 1..=iv.d + 1 {
        let (lo, hi) = iv.forward(i);
        let mut next = Vec::new();
        for &w in &frontier {
            let (nbrs, eids) = g.out_adjacency(w);
            for (&v, &e) in nbrs.iter().zip(eids) {
                if fwd_parent[v as usize] != UNSET {
                    continue;
                }
                if let Some(l) = label_in(tn, e, lo, hi) {
                    fwd_parent[v as usize] = w;
                    fwd_label[v as usize] = l;
                    fwd_level[v as usize] = i as u32;
                    next.push(v);
                }
            }
        }
        forward_levels.push(next.len());
        frontier = next;
        if frontier.is_empty() {
            // Remaining levels are empty too; record and stop expanding.
            while forward_levels.len() < iv.d + 1 {
                forward_levels.push(0);
            }
            break;
        }
    }
    let forward_frontier = frontier;

    // ---- Backward expansion out of t -------------------------------------
    let mut bwd_child = vec![UNSET; n]; // successor towards t
    let mut bwd_label = vec![0 as Time; n];
    let mut frontier: Vec<NodeId> = vec![t];
    bwd_child[t as usize] = t;
    let mut backward_levels = Vec::with_capacity(iv.d + 1);
    for i in 1..=iv.d + 1 {
        let (lo, hi) = iv.backward(i);
        let mut next = Vec::new();
        for &w in &frontier {
            let (nbrs, eids) = g.in_adjacency(w);
            for (&v, &e) in nbrs.iter().zip(eids) {
                if bwd_child[v as usize] != UNSET {
                    continue;
                }
                if let Some(l) = label_in(tn, e, lo, hi) {
                    bwd_child[v as usize] = w;
                    bwd_label[v as usize] = l;
                    next.push(v);
                }
            }
        }
        backward_levels.push(next.len());
        frontier = next;
        if frontier.is_empty() {
            while backward_levels.len() < iv.d + 1 {
                backward_levels.push(0);
            }
            break;
        }
    }
    let backward_frontier = frontier;

    // ---- Matching through ∆* ---------------------------------------------
    let (mlo, mhi) = iv.matching();
    let mut in_backward = vec![false; n];
    for &v in &backward_frontier {
        in_backward[v as usize] = true;
    }
    let mut matched: Option<(NodeId, NodeId, Time)> = None;
    'outer: for &u in &forward_frontier {
        let (nbrs, eids) = g.out_adjacency(u);
        for (&v, &e) in nbrs.iter().zip(eids) {
            if !in_backward[v as usize] {
                continue;
            }
            if let Some(l) = label_in(tn, e, mlo, mhi) {
                matched = Some((u, v, l));
                break 'outer;
            }
        }
    }

    let journey = matched.map(|(u, v, l)| {
        let mut steps = Vec::new();
        // s → u through the forward parents.
        let mut cur = u;
        while cur != s {
            let p = fwd_parent[cur as usize];
            steps.push(TimeEdge {
                from: p,
                to: cur,
                time: fwd_label[cur as usize],
            });
            cur = p;
        }
        steps.reverse();
        // The matching arc.
        steps.push(TimeEdge {
            from: u,
            to: v,
            time: l,
        });
        // v → t through the backward children.
        let mut cur = v;
        while cur != t {
            let c = bwd_child[cur as usize];
            steps.push(TimeEdge {
                from: cur,
                to: c,
                time: bwd_label[cur as usize],
            });
            cur = c;
        }
        Journey::new(steps).expect("window ordering guarantees a valid journey")
    });

    ExpansionOutcome {
        success: journey.is_some(),
        journey,
        forward_levels,
        backward_levels,
        arrival_bound: iv.total_end(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::urtn::sample_normalized_urt_clique;
    use ephemeral_rng::default_rng;

    #[test]
    fn windows_are_disjoint_increasing_and_tile() {
        let p = ExpansionParams {
            c1: 2.0,
            c2: 4.0,
            d: 3,
        };
        let iv = p.intervals(1000);
        let mut windows = Vec::new();
        for i in 1..=iv.d + 1 {
            windows.push(iv.forward(i));
        }
        windows.push(iv.matching());
        for i in (1..=iv.d + 1).rev() {
            windows.push(iv.backward(i));
        }
        // Consecutive windows abut exactly: (a,b],(b,c],…
        for pair in windows.windows(2) {
            assert_eq!(pair[0].1, pair[1].0, "windows {pair:?} must abut");
        }
        assert_eq!(windows[0].0, 0);
        assert_eq!(windows.last().unwrap().1, iv.total_end());
    }

    #[test]
    fn paper_constants_match_the_proof() {
        let p = ExpansionParams::paper(1_000_000);
        assert!(p.c1 >= 33.0);
        assert!(p.c1 * p.c2 >= 1024.0 - 1e-9);
    }

    #[test]
    fn practical_params_fit_normalized_lifetime() {
        for n in [64usize, 128, 256, 1024, 4096, 1 << 16] {
            let p = ExpansionParams::practical(n);
            assert!(p.fits(n, n as Time), "n={n}: {p:?}");
        }
    }

    #[test]
    fn expansion_succeeds_often_on_the_urt_clique() {
        let n = 256;
        let params = ExpansionParams::practical(n);
        let mut successes = 0;
        for seed in 0..10 {
            let mut rng = default_rng(seed);
            let tn = sample_normalized_urt_clique(n, true, &mut rng);
            let out = expansion_process(&tn, 0, 1, &params);
            if out.success {
                successes += 1;
                let j = out.journey.as_ref().unwrap();
                assert_eq!(j.source(), 0);
                assert_eq!(j.target(), 1);
                assert!(j.arrival() <= out.arrival_bound);
                assert!(j.is_realizable_in(&tn), "journey must use real labels");
            }
        }
        assert!(successes >= 7, "only {successes}/10 runs succeeded");
    }

    #[test]
    fn levels_grow_geometrically_until_saturation() {
        let n = 1024;
        let params = ExpansionParams::practical(n);
        let mut rng = default_rng(42);
        let tn = sample_normalized_urt_clique(n, true, &mut rng);
        let out = expansion_process(&tn, 0, 1, &params);
        // Γ1 should be around c1·ln n = 2·6.93 ≈ 14; allow slack.
        assert!(out.forward_levels[0] >= 4, "{:?}", out.forward_levels);
        // Levels are recorded for every i.
        assert_eq!(out.forward_levels.len(), params.d + 1);
        assert_eq!(out.backward_levels.len(), params.d + 1);
    }

    #[test]
    fn failure_is_reported_not_panicked() {
        // A clique whose labels all sit beyond the windows: expansion must
        // fail gracefully. Labels all equal to lifetime make Γ1 empty for a
        // long lifetime.
        use ephemeral_graph::generators;
        use ephemeral_temporal::{LabelAssignment, TemporalNetwork};
        let n = 64;
        let g = generators::clique(n, true);
        let m = g.num_edges();
        let lifetime = 10_000;
        let labels = LabelAssignment::single(vec![lifetime; m]).unwrap();
        let tn = TemporalNetwork::new(g, labels, lifetime).unwrap();
        let params = ExpansionParams {
            c1: 2.0,
            c2: 4.0,
            d: 2,
        };
        let out = expansion_process(&tn, 0, 1, &params);
        assert!(!out.success);
        assert!(out.journey.is_none());
        assert_eq!(out.forward_levels, vec![0, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "distinct endpoints")]
    fn same_endpoints_panic() {
        let mut rng = default_rng(1);
        let tn = sample_normalized_urt_clique(16, true, &mut rng);
        let _ = expansion_process(&tn, 3, 3, &ExpansionParams::practical(16));
    }

    #[test]
    #[should_panic(expected = "beyond lifetime")]
    fn oversized_windows_panic() {
        let mut rng = default_rng(1);
        let tn = sample_normalized_urt_clique(16, true, &mut rng);
        let params = ExpansionParams {
            c1: 33.0,
            c2: 31.0,
            d: 5,
        };
        let _ = expansion_process(&tn, 0, 1, &params);
    }

    #[test]
    fn depth_is_zero_when_gamma1_suffices() {
        // Small n: c1·ln n ≥ √n already.
        let p = ExpansionParams::practical(64);
        // 2·ln 64 = 8.3 ≥ 8 = √64 ⇒ d = 0.
        assert_eq!(p.d, 0);
    }
}
