//! Delayed-revelation oracle for the expansion process at huge `n`.
//!
//! Materialising the directed clique costs `Θ(n²)` memory — `n = 10⁶` would
//! need terabytes. The paper's own analysis only ever *reveals* an arc's
//! label the first time the process examines it ("delayed revelation of
//! random values", §3), and each arc is examined at most once; so the
//! process can be simulated by sampling, per frontier vertex, **how many**
//! of its unexamined arcs land in the current label window — a
//! `Binomial(pool, |∆|/a)` draw (binomial thinning) — and then **which**
//! distinct pool vertices were hit.
//!
//! Substitution note (recorded per DESIGN.md §3): the forward sweep, the
//! backward sweep and the matching step are treated as revealing disjoint
//! arc sets. Arcs examined twice across stages (a backward-frontier member
//! that also borders the forward structure) have probability `O(√n/n)`
//! each; the bias is far below Monte Carlo noise at the sizes where the
//! oracle is used (`n ≥ 10⁴`), and the exact implementation
//! ([`crate::expansion`]) covers every smaller size.

use crate::expansion::ExpansionParams;
use ephemeral_rng::distr::Binomial;
use ephemeral_rng::sample::sample_indices;
use ephemeral_rng::RandomSource;
use ephemeral_temporal::Time;

/// Outcome of one oracle run (no journey is materialised — the instance
/// itself is never fully drawn).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OracleOutcome {
    /// Did the matching step connect the frontiers?
    pub success: bool,
    /// `|Γᵢ(s)|`, `i = 1, …, d+1`.
    pub forward_levels: Vec<usize>,
    /// `|Γ'ᵢ(t)|`, `i = 1, …, d+1`.
    pub backward_levels: Vec<usize>,
    /// The arrival bound `3c₁·ln n + 2d·c₂` certified on success.
    pub arrival_bound: Time,
}

/// Grow one side (forward or backward — by symmetry the law is identical)
/// and return the level sizes plus the final frontier size.
fn grow_side(
    n: u64,
    lifetime: f64,
    params: &ExpansionParams,
    iv_lengths: &[Time],
    rng: &mut impl RandomSource,
) -> (Vec<usize>, u64) {
    let _ = params;
    // Pool of vertices not yet absorbed (excludes the seed vertex).
    let mut pool = n - 1;
    let mut frontier: u64 = 1; // the seed
    let mut levels = Vec::with_capacity(iv_lengths.len());
    for &len in iv_lengths {
        let p = f64::from(len) / lifetime;
        if frontier == 0 || pool == 0 {
            levels.push(0);
            frontier = 0;
            continue;
        }
        // Each of the `pool` candidates is hit independently with
        // probability 1 − (1−p)^frontier (its arcs from distinct frontier
        // vertices are independent).
        let q = 1.0 - (1.0 - p).powf(frontier as f64);
        let hits = Binomial::new(pool, q).sample(rng);
        levels.push(hits as usize);
        pool -= hits;
        frontier = hits;
    }
    (levels, frontier)
}

/// Run the expansion process on a *virtual* directed normalized U-RT clique
/// of `n` vertices with lifetime `a` (use `a = n` for the normalized case).
///
/// # Panics
/// If `n < 2` or the window layout does not fit in the lifetime.
#[must_use]
pub fn expansion_oracle(
    n: u64,
    lifetime: Time,
    params: &ExpansionParams,
    rng: &mut impl RandomSource,
) -> OracleOutcome {
    assert!(n >= 2, "oracle requires at least two vertices");
    let iv = params.intervals(n as usize);
    assert!(
        iv.total_end() <= lifetime,
        "windows end at {} beyond lifetime {}",
        iv.total_end(),
        lifetime
    );
    let a = f64::from(lifetime);

    // Window lengths: ∆1 then d narrow windows (forward); mirrored backward.
    let mut lengths = Vec::with_capacity(iv.d + 1);
    lengths.push(iv.l1);
    lengths.extend(std::iter::repeat_n(iv.c, iv.d));

    let (forward_levels, fwd_frontier) = grow_side(n, a, params, &lengths, rng);
    let (backward_levels, bwd_frontier) = grow_side(n, a, params, &lengths, rng);

    // Matching: one arc among frontier × frontier with label in ∆* (width
    // l1) suffices. P(miss) = (1 − l1/a)^(F·B).
    let pairs = fwd_frontier.saturating_mul(bwd_frontier);
    let p1 = f64::from(iv.l1) / a;
    let success = if pairs == 0 {
        false
    } else {
        let miss = (1.0 - p1).powf(pairs as f64);
        rng.bernoulli(1.0 - miss)
    };

    OracleOutcome {
        success,
        forward_levels,
        backward_levels,
        arrival_bound: iv.total_end(),
    }
}

/// The expected frontier trajectory (deterministic mean-field recurrence) —
/// a cheap cross-check the tests compare Monte Carlo levels against.
#[must_use]
pub fn expected_levels(n: u64, lifetime: Time, params: &ExpansionParams) -> Vec<f64> {
    let iv = params.intervals(n as usize);
    let a = f64::from(lifetime);
    let mut lengths = Vec::with_capacity(iv.d + 1);
    lengths.push(iv.l1);
    lengths.extend(std::iter::repeat_n(iv.c, iv.d));
    let mut pool = (n - 1) as f64;
    let mut frontier = 1.0f64;
    let mut out = Vec::with_capacity(lengths.len());
    for &len in &lengths {
        let p = f64::from(len) / a;
        let q = 1.0 - (1.0 - p).powf(frontier);
        let hits = pool * q;
        out.push(hits);
        pool -= hits;
        frontier = hits;
    }
    out
}

/// Select distinct vertex ids for a frontier of the given size — exposed for
/// callers that need concrete (but still lazily-sampled) frontier members,
/// e.g. for visualisation.
#[must_use]
pub fn sample_frontier_ids(n: u64, size: usize, rng: &mut impl RandomSource) -> Vec<u64> {
    sample_indices(n as usize, size.min(n as usize), rng)
        .into_iter()
        .map(|i| i as u64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ephemeral_rng::default_rng;

    #[test]
    fn oracle_succeeds_at_large_n() {
        let n: u64 = 100_000;
        let params = ExpansionParams::practical(n as usize);
        let mut successes = 0;
        for seed in 0..20 {
            let mut rng = default_rng(seed);
            let out = expansion_oracle(n, n as Time, &params, &mut rng);
            successes += u32::from(out.success);
        }
        assert!(successes >= 18, "{successes}/20");
    }

    #[test]
    fn oracle_handles_paper_constants_at_million_scale() {
        let n: u64 = 1_000_000;
        let params = ExpansionParams::paper(n as usize);
        assert!(params.fits(n as usize, n as Time));
        let mut rng = default_rng(7);
        let out = expansion_oracle(n, n as Time, &params, &mut rng);
        assert!(out.success);
        // Γ1 concentrates around c1·ln n ≈ 456.
        let g1 = out.forward_levels[0] as f64;
        assert!((g1 - 456.0).abs() < 120.0, "Γ1 = {g1}");
    }

    #[test]
    fn levels_track_mean_field_expectation() {
        let n: u64 = 50_000;
        let params = ExpansionParams::practical(n as usize);
        let expect = expected_levels(n, n as Time, &params);
        // Average the Monte Carlo levels over a few runs.
        let runs = 30;
        let mut sums = vec![0.0f64; expect.len()];
        for seed in 0..runs {
            let mut rng = default_rng(seed);
            let out = expansion_oracle(n, n as Time, &params, &mut rng);
            for (s, &l) in sums.iter_mut().zip(&out.forward_levels) {
                *s += l as f64;
            }
        }
        for (i, (&e, &s)) in expect.iter().zip(&sums).enumerate() {
            let avg = s / runs as f64;
            assert!(
                (avg - e).abs() < 0.25 * e.max(4.0),
                "level {i}: avg {avg} vs expected {e}"
            );
        }
    }

    #[test]
    fn zero_frontier_propagates() {
        // A lifetime so large that windows have negligible probability:
        // Γ1 is almost surely empty and the outcome must fail cleanly.
        let params = ExpansionParams {
            c1: 0.001,
            c2: 0.001,
            d: 2,
        };
        let mut rng = default_rng(3);
        let out = expansion_oracle(1000, 1_000_000, &params, &mut rng);
        assert!(!out.success);
        assert_eq!(out.forward_levels.len(), 3);
    }

    #[test]
    fn frontier_ids_are_distinct() {
        let mut rng = default_rng(4);
        let ids = sample_frontier_ids(1000, 50, &mut rng);
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 50);
    }

    #[test]
    #[should_panic(expected = "beyond lifetime")]
    fn oracle_rejects_oversized_windows() {
        let params = ExpansionParams {
            c1: 50.0,
            c2: 50.0,
            d: 10,
        };
        let mut rng = default_rng(5);
        let _ = expansion_oracle(100, 100, &params, &mut rng);
    }
}
