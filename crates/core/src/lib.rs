//! # ephemeral-core
//!
//! The primary contribution of Akrida, Gąsieniec, Mertzios & Spirakis,
//! *"Ephemeral Networks with Random Availability of Links: Diameter and
//! Connectivity"* (SPAA 2014), as a library:
//!
//! | Paper | Module |
//! |---|---|
//! | §2 uniform random temporal network sampling (U-RTN) | [`urtn`] |
//! | §2 UNI-CASE / F-CASE random label models | [`models`] |
//! | §3 Algorithm 1, the Expansion Process | [`expansion`] (exact), [`expansion_oracle`] (lazily-revealed huge-`n` instances) |
//! | §3.5 flooding dissemination protocol | [`dissemination`] |
//! | Definition 5, Theorems 3–4: temporal diameter `Θ(log n)` | [`diameter`] |
//! | Theorem 5: lifetime lower bound `Ω((a/n)·log n)` | [`lifetime`] |
//! | §4 star graphs, 2-split journeys, Theorem 6 | [`star`] |
//! | Definition 7: `r(n)` labels strongly guaranteeing `T_reach` | [`reachability_whp`] |
//! | §5 Claim 1 box scheme, deterministic `OPT` assignments | [`opt`] |
//! | Definition 8, Theorems 6–8: Price of Randomness | [`por`] |
//! | Closed-form bound curves used by the experiment tables | [`bounds`] |
//! | §6 further research: designed availability (deterministic backbone + random extras) | [`design`] |
//! | Generalization: declarative scenarios (graph family × label model × lifetime × metric) with adaptive CI-driven estimation | [`scenario`] |
//! | Correlated what-if chains: single-label Gibbs resampling maintained by the differential cursor | [`correlated`] |
//!
//! ## Quick start
//!
//! ```
//! use ephemeral_core::urtn;
//! use ephemeral_core::expansion::{expansion_process, ExpansionParams};
//! use ephemeral_rng::default_rng;
//!
//! // A directed normalized uniform random temporal clique on 128 vertices…
//! let mut rng = default_rng(7);
//! let tn = urtn::sample_normalized_urt_clique(128, true, &mut rng);
//! // …and the paper's expansion process between two vertices.
//! let params = ExpansionParams::practical(128);
//! let outcome = expansion_process(&tn, 0, 1, &params);
//! if outcome.success {
//!     let j = outcome.journey.as_ref().unwrap();
//!     assert!(j.is_realizable_in(&tn));
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bounds;
pub mod correlated;
pub mod design;
pub mod diameter;
pub mod dissemination;
pub mod expansion;
pub mod expansion_oracle;
pub mod lifetime;
pub mod models;
pub mod opt;
pub mod por;
pub mod reachability_whp;
pub mod scenario;
pub mod star;
pub mod urtn;
