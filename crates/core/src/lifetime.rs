//! Theorem 5: the temporal diameter's dependence on the lifetime.
//!
//! If each edge of the `n`-clique gets one uniform label from
//! `{1, …, a}` with `a ≫ n`, the temporal diameter is `Ω((a/n)·log n)`:
//! the arcs labelled `≤ k` form an Erdős–Rényi `G(n, p)` with `p = k/a`,
//! which is disconnected w.h.p. while `p < ln n / n` — so some pair needs a
//! label beyond `k ≈ (a/n)·ln n`. This module provides both sides of that
//! argument as measurable quantities.

use ephemeral_graph::algo::{connected_components, is_connected};
use ephemeral_graph::{generators, GraphBuilder};
use ephemeral_parallel::adaptive::{adaptive_proportion, AdaptiveConfig, AdaptiveProportion};
use ephemeral_parallel::{MonteCarlo, Proportion};
use ephemeral_rng::RandomSource;
use ephemeral_temporal::foremost::foremost_with_horizon;
use ephemeral_temporal::{TemporalNetwork, Time};

/// The lower-bound curve of Theorem 5: `(a/n)·ln n`.
#[must_use]
pub fn lifetime_lower_bound(n: usize, lifetime: Time) -> f64 {
    f64::from(lifetime) / n as f64 * (n.max(2) as f64).ln()
}

/// Is the sub-network of arcs labelled `≤ horizon` temporally sufficient
/// to connect a given pair? Used to probe the Theorem 5 argument directly:
/// run the foremost sweep with a horizon and see whether the pair connects.
#[must_use]
pub fn pair_connected_within(tn: &TemporalNetwork, s: u32, t: u32, horizon: Time) -> bool {
    foremost_with_horizon(tn, s, 0, horizon).reached(t)
}

/// The static graph formed by the edges with at least one label `≤ k` —
/// the edge-induced subgraph of the Theorem 5 proof (distributed as
/// `G(n, k/a)` under UNI-CASE).
#[must_use]
pub fn sub_label_graph(tn: &TemporalNetwork, k: Time) -> ephemeral_graph::Graph {
    let g = tn.graph();
    let mut b = if g.is_directed() {
        GraphBuilder::new_directed(g.num_nodes())
    } else {
        GraphBuilder::new_undirected(g.num_nodes())
    };
    for (e, u, v) in g.edges() {
        if tn.labels(e).first().is_some_and(|&l| l <= k) {
            b.add_edge(u, v);
        }
    }
    b.build().expect("subgraph of a valid graph is valid")
}

/// Empirical probability that `G(n, p)` is connected — the classical
/// threshold the paper's lower bounds lean on (E03).
#[must_use]
pub fn gnp_connectivity_probability(
    n: usize,
    p: f64,
    trials: usize,
    seed: u64,
    threads: usize,
) -> Proportion {
    MonteCarlo::new(trials, seed)
        .with_threads(threads)
        .success_probability(|_, rng| is_connected(&generators::gnp(n, p, false, rng)))
}

/// [`gnp_connectivity_probability`] with adaptive trial allocation: stops
/// once the Wilson half-width reaches the config's target (or its cap).
/// Far from the threshold `p̂` sits at 0 or 1 and a handful of batches
/// suffice; near `c = 1` the estimator keeps sampling — exactly where E03's
/// S-curve needs resolution.
#[must_use]
pub fn gnp_connectivity_probability_adaptive(
    n: usize,
    p: f64,
    cfg: &AdaptiveConfig,
    seed: u64,
    threads: usize,
) -> AdaptiveProportion {
    adaptive_proportion(cfg, seed, threads, |_, rng| {
        is_connected(&generators::gnp(n, p, false, rng))
    })
}

/// Size of the largest component of a sampled `G(n, p)`, normalised by `n`
/// — tracks the giant-component emergence below the connectivity threshold.
#[must_use]
pub fn gnp_largest_component_fraction(n: usize, p: f64, rng: &mut impl RandomSource) -> f64 {
    let g = generators::gnp(n, p, false, rng);
    if n == 0 {
        return 0.0;
    }
    let c = connected_components(&g);
    f64::from(c.sizes.iter().copied().max().unwrap_or(0)) / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::urtn::sample_urt_clique_with_lifetime;
    use ephemeral_rng::default_rng;

    #[test]
    fn lower_bound_curve_scales_linearly_in_lifetime() {
        let base = lifetime_lower_bound(100, 100);
        let double = lifetime_lower_bound(100, 200);
        assert!((double / base - 2.0).abs() < 1e-9);
    }

    #[test]
    fn sub_label_graph_filters_by_label() {
        let mut rng = default_rng(1);
        let tn = sample_urt_clique_with_lifetime(32, true, 64, &mut rng);
        let half = sub_label_graph(&tn, 32);
        let full = sub_label_graph(&tn, 64);
        assert_eq!(full.num_edges(), tn.graph().num_edges());
        assert!(half.num_edges() < full.num_edges());
        // Every edge of `half` has a label ≤ 32.
        for (e, u, v) in half.edges() {
            let _ = e;
            let orig = tn.graph().find_edge(u, v).unwrap();
            assert!(tn.labels(orig)[0] <= 32);
        }
    }

    #[test]
    fn pair_connectivity_grows_with_horizon() {
        let mut rng = default_rng(2);
        let tn = sample_urt_clique_with_lifetime(64, true, 64, &mut rng);
        // With the full horizon the direct arc always connects the pair.
        assert!(pair_connected_within(&tn, 0, 1, 64));
        // Monotonicity in the horizon.
        let mut was_connected = false;
        for h in [4u32, 16, 32, 64] {
            let now = pair_connected_within(&tn, 0, 1, h);
            assert!(!was_connected || now, "connectivity must be monotone");
            was_connected = now;
        }
    }

    #[test]
    fn gnp_threshold_behaviour() {
        let n = 256;
        let ln_n = (n as f64).ln();
        // Well below threshold: rarely connected.
        let below = gnp_connectivity_probability(n, 0.4 * ln_n / n as f64, 30, 3, 2);
        // Well above: almost always connected.
        let above = gnp_connectivity_probability(n, 2.5 * ln_n / n as f64, 30, 3, 2);
        assert!(below.estimate < 0.3, "below: {below}");
        assert!(above.estimate > 0.8, "above: {above}");
    }

    #[test]
    fn adaptive_gnp_probability_spends_trials_near_the_threshold() {
        let n = 128;
        let ln_n = (n as f64).ln();
        let cfg = AdaptiveConfig::new(0.08)
            .with_min_trials(16)
            .with_batch(16)
            .with_max_trials(2_000);
        let far = gnp_connectivity_probability_adaptive(n, 3.0 * ln_n / n as f64, &cfg, 5, 2);
        let near = gnp_connectivity_probability_adaptive(n, 1.0 * ln_n / n as f64, &cfg, 5, 2);
        assert!(far.converged && near.converged);
        assert!(far.proportion.estimate > 0.9, "{}", far.proportion);
        assert!(
            near.proportion.trials > far.proportion.trials,
            "near {} vs far {}",
            near.proportion.trials,
            far.proportion.trials
        );
        // Thread invariance of the adaptive path.
        let again = gnp_connectivity_probability_adaptive(n, 1.0 * ln_n / n as f64, &cfg, 5, 8);
        assert_eq!(again, near);
    }

    #[test]
    fn giant_component_appears_above_1_over_n() {
        let mut rng = default_rng(4);
        let n = 512;
        let sub = gnp_largest_component_fraction(n, 0.2 / n as f64, &mut rng);
        let sup = gnp_largest_component_fraction(n, 3.0 / n as f64, &mut rng);
        assert!(sub < 0.2, "subcritical fraction {sub}");
        assert!(sup > 0.5, "supercritical fraction {sup}");
    }
}
