//! Random label models (paper §2: UNI-CASE and the F-CASE note).

use ephemeral_rng::distr::{Discrete, Geometric};
use ephemeral_rng::RandomSource;
use ephemeral_temporal::{LabelAssignment, Time};

/// A random assignment model: given `m` edges, draw a label set per edge.
pub trait LabelModel {
    /// Lifetime `a` of the networks this model produces.
    fn lifetime(&self) -> Time;

    /// Draw an assignment for `m` edges **into** `out`, reusing its buffers
    /// — the per-trial path of the Monte Carlo estimators (zero-allocation
    /// once `out`'s capacity is warm, for the single-label models). The
    /// label stream drawn from `rng` is identical to [`LabelModel::assign`].
    fn assign_into(&self, m: usize, rng: &mut dyn RandomSource, out: &mut LabelAssignment);

    /// Draw a fresh assignment for `m` edges.
    fn assign(&self, m: usize, rng: &mut dyn RandomSource) -> LabelAssignment {
        let mut out = LabelAssignment::default();
        self.assign_into(m, rng, &mut out);
        out
    }
}

/// UNI-CASE (Definition 4): exactly one label per edge, uniform on
/// `{1, …, a}`. With `a = n` this is the Normalized U-RTN of §3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UniformSingle {
    /// Lifetime `a`.
    pub lifetime: Time,
}

impl LabelModel for UniformSingle {
    fn lifetime(&self) -> Time {
        self.lifetime
    }

    fn assign_into(&self, m: usize, rng: &mut dyn RandomSource, out: &mut LabelAssignment) {
        let ok = out.refill_single(m, |_| rng.range_u32(1, self.lifetime));
        assert!(ok, "labels are in 1..=lifetime");
    }
}

/// `r` i.i.d. uniform labels per edge (the §4 model: "adjacent vertices
/// agree on a number r(n) of random available times for the edge joining
/// them").
///
/// Labels are drawn **with replacement** and stored as a set, exactly like
/// the paper's analysis (collisions make the set smaller, which only hurts
/// reachability — every guarantee proved for `r` draws holds verbatim).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UniformMulti {
    /// Lifetime `a`.
    pub lifetime: Time,
    /// Number of label draws per edge.
    pub r: usize,
}

impl LabelModel for UniformMulti {
    fn lifetime(&self) -> Time {
        self.lifetime
    }

    fn assign_into(&self, m: usize, rng: &mut dyn RandomSource, out: &mut LabelAssignment) {
        let mut buf = Vec::with_capacity(self.r);
        let ok = out.refill_with(m, &mut buf, |_, b| {
            b.extend((0..self.r).map(|_| rng.range_u32(1, self.lifetime)));
        });
        assert!(ok, "labels are in 1..=lifetime");
    }
}

/// F-CASE with a Zipf-skewed label distribution: `r` labels per edge, each
/// equal to `k ∈ {1, …, a}` with probability `∝ 1/k^s`. Models networks
/// whose links are predominantly available *early* (s > 0) — the paper's
/// "prospective study" of non-uniform availability.
#[derive(Debug, Clone)]
pub struct ZipfMulti {
    /// Lifetime `a`.
    pub lifetime: Time,
    /// Number of label draws per edge.
    pub r: usize,
    table: Discrete,
}

impl ZipfMulti {
    /// Create with exponent `s > 0`.
    ///
    /// # Panics
    /// If `lifetime == 0`.
    #[must_use]
    pub fn new(lifetime: Time, r: usize, s: f64) -> Self {
        assert!(lifetime >= 1, "lifetime must be at least 1");
        let weights = ephemeral_rng::distr::zipf_weights(lifetime as usize, s);
        let table = Discrete::new(&weights).expect("zipf weights are valid");
        Self { lifetime, r, table }
    }
}

impl LabelModel for ZipfMulti {
    fn lifetime(&self) -> Time {
        self.lifetime
    }

    fn assign_into(&self, m: usize, mut rng: &mut dyn RandomSource, out: &mut LabelAssignment) {
        let mut buf = Vec::with_capacity(self.r);
        let ok = out.refill_with(m, &mut buf, |_, b| {
            b.extend((0..self.r).map(|_| self.table.sample(&mut rng) as Time + 1));
        });
        assert!(ok, "labels are in 1..=lifetime");
    }
}

/// F-CASE with geometric inter-availability gaps: each edge becomes
/// available at times `g₁+1, g₁+g₂+2, …` (truncated at the lifetime), where
/// the gaps are i.i.d. `Geometric(p)`. Models memoryless link activation —
/// the discrete analogue of Poisson availability used by edge-Markovian
/// evolving-graph models.
#[derive(Debug, Clone, Copy)]
pub struct GeometricArrivals {
    /// Lifetime `a`.
    pub lifetime: Time,
    /// Per-step activation probability.
    pub p: f64,
}

impl LabelModel for GeometricArrivals {
    fn lifetime(&self) -> Time {
        self.lifetime
    }

    fn assign_into(&self, m: usize, mut rng: &mut dyn RandomSource, out: &mut LabelAssignment) {
        let gap = Geometric::new(self.p);
        let mut buf = Vec::new();
        let ok = out.refill_with(m, &mut buf, |_, b| {
            let mut t: u64 = 0;
            loop {
                t += gap.sample(&mut rng) + 1;
                if t > u64::from(self.lifetime) {
                    break;
                }
                b.push(t as Time);
            }
        });
        assert!(ok, "labels are in 1..=lifetime");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ephemeral_rng::default_rng;

    #[test]
    fn uniform_single_one_label_each() {
        let mut rng = default_rng(1);
        let model = UniformSingle { lifetime: 16 };
        let a = model.assign(100, &mut rng);
        assert_eq!(a.num_edges(), 100);
        assert_eq!(a.total_labels(), 100);
        assert!(a.max_label().unwrap() <= 16);
        assert!(a.min_label().unwrap() >= 1);
    }

    #[test]
    fn uniform_single_is_roughly_uniform() {
        let mut rng = default_rng(2);
        let model = UniformSingle { lifetime: 4 };
        let a = model.assign(40_000, &mut rng);
        let mut counts = [0u32; 4];
        for (_, l) in a.iter() {
            counts[(l - 1) as usize] += 1;
        }
        for &c in &counts {
            let frac = f64::from(c) / 40_000.0;
            assert!((frac - 0.25).abs() < 0.02, "{counts:?}");
        }
    }

    #[test]
    fn uniform_multi_at_most_r_labels() {
        let mut rng = default_rng(3);
        let model = UniformMulti {
            lifetime: 1000,
            r: 5,
        };
        let a = model.assign(200, &mut rng);
        for e in 0..200u32 {
            let l = a.labels(e);
            assert!(!l.is_empty() && l.len() <= 5, "edge {e}: {l:?}");
            assert!(l.iter().all(|&t| (1..=1000).contains(&t)));
        }
    }

    #[test]
    fn uniform_multi_collisions_shrink_sets() {
        // Tiny lifetime forces collisions: sets must still be valid.
        let mut rng = default_rng(4);
        let model = UniformMulti { lifetime: 2, r: 10 };
        let a = model.assign(50, &mut rng);
        for e in 0..50u32 {
            assert!(a.labels(e).len() <= 2);
        }
    }

    #[test]
    fn zipf_prefers_early_labels() {
        let mut rng = default_rng(5);
        let model = ZipfMulti::new(100, 1, 1.5);
        let a = model.assign(20_000, &mut rng);
        let early = a.iter().filter(|&(_, l)| l <= 10).count();
        assert!(early > 15_000, "early {early}");
        assert_eq!(model.lifetime(), 100);
    }

    #[test]
    fn geometric_arrivals_are_increasing_and_bounded() {
        let mut rng = default_rng(6);
        let model = GeometricArrivals {
            lifetime: 50,
            p: 0.2,
        };
        let a = model.assign(100, &mut rng);
        for e in 0..100u32 {
            let l = a.labels(e);
            assert!(l.windows(2).all(|w| w[0] < w[1]));
            assert!(l.iter().all(|&t| (1..=50).contains(&t)));
        }
        // Expected ~p·a = 10 labels per edge.
        let avg = a.total_labels() as f64 / 100.0;
        assert!((avg - 10.0).abs() < 2.0, "avg {avg}");
    }

    #[test]
    fn models_are_deterministic_under_seed() {
        let model = UniformMulti { lifetime: 64, r: 3 };
        let a = model.assign(64, &mut default_rng(9));
        let b = model.assign(64, &mut default_rng(9));
        assert_eq!(a, b);
    }

    #[test]
    fn assign_into_draws_the_same_stream_as_assign() {
        // The scratch path must be indistinguishable from the fresh path —
        // same rng consumption, same labels — for every model, so switching
        // a Monte Carlo loop to scratch reuse never changes its results.
        let models: Vec<Box<dyn LabelModel>> = vec![
            Box::new(UniformSingle { lifetime: 32 }),
            Box::new(UniformMulti { lifetime: 32, r: 4 }),
            Box::new(ZipfMulti::new(32, 3, 1.1)),
            Box::new(GeometricArrivals {
                lifetime: 32,
                p: 0.25,
            }),
        ];
        for (k, model) in models.iter().enumerate() {
            let fresh = model.assign(50, &mut default_rng(100 + k as u64));
            let mut scratch = LabelAssignment::default();
            let mut rng = default_rng(100 + k as u64);
            for trial in 0..3 {
                model.assign_into(50, &mut rng, &mut scratch);
                if trial == 0 {
                    assert_eq!(scratch, fresh, "model {k}");
                }
            }
            // After several refills the scratch is still a valid CSR.
            assert_eq!(scratch.num_edges(), 50);
        }
    }
}
