//! Deterministic label assignments and `OPT` bounds (§4–§5).
//!
//! `OPT(G)` — the least total number of labels preserving reachability — is
//! hard to even approximate in general (Mertzios et al., ICALP'13, cited as
//! \[21\]). The experiments therefore divide by *certified* quantities:
//!
//! * exact values where the paper states them (star: `OPT = 2m`),
//! * constructive upper bounds: the **star scheme** (2 labels on each edge
//!   of a universal vertex), the **box scheme** of Claim 1 (`d(G)` labels
//!   on every edge), and the **spanning-tree scheme** (box scheme on a BFS
//!   tree: `(n−1)·d(T)` labels),
//! * the universal lower bound `OPT ≥ n − 1` (a labelled spanning
//!   subgraph is necessary).
//!
//! Every constructive scheme is verified against the generic `T_reach`
//! checker in this module's tests.

use ephemeral_graph::algo::{bfs_tree, diameter, two_sweep_lower_bound};
use ephemeral_graph::{Graph, NodeId};
use ephemeral_temporal::{LabelAssignment, Time};

/// A deterministic assignment together with its accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct Scheme {
    /// The label assignment.
    pub assignment: LabelAssignment,
    /// Total number of labels (`Σ_e |L_e|`).
    pub total_labels: usize,
    /// Lifetime needed by the scheme.
    pub lifetime: Time,
    /// Human-readable scheme name.
    pub name: &'static str,
}

/// Universal lower bound `OPT ≥ n − 1` for connected graphs on `n ≥ 2`
/// vertices (a labelled spanning subgraph is necessary); 0 otherwise.
#[must_use]
pub fn opt_lower_bound(g: &Graph) -> usize {
    g.num_nodes().saturating_sub(1)
}

/// The star scheme: if `center` is adjacent to every other vertex, label
/// each centre edge `{1, 2}` and leave the rest unlabelled. Any `u → v`
/// journey goes `u →(1) c →(2) v`. Total `2(n−1)`; for the star graph
/// itself this is the paper's `OPT = 2m`.
///
/// Returns `None` if `center` is not universal.
#[must_use]
pub fn star_scheme(g: &Graph, center: NodeId) -> Option<Scheme> {
    let n = g.num_nodes();
    if n == 0 || g.is_directed() {
        return None;
    }
    if g.out_degree(center) != n - 1 {
        return None;
    }
    let assignment = LabelAssignment::from_fn(g.num_edges(), |e| {
        let (u, v) = g.endpoints(e);
        if u == center || v == center {
            vec![1, 2]
        } else {
            vec![]
        }
    })?;
    Some(Scheme {
        total_labels: 2 * (n - 1),
        assignment,
        lifetime: 2,
        name: "star",
    })
}

/// The box scheme of Claim 1 with `λ = 1`: every edge receives the labels
/// `{1, 2, …, d(G)}`. Any shortest path becomes a journey by taking label
/// `i` on its `i`-th edge, so `T_reach` is guaranteed. Total `m·d(G)`.
///
/// Returns `None` for disconnected graphs (diameter undefined) — or
/// `d = 0` graphs, which need no labels at all.
#[must_use]
pub fn box_scheme(g: &Graph) -> Option<Scheme> {
    let d = diameter(g)?;
    let labels: Vec<Time> = (1..=d).collect();
    let assignment = LabelAssignment::from_fn(g.num_edges(), |_| labels.clone())?;
    Some(Scheme {
        total_labels: g.num_edges() * d as usize,
        assignment,
        lifetime: d.max(1),
        name: "box",
    })
}

/// The spanning-tree scheme: a BFS tree from `root` gets the box scheme
/// with the *tree's* diameter (exact via two-sweep, which is exact on
/// trees); non-tree edges stay unlabelled. Total `(n−1)·d(T)`. On the star
/// with `root = centre` this realises the paper's `OPT = 2m`.
///
/// Returns `None` for disconnected graphs.
#[must_use]
pub fn spanning_tree_scheme(g: &Graph, root: NodeId) -> Option<Scheme> {
    let n = g.num_nodes();
    if n == 0 {
        return None;
    }
    let tree = bfs_tree(g, root);
    if !tree.is_spanning() {
        return None;
    }
    if n == 1 {
        let assignment = LabelAssignment::from_fn(g.num_edges(), |_| vec![])?;
        return Some(Scheme {
            assignment,
            total_labels: 0,
            lifetime: 1,
            name: "spanning-tree",
        });
    }
    // The tree as its own graph to measure its diameter exactly.
    let mut tb = ephemeral_graph::GraphBuilder::new_undirected(n);
    for &e in &tree.edges {
        let (u, v) = g.endpoints(e);
        tb.add_edge(u, v);
    }
    let tree_graph = tb.build().expect("tree edges are valid");
    let d_tree = two_sweep_lower_bound(&tree_graph, root).expect("tree is connected");
    let d_tree = d_tree.max(1);

    // Label tree edge e with {depth-agnostic boxes}: every tree edge gets
    // {1..d_tree}; any tree path has length ≤ d_tree.
    let mut is_tree_edge = vec![false; g.num_edges()];
    for &e in &tree.edges {
        is_tree_edge[e as usize] = true;
    }
    let labels: Vec<Time> = (1..=d_tree).collect();
    let assignment = LabelAssignment::from_fn(g.num_edges(), |e| {
        if is_tree_edge[e as usize] {
            labels.clone()
        } else {
            vec![]
        }
    })?;
    Some(Scheme {
        total_labels: (n - 1) * d_tree as usize,
        assignment,
        lifetime: d_tree,
        name: "spanning-tree",
    })
}

/// The best (fewest labels) applicable deterministic scheme for `g`: tries
/// the star scheme on every max-degree vertex, the spanning-tree scheme
/// from a few roots, and the box scheme, returning the cheapest.
///
/// Returns `None` for graphs where no scheme applies (disconnected).
#[must_use]
pub fn best_scheme(g: &Graph) -> Option<Scheme> {
    let mut best: Option<Scheme> = None;
    let mut consider = |s: Option<Scheme>| {
        if let Some(s) = s {
            if best
                .as_ref()
                .is_none_or(|b| s.total_labels < b.total_labels)
            {
                best = Some(s);
            }
        }
    };
    if !g.is_directed() && g.num_nodes() >= 2 {
        let hub = (0..g.num_nodes() as u32).max_by_key(|&v| g.out_degree(v));
        if let Some(hub) = hub {
            consider(star_scheme(g, hub));
        }
        consider(spanning_tree_scheme(g, 0));
    }
    consider(box_scheme(g));
    best
}

/// The paper's exact `OPT` for the star graph `K_{1,n−1}` (`n ≥ 3`):
/// `2m = 2(n−1)` (§4.2: two labels per edge suffice, one per edge cannot).
#[must_use]
pub fn star_opt(n: usize) -> usize {
    2 * n.saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ephemeral_graph::generators;
    use ephemeral_temporal::reachability::treach_holds;
    use ephemeral_temporal::TemporalNetwork;

    fn verify(g: &Graph, s: &Scheme) {
        let tn = TemporalNetwork::new(g.clone(), s.assignment.clone(), s.lifetime)
            .expect("scheme labels fit its lifetime");
        assert!(
            treach_holds(&tn, 2),
            "{} scheme must preserve reachability",
            s.name
        );
        assert_eq!(s.assignment.total_labels(), s.total_labels, "{}", s.name);
    }

    #[test]
    fn star_scheme_on_star_matches_paper_opt() {
        let n = 20;
        let g = generators::star(n);
        let s = star_scheme(&g, 0).unwrap();
        assert_eq!(s.total_labels, star_opt(n));
        verify(&g, &s);
    }

    #[test]
    fn star_scheme_on_clique_and_wheel() {
        let g = generators::clique(8, false);
        let s = star_scheme(&g, 3).unwrap();
        assert_eq!(s.total_labels, 14);
        verify(&g, &s);

        let w = generators::wheel(9);
        let s = star_scheme(&w, 0).unwrap();
        assert_eq!(s.total_labels, 16);
        verify(&w, &s);
    }

    #[test]
    fn star_scheme_rejects_non_universal_center() {
        let g = generators::path(5);
        assert!(star_scheme(&g, 2).is_none());
        let s = generators::star(5);
        assert!(star_scheme(&s, 1).is_none(), "a leaf is not universal");
    }

    #[test]
    fn box_scheme_on_various_families() {
        for g in [
            generators::path(9),
            generators::cycle(8),
            generators::grid(4, 5),
            generators::hypercube(4),
            generators::binary_tree(15),
        ] {
            let s = box_scheme(&g).unwrap();
            assert_eq!(
                s.total_labels,
                g.num_edges() * diameter(&g).unwrap() as usize
            );
            verify(&g, &s);
        }
    }

    #[test]
    fn box_scheme_none_on_disconnected() {
        let mut b = ephemeral_graph::GraphBuilder::new_undirected(4);
        b.add_edge(0, 1);
        let g = b.build().unwrap();
        assert!(box_scheme(&g).is_none());
    }

    #[test]
    fn spanning_tree_scheme_beats_box_on_dense_graphs() {
        let g = generators::clique(12, false);
        let tree = spanning_tree_scheme(&g, 0).unwrap();
        let boxes = box_scheme(&g).unwrap();
        assert!(tree.total_labels < boxes.total_labels + 1);
        verify(&g, &tree);
    }

    #[test]
    fn spanning_tree_on_star_realises_opt() {
        let n = 16;
        let g = generators::star(n);
        let s = spanning_tree_scheme(&g, 0).unwrap();
        assert_eq!(s.total_labels, star_opt(n));
        verify(&g, &s);
    }

    #[test]
    fn best_scheme_picks_the_cheapest() {
        // On the star, the star scheme (= spanning tree from the centre)
        // with 2(n−1) labels beats the box scheme with 2m = 2(n−1)… equal
        // here; on the clique the star scheme wins outright.
        let g = generators::clique(10, false);
        let s = best_scheme(&g).unwrap();
        assert_eq!(s.total_labels, 2 * 9);
        verify(&g, &s);

        // On a path, box scheme total = m·d = (n−1)², spanning tree the
        // same; best is still valid.
        let p = generators::path(6);
        let s = best_scheme(&p).unwrap();
        verify(&p, &s);
    }

    #[test]
    fn lower_bound_is_n_minus_one() {
        assert_eq!(opt_lower_bound(&generators::star(10)), 9);
        assert_eq!(opt_lower_bound(&generators::clique(5, false)), 4);
        assert_eq!(
            opt_lower_bound(
                &ephemeral_graph::GraphBuilder::new_undirected(0)
                    .build()
                    .unwrap()
            ),
            0
        );
    }

    #[test]
    fn schemes_respect_lower_bound() {
        for g in [
            generators::star(12),
            generators::grid(3, 4),
            generators::cycle(9),
        ] {
            let s = best_scheme(&g).unwrap();
            assert!(s.total_labels >= opt_lower_bound(&g), "{}", s.name);
        }
    }
}
