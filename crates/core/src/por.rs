//! The Price of Randomness (Definition 8, Theorems 6 & 8).
//!
//! `PoR(G) = m·r(n) / OPT`: how many *random* labels the network must buy
//! per edge (times the number of edges) relative to the cheapest
//! *coordinated* deterministic assignment. The paper proves
//! `PoR = Θ(log n)` for the star and
//! `PoR(G) ≤ (2·d(G)·log n + ε)·m/(n−1)` in general (Theorem 8).

use crate::opt::{best_scheme, opt_lower_bound};
use crate::reachability_whp::{minimal_r, whp_target};
use ephemeral_graph::algo::diameter;
use ephemeral_graph::Graph;
use ephemeral_parallel::Proportion;
use ephemeral_temporal::Time;

/// Theorem 7's sufficient label count: `2·d(G)·ln n`.
#[must_use]
pub fn theorem7_r(n: usize, d: u32) -> f64 {
    2.0 * f64::from(d) * (n.max(2) as f64).ln()
}

/// Theorem 8's PoR upper bound: `(2·d·ln n)·m/(n−1)`.
#[must_use]
pub fn theorem8_bound(n: usize, m: usize, d: u32) -> f64 {
    theorem7_r(n, d) * m as f64 / (n.max(2) as f64 - 1.0)
}

/// An empirical Price-of-Randomness measurement for one graph.
#[derive(Debug, Clone, PartialEq)]
pub struct PorReport {
    /// Family/instance name (for tables).
    pub name: String,
    /// Vertices.
    pub n: usize,
    /// Edges.
    pub m: usize,
    /// Hop diameter `d(G)`.
    pub diameter: u32,
    /// Empirically minimal `r` meeting the w.h.p. target.
    pub r: usize,
    /// The measured probability at that `r`.
    pub r_probability: Proportion,
    /// The w.h.p. target used (`1 − 1/n`).
    pub target: f64,
    /// Best deterministic scheme's total labels (an upper bound on `OPT`).
    pub opt_upper: usize,
    /// Name of that scheme.
    pub opt_scheme: &'static str,
    /// Universal lower bound `n − 1` on `OPT`.
    pub opt_lower: usize,
    /// `m·r / opt_upper` — a *lower* bound on the true `PoR` (dividing by
    /// an over-estimate of `OPT`).
    pub por_lower: f64,
    /// `m·r / opt_lower` — an *upper* bound on the true `PoR`.
    pub por_upper: f64,
    /// Theorem 8's closed-form bound.
    pub theorem8: f64,
}

/// Measure the PoR bracket of a connected graph.
///
/// Returns `None` for disconnected graphs (diameter undefined).
///
/// # Panics
/// If `trials == 0`.
#[must_use]
pub fn por_report(
    graph: &Graph,
    name: &str,
    trials: usize,
    seed: u64,
    threads: usize,
) -> Option<PorReport> {
    let n = graph.num_nodes();
    let m = graph.num_edges();
    let d = diameter(graph)?;
    let lifetime = n.max(2) as Time;
    let target = whp_target(n);
    let min_r = minimal_r(graph, lifetime, target, trials, seed, threads);
    let scheme = best_scheme(graph)?;
    let opt_lower = opt_lower_bound(graph).max(1);
    let opt_upper = scheme.total_labels.max(1);
    let mr = m as f64 * min_r.r as f64;
    Some(PorReport {
        name: name.to_owned(),
        n,
        m,
        diameter: d,
        r: min_r.r,
        r_probability: min_r.probability,
        target,
        opt_upper,
        opt_scheme: scheme.name,
        opt_lower,
        por_lower: mr / opt_upper as f64,
        por_upper: mr / opt_lower as f64,
        theorem8: theorem8_bound(n, m, d),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ephemeral_graph::generators;

    #[test]
    fn theorem_bounds_scale_as_stated() {
        // Doubling the diameter doubles both bounds.
        let a = theorem7_r(100, 2);
        let b = theorem7_r(100, 4);
        assert!((b / a - 2.0).abs() < 1e-12);
        let t8 = theorem8_bound(100, 99, 2);
        assert!((t8 - a * 99.0 / 99.0).abs() < 1e-9);
    }

    #[test]
    fn star_por_bracket_contains_theta_log_n() {
        let n = 64;
        let g = generators::star(n);
        let rep = por_report(&g, "star", 150, 1, 2).unwrap();
        assert_eq!(rep.diameter, 2);
        assert_eq!(rep.m, n - 1);
        // OPT for the star is exactly 2m; our best scheme achieves it.
        assert_eq!(rep.opt_upper, 2 * (n - 1));
        // PoR = m·r/(2m) = r/2 ∈ Θ(log n): sanity band.
        let log2n = (n as f64).log2();
        assert!(rep.por_lower >= 0.5, "por {}", rep.por_lower);
        assert!(rep.por_lower <= 4.0 * log2n, "por {}", rep.por_lower);
        // The bracket is consistent and below Theorem 8's bound.
        assert!(rep.por_lower <= rep.por_upper + 1e-9);
        assert!(rep.por_lower <= rep.theorem8 * 1.01, "t8 {}", rep.theorem8);
    }

    #[test]
    fn clique_por_is_tiny() {
        let g = generators::clique(12, false);
        let rep = por_report(&g, "clique", 60, 2, 2).unwrap();
        assert_eq!(rep.r, 1, "cliques need one label");
        assert_eq!(rep.opt_scheme, "star");
        // PoR bracket: m/(2(n−1)) … m/(n−1).
        assert!((rep.por_lower - rep.m as f64 / (2.0 * 11.0)).abs() < 1e-9);
    }

    #[test]
    fn disconnected_graph_yields_none() {
        let mut b = ephemeral_graph::GraphBuilder::new_undirected(4);
        b.add_edge(0, 1);
        let g = b.build().unwrap();
        assert!(por_report(&g, "broken", 10, 3, 1).is_none());
    }

    #[test]
    fn report_carries_consistent_metadata() {
        let g = generators::cycle(16);
        let rep = por_report(&g, "cycle", 60, 4, 2).unwrap();
        assert_eq!(rep.name, "cycle");
        assert_eq!(rep.n, 16);
        assert_eq!(rep.m, 16);
        assert_eq!(rep.diameter, 8);
        assert!(rep.r_probability.estimate >= rep.target || rep.r == 4096);
        assert!(rep.opt_lower <= rep.opt_upper);
    }
}
