//! Definition 7: experiments that *strongly guarantee temporal reachability
//! with high probability* — how many random labels per edge until
//! `P[T_reach] ≥ 1 − n^{−a}`?

use crate::models::{LabelModel, UniformMulti};
use ephemeral_graph::Graph;
use ephemeral_parallel::adaptive::{
    adaptive_proportion_pooled_with, AdaptiveConfig, AdaptiveProportion, StatePool,
};
use ephemeral_parallel::{MonteCarlo, Proportion};
use ephemeral_rng::SeedSequence;
use ephemeral_temporal::session::QuerySession;
use ephemeral_temporal::{LabelAssignment, Time};

/// Monte Carlo estimate of `P[T_reach]` for `r` i.i.d. uniform labels per
/// edge over `graph` with the given lifetime. Each worker owns one copy of
/// the graph CSR and redraws labels into scratch buffers per trial; the
/// `T_reach` check itself dispatches density-aware — 64 sources per pass
/// through the batch engine below the crossover, a probe-first full-width
/// sweep (wide or event-driven sparse by occupied-bucket fill) above it
/// (see `ephemeral_temporal::sparse::EngineChoice`).
///
/// # Panics
/// If `r == 0`, `lifetime == 0` or `trials == 0`.
#[must_use]
pub fn treach_probability(
    graph: &Graph,
    lifetime: Time,
    r: usize,
    trials: usize,
    seed: u64,
    threads: usize,
) -> Proportion {
    assert!(r >= 1 && trials >= 1);
    let model = UniformMulti { lifetime, r };
    MonteCarlo::new(trials, seed)
        .with_threads(threads)
        .success_probability_with(
            || ProbeState::new(graph, lifetime),
            |state, _, rng| state.trial(&model, rng),
        )
}

/// Per-worker scratch of a `T_reach` probe: a pinned [`QuerySession`]
/// (network CSR, sweep scratch, lane buffers) plus a spare label buffer
/// the model redraws into. One trial swaps the freshly drawn assignment
/// in, runs the session's density-dispatched `T_reach` check, and keeps
/// the displaced assignment as the next trial's spare — no allocation
/// after warm-up.
#[derive(Debug)]
pub struct ProbeState {
    session: QuerySession,
    spare: LabelAssignment,
}

impl ProbeState {
    fn new(graph: &Graph, lifetime: Time) -> Self {
        Self {
            session: QuerySession::new(crate::urtn::placeholder_network(graph, lifetime)),
            spare: LabelAssignment::default(),
        }
    }

    fn trial(&mut self, model: &UniformMulti, rng: &mut impl ephemeral_rng::RandomSource) -> bool {
        let edges = self.session.network().graph().num_edges();
        model.assign_into(edges, rng, &mut self.spare);
        let drawn = std::mem::take(&mut self.spare);
        self.spare = self
            .session
            .replace_assignment(drawn)
            .expect("model labels fit the lifetime");
        self.session.treach_holds()
    }
}

/// Warm [`ProbeState`]s shared across adaptive runs: the per-`r` probes
/// of [`minimal_r_adaptive`] draw from one of these, so the bisection
/// builds at most `threads` sessions for the whole search instead of
/// re-allocating network copies and sweep scratch per candidate `r`.
/// States are only interchangeable across probes over the **same**
/// `(graph, lifetime)` — use a fresh pool per instance.
pub type ProbePool = StatePool<ProbeState>;

/// [`treach_probability`] with adaptive trial allocation: batches run until
/// the Wilson half-width reaches the config's target or its cap. At the
/// extremes (`p̂ ≈ 0` or `1` — most probes of a minimal-`r` search) this
/// stops after a few batches; only probes near the threshold pay for
/// precision.
///
/// # Panics
/// If `r == 0` or `lifetime == 0`.
#[must_use]
pub fn treach_probability_adaptive(
    graph: &Graph,
    lifetime: Time,
    r: usize,
    cfg: &AdaptiveConfig,
    seed: u64,
    threads: usize,
) -> AdaptiveProportion {
    treach_probability_adaptive_pooled(graph, lifetime, r, cfg, seed, threads, &ProbePool::new())
}

/// [`treach_probability_adaptive`] drawing its per-worker
/// [`ProbeState`]s from a caller-owned [`ProbePool`]. Identical numbers
/// — a pooled session is fully reset by the per-trial assignment swap —
/// but a caller probing many `r` over one instance (the bisection of
/// [`minimal_r_adaptive`]) pays for network copies and sweep scratch
/// once, not once per probe.
///
/// # Panics
/// If `r == 0` or `lifetime == 0`, or if the pool holds states from a
/// different `(graph, lifetime)` (edge counts then disagree).
#[must_use]
pub fn treach_probability_adaptive_pooled(
    graph: &Graph,
    lifetime: Time,
    r: usize,
    cfg: &AdaptiveConfig,
    seed: u64,
    threads: usize,
    pool: &ProbePool,
) -> AdaptiveProportion {
    assert!(r >= 1);
    let model = UniformMulti { lifetime, r };
    adaptive_proportion_pooled_with(
        cfg,
        seed,
        threads,
        pool,
        || ProbeState::new(graph, lifetime),
        |state, _, rng| state.trial(&model, rng),
    )
}

/// Result of the minimal-`r` search.
#[derive(Debug, Clone, PartialEq)]
pub struct MinimalR {
    /// Smallest evaluated `r` whose estimate met the target.
    pub r: usize,
    /// The estimate at that `r`.
    pub probability: Proportion,
    /// Every `(r, estimate)` pair evaluated along the way, in evaluation
    /// order — the raw material of the E08 tables.
    pub evaluations: Vec<(usize, f64)>,
    /// The target probability used.
    pub target: f64,
}

/// Find the empirically minimal `r` with `P[T_reach] ≥ target`, by doubling
/// followed by binary search (both on the Monte Carlo estimate; the answer
/// is exact up to sampling noise at the threshold).
///
/// The search is capped at `r = 4096`; if even that fails the cap is
/// returned (with its measured probability) so callers can see the failure.
///
/// # Panics
/// If `target ∉ (0, 1]` or `trials == 0`.
#[must_use]
pub fn minimal_r(
    graph: &Graph,
    lifetime: Time,
    target: f64,
    trials: usize,
    seed: u64,
    threads: usize,
) -> MinimalR {
    assert!(target > 0.0 && target <= 1.0, "target must be in (0,1]");
    assert!(trials >= 1);
    let mut evaluations = Vec::new();
    let mut probe = |r: usize| -> Proportion {
        let p = treach_probability(
            graph,
            lifetime,
            r,
            trials,
            seed ^ ((r as u64) << 32),
            threads,
        );
        evaluations.push((r, p.estimate));
        p
    };

    let mut hi = 1usize;
    let mut hi_prob = probe(hi);
    while hi_prob.estimate < target && hi < 4096 {
        hi *= 2;
        hi_prob = probe(hi);
    }
    if hi_prob.estimate < target {
        return MinimalR {
            r: hi,
            probability: hi_prob,
            evaluations,
            target,
        };
    }
    let mut lo = hi / 2; // exclusive: lo failed (or is 0)
    let mut best = (hi, hi_prob);
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        let p = probe(mid);
        if p.estimate >= target {
            hi = mid;
            best = (mid, p);
        } else {
            lo = mid;
        }
    }
    MinimalR {
        r: best.0,
        probability: best.1,
        evaluations,
        target,
    }
}

/// [`minimal_r`] with adaptive trial allocation per probe: the doubling +
/// binary search is unchanged, but each probed `r` runs only as many trials
/// as its Wilson interval demands (per-probe seeds come from a
/// [`SeedSequence`] stream keyed by `r`, so probes never share draws).
/// One [`ProbePool`] spans the whole search, so the warm sessions built
/// for the first probe serve every later candidate `r`.
///
/// # Panics
/// If `target ∉ (0, 1]`.
#[must_use]
pub fn minimal_r_adaptive(
    graph: &Graph,
    lifetime: Time,
    target: f64,
    cfg: &AdaptiveConfig,
    seed: u64,
    threads: usize,
) -> MinimalR {
    assert!(target > 0.0 && target <= 1.0, "target must be in (0,1]");
    let seq = SeedSequence::new(seed);
    let pool = ProbePool::new();
    let mut evaluations = Vec::new();
    let mut probe = |r: usize| -> Proportion {
        let p = treach_probability_adaptive_pooled(
            graph,
            lifetime,
            r,
            cfg,
            seq.derive(r as u64),
            threads,
            &pool,
        );
        evaluations.push((r, p.proportion.estimate));
        p.proportion
    };

    let mut hi = 1usize;
    let mut hi_prob = probe(hi);
    while hi_prob.estimate < target && hi < 4096 {
        hi *= 2;
        hi_prob = probe(hi);
    }
    if hi_prob.estimate < target {
        return MinimalR {
            r: hi,
            probability: hi_prob,
            evaluations,
            target,
        };
    }
    let mut lo = hi / 2; // exclusive: lo failed (or is 0)
    let mut best = (hi, hi_prob);
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        let p = probe(mid);
        if p.estimate >= target {
            hi = mid;
            best = (mid, p);
        } else {
            lo = mid;
        }
    }
    MinimalR {
        r: best.0,
        probability: best.1,
        evaluations,
        target,
    }
}

/// The paper's "with high probability" target for a given `n`: `1 − 1/n`
/// (the weakest exponent `a = 1` of the definition).
#[must_use]
pub fn whp_target(n: usize) -> f64 {
    1.0 - 1.0 / (n.max(2) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ephemeral_graph::generators;

    #[test]
    fn clique_needs_one_label() {
        let g = generators::clique(10, false);
        let p = treach_probability(&g, 10, 1, 50, 1, 2);
        assert_eq!(p.estimate, 1.0, "cliques satisfy T_reach with any labels");
        let res = minimal_r(&g, 10, 0.99, 50, 1, 2);
        assert_eq!(res.r, 1);
        assert_eq!(res.evaluations.len(), 1);
    }

    #[test]
    fn path_needs_many_labels() {
        let g = generators::path(12);
        let one = treach_probability(&g, 12, 1, 100, 2, 2);
        assert!(one.estimate < 0.2, "{one}");
        let many = treach_probability(&g, 12, 48, 100, 2, 2);
        assert!(many.estimate > 0.8, "{many}");
    }

    #[test]
    fn minimal_r_finds_a_threshold() {
        let g = generators::star(32);
        let res = minimal_r(&g, 32, 0.9, 150, 3, 2);
        assert!(res.r >= 2, "one label cannot serve a star: {}", res.r);
        assert!(res.r <= 64, "threshold unexpectedly large: {}", res.r);
        assert!(res.probability.estimate >= 0.9);
        // The evaluation trace includes the final r.
        assert!(res.evaluations.iter().any(|&(r, _)| r == res.r));
    }

    #[test]
    fn minimal_r_on_disconnected_graph_respects_static_reach() {
        // T_reach only requires journeys where static paths exist; two
        // disjoint edges each need their own labels but no cross pairs.
        let mut b = ephemeral_graph::GraphBuilder::new_undirected(4);
        b.add_edge(0, 1);
        b.add_edge(2, 3);
        let g = b.build().unwrap();
        let res = minimal_r(&g, 4, 0.95, 50, 4, 1);
        assert_eq!(res.r, 1, "single labels serve single edges");
    }

    #[test]
    fn adaptive_minimal_r_matches_the_fixed_search_shape() {
        let g = generators::star(32);
        let cfg = AdaptiveConfig::new(0.06)
            .with_min_trials(24)
            .with_batch(24)
            .with_max_trials(600);
        let res = minimal_r_adaptive(&g, 32, 0.9, &cfg, 3, 2);
        assert!(res.r >= 2 && res.r <= 64, "r = {}", res.r);
        assert!(res.probability.estimate >= 0.9);
        assert!(res.evaluations.iter().any(|&(r, _)| r == res.r));
        // Determinism across thread counts (the sweep contract).
        let again = minimal_r_adaptive(&g, 32, 0.9, &cfg, 3, 8);
        assert_eq!(res, again);
    }

    #[test]
    fn adaptive_treach_probability_stops_early_at_extremes() {
        let clique = generators::clique(12, false);
        let cfg = AdaptiveConfig::new(0.05)
            .with_min_trials(16)
            .with_batch(16)
            .with_max_trials(2_000);
        let sure = treach_probability_adaptive(&clique, 12, 1, &cfg, 1, 2);
        assert_eq!(sure.proportion.estimate, 1.0);
        assert!(sure.converged);
        // The path at a borderline budget needs many more trials.
        let path = generators::path(10);
        let mid = treach_probability_adaptive(&path, 10, 16, &cfg, 1, 2);
        assert!(
            mid.proportion.trials >= sure.proportion.trials,
            "mid {} sure {}",
            mid.proportion.trials,
            sure.proportion.trials
        );
    }

    #[test]
    fn pooled_probes_match_fresh_probes_and_reuse_sessions() {
        let g = generators::star(24);
        let cfg = AdaptiveConfig::new(0.08)
            .with_min_trials(16)
            .with_batch(16)
            .with_max_trials(200);
        let threads = 2;
        let pool = ProbePool::new();
        for r in [1usize, 4, 16] {
            let pooled =
                treach_probability_adaptive_pooled(&g, 24, r, &cfg, 7 ^ r as u64, threads, &pool);
            let fresh = treach_probability_adaptive(&g, 24, r, &cfg, 7 ^ r as u64, threads);
            assert_eq!(pooled.proportion, fresh.proportion, "r = {r}");
            assert_eq!(pooled.half_width, fresh.half_width, "r = {r}");
        }
        // The shared pool parked its warm sessions between probes instead
        // of rebuilding them: never more than `threads` states exist.
        let idle = pool.idle();
        assert!(
            (1..=threads).contains(&idle),
            "expected 1..={threads} pooled probe states, found {idle}"
        );
    }

    #[test]
    fn whp_target_formula() {
        assert!((whp_target(100) - 0.99).abs() < 1e-12);
        assert!(whp_target(0) > 0.0);
    }

    #[test]
    #[should_panic(expected = "target must be in (0,1]")]
    fn bad_target_panics() {
        let g = generators::path(4);
        let _ = minimal_r(&g, 4, 0.0, 10, 0, 1);
    }
}
