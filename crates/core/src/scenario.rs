//! Declarative scenarios: graph family × label model × lifetime rule ×
//! metric, evaluated by the adaptive Monte Carlo engine.
//!
//! The paper proves its temporal-diameter and connectivity results for the
//! uniform random temporal **clique** (and stars), but the machinery —
//! [`LabelModel`] over any graph, the
//! bit-parallel engine, CI-driven stopping — generalizes. Follow-up work
//! studies exactly that generalization (sparse random availability on
//! general graphs; dynamic random geometric graphs). A [`Scenario`] names
//! one such cell; [`Scenario::evaluate`] measures it with trials allocated
//! adaptively, deterministic in `(scenario, seed)` regardless of the
//! thread count. The sweep engine in `ephemeral-bench` expands grids of
//! these cells and streams resumable JSON-lines results.

use crate::correlated::static_reachable_pairs;
use crate::models::{GeometricArrivals, LabelModel, UniformMulti, UniformSingle, ZipfMulti};
use crate::urtn::placeholder_network;
use ephemeral_graph::{generators, EdgeId, Graph};
use ephemeral_parallel::adaptive::{
    run_adaptive, AdaptiveConfig, AdaptiveRun, FilteredMeanAccumulator, ProportionAccumulator,
};
use ephemeral_parallel::faults::CancelToken;
use ephemeral_parallel::par_map_with;
use ephemeral_rng::{DefaultRng, RandomSource, SeedSequence};
use ephemeral_temporal::distance::instance_temporal_diameter_scratch_traced;
use ephemeral_temporal::reachability::treach_holds_scratch_traced;
use ephemeral_temporal::sparse::EngineChoice;
use ephemeral_temporal::wide::{EngineKind, SweepScratch};
use ephemeral_temporal::{LabelAssignment, TemporalNetwork, Time};
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};

/// Seed stream tag for the (possibly random) substrate graph.
const GRAPH_STREAM: u64 = 1;
/// Seed stream tag for the per-trial label draws.
const TRIAL_STREAM: u64 = 2;

/// A substrate graph family, parameterized by the target vertex count `n`.
///
/// `Clique` is the paper's §3 object; the rest are the generalization
/// follow-up work studies: `Gnp` at a multiple of the connectivity
/// threshold, sparse regular graphs, geometric-flavoured tori/grids, and
/// the paper's own star / complete-bipartite lower-bound witnesses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GraphFamily {
    /// Complete graph `K_n` (directed per §3's main theorem, or undirected
    /// per Remark 1).
    Clique {
        /// Use ordered arcs.
        directed: bool,
    },
    /// Erdős–Rényi `G(n, p)` with `p = c·ln n / n` — `c` positions the
    /// family relative to the connectivity threshold at `c = 1`.
    Gnp {
        /// Threshold multiplier.
        c: f64,
    },
    /// Random `degree`-regular graph (configuration model). When `n·degree`
    /// is odd the degree is bumped by one to keep the model well-defined.
    RandomRegular {
        /// Target degree.
        degree: usize,
    },
    /// `side × side` torus with `side = round(√n)` (so the actual vertex
    /// count is the nearest square, never below 9).
    Torus,
    /// `side × side` grid with `side = round(√n)`.
    Grid,
    /// Star `K_{1,n−1}` — the §4 lower-bound witness.
    Star,
    /// Balanced complete bipartite `K_{⌈n/2⌉,⌊n/2⌋}`.
    CompleteBipartite,
}

impl GraphFamily {
    /// Short stable identifier (part of a sweep cell's id — changing these
    /// strings invalidates `--resume` files).
    #[must_use]
    pub fn name(&self) -> String {
        match *self {
            Self::Clique { directed: true } => "clique".to_owned(),
            Self::Clique { directed: false } => "uclique".to_owned(),
            Self::Gnp { c } => format!("gnp{c:.2}"),
            Self::RandomRegular { degree } => format!("reg{degree}"),
            Self::Torus => "torus".to_owned(),
            Self::Grid => "grid".to_owned(),
            Self::Star => "star".to_owned(),
            Self::CompleteBipartite => "bipartite".to_owned(),
        }
    }

    /// Does building the substrate consume randomness? (Deterministic
    /// families ignore the generator.)
    #[must_use]
    pub const fn is_random(&self) -> bool {
        matches!(self, Self::Gnp { .. } | Self::RandomRegular { .. })
    }

    /// Build an instance targeting `n` vertices (`Torus`/`Grid` snap to the
    /// nearest square; everything else hits `n` exactly).
    ///
    /// # Panics
    /// If `n < 2`.
    #[must_use]
    pub fn build(&self, n: usize, rng: &mut impl RandomSource) -> Graph {
        assert!(n >= 2, "scenario families need at least two vertices");
        match *self {
            Self::Clique { directed } => generators::clique(n, directed),
            Self::Gnp { c } => {
                let p = (c * (n as f64).ln() / n as f64).clamp(0.0, 1.0);
                generators::gnp(n, p, false, rng)
            }
            Self::RandomRegular { degree } => {
                let mut d = degree.min(n - 1);
                if n % 2 == 1 && d % 2 == 1 {
                    d += 1; // n odd ⇒ n−1 even ⇒ d+1 ≤ n−1 stays valid
                }
                generators::random_regular(n, d, rng)
            }
            Self::Torus => {
                let side = ((n as f64).sqrt().round() as usize).max(3);
                generators::torus(side, side)
            }
            Self::Grid => {
                let side = ((n as f64).sqrt().round() as usize).max(2);
                generators::grid(side, side)
            }
            Self::Star => generators::star(n),
            Self::CompleteBipartite => generators::complete_bipartite(n.div_ceil(2), n / 2),
        }
    }

    /// The default scenario catalog: the paper's clique next to the sparse
    /// and structured substrates the follow-up literature studies.
    #[must_use]
    pub fn catalog() -> Vec<Self> {
        vec![
            Self::Clique { directed: true },
            Self::Gnp { c: 1.5 },
            Self::RandomRegular { degree: 3 },
            Self::Torus,
            Self::Star,
            Self::CompleteBipartite,
        ]
    }
}

/// A label model up to the lifetime (which the scenario supplies).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LabelModelSpec {
    /// UNI-CASE: one uniform label per edge.
    UniformSingle,
    /// `r` i.i.d. uniform labels per edge (§4).
    UniformMulti {
        /// Draws per edge.
        r: usize,
    },
    /// F-CASE, Zipf-skewed towards early labels.
    Zipf {
        /// Draws per edge.
        r: usize,
        /// Skew exponent.
        s: f64,
    },
    /// F-CASE, geometric inter-availability gaps.
    Geometric {
        /// Per-step activation probability.
        p: f64,
    },
}

impl LabelModelSpec {
    /// Short stable identifier (part of a sweep cell's id).
    #[must_use]
    pub fn name(&self) -> String {
        match *self {
            Self::UniformSingle => "uni1".to_owned(),
            Self::UniformMulti { r } => format!("uni{r}"),
            Self::Zipf { r, s } => format!("zipf{r}s{s:.1}"),
            Self::Geometric { p } => format!("geom{p:.2}"),
        }
    }

    /// Instantiate the model at a concrete lifetime.
    #[must_use]
    pub fn instantiate(&self, lifetime: Time) -> Box<dyn LabelModel + Send + Sync> {
        match *self {
            Self::UniformSingle => Box::new(UniformSingle { lifetime }),
            Self::UniformMulti { r } => Box::new(UniformMulti { lifetime, r }),
            Self::Zipf { r, s } => Box::new(ZipfMulti::new(lifetime, r, s)),
            Self::Geometric { p } => Box::new(GeometricArrivals { lifetime, p }),
        }
    }
}

/// How the lifetime `a` is derived from the instance's vertex count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LifetimeRule {
    /// `a = n` — the normalized regime of §3.
    EqualsN,
    /// `a = k·n` — the Theorem 5 regime when `k ≫ 1`.
    MultipleOfN(u32),
    /// A fixed lifetime, independent of `n`.
    Fixed(Time),
}

impl LifetimeRule {
    /// Short stable identifier (part of a sweep cell's id).
    #[must_use]
    pub fn name(&self) -> String {
        match *self {
            Self::EqualsN => "a=n".to_owned(),
            Self::MultipleOfN(k) => format!("a={k}n"),
            Self::Fixed(a) => format!("a={a}"),
        }
    }

    /// The lifetime for an instance with `nodes` vertices.
    #[must_use]
    pub fn lifetime(&self, nodes: usize) -> Time {
        match *self {
            Self::EqualsN => (nodes.max(1)) as Time,
            Self::MultipleOfN(k) => ((nodes.max(1)) as Time).saturating_mul(k.max(1)),
            Self::Fixed(a) => a.max(1),
        }
    }
}

/// What is measured per trial.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Instance temporal diameter (Definition 5's inner quantity); trials
    /// with an unreachable pair are counted as failures.
    TemporalDiameter,
    /// `P[T_reach]` — does the assignment preserve static reachability
    /// (Definition 6)?
    TreachProbability,
    /// `P[T_reach]` again, but estimated by correlated single-site Gibbs
    /// chains maintained differentially (one recorded sweep per chain,
    /// then one [`DeltaCursor::apply_label_move`](ephemeral_temporal::delta::DeltaCursor::apply_label_move)
    /// per step instead of a cold sweep per trial). The move kernel
    /// redraws one uniformly chosen label uniformly over `{1, …, a}`,
    /// which is stationary for the **uniform** label models (UNI-CASE
    /// single and multi — resampling one coordinate of a product-uniform
    /// vector); skewed F-CASE models would need a Metropolis correction
    /// the chain does not implement, so grids pairing this metric with
    /// `Zipf`/`Geometric` estimate the uniform law, not the cell's.
    /// Rows report the total replayed buckets
    /// ([`ScenarioOutcome::delta_replayed_buckets`]).
    TreachCorrelated,
    /// Broadcast time of the §3.5 flooding protocol from vertex 0; trials
    /// that fail to inform everyone are counted as failures.
    FloodTime,
}

impl Metric {
    /// Short stable identifier (part of a sweep cell's id).
    #[must_use]
    pub const fn name(&self) -> &'static str {
        match self {
            Self::TemporalDiameter => "td",
            Self::TreachProbability => "treach",
            Self::TreachCorrelated => "treachd",
            Self::FloodTime => "flood",
        }
    }

    /// The journey engine the density-aware dispatch *predicts* for this
    /// metric on an instance with `nodes` vertices, `occupied_buckets`
    /// non-empty time buckets and `time_edges` labels (see
    /// [`EngineChoice::pick`]). Flooding is inherently single-source and
    /// stays on the scalar sweep; the all-pairs metrics dispatch on the
    /// batch crossover and the occupied-bucket density.
    ///
    /// This is a prediction only — sweep rows report the engine that
    /// **actually answered** each cell ([`ScenarioOutcome::engine`]),
    /// which can differ: a `T_reach` cell whose every trial fails at the
    /// 64-lane probe block was served end-to-end by batch-sized work,
    /// whatever the density dispatch would have picked for a full sweep.
    #[must_use]
    pub const fn engine(
        &self,
        nodes: usize,
        occupied_buckets: usize,
        time_edges: usize,
    ) -> EngineKind {
        match self {
            Self::FloodTime => EngineKind::Scalar,
            Self::TemporalDiameter | Self::TreachProbability | Self::TreachCorrelated => {
                EngineChoice::pick(nodes, occupied_buckets, time_edges)
            }
        }
    }
}

/// Total order on engines by the weight of the path they represent — the
/// fold `Scenario::evaluate` applies across trials so one cell reports
/// the heaviest engine that actually served any of its trials.
const fn engine_rank(kind: EngineKind) -> u8 {
    match kind {
        EngineKind::Scalar => 1,
        EngineKind::Batch => 2,
        EngineKind::Sparse => 3,
        EngineKind::Wide => 4,
    }
}

const fn engine_from_rank(rank: u8) -> EngineKind {
    match rank {
        1 => EngineKind::Scalar,
        3 => EngineKind::Sparse,
        4 => EngineKind::Wide,
        _ => EngineKind::Batch,
    }
}

/// One fully specified experiment cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scenario {
    /// Substrate family.
    pub family: GraphFamily,
    /// Label model.
    pub model: LabelModelSpec,
    /// Lifetime rule.
    pub lifetime: LifetimeRule,
    /// Measured quantity.
    pub metric: Metric,
    /// Target vertex count.
    pub n: usize,
}

/// The measured result of one scenario cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScenarioOutcome {
    /// Actual vertex count of the built substrate.
    pub nodes: usize,
    /// Edge (or arc) count of the built substrate.
    pub edges: usize,
    /// Lifetime used.
    pub lifetime: Time,
    /// Point estimate: mean finite diameter / success probability / mean
    /// complete-flood time, per the metric.
    pub estimate: f64,
    /// CI half-width at the adaptive config's confidence level
    /// (`f64::INFINITY` when no trial produced a usable sample).
    pub half_width: f64,
    /// Trials executed.
    pub trials: usize,
    /// Did the half-width reach the target before the cap?
    pub converged: bool,
    /// Fraction of trials excluded from the estimate (infinite diameters /
    /// incomplete floods; always 0 for probability metrics).
    pub failures: f64,
    /// Short name of the heaviest journey engine that **actually
    /// answered** a trial of this cell (`"wide"` / `"sparse"` /
    /// `"batch"` / `"scalar"`) — the attribution sweep rows report so
    /// perf regressions are traceable. A `T_reach` cell whose every trial
    /// failed at the 64-lane probe block reports `"batch"` even above the
    /// crossover: the full-width engine never ran (see
    /// [`Metric::engine`] for the dispatch prediction).
    pub engine: &'static str,
    /// Buckets the differential cursor replayed across the cell's Gibbs
    /// steps — the work attribution of [`Metric::TreachCorrelated`]
    /// (always 0 for the cold-trial metrics).
    pub delta_replayed_buckets: usize,
    /// High-water mark of the sparse engine's region arena across the
    /// cell's trials, in `u32` words — the memory attribution of the
    /// event-driven engine (0 when no trial dispatched sparse).
    pub arena_hiwater_words: usize,
    /// Sparse-arena compaction cycles summed across the cell's trials.
    pub compactions: usize,
    /// Degradation events summed across the cell's trials: forced arena
    /// compactions under a word budget plus closure row-block shrinks
    /// under the byte budget — sweeps that completed by doing extra work
    /// instead of aborting (see `WideStats::degraded`).
    pub degraded: usize,
}

/// Per-worker trial scratch: an owned network whose labels are redrawn in
/// place, the spare assignment the draw writes into, and both journey
/// engines' sweepers (the crossover picks which engine runs). The
/// diameter metric reuses every buffer like `diameter::td_montecarlo`
/// (zero warm-trial allocations); `T_reach` reuses the heavy sweep
/// frontiers but still runs its small static-components pass per trial.
struct Scratch {
    tn: TemporalNetwork,
    spare: LabelAssignment,
    sweeper: SweepScratch,
}

impl Scratch {
    fn new(graph: &Graph, lifetime: Time) -> Self {
        Self {
            tn: placeholder_network(graph, lifetime),
            spare: LabelAssignment::default(),
            sweeper: SweepScratch::new(),
        }
    }

    /// Swap a fresh draw from `model` into the network.
    fn redraw(&mut self, model: &(dyn LabelModel + Send + Sync), rng: &mut DefaultRng) {
        model.assign_into(self.tn.graph().num_edges(), rng, &mut self.spare);
        let drawn = std::mem::take(&mut self.spare);
        self.spare = self
            .tn
            .replace_assignment(drawn)
            .expect("model labels fit the lifetime");
    }
}

/// Thread-invariant fold of the sparse engine's arena accounting across
/// a cell's trials. The high-water mark folds by `max` and the per-worker
/// counters are monotone, so each worker's final reading is the max over
/// its own (serially executed) trials and the cross-worker max equals the
/// max over the fixed trial set — independent of which worker ran which
/// trial. Compaction cycles fold by summing each trial's *delta* of the
/// monotone per-scratch counter, which is likewise scheduling-invariant.
struct ArenaAccounting {
    hiwater: AtomicUsize,
    compactions: AtomicU64,
    degraded: AtomicU64,
}

impl ArenaAccounting {
    const fn new() -> Self {
        Self {
            hiwater: AtomicUsize::new(0),
            compactions: AtomicU64::new(0),
            degraded: AtomicU64::new(0),
        }
    }

    /// Run one trial body and absorb the scratch's arena counters.
    fn track<T>(&self, s: &mut Scratch, f: impl FnOnce(&mut Scratch) -> T) -> T {
        let before = s.sweeper.sparse.compactions_total();
        let degraded_before = s.sweeper.sparse.degraded_total();
        let out = f(s);
        self.hiwater
            .fetch_max(s.sweeper.sparse.arena_hiwater_words(), Ordering::Relaxed);
        self.compactions.fetch_add(
            s.sweeper.sparse.compactions_total() - before,
            Ordering::Relaxed,
        );
        self.degraded.fetch_add(
            s.sweeper.sparse.degraded_total() - degraded_before,
            Ordering::Relaxed,
        );
        out
    }
}

impl Scenario {
    /// Stable cell identifier — the key of sweep resume files. Format:
    /// `family/n=<n>/model/lifetime/metric`.
    #[must_use]
    pub fn id(&self) -> String {
        format!(
            "{}/n={}/{}/{}/{}",
            self.family.name(),
            self.n,
            self.model.name(),
            self.lifetime.name(),
            self.metric.name()
        )
    }

    /// Build this scenario's substrate exactly as [`Scenario::evaluate`]
    /// does (random families draw from the seed's graph stream).
    #[must_use]
    pub fn build_graph(&self, seed: u64) -> Graph {
        let mut rng = SeedSequence::new(seed).child(GRAPH_STREAM).rng(0);
        self.family.build(self.n, &mut rng)
    }

    /// Measure the scenario: build the substrate once, then run adaptive
    /// Monte Carlo over fresh label draws until the CI half-width reaches
    /// the config's target (or its trial cap).
    ///
    /// Deterministic: the result depends only on `(self, cfg, seed)` —
    /// never on `threads` — so sweep cells can be scheduled anywhere and
    /// resumed byte-identically.
    #[must_use]
    pub fn evaluate(&self, cfg: &AdaptiveConfig, seed: u64, threads: usize) -> ScenarioOutcome {
        self.evaluate_with_cancel(cfg, seed, threads, None)
    }

    /// [`Scenario::evaluate`] with an optional cooperative cancellation
    /// token armed on every engine in each worker's sweep scratch — the
    /// sweep grid's per-cell watchdog (`--cell-timeout`). When the token
    /// fires, the trial unwinds with a structured
    /// [`WorkerPanic`](ephemeral_parallel::WorkerPanic) whose `cancelled`
    /// field names the reason; the caller catches it at cell granularity.
    /// A `None` token (or one that never fires) leaves the result
    /// byte-identical to [`Scenario::evaluate`].
    #[must_use]
    pub fn evaluate_with_cancel(
        &self,
        cfg: &AdaptiveConfig,
        seed: u64,
        threads: usize,
        cancel: Option<CancelToken>,
    ) -> ScenarioOutcome {
        let graph = self.build_graph(seed);
        let nodes = graph.num_nodes();
        let edges = graph.num_edges();
        let lifetime = self.lifetime.lifetime(nodes);
        let model = self.model.instantiate(lifetime);
        let model = model.as_ref();
        let trial_seed = SeedSequence::new(seed).child(TRIAL_STREAM).base();
        let init = || {
            let mut s = Scratch::new(&graph, lifetime);
            s.sweeper.set_cancel_token(cancel.clone());
            s
        };
        // Fold of the engine that actually answered each trial: a max
        // over a fixed trial set, so the result is independent of thread
        // scheduling (the adaptive trial count itself is deterministic).
        let served = AtomicU8::new(0);
        let serve = |kind: EngineKind| {
            served.fetch_max(engine_rank(kind), Ordering::Relaxed);
        };
        let arena = ArenaAccounting::new();

        let mut delta_replayed_buckets = 0usize;
        let (estimate, half_width, trials, converged, failures) = match self.metric {
            Metric::TemporalDiameter => {
                let run: AdaptiveRun<FilteredMeanAccumulator> =
                    run_adaptive(cfg, trial_seed, threads, init, |s, _, rng| {
                        arena.track(s, |s| {
                            s.redraw(model, rng);
                            let (d, engine) =
                                instance_temporal_diameter_scratch_traced(&s.tn, &mut s.sweeper);
                            serve(engine);
                            match d.value() {
                                Some(v) => (f64::from(v), true),
                                None => (0.0, false),
                            }
                        })
                    });
                finite_mean_outcome(&run)
            }
            Metric::FloodTime => {
                let run: AdaptiveRun<FilteredMeanAccumulator> =
                    run_adaptive(cfg, trial_seed, threads, init, |s, _, rng| {
                        if let Some(c) = &cancel {
                            c.checkpoint();
                        }
                        s.redraw(model, rng);
                        serve(EngineKind::Scalar);
                        match crate::dissemination::flood(&s.tn, 0).broadcast_time {
                            Some(t) => (f64::from(t), true),
                            None => (0.0, false),
                        }
                    });
                finite_mean_outcome(&run)
            }
            Metric::TreachProbability => {
                let run: AdaptiveRun<ProportionAccumulator> =
                    run_adaptive(cfg, trial_seed, threads, init, |s, _, rng| {
                        arena.track(s, |s| {
                            s.redraw(model, rng);
                            let (holds, engine) =
                                treach_holds_scratch_traced(&s.tn, &mut s.sweeper);
                            serve(engine);
                            holds
                        })
                    });
                let p = run.accumulator.successes as f64 / run.accumulator.count.max(1) as f64;
                (p, run.half_width, run.trials, run.converged, 0.0)
            }
            Metric::TreachCorrelated => {
                // The trial budget reshaped into chains × steps: the batch
                // knob caps the chain count (independent restarts are the
                // expensive part — each records one cold sweep), the trial
                // cap fixes the total sample count.
                let chains = cfg.batch.clamp(1, 16);
                let steps = cfg.max_trials / chains;
                let out = correlated_cell(
                    &graph, model, lifetime, trial_seed, chains, steps, threads, &serve, &arena,
                    &cancel,
                );
                delta_replayed_buckets = out.replayed;
                let converged = out.half_width <= cfg.target_half_width;
                (out.estimate, out.half_width, out.samples, converged, 0.0)
            }
        };

        ScenarioOutcome {
            nodes,
            edges,
            lifetime,
            estimate,
            half_width,
            trials,
            converged,
            failures,
            engine: engine_from_rank(served.load(Ordering::Relaxed)).name(),
            delta_replayed_buckets,
            arena_hiwater_words: arena.hiwater.load(Ordering::Relaxed),
            compactions: arena.compactions.load(Ordering::Relaxed) as usize,
            degraded: arena.degraded.load(Ordering::Relaxed) as usize,
        }
    }
}

/// The aggregate of one [`Metric::TreachCorrelated`] cell.
struct CorrelatedCell {
    estimate: f64,
    half_width: f64,
    samples: usize,
    replayed: usize,
}

/// Evaluate one correlated cell: `chains` independent Gibbs chains, each
/// seeded with a fresh draw from the cell's label model, recorded once
/// into the pooled differential cursor and then driven by single-label
/// moves — every step's `T_reach` sample is the O(1) comparison of the
/// maintained reach total against the static target (journeys are
/// paths, so total equality is per-source equality). Deterministic in
/// `(graph, model, lifetime, trial_seed, chains, steps)` — never in
/// `threads`: chain `c`'s rng stream is keyed by `c`.
#[allow(clippy::too_many_arguments)]
fn correlated_cell(
    graph: &Graph,
    model: &(dyn LabelModel + Send + Sync),
    lifetime: Time,
    trial_seed: u64,
    chains: usize,
    steps: usize,
    threads: usize,
    serve: &(impl Fn(EngineKind) + Sync),
    arena: &ArenaAccounting,
    cancel: &Option<CancelToken>,
) -> CorrelatedCell {
    let m = graph.num_edges();
    if m == 0 {
        // Nothing to label: temporal and static reach are both the
        // diagonal, so T_reach holds vacuously and no chain runs.
        return CorrelatedCell {
            estimate: 1.0,
            half_width: 0.0,
            samples: 0,
            replayed: 0,
        };
    }
    let target = static_reachable_pairs(graph);
    let ids: Vec<u64> = (0..chains as u64).collect();
    let init = || {
        let mut s = Scratch::new(graph, lifetime);
        s.sweeper.set_cancel_token(cancel.clone());
        s
    };
    let per_chain = par_map_with(&ids, threads, init, |s, _, &c| {
        arena.track(s, |s| {
            let mut rng = SeedSequence::new(trial_seed).rng(c);
            s.redraw(model, &mut rng);
            let (stats, kind) = s.sweeper.record_delta(&s.tn);
            serve(kind);
            let mut hits = usize::from(stats.reached_bits == target);
            let mut replayed = 0usize;
            for _ in 0..steps {
                // One Gibbs proposal: a uniform edge, a uniform label of it,
                // a fresh uniform replacement. An edge whose model draw left
                // it unlabelled rejects the proposal (nothing to move) and
                // the unchanged state is sampled again — exactly like a
                // colliding draw.
                let e = rng.index(m) as EdgeId;
                let labels = s.tn.labels(e);
                if !labels.is_empty() {
                    let from = labels[rng.index(labels.len())];
                    let to = rng.range_u32(1, lifetime);
                    if let Some(a) = s.sweeper.delta.apply_label_move(&mut s.tn, e, from, to) {
                        replayed += a.replayed_buckets;
                    }
                }
                hits += usize::from(s.sweeper.delta.stats().reached_bits == target);
            }
            (hits, replayed)
        })
    });
    let samples_per_chain = steps + 1;
    let means: Vec<f64> = per_chain
        .iter()
        .map(|&(h, _)| h as f64 / samples_per_chain as f64)
        .collect();
    let estimate = means.iter().sum::<f64>() / chains as f64;
    // Between-chain standard error: honest under within-chain
    // autocorrelation, since only independent chains enter the spread.
    let half_width = if chains >= 2 {
        let var = means.iter().map(|x| (x - estimate).powi(2)).sum::<f64>() / (chains - 1) as f64;
        1.96 * (var / chains as f64).sqrt()
    } else {
        f64::INFINITY
    };
    CorrelatedCell {
        estimate,
        half_width,
        samples: chains * samples_per_chain,
        replayed: per_chain.iter().map(|&(_, r)| r).sum(),
    }
}

fn finite_mean_outcome(run: &AdaptiveRun<FilteredMeanAccumulator>) -> (f64, f64, usize, bool, f64) {
    (
        run.accumulator.accepted.mean(),
        run.half_width,
        run.trials,
        run.converged,
        run.accumulator.rejected_fraction(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> AdaptiveConfig {
        AdaptiveConfig::new(1.0)
            .with_min_trials(8)
            .with_batch(8)
            .with_max_trials(64)
    }

    #[test]
    fn catalog_families_build_and_name_uniquely() {
        let mut rng = ephemeral_rng::default_rng(1);
        let mut names = std::collections::HashSet::new();
        for fam in GraphFamily::catalog() {
            let g = fam.build(36, &mut rng);
            assert!(g.num_nodes() >= 2, "{}", fam.name());
            assert!(g.num_edges() > 0, "{}", fam.name());
            assert!(names.insert(fam.name()), "duplicate name {}", fam.name());
        }
    }

    #[test]
    fn regular_family_fixes_odd_parity() {
        let mut rng = ephemeral_rng::default_rng(2);
        // n = 15 odd, degree 3 odd ⇒ bumped to 4.
        let g = GraphFamily::RandomRegular { degree: 3 }.build(15, &mut rng);
        assert_eq!(g.num_nodes(), 15);
        for v in g.nodes() {
            assert_eq!(g.out_degree(v), 4);
        }
        // Even n keeps the requested degree.
        let g = GraphFamily::RandomRegular { degree: 3 }.build(16, &mut rng);
        for v in g.nodes() {
            assert_eq!(g.out_degree(v), 3);
        }
    }

    #[test]
    fn torus_and_grid_snap_to_squares() {
        let mut rng = ephemeral_rng::default_rng(3);
        assert_eq!(GraphFamily::Torus.build(36, &mut rng).num_nodes(), 36);
        assert_eq!(GraphFamily::Torus.build(40, &mut rng).num_nodes(), 36);
        assert_eq!(GraphFamily::Grid.build(50, &mut rng).num_nodes(), 49);
    }

    #[test]
    fn clique_td_scenario_matches_the_paper_shape() {
        let sc = Scenario {
            family: GraphFamily::Clique { directed: true },
            model: LabelModelSpec::UniformSingle,
            lifetime: LifetimeRule::EqualsN,
            metric: Metric::TemporalDiameter,
            n: 64,
        };
        let out = sc.evaluate(&quick_cfg(), 1, 2);
        assert_eq!(out.nodes, 64);
        assert_eq!(out.edges, 64 * 63);
        assert_eq!(out.lifetime, 64);
        assert_eq!(out.failures, 0.0, "the clique always has the direct arc");
        let ln_n = 64f64.ln();
        assert!(
            out.estimate > 0.5 * 64f64.log2() && out.estimate < 8.0 * ln_n,
            "TD {} out of the Θ(log n) band",
            out.estimate
        );
        assert!(out.trials >= 8);
    }

    #[test]
    fn sparse_families_break_the_clique_only_picture() {
        // One uniform label per edge: the clique is always temporally
        // connected, a near-threshold G(n,p) essentially never is — the
        // confrontation E11 tabulates.
        let cfg = quick_cfg();
        let clique = Scenario {
            family: GraphFamily::Clique { directed: true },
            model: LabelModelSpec::UniformSingle,
            lifetime: LifetimeRule::EqualsN,
            metric: Metric::TemporalDiameter,
            n: 32,
        }
        .evaluate(&cfg, 2, 2);
        let gnp = Scenario {
            family: GraphFamily::Gnp { c: 1.5 },
            model: LabelModelSpec::UniformSingle,
            lifetime: LifetimeRule::EqualsN,
            metric: Metric::TemporalDiameter,
            n: 32,
        }
        .evaluate(&cfg, 2, 2);
        assert_eq!(clique.failures, 0.0);
        assert!(gnp.failures > 0.5, "gnp failures {}", gnp.failures);
    }

    #[test]
    fn treach_metric_reports_probabilities() {
        let sure = Scenario {
            family: GraphFamily::Clique { directed: false },
            model: LabelModelSpec::UniformSingle,
            lifetime: LifetimeRule::EqualsN,
            metric: Metric::TreachProbability,
            n: 16,
        }
        .evaluate(&quick_cfg(), 3, 1);
        assert_eq!(sure.estimate, 1.0, "K_n satisfies T_reach with one label");
        let star = Scenario {
            family: GraphFamily::Star,
            model: LabelModelSpec::UniformSingle,
            lifetime: LifetimeRule::EqualsN,
            metric: Metric::TreachProbability,
            n: 16,
        }
        .evaluate(&quick_cfg(), 3, 1);
        assert!(star.estimate < 0.5, "one label cannot serve a star");
    }

    #[test]
    fn flood_metric_tracks_log_n_on_the_clique() {
        let out = Scenario {
            family: GraphFamily::Clique { directed: true },
            model: LabelModelSpec::UniformSingle,
            lifetime: LifetimeRule::EqualsN,
            metric: Metric::FloodTime,
            n: 64,
        }
        .evaluate(&quick_cfg(), 4, 2);
        assert_eq!(out.failures, 0.0);
        assert!(out.estimate >= 2.0 && out.estimate <= 8.0 * 64f64.ln());
    }

    #[test]
    fn outcomes_attribute_the_engine_that_actually_answered() {
        use ephemeral_temporal::wide::WIDE_CROSSOVER;
        let mk = |family, metric, n| Scenario {
            family,
            model: LabelModelSpec::UniformSingle,
            lifetime: LifetimeRule::EqualsN,
            metric,
            n,
        };
        let clique = GraphFamily::Clique { directed: true };
        let small = mk(clique, Metric::TemporalDiameter, 32).evaluate(&quick_cfg(), 1, 1);
        assert_eq!(small.engine, "batch");
        let flood = mk(clique, Metric::FloodTime, 32).evaluate(&quick_cfg(), 1, 1);
        assert_eq!(flood.engine, "scalar");
        // The prediction: dense instances ride wide, sparse ones the
        // event-driven engine, flooding the scalar sweep.
        let n = WIDE_CROSSOVER + 8;
        assert_eq!(Metric::TemporalDiameter.engine(n, n, n * n).name(), "wide");
        assert_eq!(
            Metric::TemporalDiameter.engine(n, n, 2 * n).name(),
            "sparse"
        );
        assert_eq!(Metric::FloodTime.engine(n, n, n * n).name(), "scalar");
        let light = AdaptiveConfig::new(5.0)
            .with_min_trials(2)
            .with_batch(2)
            .with_max_trials(4);
        // Dense clique above the crossover: full wide sweeps every trial.
        let wide = mk(clique, Metric::TemporalDiameter, n).evaluate(&light, 1, 1);
        assert_eq!(wide.engine, "wide");
        assert_eq!(wide.failures, 0.0, "the clique always has the direct arc");
        // A constant-degree substrate above the crossover: event-driven
        // sweeps (near-threshold G(n,p) stays wide — its reach sets grow
        // towards n and reacher-list merges would lose).
        let sparse = mk(
            GraphFamily::RandomRegular { degree: 3 },
            Metric::TemporalDiameter,
            n,
        )
        .evaluate(&light, 1, 1);
        assert_eq!(sparse.engine, "sparse");
    }

    #[test]
    fn treach_cells_answered_by_the_probe_report_batch() {
        // The engine-attribution regression: above the crossover the
        // density dispatch *predicts* the sparse engine for a star, but a
        // single-label star essentially never preserves reachability and
        // every trial fails at the 64-lane probe block — batch-sized work
        // end to end, and the row must say so.
        use ephemeral_temporal::wide::WIDE_CROSSOVER;
        let n = WIDE_CROSSOVER + 8;
        let sc = Scenario {
            family: GraphFamily::Star,
            model: LabelModelSpec::UniformSingle,
            lifetime: LifetimeRule::EqualsN,
            metric: Metric::TreachProbability,
            n,
        };
        // The dispatch prediction at a drawn star's shape: n − 1 single
        // labels spread over ~(1 − 1/e)·n occupied buckets is far below
        // the dense-fill threshold.
        assert_eq!(
            sc.metric.engine(n, 2 * n / 3, n - 1).name(),
            "sparse",
            "the dispatch prediction for a sparse star"
        );
        let out = sc.evaluate(&quick_cfg(), 5, 2);
        assert_eq!(out.estimate, 0.0, "one label cannot serve a star");
        assert_eq!(
            out.engine, "batch",
            "every trial was answered by the probe block alone"
        );
        // A holding instance, by contrast, must sweep full-width: the
        // undirected clique satisfies T_reach with any single labelling.
        let sure = Scenario {
            family: GraphFamily::Clique { directed: false },
            model: LabelModelSpec::UniformSingle,
            lifetime: LifetimeRule::EqualsN,
            metric: Metric::TreachProbability,
            n,
        }
        .evaluate(
            &AdaptiveConfig::new(5.0)
                .with_min_trials(2)
                .with_batch(2)
                .with_max_trials(4),
            5,
            1,
        );
        assert_eq!(sure.estimate, 1.0);
        assert_eq!(sure.engine, "wide", "holding trials sweep every block");
    }

    #[test]
    fn all_filtered_cells_terminate_at_the_cap_without_nan() {
        // A single-label star always has an infinite instance diameter
        // (the leaf behind the maximum label can reach no other leaf), so
        // every trial is filtered. The filtered-mean accumulator must
        // drive the adaptive loop to the trial cap — an undefined interval
        // reads as +∞, never NaN (NaN would compare false against the
        // target and also stop at the cap, but would then poison the
        // reported row) — and the outcome must record the full excluded
        // fraction.
        use ephemeral_temporal::wide::WIDE_CROSSOVER;
        let cfg = AdaptiveConfig::new(0.5)
            .with_min_trials(4)
            .with_batch(4)
            .with_max_trials(12);
        let out = Scenario {
            family: GraphFamily::Star,
            model: LabelModelSpec::UniformSingle,
            lifetime: LifetimeRule::EqualsN,
            metric: Metric::TemporalDiameter,
            n: WIDE_CROSSOVER + 32,
        }
        .evaluate(&cfg, 3, 2);
        assert_eq!(out.trials, 12, "the loop must stop exactly at the cap");
        assert!(!out.converged);
        assert!(
            out.half_width.is_infinite() && out.half_width > 0.0,
            "undefined interval reads +inf, got {}",
            out.half_width
        );
        assert!(!out.half_width.is_nan());
        assert_eq!(out.failures, 1.0, "every trial excluded");
        assert_eq!(out.estimate, 0.0, "empty accepted set has mean 0");
        assert_eq!(out.engine, "sparse", "a big star dispatches event-driven");
    }

    #[test]
    fn evaluation_is_deterministic_and_thread_invariant() {
        let sc = Scenario {
            family: GraphFamily::Gnp { c: 2.0 },
            model: LabelModelSpec::UniformMulti { r: 4 },
            lifetime: LifetimeRule::MultipleOfN(2),
            metric: Metric::TreachProbability,
            n: 24,
        };
        let base = sc.evaluate(&quick_cfg(), 7, 1);
        for threads in [2, 8] {
            assert_eq!(sc.evaluate(&quick_cfg(), 7, threads), base, "t={threads}");
        }
        // A different seed draws a different substrate stream.
        assert_ne!(sc.evaluate(&quick_cfg(), 8, 2), base);
    }

    #[test]
    fn ids_are_unique_across_a_grid() {
        let mut ids = std::collections::HashSet::new();
        for fam in GraphFamily::catalog() {
            for model in [
                LabelModelSpec::UniformSingle,
                LabelModelSpec::UniformMulti { r: 3 },
                LabelModelSpec::Zipf { r: 3, s: 1.0 },
                LabelModelSpec::Geometric { p: 0.1 },
            ] {
                for rule in [
                    LifetimeRule::EqualsN,
                    LifetimeRule::MultipleOfN(4),
                    LifetimeRule::Fixed(100),
                ] {
                    for metric in [
                        Metric::TemporalDiameter,
                        Metric::TreachProbability,
                        Metric::TreachCorrelated,
                        Metric::FloodTime,
                    ] {
                        for n in [16, 32] {
                            let sc = Scenario {
                                family: fam,
                                model,
                                lifetime: rule,
                                metric,
                                n,
                            };
                            assert!(ids.insert(sc.id()), "duplicate id {}", sc.id());
                        }
                    }
                }
            }
        }
        assert_eq!(ids.len(), 6 * 4 * 3 * 4 * 2);
    }

    #[test]
    fn correlated_metric_agrees_with_structure_and_reports_replay_work() {
        // K_n holds under every single labelling, the star essentially
        // never does — the correlated chains must say exactly that, and
        // the star cell must report the buckets its applies replayed.
        let sure = Scenario {
            family: GraphFamily::Clique { directed: false },
            model: LabelModelSpec::UniformSingle,
            lifetime: LifetimeRule::EqualsN,
            metric: Metric::TreachCorrelated,
            n: 16,
        }
        .evaluate(&quick_cfg(), 3, 2);
        assert_eq!(sure.estimate, 1.0);
        assert_eq!(sure.half_width, 0.0);
        assert!(sure.converged);
        assert!(sure.trials > 0);
        let star = Scenario {
            family: GraphFamily::Star,
            model: LabelModelSpec::UniformSingle,
            lifetime: LifetimeRule::EqualsN,
            metric: Metric::TreachCorrelated,
            n: 16,
        }
        .evaluate(&quick_cfg(), 3, 1);
        assert!(star.estimate < 0.5, "one label cannot serve a star");
        assert!(
            star.delta_replayed_buckets > 0,
            "applied moves replay buckets"
        );
        // The cold-trial metrics never touch the cursor.
        let cold = Scenario {
            family: GraphFamily::Star,
            model: LabelModelSpec::UniformSingle,
            lifetime: LifetimeRule::EqualsN,
            metric: Metric::TreachProbability,
            n: 16,
        }
        .evaluate(&quick_cfg(), 3, 1);
        assert_eq!(cold.delta_replayed_buckets, 0);
    }

    #[test]
    fn correlated_metric_is_deterministic_and_thread_invariant() {
        let sc = Scenario {
            family: GraphFamily::Gnp { c: 1.5 },
            model: LabelModelSpec::UniformMulti { r: 3 },
            lifetime: LifetimeRule::MultipleOfN(2),
            metric: Metric::TreachCorrelated,
            n: 24,
        };
        let base = sc.evaluate(&quick_cfg(), 9, 1);
        for threads in [2, 8] {
            assert_eq!(sc.evaluate(&quick_cfg(), 9, threads), base, "t={threads}");
        }
        assert_ne!(sc.evaluate(&quick_cfg(), 10, 2), base);
    }
}
