//! Star graphs `K_{1,n−1}` — the witness family of Theorem 6.
//!
//! For the star, `T_reach` has a closed-form characterisation that this
//! module exploits for an `O(n·r)`-per-trial Monte Carlo (the generic check
//! costs `n` foremost sweeps): leaves `u → v` connect through the centre
//! iff `min L(u) < max L(v)`, and centre↔leaf journeys always exist when
//! every edge has at least one label. Hence
//!
//! `T_reach  ⟺  ∀ ordered leaf pairs u ≠ v:  min L(u) < max L(v)`.
//!
//! Theorem 6 shows `r(n) = Θ(log n)` labels per edge are both sufficient
//! (via *2-split journeys*: first hop in `(0, n/2)`, second in `(n/2, n)`)
//! and necessary, so the star's Price of Randomness is `Θ(log n)`.

use ephemeral_parallel::{MonteCarlo, Proportion};
use ephemeral_rng::RandomSource;
use ephemeral_temporal::Time;

/// Per-edge label extremes `(min, max)` — all the star check needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeExtremes {
    /// Smallest label on the edge.
    pub min: Time,
    /// Largest label on the edge.
    pub max: Time,
}

/// Sample the extremes of `r` i.i.d. uniform labels on `{1, …, lifetime}`.
#[inline]
fn sample_extremes(lifetime: Time, r: usize, rng: &mut impl RandomSource) -> EdgeExtremes {
    debug_assert!(r >= 1);
    let mut min = Time::MAX;
    let mut max = 0;
    for _ in 0..r {
        let l = rng.range_u32(1, lifetime);
        min = min.min(l);
        max = max.max(l);
    }
    EdgeExtremes { min, max }
}

/// Exact `T_reach` check for a star given each leaf edge's label extremes.
///
/// Fails iff some ordered leaf pair `(u, v)` has `min L(u) ≥ max L(v)`;
/// equivalently `max_u min L(u) ≥ max L(v)` for some `v ≠ u`. Handled via
/// the top-2 extremes so the check is a single `O(n)` pass.
#[must_use]
pub fn star_treach(extremes: &[EdgeExtremes]) -> bool {
    let k = extremes.len();
    if k <= 1 {
        return true; // centre↔single-leaf journeys always exist
    }
    // Largest and second-largest min (with index of the largest).
    let mut max1_min = 0;
    let mut arg_max_min = usize::MAX;
    let mut max2_min = 0;
    // Smallest and second-smallest max (with index of the smallest).
    let mut min1_max = Time::MAX;
    let mut arg_min_max = usize::MAX;
    let mut min2_max = Time::MAX;
    for (i, e) in extremes.iter().enumerate() {
        if e.min > max1_min || arg_max_min == usize::MAX {
            max2_min = max1_min;
            max1_min = e.min;
            arg_max_min = i;
        } else if e.min > max2_min {
            max2_min = e.min;
        }
        if e.max < min1_max || arg_min_max == usize::MAX {
            min2_max = min1_max;
            min1_max = e.max;
            arg_min_max = i;
        } else if e.max < min2_max {
            min2_max = e.max;
        }
    }
    if arg_max_min != arg_min_max {
        max1_min < min1_max
    } else {
        // The extreme edge is the same: compare it against the runners-up.
        max1_min < min2_max && max2_min < min1_max
    }
}

/// Reference implementation of the star check (`O(k²)` over ordered leaf
/// pairs) — used by the tests to validate [`star_treach`].
#[must_use]
pub fn star_treach_bruteforce(extremes: &[EdgeExtremes]) -> bool {
    for (i, a) in extremes.iter().enumerate() {
        for (j, b) in extremes.iter().enumerate() {
            if i != j && a.min >= b.max {
                return false;
            }
        }
    }
    true
}

/// Monte Carlo estimate of `P[T_reach]` for the normalized star
/// (`K_{1,n−1}`, lifetime `n`) with `r` uniform labels per edge.
///
/// ```
/// use ephemeral_core::star::star_treach_probability;
/// // One label per edge essentially never works; 6·log2(64) labels do.
/// let low = star_treach_probability(64, 1, 200, 7, 1);
/// let high = star_treach_probability(64, 36, 200, 7, 1);
/// assert!(low.estimate < 0.2 && high.estimate > 0.95);
/// ```
///
/// # Panics
/// If `n < 2` or `r == 0`.
#[must_use]
pub fn star_treach_probability(
    n: usize,
    r: usize,
    trials: usize,
    seed: u64,
    threads: usize,
) -> Proportion {
    assert!(n >= 2, "star needs at least one leaf");
    assert!(r >= 1, "at least one label per edge");
    let leaves = n - 1;
    let lifetime = n as Time;
    MonteCarlo::new(trials, seed)
        .with_threads(threads)
        .success_probability(move |_, rng| {
            // Streaming top-2 tracking would need the same pass as
            // star_treach; sampling extremes per edge is the dominant cost.
            let extremes: Vec<EdgeExtremes> = (0..leaves)
                .map(|_| sample_extremes(lifetime, r, rng))
                .collect();
            star_treach(&extremes)
        })
}

/// The probability that a fixed leaf pair admits a 2-split journey
/// (Theorem 6(a)): both halves hit, `(1 − 2^{−r})²`.
#[must_use]
pub fn two_split_probability(r: usize) -> f64 {
    let miss = 0.5f64.powi(r as i32);
    (1.0 - miss) * (1.0 - miss)
}

/// Theorem 6(a)'s union bound on `P[¬T_reach]` for the star with `r`
/// labels per edge: `n(n−1) · 2 · 2^{−r}`, clamped to `[0, 1]`.
#[must_use]
pub fn star_failure_upper_bound(n: usize, r: usize) -> f64 {
    let nf = n as f64;
    (nf * (nf - 1.0) * 2.0 * 0.5f64.powi(r as i32)).min(1.0)
}

/// Smallest `r` whose empirical `P[T_reach] ≥ target` on the normalized
/// star, found by doubling + binary search on the Monte Carlo estimate.
///
/// # Panics
/// If `n < 2`, `trials == 0` or `target ∉ (0, 1]`.
#[must_use]
pub fn minimal_r_star(n: usize, target: f64, trials: usize, seed: u64, threads: usize) -> usize {
    assert!(n >= 2 && trials > 0);
    assert!(target > 0.0 && target <= 1.0, "target must be in (0,1]");
    let meets = |r: usize| -> bool {
        star_treach_probability(n, r, trials, seed ^ (r as u64) << 32, threads).estimate >= target
    };
    let mut hi = 1usize;
    while !meets(hi) {
        hi *= 2;
        if hi > 4096 {
            return hi; // give up growing; caller sees the cap
        }
    }
    let mut lo = hi / 2; // exclusive lower bound (hi == 1 ⇒ lo == 0)
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if meets(mid) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    hi
}

#[cfg(test)]
mod tests {
    use super::*;
    use ephemeral_rng::default_rng;

    fn ex(min: Time, max: Time) -> EdgeExtremes {
        EdgeExtremes { min, max }
    }

    #[test]
    fn trivial_stars_always_reach() {
        assert!(star_treach(&[]));
        assert!(star_treach(&[ex(5, 5)]));
    }

    #[test]
    fn two_leaves_both_directions() {
        // u: {3}, v: {1,5}: u→v needs 3 < 5 ✓; v→u needs 1 < 3 ✓.
        assert!(star_treach(&[ex(3, 3), ex(1, 5)]));
        // u: {3}, v: {1,2}: u→v needs 3 < 2 ✗.
        assert!(!star_treach(&[ex(3, 3), ex(1, 2)]));
        // Symmetric failure.
        assert!(!star_treach(&[ex(1, 2), ex(3, 3)]));
    }

    #[test]
    fn same_arg_extreme_edge_case() {
        // One edge has both the largest min and the smallest max: {4,4};
        // others {1,9}. Pairs: (a,{1,9}): 4<9 ✓; ({1,9},a): 1<4 ✓;
        // cross {1,9} pairs: 1<9 ✓.
        assert!(star_treach(&[ex(4, 4), ex(1, 9), ex(1, 9)]));
        // Now shrink the others: {1,3}: (a → other) needs 4 < 3 ✗.
        assert!(!star_treach(&[ex(4, 4), ex(1, 3), ex(1, 3)]));
    }

    #[test]
    fn fast_check_matches_bruteforce_on_random_inputs() {
        let mut rng = default_rng(99);
        use ephemeral_rng::RandomSource;
        for trial in 0..2000 {
            let k = 2 + rng.index(6);
            let extremes: Vec<EdgeExtremes> = (0..k)
                .map(|_| {
                    let a = rng.range_u32(1, 8);
                    let b = rng.range_u32(1, 8);
                    ex(a.min(b), a.max(b))
                })
                .collect();
            assert_eq!(
                star_treach(&extremes),
                star_treach_bruteforce(&extremes),
                "trial {trial}: {extremes:?}"
            );
        }
    }

    #[test]
    fn fast_check_matches_generic_treach() {
        // Cross-validate against the generic temporal check on sampled
        // star instances.
        use crate::urtn::sample_multi_urtn;
        use ephemeral_graph::generators;
        use ephemeral_temporal::reachability::treach_holds;
        for seed in 0..30 {
            let mut rng = default_rng(seed);
            let n = 12;
            let tn = sample_multi_urtn(generators::star(n), n as Time, 2, &mut rng);
            let extremes: Vec<EdgeExtremes> = (0..(n - 1) as u32)
                .map(|e| {
                    let l = tn.labels(e);
                    ex(*l.first().unwrap(), *l.last().unwrap())
                })
                .collect();
            assert_eq!(star_treach(&extremes), treach_holds(&tn, 1), "seed {seed}");
        }
    }

    #[test]
    fn probability_increases_with_r() {
        let n = 64;
        let p1 = star_treach_probability(n, 1, 400, 1, 2);
        let p6 = star_treach_probability(n, 6, 400, 1, 2);
        let p16 = star_treach_probability(n, 16, 400, 1, 2);
        assert!(
            p1.estimate < p6.estimate,
            "{} !< {}",
            p1.estimate,
            p6.estimate
        );
        assert!(p6.estimate <= p16.estimate + 0.05);
        assert!(p16.estimate > 0.95, "{p16}");
        // One label per edge can never satisfy T_reach for n ≥ 3 leaves
        // unless extremes align (min == max per edge): P should be tiny.
        assert!(p1.estimate < 0.1, "{p1}");
    }

    #[test]
    fn analytic_formulas() {
        assert!((two_split_probability(1) - 0.25).abs() < 1e-12);
        assert!(two_split_probability(20) > 0.99999);
        assert_eq!(star_failure_upper_bound(100, 1), 1.0);
        assert!(star_failure_upper_bound(100, 40) < 1e-6);
    }

    #[test]
    fn minimal_r_is_logarithmic_in_n() {
        let r64 = minimal_r_star(64, 0.9, 200, 5, 2);
        let r1024 = minimal_r_star(1024, 0.9, 200, 5, 2);
        assert!(r64 >= 2, "r64 = {r64}");
        assert!(r1024 >= r64, "r should not shrink with n");
        // Θ(log n): bounded by a small multiple of log2 n.
        assert!((r1024 as f64) < 4.0 * 1024f64.log2(), "r1024 = {r1024}");
    }

    #[test]
    fn minimal_r_respects_target_monotonicity() {
        let lax = minimal_r_star(128, 0.5, 300, 6, 2);
        let strict = minimal_r_star(128, 0.99, 300, 6, 2);
        assert!(lax <= strict, "lax {lax} strict {strict}");
    }
}
