//! Uniform Random Temporal Network sampling (Definition 4 and §3's
//! normalized clique).

use crate::models::{LabelModel, UniformMulti, UniformSingle};
use ephemeral_graph::{generators, Graph};
use ephemeral_rng::RandomSource;
use ephemeral_temporal::{TemporalNetwork, Time};

/// Sample a U-RTN over `graph`: one uniform label from `{1, …, lifetime}`
/// per edge (UNI-CASE).
///
/// # Panics
/// If `lifetime == 0`.
#[must_use]
pub fn sample_urtn(graph: Graph, lifetime: Time, rng: &mut impl RandomSource) -> TemporalNetwork {
    let model = UniformSingle { lifetime };
    let assignment = model.assign(graph.num_edges(), rng);
    TemporalNetwork::new(graph, assignment, lifetime).expect("model labels fit the lifetime")
}

/// Sample the **normalized** U-RT clique of §3: `K_n` (directed per the
/// paper's main theorem when `directed`, undirected per Remark 1 otherwise)
/// with one uniform label per edge from `{1, …, n}`.
///
/// # Panics
/// If `n == 0`.
#[must_use]
pub fn sample_normalized_urt_clique(
    n: usize,
    directed: bool,
    rng: &mut impl RandomSource,
) -> TemporalNetwork {
    assert!(n >= 1, "clique requires at least one vertex");
    sample_urtn(generators::clique(n, directed), n as Time, rng)
}

/// Sample a U-RT clique with an arbitrary lifetime `a` (the Theorem 5
/// regime when `a ≫ n`).
#[must_use]
pub fn sample_urt_clique_with_lifetime(
    n: usize,
    directed: bool,
    lifetime: Time,
    rng: &mut impl RandomSource,
) -> TemporalNetwork {
    assert!(n >= 1, "clique requires at least one vertex");
    sample_urtn(generators::clique(n, directed), lifetime, rng)
}

/// Sample a multi-label U-RTN: `r` i.i.d. uniform labels per edge (§4).
#[must_use]
pub fn sample_multi_urtn(
    graph: Graph,
    lifetime: Time,
    r: usize,
    rng: &mut impl RandomSource,
) -> TemporalNetwork {
    let model = UniformMulti { lifetime, r };
    let assignment = model.assign(graph.num_edges(), rng);
    TemporalNetwork::new(graph, assignment, lifetime).expect("model labels fit the lifetime")
}

/// Resample only the labels of an existing network (same graph, same
/// lifetime, fresh UNI-CASE draw) — the cheap per-trial path of the Monte
/// Carlo estimators, which reuses the graph's CSR across trials.
#[must_use]
pub fn resample_single(tn: &TemporalNetwork, rng: &mut impl RandomSource) -> TemporalNetwork {
    let model = UniformSingle {
        lifetime: tn.lifetime(),
    };
    let assignment = model.assign(tn.graph().num_edges(), rng);
    TemporalNetwork::new(tn.graph().clone(), assignment, tn.lifetime())
        .expect("model labels fit the lifetime")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ephemeral_rng::default_rng;
    use ephemeral_temporal::reachability;

    #[test]
    fn normalized_clique_has_unit_labels_per_arc() {
        let mut rng = default_rng(1);
        let tn = sample_normalized_urt_clique(10, true, &mut rng);
        assert_eq!(tn.num_nodes(), 10);
        assert_eq!(tn.graph().num_edges(), 90);
        assert_eq!(tn.num_time_edges(), 90);
        assert_eq!(tn.lifetime(), 10);
        for e in 0..90u32 {
            assert_eq!(tn.labels(e).len(), 1);
        }
    }

    #[test]
    fn clique_urtn_is_always_temporally_connected() {
        // The direct edge provides a journey for every pair (the paper's
        // "K_n is the only graph where one label always suffices").
        let mut rng = default_rng(2);
        for trial in 0..5 {
            let tn = sample_normalized_urt_clique(12, true, &mut rng);
            assert!(
                reachability::is_temporally_connected(&tn, 1),
                "trial {trial}"
            );
        }
    }

    #[test]
    fn lifetime_variant_bounds_labels() {
        let mut rng = default_rng(3);
        let tn = sample_urt_clique_with_lifetime(8, false, 100, &mut rng);
        assert_eq!(tn.lifetime(), 100);
        assert!(tn.assignment().max_label().unwrap() <= 100);
    }

    #[test]
    fn multi_urtn_has_r_draws() {
        let mut rng = default_rng(4);
        let g = generators::star(20);
        let tn = sample_multi_urtn(g, 1000, 4, &mut rng);
        for e in 0..19u32 {
            let l = tn.labels(e).len();
            assert!((1..=4).contains(&l));
        }
    }

    #[test]
    fn resample_keeps_structure_changes_labels() {
        let mut rng = default_rng(5);
        let tn = sample_normalized_urt_clique(16, true, &mut rng);
        let tn2 = resample_single(&tn, &mut rng);
        assert_eq!(tn.graph(), tn2.graph());
        assert_eq!(tn.lifetime(), tn2.lifetime());
        assert_ne!(tn.assignment(), tn2.assignment());
    }

    #[test]
    fn sampling_is_deterministic_under_seed() {
        let a = sample_normalized_urt_clique(16, true, &mut default_rng(6));
        let b = sample_normalized_urt_clique(16, true, &mut default_rng(6));
        assert_eq!(a.assignment(), b.assignment());
    }
}
