//! Uniform Random Temporal Network sampling (Definition 4 and §3's
//! normalized clique).

use crate::models::{LabelModel, UniformMulti, UniformSingle};
use ephemeral_graph::{generators, Graph};
use ephemeral_rng::RandomSource;
use ephemeral_temporal::{LabelAssignment, TemporalNetwork, Time};

/// Sample a U-RTN over `graph`: one uniform label from `{1, …, lifetime}`
/// per edge (UNI-CASE).
///
/// # Panics
/// If `lifetime == 0`.
#[must_use]
pub fn sample_urtn(graph: Graph, lifetime: Time, rng: &mut impl RandomSource) -> TemporalNetwork {
    let model = UniformSingle { lifetime };
    let assignment = model.assign(graph.num_edges(), rng);
    TemporalNetwork::new(graph, assignment, lifetime).expect("model labels fit the lifetime")
}

/// Sample the **normalized** U-RT clique of §3: `K_n` (directed per the
/// paper's main theorem when `directed`, undirected per Remark 1 otherwise)
/// with one uniform label per edge from `{1, …, n}`.
///
/// # Panics
/// If `n == 0`.
#[must_use]
pub fn sample_normalized_urt_clique(
    n: usize,
    directed: bool,
    rng: &mut impl RandomSource,
) -> TemporalNetwork {
    assert!(n >= 1, "clique requires at least one vertex");
    sample_urtn(generators::clique(n, directed), n as Time, rng)
}

/// Sample a U-RT clique with an arbitrary lifetime `a` (the Theorem 5
/// regime when `a ≫ n`).
#[must_use]
pub fn sample_urt_clique_with_lifetime(
    n: usize,
    directed: bool,
    lifetime: Time,
    rng: &mut impl RandomSource,
) -> TemporalNetwork {
    assert!(n >= 1, "clique requires at least one vertex");
    sample_urtn(generators::clique(n, directed), lifetime, rng)
}

/// Sample a multi-label U-RTN: `r` i.i.d. uniform labels per edge (§4).
#[must_use]
pub fn sample_multi_urtn(
    graph: Graph,
    lifetime: Time,
    r: usize,
    rng: &mut impl RandomSource,
) -> TemporalNetwork {
    let model = UniformMulti { lifetime, r };
    let assignment = model.assign(graph.num_edges(), rng);
    TemporalNetwork::new(graph, assignment, lifetime).expect("model labels fit the lifetime")
}

/// Resample only the labels of an existing network (same graph, same
/// lifetime, fresh UNI-CASE draw) — the cheap per-trial path of the Monte
/// Carlo estimators, which reuses the graph's CSR across trials.
///
/// Delegates to [`resample_single_in_place`] on a fresh clone, so the two
/// paths cannot diverge: same label stream, same buckets, same closure.
#[must_use]
pub fn resample_single(tn: &TemporalNetwork, rng: &mut impl RandomSource) -> TemporalNetwork {
    let mut fresh = placeholder_network(tn.graph(), tn.lifetime());
    let mut spare = LabelAssignment::default();
    resample_single_in_place(&mut fresh, &mut spare, rng);
    fresh
}

/// A network over `graph` whose every edge carries the placeholder label 1
/// — the warm-up state of the Monte Carlo scratch loops, overwritten by the
/// first trial's draw (via [`resample_single_in_place`] or a model's
/// `assign_into`).
///
/// # Panics
/// If `lifetime == 0`.
#[must_use]
pub fn placeholder_network(graph: &Graph, lifetime: Time) -> TemporalNetwork {
    let placeholder =
        LabelAssignment::single(vec![1; graph.num_edges()]).expect("constant labels are non-zero");
    TemporalNetwork::new(graph.clone(), placeholder, lifetime)
        .expect("label 1 fits any positive lifetime")
}

/// [`resample_single`] without any allocation (once warm): the fresh
/// UNI-CASE draw goes into `spare`'s buffers, is swapped into `tn` with an
/// in-place rebuild of the time-edge index, and the displaced assignment
/// becomes the next call's `spare`. Draws the same label stream as
/// [`resample_single`], so switching a loop over never changes results.
pub fn resample_single_in_place(
    tn: &mut TemporalNetwork,
    spare: &mut LabelAssignment,
    rng: &mut impl RandomSource,
) {
    let model = UniformSingle {
        lifetime: tn.lifetime(),
    };
    model.assign_into(tn.graph().num_edges(), rng, spare);
    let drawn = std::mem::take(spare);
    *spare = tn
        .replace_assignment(drawn)
        .expect("model labels fit the lifetime");
}

/// Propose one step of the single-site (Gibbs) resampling chain over an
/// existing assignment: a uniformly chosen edge, a uniformly chosen label
/// of that edge, and a fresh uniform draw from `{1, …, lifetime}` to
/// replace it with. The network is not touched — feed the proposal to
/// [`TemporalNetwork::move_label`] for a cold application, or to
/// [`DeltaCursor::apply_label_move`](ephemeral_temporal::delta::DeltaCursor::apply_label_move)
/// to maintain a recorded closure differentially. Both reject no-op and
/// colliding draws identically, so the two drivers consume the same rng
/// stream and walk the same chain; unlike [`resample_single_in_place`]
/// (which redraws *every* edge), consecutive states differ in at most one
/// label — the correlated regime the differential cursor exists for.
///
/// # Panics
/// If the graph has no edges.
#[must_use]
pub fn propose_label_move(
    tn: &TemporalNetwork,
    rng: &mut impl RandomSource,
) -> (ephemeral_graph::EdgeId, Time, Time) {
    let m = tn.graph().num_edges();
    assert!(m > 0, "cannot propose a label move without edges");
    let e = rng.index(m) as ephemeral_graph::EdgeId;
    let labels = tn.labels(e);
    let from = labels[rng.index(labels.len())];
    let to = rng.range_u32(1, tn.lifetime());
    (e, from, to)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ephemeral_rng::default_rng;
    use ephemeral_temporal::reachability;

    #[test]
    fn normalized_clique_has_unit_labels_per_arc() {
        let mut rng = default_rng(1);
        let tn = sample_normalized_urt_clique(10, true, &mut rng);
        assert_eq!(tn.num_nodes(), 10);
        assert_eq!(tn.graph().num_edges(), 90);
        assert_eq!(tn.num_time_edges(), 90);
        assert_eq!(tn.lifetime(), 10);
        for e in 0..90u32 {
            assert_eq!(tn.labels(e).len(), 1);
        }
    }

    #[test]
    fn clique_urtn_is_always_temporally_connected() {
        // The direct edge provides a journey for every pair (the paper's
        // "K_n is the only graph where one label always suffices").
        let mut rng = default_rng(2);
        for trial in 0..5 {
            let tn = sample_normalized_urt_clique(12, true, &mut rng);
            assert!(
                reachability::is_temporally_connected(&tn, 1),
                "trial {trial}"
            );
        }
    }

    #[test]
    fn lifetime_variant_bounds_labels() {
        let mut rng = default_rng(3);
        let tn = sample_urt_clique_with_lifetime(8, false, 100, &mut rng);
        assert_eq!(tn.lifetime(), 100);
        assert!(tn.assignment().max_label().unwrap() <= 100);
    }

    #[test]
    fn multi_urtn_has_r_draws() {
        let mut rng = default_rng(4);
        let g = generators::star(20);
        let tn = sample_multi_urtn(g, 1000, 4, &mut rng);
        for e in 0..19u32 {
            let l = tn.labels(e).len();
            assert!((1..=4).contains(&l));
        }
    }

    #[test]
    fn resample_keeps_structure_changes_labels() {
        let mut rng = default_rng(5);
        let tn = sample_normalized_urt_clique(16, true, &mut rng);
        let tn2 = resample_single(&tn, &mut rng);
        assert_eq!(tn.graph(), tn2.graph());
        assert_eq!(tn.lifetime(), tn2.lifetime());
        assert_ne!(tn.assignment(), tn2.assignment());
    }

    #[test]
    fn in_place_resampling_matches_the_allocating_path() {
        let mut rng_a = default_rng(7);
        let mut rng_b = default_rng(7);
        let base_a = sample_normalized_urt_clique(24, true, &mut rng_a);
        let mut base_b = sample_normalized_urt_clique(24, true, &mut rng_b);
        let mut spare = LabelAssignment::default();
        for round in 0..4 {
            let fresh = resample_single(&base_a, &mut rng_a);
            resample_single_in_place(&mut base_b, &mut spare, &mut rng_b);
            assert_eq!(fresh.assignment(), base_b.assignment(), "round {round}");
            for t in 0..=24 {
                let mut x = fresh.edges_at(t).to_vec();
                let mut y = base_b.edges_at(t).to_vec();
                x.sort_unstable();
                y.sort_unstable();
                assert_eq!(x, y, "round {round} time {t}");
            }
            // The delegating path must consume exactly the same rng
            // stream — the next raw draw from both generators agrees.
            assert_eq!(rng_a.next_u64(), rng_b.next_u64(), "round {round}");
        }
    }

    #[test]
    fn proposed_moves_walk_the_same_chain_cold_and_differentially() {
        use ephemeral_temporal::wide::SweepScratch;
        let mut rng_cold = default_rng(11);
        let mut rng_delta = default_rng(11);
        let mut cold = sample_urtn(generators::cycle(40), 60, &mut rng_cold);
        let mut hot = sample_urtn(generators::cycle(40), 60, &mut rng_delta);
        let mut scratch = SweepScratch::new();
        scratch.record_delta(&hot);
        let mut applied = 0;
        for step in 0..200 {
            let (e1, f1, t1) = propose_label_move(&cold, &mut rng_cold);
            let (e2, f2, t2) = propose_label_move(&hot, &mut rng_delta);
            assert_eq!((e1, f1, t1), (e2, f2, t2), "step {step}");
            let a = cold.move_label(e1, f1, t1);
            let b = scratch.delta.apply_label_move(&mut hot, e2, f2, t2);
            assert_eq!(a.is_some(), b.is_some(), "step {step}");
            applied += usize::from(b.is_some());
            assert_eq!(cold.assignment(), hot.assignment(), "step {step}");
        }
        assert!(applied > 100, "the chain should mostly move: {applied}");
        assert_eq!(rng_cold.next_u64(), rng_delta.next_u64());
    }

    #[test]
    fn sampling_is_deterministic_under_seed() {
        let a = sample_normalized_urt_clique(16, true, &mut default_rng(6));
        let b = sample_normalized_urt_clique(16, true, &mut default_rng(6));
        assert_eq!(a.assignment(), b.assignment());
    }
}
