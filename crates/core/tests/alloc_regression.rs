//! Allocation-count regression test for the Monte Carlo hot loop.
//!
//! The per-trial path — draw a UNI-CASE assignment into scratch, swap it
//! into the network with an in-place bucket rebuild (occupied-times skip
//! list included), run the batch or wide engine — is designed to allocate
//! **nothing** once its buffers are warm. A counting global allocator
//! pins that down; a regression here means a `Vec` started being reborn
//! per trial somewhere in the loop.
//!
//! This file deliberately holds a single `#[test]`: the counter is global
//! to the test binary, so concurrent tests would pollute the count.

use ephemeral_core::models::{LabelModel, UniformSingle};
use ephemeral_core::urtn::resample_single_in_place;
use ephemeral_graph::generators;
use ephemeral_rng::default_rng;
use ephemeral_temporal::distance::instance_temporal_diameter_reusing;
use ephemeral_temporal::engine::BatchSweeper;
use ephemeral_temporal::wide::WideSweeper;
use ephemeral_temporal::{LabelAssignment, TemporalNetwork};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

struct CountingAllocator;

// SAFETY: defers every operation to `System`; the counter increment has no
// safety implications.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[test]
fn warm_montecarlo_trials_do_not_allocate() {
    let n = 96; // two engine batches, so the ragged batch path is exercised
    let graph = generators::clique(n, true);
    let lifetime = n as u32;
    let model = UniformSingle { lifetime };
    let mut rng = default_rng(7);

    let placeholder =
        LabelAssignment::single(vec![1; graph.num_edges()]).expect("constant labels are non-zero");
    let mut tn = TemporalNetwork::new(graph, placeholder, lifetime).expect("valid network");
    let mut spare = LabelAssignment::default();
    let mut sweeper = BatchSweeper::new();

    // Warm-up: let every buffer reach its steady-state capacity.
    let mut warm_diam = 0u64;
    for _ in 0..3 {
        resample_single_in_place(&mut tn, &mut spare, &mut rng);
        let d = instance_temporal_diameter_reusing(&tn, &mut sweeper);
        warm_diam += u64::from(d.max_finite);
    }
    assert!(warm_diam > 0, "clique trials produce finite diameters");

    // Measured window: the full per-trial pipeline, many times over.
    let before = allocations();
    let mut acc = 0u64;
    for _ in 0..20 {
        resample_single_in_place(&mut tn, &mut spare, &mut rng);
        let d = instance_temporal_diameter_reusing(&tn, &mut sweeper);
        acc += u64::from(d.max_finite) + d.unreachable_pairs as u64;
    }
    let during = allocations() - before;
    assert!(acc > 0, "keep the loop observable");
    assert_eq!(
        during, 0,
        "warm Monte Carlo trials must not allocate (saw {during} allocations in 20 trials)"
    );

    // The scratch draw alone is also allocation-free once warm.
    let before = allocations();
    for _ in 0..50 {
        model.assign_into(tn.graph().num_edges(), &mut rng, &mut spare);
    }
    let during = allocations() - before;
    assert_eq!(
        during, 0,
        "assign_into must reuse the scratch assignment's buffers"
    );

    // The wide-engine trial path: same draw-and-swap loop, but the sweep
    // is a single wide pass over the occupied-times index. Covers both
    // the sweeper's n×W frontier matrices and the occupied skip list's
    // in-place rebuild inside replace_assignment.
    let mut wide = WideSweeper::new();
    let n_nodes = tn.num_nodes() as u32;
    let mut warm = 0u64;
    for _ in 0..3 {
        resample_single_in_place(&mut tn, &mut spare, &mut rng);
        let stats = wide.sweep(&tn, 0..n_nodes, 0, |_, _, _, _| {});
        warm += u64::from(stats.last_arrival);
    }
    assert!(warm > 0, "clique trials produce arrivals");

    let before = allocations();
    let mut acc = 0u64;
    let mut occupied_seen = 0usize;
    for _ in 0..20 {
        resample_single_in_place(&mut tn, &mut spare, &mut rng);
        occupied_seen += tn.occupied_times().len();
        let stats = wide.sweep(&tn, 0..n_nodes, 0, |_, _, _, _| {});
        acc += u64::from(stats.last_arrival) + stats.reached_bits as u64;
    }
    let during = allocations() - before;
    assert!(acc > 0 && occupied_seen > 0, "keep the loop observable");
    assert_eq!(
        during, 0,
        "warm wide-engine trials (occupied-index rebuild included) must \
         not allocate (saw {during} allocations in 20 trials)"
    );

    // The dispatching scratch path above the crossover — what
    // `td_montecarlo` and `Scenario::evaluate` actually run per trial at
    // large n: resample in place, then `instance_temporal_diameter_scratch`
    // (wide engine, cache-blocked schedule via the allocation-free
    // `cache_blocks` iterator).
    use ephemeral_core::urtn::placeholder_network;
    use ephemeral_temporal::distance::instance_temporal_diameter_scratch;
    use ephemeral_temporal::wide::{engine_for, EngineKind, SweepScratch, WIDE_CROSSOVER};
    let n_wide = WIDE_CROSSOVER + 64;
    assert_eq!(engine_for(n_wide), EngineKind::Wide);
    let graph = generators::clique(n_wide, true);
    let mut tn = placeholder_network(&graph, n_wide as u32);
    let mut scratch = SweepScratch::new();
    for _ in 0..3 {
        resample_single_in_place(&mut tn, &mut spare, &mut rng);
        let _ = instance_temporal_diameter_scratch(&tn, &mut scratch);
    }
    let before = allocations();
    let mut acc = 0u64;
    for _ in 0..10 {
        resample_single_in_place(&mut tn, &mut spare, &mut rng);
        let d = instance_temporal_diameter_scratch(&tn, &mut scratch);
        acc += u64::from(d.max_finite) + d.unreachable_pairs as u64;
    }
    let during = allocations() - before;
    assert!(acc > 0, "keep the loop observable");
    assert_eq!(
        during, 0,
        "warm wide-dispatch trials above the crossover must not allocate \
         (saw {during} allocations in 10 trials)"
    );

    // The sparse-dispatch scratch path: a near-threshold G(n, p) at
    // lifetime 4n keeps the occupied buckets far below the dense-fill
    // threshold, so `instance_temporal_diameter_scratch` routes every
    // trial through the event-driven engine — frontier matrices,
    // non-zero-word summaries, version memo and per-bucket slab all
    // reused across trials.
    use ephemeral_temporal::sparse::EngineChoice;
    let n_sparse = WIDE_CROSSOVER + 64;
    let mut rng2 = default_rng(11);
    let graph = ephemeral_graph::generators::gnp(n_sparse, 4.0 / n_sparse as f64, false, &mut rng2);
    let mut tn = placeholder_network(&graph, 4 * n_sparse as u32);
    let mut scratch = SweepScratch::new();
    for _ in 0..3 {
        resample_single_in_place(&mut tn, &mut spare, &mut rng);
        assert_eq!(EngineChoice::pick_for(&tn), EngineKind::Sparse);
        let _ = instance_temporal_diameter_scratch(&tn, &mut scratch);
    }
    let before = allocations();
    let mut acc = 0u64;
    for _ in 0..10 {
        resample_single_in_place(&mut tn, &mut spare, &mut rng);
        let d = instance_temporal_diameter_scratch(&tn, &mut scratch);
        acc += u64::from(d.max_finite) + d.unreachable_pairs as u64;
    }
    let during = allocations() - before;
    assert!(acc > 0, "keep the loop observable");
    assert_eq!(
        during, 0,
        "warm sparse-dispatch trials above the crossover must not allocate \
         (saw {during} allocations in 10 trials)"
    );

    // Warm sharded sparse sweeps — the parallel fold's per-worker path:
    // each shard runs its own arena and agenda over the shared bucket
    // index. The relabel-heavy multi-label instance churns the region
    // arena (every relabel supersedes reacher lists), and the one-word
    // compaction floor makes the garbage check run after every bucket,
    // so evacuation cycles fire mid-shard — all through pooled scratch:
    // still zero allocations once warm.
    use ephemeral_temporal::sparse::SparseSweeper;
    use ephemeral_temporal::wide::source_blocks;
    let mut rng4 = default_rng(17);
    let n_shard = 192usize;
    let churn_graph = ephemeral_graph::generators::gnp(n_shard, 0.15, false, &mut rng4);
    use ephemeral_rng::RandomSource;
    let churn_labels = LabelAssignment::from_fn(churn_graph.num_edges(), |_| {
        (0..10).map(|_| rng4.range_u32(1, 900)).collect()
    })
    .expect("non-zero labels");
    let churn = TemporalNetwork::new(churn_graph, churn_labels, 900).expect("valid network");
    let mut sharded = SparseSweeper::new();
    sharded.set_compaction_floor(1);
    let blocks = source_blocks(n_shard, 4);
    let sweep_shards = |sweeper: &mut SparseSweeper| {
        let mut acc = 0u64;
        for block in &blocks {
            let stats = sweeper.sweep(&churn, block.clone(), 0, |_, _, _, _| {});
            acc += stats.reached_bits as u64 + stats.compactions as u64;
        }
        acc
    };
    // Compaction swaps the arena with its evacuation buffer, so the two
    // allocations trade roles every cycle: warm both schedules before
    // measuring.
    let warm = sweep_shards(&mut sharded);
    assert_eq!(sweep_shards(&mut sharded), warm, "sharded folds repeat");
    assert!(
        sharded.compactions_total() > 0,
        "the one-word floor must force compaction cycles"
    );
    let before = allocations();
    let acc = sweep_shards(&mut sharded);
    let during = allocations() - before;
    assert_eq!(acc, warm);
    assert_eq!(
        during, 0,
        "warm sharded sweeps with forced compaction must not allocate \
         (saw {during} allocations across 4 shards)"
    );

    // The traced T_reach check on the same sparse instances (its
    // static-components pass allocates by design, so no allocation count
    // here): the attribution must stay on the probe/batch-sized path or
    // the sparse engine — never the wide engine the old n-only dispatch
    // would have picked.
    use ephemeral_temporal::reachability::treach_holds_scratch_traced;
    let (_, engine) = treach_holds_scratch_traced(&tn, &mut scratch);
    assert!(
        matches!(engine, EngineKind::Batch | EngineKind::Sparse),
        "sparse instances answer at the probe or the sparse engine, got {engine:?}"
    );

    // The differential cursor: record once, then drive warm
    // `apply_label_move` calls. Each proposal is paired with its revert,
    // so the network returns to the recorded state and the measured
    // window replays exactly the buckets the warm-up already sized the
    // row logs, agenda and shadow buffers for — any allocation here
    // means cursor state stopped being pooled.
    use ephemeral_core::urtn::propose_label_move;
    let mut rng3 = default_rng(13);
    let proposals: Vec<_> = (0..48)
        .map(|_| propose_label_move(&tn, &mut rng3))
        .collect();
    let (recorded, _) = scratch.record_delta(&tn);
    let drive = |scratch: &mut SweepScratch, tn: &mut _| {
        let mut replayed = 0usize;
        for &(e, from, to) in &proposals {
            if let Some(a) = scratch.delta.apply_label_move(tn, e, from, to) {
                replayed += a.replayed_buckets;
                let back = scratch
                    .delta
                    .apply_label_move(tn, e, to, from)
                    .expect("reverting an applied move is always valid");
                replayed += back.replayed_buckets;
            }
        }
        replayed
    };
    let warm_replayed = drive(&mut scratch, &mut tn);
    assert!(warm_replayed > 0, "the move pairs must replay buckets");
    let before = allocations();
    let replayed = drive(&mut scratch, &mut tn);
    let during = allocations() - before;
    assert_eq!(
        replayed, warm_replayed,
        "identical pairs replay identically"
    );
    assert_eq!(
        during,
        0,
        "warm differential applies must not allocate (saw {during} \
         allocations over {} move+revert pairs)",
        proposals.len()
    );
    assert_eq!(
        scratch.delta.stats().reached_bits,
        recorded.reached_bits,
        "every pair reverted, so the maintained closure is the recorded one"
    );

    // The aligned kernel slabs directly: every engine above already runs
    // on `AlignedSlab` rows and the `AlignedLanes` arena, but pin the
    // primitives too — allocation happens at first sizing only; warm
    // resizes within capacity re-zero and re-derive the aligned offset
    // without touching the allocator, and warm arena refills likewise.
    use ephemeral_temporal::kernels::{AlignedLanes, AlignedSlab, SLAB_ALIGN_BYTES};
    let mut slab = AlignedSlab::new();
    slab.resize_zeroed(4096);
    let mut lanes = AlignedLanes::new();
    lanes.clear();
    lanes.reserve(4096);
    let before = allocations();
    let mut acc = 0usize;
    for round in 0..50 {
        slab.resize_zeroed(4096 - round % 7);
        slab.words_mut()[round] = !0;
        acc += slab.words()[round].count_ones() as usize;
        lanes.clear();
        for lane in 0..1000u32 {
            lanes.push(lane);
        }
        lanes.extend_from_slice(&[7; 64]);
        acc += lanes.len();
        assert_eq!(slab.words().as_ptr() as usize % SLAB_ALIGN_BYTES, 0);
        assert_eq!(lanes.as_ptr() as usize % SLAB_ALIGN_BYTES, 0);
    }
    let during = allocations() - before;
    assert!(acc > 0, "keep the loop observable");
    assert_eq!(
        during, 0,
        "warm aligned-slab resizes and arena refills must not allocate \
         (saw {during} allocations in 50 rounds)"
    );

    // The pooled bisection probes: `minimal_r_adaptive` threads one
    // `ProbePool` of warm `QuerySession`s through every candidate `r`,
    // so only the first probe pays for the session (network copy + sweep
    // scratch). The `T_reach` check's static-components pass allocates
    // by design, so the check is comparative rather than zero: probing
    // five candidates from a warm pool must beat five cold probes by at
    // least two sessions' worth of allocations (it saves ~five).
    use ephemeral_core::reachability_whp::{treach_probability_adaptive_pooled, ProbePool};
    use ephemeral_parallel::adaptive::AdaptiveConfig;
    use ephemeral_temporal::session::QuerySession;
    let probe_graph = generators::star(64);
    let cfg = AdaptiveConfig::new(0.5)
        .with_min_trials(4)
        .with_batch(4)
        .with_max_trials(4);
    let candidates = [1usize, 2, 3, 5, 8];
    let pool = ProbePool::new();
    // Warm-up run parks the single worker's session (and its spare label
    // buffer, sized for the largest candidate) in the shared pool.
    let _ = treach_probability_adaptive_pooled(&probe_graph, 64, 8, &cfg, 5, 1, &pool);
    assert_eq!(pool.idle(), 1, "the lone worker pools its probe state");
    let before = allocations();
    let session_build = QuerySession::new(placeholder_network(&probe_graph, 64));
    let build_cost = allocations() - before;
    drop(session_build);
    assert!(build_cost > 0, "building a session visibly allocates");
    let run_probes = |pooled: bool| {
        let mut estimates = 0.0;
        for r in candidates {
            let p = if pooled {
                treach_probability_adaptive_pooled(
                    &probe_graph,
                    64,
                    r,
                    &cfg,
                    5 ^ r as u64,
                    1,
                    &pool,
                )
            } else {
                treach_probability_adaptive_pooled(
                    &probe_graph,
                    64,
                    r,
                    &cfg,
                    5 ^ r as u64,
                    1,
                    &ProbePool::new(),
                )
            };
            estimates += p.proportion.estimate;
        }
        estimates
    };
    let before = allocations();
    let warm_estimates = run_probes(true);
    let pooled_allocs = allocations() - before;
    let before = allocations();
    let cold_estimates = run_probes(false);
    let cold_allocs = allocations() - before;
    assert_eq!(
        warm_estimates, cold_estimates,
        "pooling never changes numbers"
    );
    assert!(
        pooled_allocs + 2 * build_cost <= cold_allocs,
        "warm pooled probes must skip the per-candidate session rebuild \
         (pooled {pooled_allocs}, cold {cold_allocs}, one session costs \
         {build_cost} allocations)"
    );
}
