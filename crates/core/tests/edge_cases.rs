//! Edge-case and failure-injection tests for the paper-level machinery:
//! tiny networks, extreme lifetimes, adversarial labellings.

use ephemeral_core::dissemination::flood;
use ephemeral_core::expansion::{expansion_process, ExpansionParams};
use ephemeral_core::models::{LabelModel, UniformSingle};
use ephemeral_core::reachability_whp::treach_probability;
use ephemeral_core::star::{star_treach, EdgeExtremes};
use ephemeral_core::urtn::{sample_urt_clique_with_lifetime, sample_urtn};
use ephemeral_graph::generators;
use ephemeral_rng::default_rng;
use ephemeral_temporal::reachability::treach_holds;
use ephemeral_temporal::{LabelAssignment, TemporalNetwork};

#[test]
fn two_vertex_clique_works_at_every_lifetime() {
    for lifetime in [1u32, 2, 7, 1000] {
        let mut rng = default_rng(u64::from(lifetime));
        let tn = sample_urt_clique_with_lifetime(2, true, lifetime, &mut rng);
        assert!(treach_holds(&tn, 1), "lifetime {lifetime}");
        let out = flood(&tn, 0);
        assert_eq!(out.informed_count, 2);
    }
}

#[test]
fn lifetime_one_collapses_to_a_static_snapshot() {
    // With a = 1 every labelled edge exists only at time 1, so journeys are
    // single hops: temporal reach = closed neighbourhood.
    let mut rng = default_rng(5);
    let g = generators::cycle(8);
    let tn = sample_urtn(g, 1, &mut rng);
    let out = flood(&tn, 0);
    // 0's neighbours are 1 and 7 — exactly they get informed.
    assert_eq!(out.informed_count, 3);
    assert_eq!(out.broadcast_time, None);
}

#[test]
fn adversarial_equal_labels_destroy_sparse_reachability() {
    // All labels equal: multi-hop journeys impossible. The cycle then never
    // satisfies T_reach, no matter how many (identical) labels per edge.
    let g = generators::cycle(6);
    let labels = LabelAssignment::from_vecs(vec![vec![3]; 6]).unwrap();
    let tn = TemporalNetwork::new(g, labels, 6).unwrap();
    assert!(!treach_holds(&tn, 1));
}

#[test]
fn adversarial_decreasing_ring_blocks_full_rotation() {
    // Strictly decreasing labels around a cycle allow clockwise journeys
    // only across the wrap point; reachability is heavily asymmetric.
    let n = 8u32;
    let g = generators::cycle(n as usize);
    // Edge i = {i, i+1} gets label n − i.
    let labels = LabelAssignment::single((0..n).map(|i| n - i).collect()).unwrap();
    let tn = TemporalNetwork::new(g, labels, n).unwrap();
    assert!(!treach_holds(&tn, 1));
    // …yet the static cycle is connected: only the *temporal* layer fails.
    assert!(ephemeral_graph::algo::is_connected(tn.graph()));
}

#[test]
fn expansion_on_minimum_viable_clique() {
    // The smallest clique where practical windows fit at lifetime = n.
    let mut n = 8;
    loop {
        let params = ExpansionParams::practical(n);
        if params.fits(n, n as u32) {
            break;
        }
        n *= 2;
    }
    let mut rng = default_rng(1);
    let tn = sample_urt_clique_with_lifetime(n, true, n as u32, &mut rng);
    // Must run without panicking; success is not guaranteed at tiny n.
    let out = expansion_process(&tn, 0, 1, &ExpansionParams::practical(n));
    assert_eq!(
        out.forward_levels.len(),
        ExpansionParams::practical(n).d + 1
    );
}

#[test]
fn uniform_single_model_is_memoryless_across_edges() {
    // Labels of different edges are independent: the joint distribution of
    // (edge0, edge1) labels over many draws should cover the full grid.
    let model = UniformSingle { lifetime: 4 };
    let mut seen = [[false; 4]; 4];
    let mut rng = default_rng(8);
    for _ in 0..600 {
        let a = model.assign(2, &mut rng);
        seen[(a.labels(0)[0] - 1) as usize][(a.labels(1)[0] - 1) as usize] = true;
    }
    assert!(
        seen.iter().flatten().all(|&s| s),
        "all 16 label combinations should appear"
    );
}

#[test]
fn star_check_extremes_of_extremes() {
    // Identical (min == max) singletons on every edge: any two equal
    // singletons fail immediately (min_u >= max_v).
    let ex = vec![EdgeExtremes { min: 4, max: 4 }; 3];
    assert!(!star_treach(&ex));
    // Strictly nested intervals all sharing no overlap point: u = {5},
    // v = {1..9} works both ways; w = {4,6} also compatible.
    let ex = vec![
        EdgeExtremes { min: 5, max: 5 },
        EdgeExtremes { min: 1, max: 9 },
        EdgeExtremes { min: 4, max: 6 },
    ];
    assert!(star_treach(&ex));
}

#[test]
fn treach_probability_on_trivial_graphs_is_one() {
    // A single edge: one label suffices in both directions (undirected).
    let g = generators::path(2);
    let p = treach_probability(&g, 4, 1, 30, 3, 1);
    assert_eq!(p.estimate, 1.0);
}

#[test]
fn huge_lifetime_small_clique_still_connects() {
    // a = 10⁶ on K_8: labels are spread absurdly thin; the direct edge
    // still guarantees T_reach, and flooding still completes (slowly).
    let mut rng = default_rng(9);
    let tn = sample_urt_clique_with_lifetime(8, true, 1_000_000, &mut rng);
    assert!(treach_holds(&tn, 1));
    let out = flood(&tn, 0);
    assert_eq!(out.informed_count, 8);
    assert!(out.broadcast_time.unwrap() <= 1_000_000);
}
