//! Property-based tests for the paper-level machinery.

use ephemeral_core::expansion::{expansion_process, ExpansionParams};
use ephemeral_core::models::{GeometricArrivals, LabelModel, UniformMulti, ZipfMulti};
use ephemeral_core::opt::{box_scheme, spanning_tree_scheme};
use ephemeral_core::star::{star_treach, star_treach_bruteforce, EdgeExtremes};
use ephemeral_core::urtn::{
    resample_single, resample_single_in_place, sample_normalized_urt_clique, sample_urtn,
};
use ephemeral_graph::generators;
use ephemeral_rng::SeedSequence;
use ephemeral_temporal::reachability::treach_holds;
use ephemeral_temporal::{LabelAssignment, TemporalNetwork};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn box_scheme_always_certifies_random_trees(seed: u64, n in 2usize..40) {
        let mut rng = SeedSequence::new(seed).rng(0);
        let g = generators::random_tree(n, &mut rng);
        let s = box_scheme(&g).expect("trees are connected");
        let tn = TemporalNetwork::new(g, s.assignment, s.lifetime).unwrap();
        prop_assert!(treach_holds(&tn, 1));
    }

    #[test]
    fn spanning_tree_scheme_certifies_random_connected_gnp(seed: u64, n in 4usize..30) {
        let mut rng = SeedSequence::new(seed).rng(1);
        // Force connectivity by overlaying a random tree with extra edges.
        let tree = generators::random_tree(n, &mut rng);
        let mut b = ephemeral_graph::GraphBuilder::new_undirected(n);
        b.dedup_edges();
        for (_, u, v) in tree.edges() {
            b.add_edge(u, v);
        }
        use ephemeral_rng::RandomSource;
        for _ in 0..n {
            let u = rng.bounded_u32(n as u32);
            let v = rng.bounded_u32(n as u32);
            if u != v {
                b.add_edge(u, v);
            }
        }
        let g = b.build().unwrap();
        let s = spanning_tree_scheme(&g, 0).expect("connected by construction");
        prop_assert_eq!(s.total_labels % (n - 1), 0, "labels only on tree edges");
        let tn = TemporalNetwork::new(g, s.assignment, s.lifetime).unwrap();
        prop_assert!(treach_holds(&tn, 1));
    }

    #[test]
    fn star_fast_check_equals_bruteforce(
        extremes in prop::collection::vec((1u32..12, 1u32..12), 0..8)
    ) {
        let ex: Vec<EdgeExtremes> = extremes
            .into_iter()
            .map(|(a, b)| EdgeExtremes { min: a.min(b), max: a.max(b) })
            .collect();
        prop_assert_eq!(star_treach(&ex), star_treach_bruteforce(&ex));
    }

    #[test]
    fn expansion_journeys_always_validate(seed: u64) {
        let n = 128;
        let mut rng = SeedSequence::new(seed).rng(2);
        let tn = sample_normalized_urt_clique(n, true, &mut rng);
        let out = expansion_process(&tn, 0, 1, &ExpansionParams::practical(n));
        if let Some(j) = &out.journey {
            prop_assert!(j.is_realizable_in(&tn));
            prop_assert_eq!(j.source(), 0);
            prop_assert_eq!(j.target(), 1);
            prop_assert!(j.arrival() <= out.arrival_bound);
        }
    }

    #[test]
    fn resample_in_place_is_bit_identical_to_the_allocating_path(
        seed: u64,
        n in 2usize..40,
        density in 0.05f64..0.9,
        lifetime in 1u32..96,
        rounds in 1usize..5,
    ) {
        // The scratch-reuse resampling behind every warm Monte Carlo loop
        // must be indistinguishable from the allocating path — same rng
        // consumption, same assignment, same time-edge buckets — across
        // random graphs, lifetimes and seeds.
        let mut graph_rng = SeedSequence::new(seed).rng(4);
        let g = generators::gnp(n, density, false, &mut graph_rng);
        let mut rng_a = SeedSequence::new(seed).rng(5);
        let mut rng_b = SeedSequence::new(seed).rng(5);
        let base = sample_urtn(g.clone(), lifetime, &mut rng_a);
        let mut in_place = sample_urtn(g, lifetime, &mut rng_b);
        let mut spare = LabelAssignment::default();
        let mut fresh = base;
        for round in 0..rounds {
            fresh = resample_single(&fresh, &mut rng_a);
            resample_single_in_place(&mut in_place, &mut spare, &mut rng_b);
            prop_assert_eq!(fresh.assignment(), in_place.assignment(), "round {}", round);
            for t in 0..=lifetime {
                let mut x = fresh.edges_at(t).to_vec();
                let mut y = in_place.edges_at(t).to_vec();
                x.sort_unstable();
                y.sort_unstable();
                prop_assert_eq!(x, y, "round {} time {}", round, t);
            }
        }
        // The two generators consumed identical streams.
        use ephemeral_rng::RandomSource;
        prop_assert_eq!(rng_a.next_u64(), rng_b.next_u64());
    }

    #[test]
    fn label_models_respect_their_lifetimes(seed: u64, m in 1usize..60, lifetime in 1u32..200) {
        let mut rng = SeedSequence::new(seed).rng(3);
        let models: Vec<Box<dyn LabelModel>> = vec![
            Box::new(UniformMulti { lifetime, r: 3 }),
            Box::new(ZipfMulti::new(lifetime, 3, 1.2)),
            Box::new(GeometricArrivals { lifetime, p: 0.3 }),
        ];
        for model in &models {
            let a = model.assign(m, &mut rng);
            prop_assert_eq!(a.num_edges(), m);
            if let Some(max) = a.max_label() {
                prop_assert!(max <= model.lifetime());
            }
            if let Some(min) = a.min_label() {
                prop_assert!(min >= 1);
            }
            // Constructing the network must always succeed.
            let g = generators::gnm(m + 1, m, false, &mut rng);
            let tn = TemporalNetwork::new(g, a, lifetime);
            prop_assert!(tn.is_ok());
        }
    }
}
