//! Breadth-first search.

use crate::{Graph, NodeId};

/// Distance sentinel: node not reached.
pub const UNREACHABLE: u32 = u32::MAX;

/// Hop distances from `source` (directed graphs follow out-arcs).
/// Unreached nodes get [`UNREACHABLE`].
///
/// # Panics
/// If `source >= g.num_nodes()`.
#[must_use]
pub fn bfs_distances(g: &Graph, source: NodeId) -> Vec<u32> {
    multi_source_bfs(g, std::slice::from_ref(&source))
}

/// Hop distances from the nearest of several sources.
///
/// # Panics
/// If any source is out of range.
#[must_use]
pub fn multi_source_bfs(g: &Graph, sources: &[NodeId]) -> Vec<u32> {
    let n = g.num_nodes();
    let mut dist = vec![UNREACHABLE; n];
    let mut queue = std::collections::VecDeque::with_capacity(sources.len());
    for &s in sources {
        assert!((s as usize) < n, "source {s} out of range");
        if dist[s as usize] == UNREACHABLE {
            dist[s as usize] = 0;
            queue.push_back(s);
        }
    }
    while let Some(u) = queue.pop_front() {
        let du = dist[u as usize];
        let (neighbors, _) = g.out_adjacency(u);
        for &v in neighbors {
            if dist[v as usize] == UNREACHABLE {
                dist[v as usize] = du + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// BFS predecessor array: `parents[v]` is the BFS-tree parent of `v`, or
/// [`crate::INVALID_NODE`] for the source and unreached nodes.
///
/// # Panics
/// If `source >= g.num_nodes()`.
#[must_use]
pub fn bfs_parents(g: &Graph, source: NodeId) -> Vec<NodeId> {
    let n = g.num_nodes();
    assert!((source as usize) < n, "source {source} out of range");
    let mut parent = vec![crate::INVALID_NODE; n];
    let mut visited = vec![false; n];
    let mut queue = std::collections::VecDeque::new();
    visited[source as usize] = true;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let (neighbors, _) = g.out_adjacency(u);
        for &v in neighbors {
            if !visited[v as usize] {
                visited[v as usize] = true;
                parent[v as usize] = u;
                queue.push_back(v);
            }
        }
    }
    parent
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::GraphBuilder;

    #[test]
    fn path_distances() {
        let g = generators::path(5);
        assert_eq!(bfs_distances(&g, 0), vec![0, 1, 2, 3, 4]);
        assert_eq!(bfs_distances(&g, 2), vec![2, 1, 0, 1, 2]);
    }

    #[test]
    fn disconnected_components_are_unreachable() {
        let mut b = GraphBuilder::new_undirected(4);
        b.add_edge(0, 1);
        b.add_edge(2, 3);
        let g = b.build().unwrap();
        let d = bfs_distances(&g, 0);
        assert_eq!(d[1], 1);
        assert_eq!(d[2], UNREACHABLE);
        assert_eq!(d[3], UNREACHABLE);
    }

    #[test]
    fn directed_bfs_respects_orientation() {
        let mut b = GraphBuilder::new_directed(3);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        let g = b.build().unwrap();
        assert_eq!(bfs_distances(&g, 0), vec![0, 1, 2]);
        assert_eq!(bfs_distances(&g, 2), vec![UNREACHABLE, UNREACHABLE, 0]);
    }

    #[test]
    fn multi_source_takes_minimum() {
        let g = generators::path(7);
        let d = multi_source_bfs(&g, &[0, 6]);
        assert_eq!(d, vec![0, 1, 2, 3, 2, 1, 0]);
    }

    #[test]
    fn multi_source_with_duplicate_sources() {
        let g = generators::path(3);
        let d = multi_source_bfs(&g, &[0, 0]);
        assert_eq!(d, vec![0, 1, 2]);
    }

    #[test]
    fn parents_trace_back_to_source() {
        let g = generators::grid(3, 3);
        let parent = bfs_parents(&g, 0);
        assert_eq!(parent[0], crate::INVALID_NODE);
        // Every non-source node reaches 0 by following parents.
        for mut v in 1..9u32 {
            let mut hops = 0;
            while v != 0 {
                v = parent[v as usize];
                hops += 1;
                assert!(hops <= 9, "cycle in parent array");
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bfs_rejects_bad_source() {
        let g = generators::path(3);
        let _ = bfs_distances(&g, 5);
    }
}
