//! Connected components.
//!
//! For directed graphs these are the **weak** components (components of the
//! underlying undirected graph) — the notion the Erdős–Rényi threshold
//! arguments of the paper (Theorem 5, §3.4 remark) need.

use super::unionfind::UnionFind;
use crate::Graph;

/// Component labelling of a graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Components {
    /// `labels[v]` is the component id (`0..count`) of node `v`; ids are
    /// assigned in order of first appearance by node id.
    pub labels: Vec<u32>,
    /// Number of components.
    pub count: usize,
    /// Size of each component, indexed by component id.
    pub sizes: Vec<u32>,
}

/// Compute (weak) connected components via union–find.
#[must_use]
pub fn connected_components(g: &Graph) -> Components {
    let n = g.num_nodes();
    let mut uf = UnionFind::new(n);
    for (_, u, v) in g.edges() {
        uf.union(u, v);
    }
    let mut labels = vec![u32::MAX; n];
    let mut sizes = Vec::new();
    let mut next = 0u32;
    for v in 0..n as u32 {
        let root = uf.find(v);
        if labels[root as usize] == u32::MAX {
            labels[root as usize] = next;
            sizes.push(0);
            next += 1;
        }
        let label = labels[root as usize];
        if v != root {
            labels[v as usize] = label;
        }
        sizes[label as usize] += 1;
    }
    Components {
        labels,
        count: next as usize,
        sizes,
    }
}

/// Is the graph (weakly) connected? Vacuously true for `n ≤ 1`.
#[must_use]
pub fn is_connected(g: &Graph) -> bool {
    g.num_nodes() <= 1 || connected_components(g).count == 1
}

/// Size of the largest (weak) component; 0 for the empty graph.
#[must_use]
pub fn largest_component_size(g: &Graph) -> usize {
    if g.num_nodes() == 0 {
        return 0;
    }
    connected_components(g)
        .sizes
        .iter()
        .copied()
        .max()
        .unwrap_or(0) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::GraphBuilder;

    #[test]
    fn single_component() {
        let g = generators::cycle(6);
        let c = connected_components(&g);
        assert_eq!(c.count, 1);
        assert_eq!(c.sizes, vec![6]);
        assert!(is_connected(&g));
    }

    #[test]
    fn two_components_with_sizes() {
        let mut b = GraphBuilder::new_undirected(5);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(3, 4);
        let g = b.build().unwrap();
        let c = connected_components(&g);
        assert_eq!(c.count, 2);
        assert_eq!(c.sizes, vec![3, 2]);
        assert_eq!(c.labels[0], c.labels[2]);
        assert_ne!(c.labels[0], c.labels[3]);
        assert_eq!(largest_component_size(&g), 3);
        assert!(!is_connected(&g));
    }

    #[test]
    fn isolated_nodes_are_components() {
        let g = GraphBuilder::new_undirected(3).build().unwrap();
        let c = connected_components(&g);
        assert_eq!(c.count, 3);
        assert_eq!(c.sizes, vec![1, 1, 1]);
    }

    #[test]
    fn empty_and_singleton_are_connected() {
        assert!(is_connected(
            &GraphBuilder::new_undirected(0).build().unwrap()
        ));
        assert!(is_connected(
            &GraphBuilder::new_undirected(1).build().unwrap()
        ));
        assert_eq!(
            largest_component_size(&GraphBuilder::new_undirected(0).build().unwrap()),
            0
        );
    }

    #[test]
    fn directed_uses_weak_connectivity() {
        let mut b = GraphBuilder::new_directed(3);
        b.add_edge(0, 1);
        b.add_edge(2, 1); // no directed path 0 -> 2, but weakly connected
        let g = b.build().unwrap();
        assert!(is_connected(&g));
    }

    #[test]
    fn component_labels_are_dense_and_ordered() {
        let mut b = GraphBuilder::new_undirected(6);
        b.add_edge(4, 5);
        b.add_edge(0, 2);
        let g = b.build().unwrap();
        let c = connected_components(&g);
        // Node 0's component gets label 0, node 1 (isolated) label 1, ...
        assert_eq!(c.labels[0], 0);
        assert_eq!(c.labels[1], 1);
        assert_eq!(c.labels[2], 0);
        assert_eq!(c.labels[3], 2);
        assert_eq!(c.labels[4], 3);
        assert_eq!(c.labels[5], 3);
        assert_eq!(c.count, 4);
    }
}
