//! Hop diameter: the `d(G)` of the paper's §5 bound `r > 2·d(G)·log n`.

use super::bfs::{bfs_distances, UNREACHABLE};
use crate::{Graph, NodeId};

/// Eccentricity of `v`: the largest finite BFS distance from `v`, or `None`
/// if some node is unreachable from `v`.
#[must_use]
pub fn eccentricity(g: &Graph, v: NodeId) -> Option<u32> {
    let dist = bfs_distances(g, v);
    let mut max = 0u32;
    for &d in &dist {
        if d == UNREACHABLE {
            return None;
        }
        max = max.max(d);
    }
    Some(max)
}

/// Exact diameter via one BFS per node: `O(n·(n+m))`. Returns `None` for
/// disconnected graphs (and for directed graphs that are not strongly
/// connected). The empty/singleton graph has diameter 0.
#[must_use]
pub fn diameter(g: &Graph) -> Option<u32> {
    let n = g.num_nodes();
    if n == 0 {
        return Some(0);
    }
    let mut best = 0u32;
    for v in 0..n as u32 {
        best = best.max(eccentricity(g, v)?);
    }
    Some(best)
}

/// Two-sweep lower bound on the diameter: BFS from `start`, then BFS from
/// the farthest node found. Exact on trees; a lower bound in general.
/// Returns `None` if the graph is disconnected (seen from `start`).
#[must_use]
pub fn two_sweep_lower_bound(g: &Graph, start: NodeId) -> Option<u32> {
    let first = bfs_distances(g, start);
    let (far, _) = first
        .iter()
        .enumerate()
        .max_by_key(|&(_, &d)| if d == UNREACHABLE { 0 } else { d })?;
    if first.contains(&UNREACHABLE) {
        return None;
    }
    eccentricity(g, far as NodeId)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::GraphBuilder;

    #[test]
    fn known_diameters() {
        assert_eq!(diameter(&generators::clique(8, false)), Some(1));
        assert_eq!(diameter(&generators::star(8)), Some(2));
        assert_eq!(diameter(&generators::path(9)), Some(8));
        assert_eq!(diameter(&generators::cycle(10)), Some(5));
        assert_eq!(diameter(&generators::hypercube(5)), Some(5));
    }

    #[test]
    fn disconnected_has_no_diameter() {
        let mut b = GraphBuilder::new_undirected(4);
        b.add_edge(0, 1);
        let g = b.build().unwrap();
        assert_eq!(diameter(&g), None);
        assert_eq!(eccentricity(&g, 0), None);
    }

    #[test]
    fn directed_not_strongly_connected_has_no_diameter() {
        let mut b = GraphBuilder::new_directed(2);
        b.add_edge(0, 1);
        let g = b.build().unwrap();
        assert_eq!(diameter(&g), None);
    }

    #[test]
    fn directed_cycle_diameter() {
        let mut b = GraphBuilder::new_directed(4);
        for v in 0..4u32 {
            b.add_edge(v, (v + 1) % 4);
        }
        let g = b.build().unwrap();
        assert_eq!(diameter(&g), Some(3));
    }

    #[test]
    fn degenerate_graphs() {
        assert_eq!(
            diameter(&GraphBuilder::new_undirected(0).build().unwrap()),
            Some(0)
        );
        assert_eq!(
            diameter(&GraphBuilder::new_undirected(1).build().unwrap()),
            Some(0)
        );
    }

    #[test]
    fn two_sweep_is_exact_on_trees() {
        let t = generators::binary_tree(31);
        assert_eq!(two_sweep_lower_bound(&t, 0), diameter(&t));
        let p = generators::path(17);
        assert_eq!(two_sweep_lower_bound(&p, 8), Some(16));
    }

    #[test]
    fn two_sweep_is_a_lower_bound() {
        let mut r = ephemeral_rng::default_rng(42);
        for _ in 0..10 {
            let g = generators::gnp(60, 0.08, false, &mut r);
            if let Some(exact) = diameter(&g) {
                let lb = two_sweep_lower_bound(&g, 0).unwrap();
                assert!(lb <= exact, "lb {lb} > exact {exact}");
            }
        }
    }

    #[test]
    fn two_sweep_none_when_disconnected() {
        let mut b = GraphBuilder::new_undirected(3);
        b.add_edge(0, 1);
        let g = b.build().unwrap();
        assert_eq!(two_sweep_lower_bound(&g, 0), None);
    }
}
