//! Classical graph algorithms on the CSR substrate.

mod bfs;
mod components;
mod diameter;
mod spanning;
mod unionfind;

pub use bfs::{bfs_distances, bfs_parents, multi_source_bfs, UNREACHABLE};
pub use components::{connected_components, is_connected, largest_component_size, Components};
pub use diameter::{diameter, eccentricity, two_sweep_lower_bound};
pub use spanning::{bfs_tree, SpanningTree};
pub use unionfind::UnionFind;
