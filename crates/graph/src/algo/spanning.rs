//! Spanning trees — substrate for the deterministic OPT label assignments
//! ("at least `n−1` edges must be labelled in order to have a labelled
//! spanning tree", paper §5).

use super::bfs::UNREACHABLE;
use crate::{EdgeId, Graph, NodeId};

/// A rooted spanning tree of (the component of `root` in) a graph.
#[derive(Debug, Clone)]
pub struct SpanningTree {
    /// The root node.
    pub root: NodeId,
    /// `parent[v]` is the parent of `v`, or [`crate::INVALID_NODE`] for the
    /// root and nodes outside the component.
    pub parent: Vec<NodeId>,
    /// `parent_edge[v]` is the edge connecting `v` to its parent, or
    /// `EdgeId::MAX` where there is none.
    pub parent_edge: Vec<EdgeId>,
    /// BFS depth of each node (`u32::MAX` outside the component).
    pub depth: Vec<u32>,
    /// The tree edges, in BFS discovery order (`n_component − 1` of them).
    pub edges: Vec<EdgeId>,
}

impl SpanningTree {
    /// Number of nodes actually spanned (the component size).
    #[must_use]
    pub fn spanned(&self) -> usize {
        self.depth.iter().filter(|&&d| d != UNREACHABLE).count()
    }

    /// Does the tree span the whole graph?
    #[must_use]
    pub fn is_spanning(&self) -> bool {
        self.spanned() == self.depth.len()
    }

    /// Height of the tree (maximum depth over spanned nodes).
    #[must_use]
    pub fn height(&self) -> u32 {
        self.depth
            .iter()
            .filter(|&&d| d != UNREACHABLE)
            .copied()
            .max()
            .unwrap_or(0)
    }

    /// The path of nodes from `v` up to the root (inclusive); empty if `v`
    /// is not spanned.
    #[must_use]
    pub fn path_to_root(&self, v: NodeId) -> Vec<NodeId> {
        if self.depth[v as usize] == UNREACHABLE {
            return Vec::new();
        }
        let mut path = vec![v];
        let mut cur = v;
        while cur != self.root {
            cur = self.parent[cur as usize];
            path.push(cur);
        }
        path
    }
}

/// BFS spanning tree rooted at `root`.
///
/// # Panics
/// If `root >= g.num_nodes()`.
#[must_use]
pub fn bfs_tree(g: &Graph, root: NodeId) -> SpanningTree {
    let n = g.num_nodes();
    assert!((root as usize) < n, "root {root} out of range");
    let mut parent = vec![crate::INVALID_NODE; n];
    let mut parent_edge = vec![EdgeId::MAX; n];
    let mut depth = vec![UNREACHABLE; n];
    let mut edges = Vec::new();
    let mut queue = std::collections::VecDeque::new();
    depth[root as usize] = 0;
    queue.push_back(root);
    while let Some(u) = queue.pop_front() {
        let (neighbors, edge_ids) = g.out_adjacency(u);
        for (&v, &e) in neighbors.iter().zip(edge_ids) {
            if depth[v as usize] == UNREACHABLE {
                depth[v as usize] = depth[u as usize] + 1;
                parent[v as usize] = u;
                parent_edge[v as usize] = e;
                edges.push(e);
                queue.push_back(v);
            }
        }
    }
    SpanningTree {
        root,
        parent,
        parent_edge,
        depth,
        edges,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::GraphBuilder;

    #[test]
    fn spanning_tree_of_connected_graph() {
        let g = generators::grid(4, 4);
        let t = bfs_tree(&g, 0);
        assert!(t.is_spanning());
        assert_eq!(t.edges.len(), 15);
        assert_eq!(t.spanned(), 16);
        assert_eq!(t.height(), 6); // corner-to-corner in a 4x4 grid
    }

    #[test]
    fn tree_of_disconnected_graph_spans_component() {
        let mut b = GraphBuilder::new_undirected(5);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(3, 4);
        let g = b.build().unwrap();
        let t = bfs_tree(&g, 0);
        assert!(!t.is_spanning());
        assert_eq!(t.spanned(), 3);
        assert_eq!(t.edges.len(), 2);
        assert!(t.path_to_root(4).is_empty());
    }

    #[test]
    fn path_to_root_is_monotone_in_depth() {
        let g = generators::binary_tree(15);
        let t = bfs_tree(&g, 0);
        let p = t.path_to_root(14);
        assert_eq!(*p.last().unwrap(), 0);
        for w in p.windows(2) {
            assert_eq!(t.depth[w[0] as usize], t.depth[w[1] as usize] + 1);
        }
    }

    #[test]
    fn star_tree_height_is_one() {
        let g = generators::star(9);
        let t = bfs_tree(&g, 0);
        assert_eq!(t.height(), 1);
        let from_leaf = bfs_tree(&g, 3);
        assert_eq!(from_leaf.height(), 2);
    }

    #[test]
    fn parent_edges_connect_child_to_parent() {
        let g = generators::cycle(7);
        let t = bfs_tree(&g, 0);
        for v in g.nodes() {
            if v != t.root {
                let e = t.parent_edge[v as usize];
                let (a, b) = g.endpoints(e);
                let p = t.parent[v as usize];
                assert!(
                    (a, b) == (v.min(p), v.max(p)),
                    "edge {e} should join {v} and {p}"
                );
            }
        }
    }
}
