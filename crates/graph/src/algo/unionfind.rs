//! Disjoint-set forest with union by rank and path halving.

/// Union–find over `0..n`.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
    num_sets: usize,
}

impl UnionFind {
    /// `n` singleton sets.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
            num_sets: n,
        }
    }

    /// Number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True when tracking zero elements.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Current number of disjoint sets.
    #[must_use]
    pub const fn num_sets(&self) -> usize {
        self.num_sets
    }

    /// Representative of `x`'s set (path halving).
    pub fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let grandparent = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grandparent;
            x = grandparent;
        }
        x
    }

    /// Merge the sets of `a` and `b`; returns `true` if they were distinct.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.rank[ra as usize] < self.rank[rb as usize] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb as usize] = ra;
        if self.rank[ra as usize] == self.rank[rb as usize] {
            self.rank[ra as usize] += 1;
        }
        self.num_sets -= 1;
        true
    }

    /// Are `a` and `b` in the same set?
    pub fn connected(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons() {
        let mut uf = UnionFind::new(4);
        assert_eq!(uf.num_sets(), 4);
        assert!(!uf.connected(0, 1));
        assert_eq!(uf.len(), 4);
        assert!(!uf.is_empty());
    }

    #[test]
    fn union_merges_and_counts() {
        let mut uf = UnionFind::new(5);
        assert!(uf.union(0, 1));
        assert!(uf.union(2, 3));
        assert!(!uf.union(1, 0));
        assert_eq!(uf.num_sets(), 3);
        assert!(uf.connected(0, 1));
        assert!(!uf.connected(0, 2));
        assert!(uf.union(1, 2));
        assert!(uf.connected(0, 3));
        assert_eq!(uf.num_sets(), 2);
    }

    #[test]
    fn chain_unions_collapse_to_one_set() {
        let mut uf = UnionFind::new(100);
        for i in 0..99 {
            uf.union(i, i + 1);
        }
        assert_eq!(uf.num_sets(), 1);
        assert!(uf.connected(0, 99));
    }

    #[test]
    fn empty_union_find() {
        let uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.num_sets(), 0);
    }
}
