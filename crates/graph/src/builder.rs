//! Mutable edge-list builder that produces the immutable CSR [`Graph`].

use crate::error::GraphError;
use crate::graph::Graph;
use crate::NodeId;

/// Accumulates edges, validates them, and freezes into a [`Graph`].
///
/// ```
/// use ephemeral_graph::GraphBuilder;
/// let mut b = GraphBuilder::new_undirected(4);
/// b.add_edge(0, 1);
/// b.add_edge(1, 2);
/// b.add_edge(2, 3);
/// let g = b.build().unwrap();
/// assert_eq!(g.num_edges(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    directed: bool,
    num_nodes: u32,
    edges: Vec<(u32, u32)>,
    dedup: bool,
}

impl GraphBuilder {
    /// Builder for an undirected graph on `n` nodes.
    ///
    /// # Panics
    /// If `n >= u32::MAX` (the id space reserves `u32::MAX` as a sentinel).
    #[must_use]
    pub fn new_undirected(n: usize) -> Self {
        Self::new(n, false)
    }

    /// Builder for a directed graph on `n` nodes.
    #[must_use]
    pub fn new_directed(n: usize) -> Self {
        Self::new(n, true)
    }

    fn new(n: usize, directed: bool) -> Self {
        assert!(
            n < u32::MAX as usize,
            "node count {n} exceeds the u32 id space"
        );
        Self {
            directed,
            num_nodes: n as u32,
            edges: Vec::new(),
            dedup: false,
        }
    }

    /// Silently drop duplicate edges at [`build`](Self::build) time instead
    /// of reporting [`GraphError::DuplicateEdge`]. Useful for random
    /// generators that may propose the same pair twice.
    pub fn dedup_edges(&mut self) -> &mut Self {
        self.dedup = true;
        self
    }

    /// Queue an edge (validated at build time). For undirected builders the
    /// pair is canonicalized to `(min, max)`.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> &mut Self {
        let pair = if self.directed || u <= v {
            (u, v)
        } else {
            (v, u)
        };
        self.edges.push(pair);
        self
    }

    /// Reserve capacity for `additional` more edges.
    pub fn reserve(&mut self, additional: usize) -> &mut Self {
        self.edges.reserve(additional);
        self
    }

    /// Number of edges queued so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether no edges are queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Validate and freeze into CSR form.
    ///
    /// # Errors
    /// [`GraphError::NodeOutOfRange`], [`GraphError::SelfLoop`],
    /// [`GraphError::DuplicateEdge`] (unless [`dedup_edges`](Self::dedup_edges)
    /// was requested), or [`GraphError::TooManyEdges`].
    pub fn build(&self) -> Result<Graph, GraphError> {
        let n = self.num_nodes;
        let mut edges = self.edges.clone();

        for &(u, v) in &edges {
            if u >= n {
                return Err(GraphError::NodeOutOfRange {
                    node: u,
                    num_nodes: n,
                });
            }
            if v >= n {
                return Err(GraphError::NodeOutOfRange {
                    node: v,
                    num_nodes: n,
                });
            }
            if u == v {
                return Err(GraphError::SelfLoop { node: u });
            }
        }

        // Duplicate handling on canonical pairs (already canonical for
        // undirected; arcs compare as-is so (u,v) and (v,u) are distinct).
        if self.dedup {
            edges.sort_unstable();
            edges.dedup();
        } else {
            let mut sorted = edges.clone();
            sorted.sort_unstable();
            for w in sorted.windows(2) {
                if w[0] == w[1] {
                    return Err(GraphError::DuplicateEdge {
                        u: w[0].0,
                        v: w[0].1,
                    });
                }
            }
        }

        if edges.len() >= u32::MAX as usize {
            return Err(GraphError::TooManyEdges);
        }

        // Counting-sort the adjacency into CSR, then sort each row by target.
        let m = edges.len();
        let (out_csr, in_csr) = if self.directed {
            let out = build_csr(
                n,
                edges
                    .iter()
                    .enumerate()
                    .map(|(e, &(u, v))| (u, v, e as u32)),
                m,
            );
            let inn = build_csr(
                n,
                edges
                    .iter()
                    .enumerate()
                    .map(|(e, &(u, v))| (v, u, e as u32)),
                m,
            );
            (out, Some(inn))
        } else {
            let both = edges
                .iter()
                .enumerate()
                .flat_map(|(e, &(u, v))| [(u, v, e as u32), (v, u, e as u32)]);
            (build_csr(n, both, 2 * m), None)
        };

        let (out_offsets, out_node, out_edge) = out_csr;
        let (in_offsets, in_node, in_edge) = in_csr.unwrap_or_default();

        Ok(Graph::from_parts(
            self.directed,
            n,
            edges,
            out_offsets,
            out_node,
            out_edge,
            in_offsets,
            in_node,
            in_edge,
        ))
    }
}

/// Build one CSR from `(source, target, edge_id)` triples; each row ends up
/// sorted by `(target, edge_id)`.
fn build_csr(
    n: u32,
    triples: impl Iterator<Item = (u32, u32, u32)> + Clone,
    count: usize,
) -> (Vec<u32>, Vec<u32>, Vec<u32>) {
    let mut offsets = vec![0u32; n as usize + 2];
    for (s, _, _) in triples.clone() {
        offsets[s as usize + 2] += 1;
    }
    for i in 2..offsets.len() {
        offsets[i] += offsets[i - 1];
    }
    let mut node = vec![0u32; count];
    let mut edge = vec![0u32; count];
    for (s, t, e) in triples {
        let slot = offsets[s as usize + 1] as usize;
        node[slot] = t;
        edge[slot] = e;
        offsets[s as usize + 1] += 1;
    }
    offsets.pop();
    // Sort each row by target (stable insertion order for equal targets
    // cannot occur: duplicates were rejected or removed).
    let mut perm: Vec<u32> = Vec::new();
    for v in 0..n as usize {
        let lo = offsets[v] as usize;
        let hi = offsets[v + 1] as usize;
        if hi - lo > 1 {
            perm.clear();
            perm.extend(lo as u32..hi as u32);
            perm.sort_unstable_by_key(|&i| node[i as usize]);
            let sorted_nodes: Vec<u32> = perm.iter().map(|&i| node[i as usize]).collect();
            let sorted_edges: Vec<u32> = perm.iter().map(|&i| edge[i as usize]).collect();
            node[lo..hi].copy_from_slice(&sorted_nodes);
            edge[lo..hi].copy_from_slice(&sorted_edges);
        }
    }
    (offsets, node, edge)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new_undirected(0).build().unwrap();
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn isolated_nodes() {
        let g = GraphBuilder::new_undirected(5).build().unwrap();
        assert_eq!(g.num_nodes(), 5);
        for v in g.nodes() {
            assert_eq!(g.out_degree(v), 0);
        }
    }

    #[test]
    fn rejects_out_of_range() {
        let mut b = GraphBuilder::new_undirected(3);
        b.add_edge(0, 3);
        assert_eq!(
            b.build().unwrap_err(),
            GraphError::NodeOutOfRange {
                node: 3,
                num_nodes: 3
            }
        );
    }

    #[test]
    fn rejects_self_loop() {
        let mut b = GraphBuilder::new_directed(3);
        b.add_edge(2, 2);
        assert_eq!(b.build().unwrap_err(), GraphError::SelfLoop { node: 2 });
    }

    #[test]
    fn rejects_duplicates_including_mirrored_undirected() {
        let mut b = GraphBuilder::new_undirected(3);
        b.add_edge(0, 1);
        b.add_edge(1, 0); // same undirected edge
        assert_eq!(
            b.build().unwrap_err(),
            GraphError::DuplicateEdge { u: 0, v: 1 }
        );
    }

    #[test]
    fn directed_antiparallel_arcs_are_distinct() {
        let mut b = GraphBuilder::new_directed(3);
        b.add_edge(0, 1);
        b.add_edge(1, 0);
        let g = b.build().unwrap();
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn dedup_mode_drops_duplicates() {
        let mut b = GraphBuilder::new_undirected(3);
        b.dedup_edges();
        b.add_edge(0, 1);
        b.add_edge(1, 0);
        b.add_edge(1, 2);
        let g = b.build().unwrap();
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn adjacency_rows_are_sorted() {
        let mut b = GraphBuilder::new_undirected(6);
        // Insert in scrambled order.
        for &(u, v) in &[(0u32, 5u32), (0, 2), (0, 4), (0, 1), (0, 3)] {
            b.add_edge(u, v);
        }
        let g = b.build().unwrap();
        let (nodes, _) = g.out_adjacency(0);
        assert_eq!(nodes, &[1, 2, 3, 4, 5]);
    }

    #[test]
    fn builder_len_tracking() {
        let mut b = GraphBuilder::new_undirected(3);
        assert!(b.is_empty());
        b.add_edge(0, 1);
        assert_eq!(b.len(), 1);
        b.reserve(10);
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn degrees_sum_to_twice_edges_undirected() {
        let mut b = GraphBuilder::new_undirected(5);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(2, 3);
        b.add_edge(3, 4);
        b.add_edge(4, 0);
        let g = b.build().unwrap();
        let total: usize = g.nodes().map(|v| g.out_degree(v)).sum();
        assert_eq!(total, 2 * g.num_edges());
    }

    #[test]
    fn build_is_repeatable() {
        let mut b = GraphBuilder::new_undirected(4);
        b.add_edge(0, 1);
        b.add_edge(2, 3);
        let g1 = b.build().unwrap();
        let g2 = b.build().unwrap();
        assert_eq!(g1, g2);
    }
}
