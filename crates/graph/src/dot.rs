//! Graphviz DOT export, used by the examples to visualise small instances.

use crate::Graph;

/// Render a graph in DOT format. Optional per-edge labels (e.g. temporal
/// labels) are attached via the callback; return `None` for no label.
#[must_use]
pub fn to_dot_with_labels<F>(g: &Graph, name: &str, mut edge_label: F) -> String
where
    F: FnMut(crate::EdgeId) -> Option<String>,
{
    let mut out = String::new();
    let (kind, arrow) = if g.is_directed() {
        ("digraph", "->")
    } else {
        ("graph", "--")
    };
    out.push_str(&format!("{kind} {name} {{\n"));
    for v in g.nodes() {
        out.push_str(&format!("  {v};\n"));
    }
    for (e, u, v) in g.edges() {
        match edge_label(e) {
            Some(label) => out.push_str(&format!("  {u} {arrow} {v} [label=\"{label}\"];\n")),
            None => out.push_str(&format!("  {u} {arrow} {v};\n")),
        }
    }
    out.push_str("}\n");
    out
}

/// Render a graph in DOT format without edge labels.
#[must_use]
pub fn to_dot(g: &Graph, name: &str) -> String {
    to_dot_with_labels(g, name, |_| None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::GraphBuilder;

    #[test]
    fn undirected_dot() {
        let g = generators::path(3);
        let dot = to_dot(&g, "p3");
        assert!(dot.starts_with("graph p3 {"));
        assert!(dot.contains("0 -- 1;"));
        assert!(dot.contains("1 -- 2;"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn directed_dot_uses_arrows() {
        let mut b = GraphBuilder::new_directed(2);
        b.add_edge(0, 1);
        let dot = to_dot(&b.build().unwrap(), "d");
        assert!(dot.starts_with("digraph d {"));
        assert!(dot.contains("0 -> 1;"));
    }

    #[test]
    fn labels_are_attached() {
        let g = generators::path(3);
        let dot = to_dot_with_labels(&g, "lbl", |e| Some(format!("t={e}")));
        assert!(dot.contains("[label=\"t=0\"]"));
        assert!(dot.contains("[label=\"t=1\"]"));
    }

    #[test]
    fn isolated_nodes_are_listed() {
        let g = GraphBuilder::new_undirected(2).build().unwrap();
        let dot = to_dot(&g, "iso");
        assert!(dot.contains("  0;\n"));
        assert!(dot.contains("  1;\n"));
    }
}
