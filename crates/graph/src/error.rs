//! Errors reported by [`crate::GraphBuilder`].

use std::fmt;

/// Construction-time validation failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An endpoint is `>= num_nodes`.
    NodeOutOfRange {
        /// The offending node id.
        node: u32,
        /// The declared number of nodes.
        num_nodes: u32,
    },
    /// Self-loops are rejected: a temporal journey can never use one (its
    /// label cannot strictly increase across it) and the paper's model
    /// excludes them.
    SelfLoop {
        /// The looping node.
        node: u32,
    },
    /// The same (canonical) edge was inserted twice and the builder was not
    /// configured to ignore duplicates.
    DuplicateEdge {
        /// First endpoint (canonical order for undirected graphs).
        u: u32,
        /// Second endpoint.
        v: u32,
    },
    /// More than `u32::MAX - 1` edges.
    TooManyEdges,
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NodeOutOfRange { node, num_nodes } => {
                write!(f, "node {node} out of range (graph has {num_nodes} nodes)")
            }
            Self::SelfLoop { node } => write!(f, "self-loop at node {node} is not allowed"),
            Self::DuplicateEdge { u, v } => write!(f, "duplicate edge ({u}, {v})"),
            Self::TooManyEdges => write!(f, "edge count exceeds u32 capacity"),
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            GraphError::NodeOutOfRange {
                node: 5,
                num_nodes: 3
            }
            .to_string(),
            "node 5 out of range (graph has 3 nodes)"
        );
        assert_eq!(
            GraphError::SelfLoop { node: 2 }.to_string(),
            "self-loop at node 2 is not allowed"
        );
        assert_eq!(
            GraphError::DuplicateEdge { u: 1, v: 2 }.to_string(),
            "duplicate edge (1, 2)"
        );
        assert_eq!(
            GraphError::TooManyEdges.to_string(),
            "edge count exceeds u32 capacity"
        );
    }
}
