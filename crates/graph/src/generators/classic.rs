//! Classic deterministic families.

use crate::{Graph, GraphBuilder};

/// Complete graph `K_n`. When `directed`, every ordered pair `(u, v)`,
/// `u ≠ v`, is an arc — the paper's §3 substrate ("directed clique", where
/// both `(u,v)` and `(v,u)` exist). `m = n(n−1)` directed, `n(n−1)/2`
/// undirected.
#[must_use]
pub fn clique(n: usize, directed: bool) -> Graph {
    let mut b = if directed {
        GraphBuilder::new_directed(n)
    } else {
        GraphBuilder::new_undirected(n)
    };
    if directed {
        b.reserve(n.saturating_mul(n.saturating_sub(1)));
        for u in 0..n as u32 {
            for v in 0..n as u32 {
                if u != v {
                    b.add_edge(u, v);
                }
            }
        }
    } else {
        b.reserve(n * n.saturating_sub(1) / 2);
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                b.add_edge(u, v);
            }
        }
    }
    b.build().expect("clique construction is always valid")
}

/// Star `K_{1,n−1}`: node 0 is the centre, nodes `1..n` are leaves.
/// Diameter 2 (for `n ≥ 3`); the paper's Theorem 6 witness graph.
///
/// # Panics
/// If `n == 0`.
#[must_use]
pub fn star(n: usize) -> Graph {
    assert!(n >= 1, "star requires at least the centre node");
    let mut b = GraphBuilder::new_undirected(n);
    b.reserve(n - 1);
    for leaf in 1..n as u32 {
        b.add_edge(0, leaf);
    }
    b.build().expect("star construction is always valid")
}

/// Path `P_n`: nodes `0 — 1 — … — n−1`. Diameter `n−1`.
#[must_use]
pub fn path(n: usize) -> Graph {
    let mut b = GraphBuilder::new_undirected(n);
    for v in 1..n as u32 {
        b.add_edge(v - 1, v);
    }
    b.build().expect("path construction is always valid")
}

/// Cycle `C_n` (`n ≥ 3`). Diameter `⌊n/2⌋`.
///
/// # Panics
/// If `n < 3`.
#[must_use]
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "cycle requires n >= 3, got {n}");
    let mut b = GraphBuilder::new_undirected(n);
    for v in 1..n as u32 {
        b.add_edge(v - 1, v);
    }
    b.add_edge(n as u32 - 1, 0);
    b.build().expect("cycle construction is always valid")
}

/// Complete bipartite graph `K_{a,b}`: parts `0..a` and `a..a+b`.
#[must_use]
pub fn complete_bipartite(a: usize, b_size: usize) -> Graph {
    let n = a + b_size;
    let mut b = GraphBuilder::new_undirected(n);
    b.reserve(a * b_size);
    for u in 0..a as u32 {
        for v in a as u32..n as u32 {
            b.add_edge(u, v);
        }
    }
    b.build()
        .expect("complete bipartite construction is always valid")
}

/// Wheel `W_n`: a cycle on nodes `1..n` plus hub 0 joined to every rim node.
/// Requires `n ≥ 4` (a rim of ≥ 3).
///
/// # Panics
/// If `n < 4`.
#[must_use]
pub fn wheel(n: usize) -> Graph {
    assert!(n >= 4, "wheel requires n >= 4, got {n}");
    let mut b = GraphBuilder::new_undirected(n);
    for v in 1..n as u32 {
        b.add_edge(0, v);
    }
    for v in 2..n as u32 {
        b.add_edge(v - 1, v);
    }
    b.add_edge(n as u32 - 1, 1);
    b.build().expect("wheel construction is always valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo;

    #[test]
    fn clique_sizes() {
        let g = clique(6, false);
        assert_eq!(g.num_edges(), 15);
        let d = clique(6, true);
        assert_eq!(d.num_edges(), 30);
        for u in 0..6u32 {
            assert_eq!(d.out_degree(u), 5);
            assert_eq!(d.in_degree(u), 5);
        }
    }

    #[test]
    fn clique_tiny() {
        assert_eq!(clique(0, false).num_nodes(), 0);
        assert_eq!(clique(1, true).num_edges(), 0);
        assert_eq!(clique(2, true).num_edges(), 2);
    }

    #[test]
    fn star_shape() {
        let g = star(10);
        assert_eq!(g.num_edges(), 9);
        assert_eq!(g.out_degree(0), 9);
        for leaf in 1..10u32 {
            assert_eq!(g.out_degree(leaf), 1);
        }
        assert_eq!(algo::diameter(&g), Some(2));
    }

    #[test]
    fn star_of_one_is_a_point() {
        let g = star(1);
        assert_eq!(g.num_nodes(), 1);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn path_diameter() {
        let g = path(7);
        assert_eq!(g.num_edges(), 6);
        assert_eq!(algo::diameter(&g), Some(6));
    }

    #[test]
    fn cycle_diameter() {
        assert_eq!(algo::diameter(&cycle(8)), Some(4));
        assert_eq!(algo::diameter(&cycle(9)), Some(4));
    }

    #[test]
    fn complete_bipartite_shape() {
        let g = complete_bipartite(3, 4);
        assert_eq!(g.num_nodes(), 7);
        assert_eq!(g.num_edges(), 12);
        assert_eq!(algo::diameter(&g), Some(2));
        // No intra-part edges.
        assert!(!g.has_edge(0, 1));
        assert!(!g.has_edge(3, 4));
    }

    #[test]
    fn wheel_shape() {
        let g = wheel(6); // hub + rim of 5
        assert_eq!(g.num_edges(), 10);
        assert_eq!(g.out_degree(0), 5);
        assert_eq!(algo::diameter(&g), Some(2));
    }
}
