//! Graph families used by the paper's experiments.
//!
//! * [`classic`]: clique (the paper's §3 substrate), star (the §4 `PoR`
//!   lower-bound witness), path, cycle, complete bipartite, wheel.
//! * [`structured`]: grid, torus, hypercube, trees, barbell, lollipop —
//!   the "general graphs" of §5 with a spread of diameters.
//! * [`random`]: Erdős–Rényi `G(n,p)`/`G(n,m)` (the lower-bound tool of
//!   Theorems 5 and the §3.4 remark), uniform random trees, random regular
//!   graphs.

pub mod classic;
pub mod random;
pub mod structured;

pub use classic::{clique, complete_bipartite, cycle, path, star, wheel};
pub use random::{gnm, gnp, random_regular, random_tree};
pub use structured::{balanced_tree, barbell, binary_tree, grid, hypercube, lollipop, torus};
