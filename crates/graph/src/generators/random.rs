//! Random graph families.
//!
//! `G(n,p)` is load-bearing for the paper: Theorem 5 and the §3.4 remark
//! both reduce temporal-diameter lower bounds to the classical Erdős–Rényi
//! connectivity threshold `p = ln n / n` (experiment E03).

use crate::{Graph, GraphBuilder, NodeId};
use ephemeral_rng::distr::Geometric;
use ephemeral_rng::sample::sample_indices;
use ephemeral_rng::RandomSource;

/// Erdős–Rényi `G(n,p)`: every unordered pair (or ordered pair when
/// `directed`) is an edge independently with probability `p`.
///
/// Uses geometric skip-sampling: instead of `Θ(n²)` Bernoulli draws we jump
/// straight to the next present edge, so generation is `O(n + m)` expected.
///
/// ```
/// use ephemeral_graph::generators::gnp;
/// let mut rng = ephemeral_rng::default_rng(1);
/// let g = gnp(1000, 0.01, false, &mut rng);
/// // ≈ p·(n choose 2) ≈ 4995 edges.
/// assert!((3500..6500).contains(&g.num_edges()));
/// ```
///
/// # Panics
/// If `p ∉ [0, 1]`.
#[must_use]
pub fn gnp(n: usize, p: f64, directed: bool, rng: &mut impl RandomSource) -> Graph {
    assert!((0.0..=1.0).contains(&p), "gnp requires p in [0,1], got {p}");
    let mut b = if directed {
        GraphBuilder::new_directed(n)
    } else {
        GraphBuilder::new_undirected(n)
    };
    let total_pairs: u64 = if directed {
        (n as u64) * (n as u64).saturating_sub(1)
    } else {
        (n as u64) * (n as u64).saturating_sub(1) / 2
    };
    if p > 0.0 && total_pairs > 0 {
        if p >= 1.0 {
            return super::classic::clique(n, directed);
        }
        let skip = Geometric::new(p);
        let mut idx: u64 = 0;
        loop {
            idx = idx.saturating_add(skip.sample(rng));
            if idx >= total_pairs {
                break;
            }
            let (u, v) = if directed {
                decode_ordered_pair(idx, n as u64)
            } else {
                decode_unordered_pair(idx, n as u64)
            };
            b.add_edge(u, v);
            idx += 1;
        }
    }
    b.build().expect("gnp pairs are valid by construction")
}

/// `G(n,m)`: a uniform graph with exactly `m` distinct edges (or arcs).
///
/// # Panics
/// If `m` exceeds the number of available pairs.
#[must_use]
pub fn gnm(n: usize, m: usize, directed: bool, rng: &mut impl RandomSource) -> Graph {
    let total_pairs: u64 = if directed {
        (n as u64) * (n as u64).saturating_sub(1)
    } else {
        (n as u64) * (n as u64).saturating_sub(1) / 2
    };
    assert!(
        (m as u64) <= total_pairs,
        "gnm: m = {m} exceeds available pairs = {total_pairs}"
    );
    let mut b = if directed {
        GraphBuilder::new_directed(n)
    } else {
        GraphBuilder::new_undirected(n)
    };
    b.reserve(m);
    for idx in sample_indices(total_pairs as usize, m, rng) {
        let (u, v) = if directed {
            decode_ordered_pair(idx as u64, n as u64)
        } else {
            decode_unordered_pair(idx as u64, n as u64)
        };
        b.add_edge(u, v);
    }
    b.build().expect("gnm pairs are distinct by construction")
}

/// A uniformly random labelled tree on `n` nodes, via a random Prüfer
/// sequence (exact uniformity over the `n^{n−2}` labelled trees).
///
/// # Panics
/// If `n == 0`.
#[must_use]
pub fn random_tree(n: usize, rng: &mut impl RandomSource) -> Graph {
    assert!(n >= 1, "random_tree requires n >= 1");
    let mut b = GraphBuilder::new_undirected(n);
    if n >= 2 {
        if n == 2 {
            b.add_edge(0, 1);
        } else {
            let prufer: Vec<u32> = (0..n - 2).map(|_| rng.bounded_u32(n as u32)).collect();
            let mut degree = vec![1u32; n];
            for &x in &prufer {
                degree[x as usize] += 1;
            }
            // Stream the sequence with a "next leaf" pointer (O(n) total).
            let mut ptr = 0usize;
            while degree[ptr] != 1 {
                ptr += 1;
            }
            let mut leaf = ptr as u32;
            for &x in &prufer {
                b.add_edge(leaf, x);
                degree[x as usize] -= 1;
                if degree[x as usize] == 1 && (x as usize) < ptr {
                    leaf = x;
                } else {
                    ptr += 1;
                    while degree[ptr] != 1 {
                        ptr += 1;
                    }
                    leaf = ptr as u32;
                }
            }
            b.add_edge(leaf, n as u32 - 1);
        }
    }
    b.build().expect("Prüfer decoding yields a valid tree")
}

/// A random `d`-regular graph on `n` nodes via the pairing/configuration
/// model, resampling until the pairing is simple (no loops or multi-edges).
/// Practical for `d ≪ √n`; the acceptance probability is
/// `≈ exp(−(d²−1)/4)`, independent of `n`.
///
/// # Panics
/// If `n·d` is odd or `d ≥ n`.
#[must_use]
pub fn random_regular(n: usize, d: usize, rng: &mut impl RandomSource) -> Graph {
    assert!(
        (n * d).is_multiple_of(2),
        "random_regular requires n*d even"
    );
    assert!(d < n, "random_regular requires d < n");
    if d == 0 {
        return GraphBuilder::new_undirected(n)
            .build()
            .expect("empty graph");
    }
    let mut stubs: Vec<u32> = (0..n as u32)
        .flat_map(|v| std::iter::repeat_n(v, d))
        .collect();
    loop {
        ephemeral_rng::sample::shuffle(&mut stubs, rng);
        let mut b = GraphBuilder::new_undirected(n);
        b.reserve(n * d / 2);
        let mut simple = true;
        let mut seen: Vec<(u32, u32)> = Vec::with_capacity(n * d / 2);
        for pair in stubs.chunks_exact(2) {
            let (u, v) = (pair[0].min(pair[1]), pair[0].max(pair[1]));
            if u == v {
                simple = false;
                break;
            }
            seen.push((u, v));
        }
        if simple {
            seen.sort_unstable();
            if seen.windows(2).all(|w| w[0] != w[1]) {
                for (u, v) in seen {
                    b.add_edge(u, v);
                }
                return b.build().expect("simple pairing is a valid graph");
            }
        }
    }
}

/// Decode pair index `idx ∈ [0, n(n−1))` to an ordered pair `(u, v)`, `u≠v`.
#[inline]
fn decode_ordered_pair(idx: u64, n: u64) -> (NodeId, NodeId) {
    let u = idx / (n - 1);
    let mut v = idx % (n - 1);
    if v >= u {
        v += 1;
    }
    (u as NodeId, v as NodeId)
}

/// Decode pair index `idx ∈ [0, n(n−1)/2)` to an unordered pair `(u, v)`,
/// `u < v`, in colexicographic order: pair k of column v covers
/// `idx ∈ [v(v−1)/2, v(v+1)/2)`.
#[inline]
fn decode_unordered_pair(idx: u64, _n: u64) -> (NodeId, NodeId) {
    // v = floor((1 + sqrt(1 + 8 idx)) / 2), then u = idx − v(v−1)/2.
    let mut v = ((1.0 + (1.0 + 8.0 * idx as f64).sqrt()) / 2.0) as u64;
    // Guard against floating-point off-by-one at large idx.
    while v * (v - 1) / 2 > idx {
        v -= 1;
    }
    while (v + 1) * v / 2 <= idx {
        v += 1;
    }
    let u = idx - v * (v - 1) / 2;
    (u as NodeId, v as NodeId)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo;
    use ephemeral_rng::default_rng;

    #[test]
    fn decode_unordered_roundtrip() {
        let n = 20u64;
        let mut seen = std::collections::HashSet::new();
        for idx in 0..n * (n - 1) / 2 {
            let (u, v) = decode_unordered_pair(idx, n);
            assert!(u < v, "idx {idx} -> ({u},{v})");
            assert!((v as u64) < n);
            assert!(seen.insert((u, v)), "duplicate pair for idx {idx}");
        }
    }

    #[test]
    fn decode_ordered_roundtrip() {
        let n = 15u64;
        let mut seen = std::collections::HashSet::new();
        for idx in 0..n * (n - 1) {
            let (u, v) = decode_ordered_pair(idx, n);
            assert_ne!(u, v);
            assert!((u as u64) < n && (v as u64) < n);
            assert!(seen.insert((u, v)), "duplicate pair for idx {idx}");
        }
    }

    #[test]
    fn gnp_extremes() {
        let mut r = default_rng(1);
        assert_eq!(gnp(10, 0.0, false, &mut r).num_edges(), 0);
        assert_eq!(gnp(10, 1.0, false, &mut r).num_edges(), 45);
        assert_eq!(gnp(10, 1.0, true, &mut r).num_edges(), 90);
        assert_eq!(gnp(0, 0.5, false, &mut r).num_nodes(), 0);
        assert_eq!(gnp(1, 0.5, false, &mut r).num_edges(), 0);
    }

    #[test]
    fn gnp_edge_count_concentrates() {
        let mut r = default_rng(2);
        let n = 400;
        let p = 0.05;
        let expected = p * (n * (n - 1) / 2) as f64;
        let mut total = 0usize;
        const REPS: usize = 20;
        for _ in 0..REPS {
            total += gnp(n, p, false, &mut r).num_edges();
        }
        let mean = total as f64 / REPS as f64;
        assert!(
            (mean - expected).abs() < expected * 0.05,
            "mean {mean} vs expected {expected}"
        );
    }

    #[test]
    fn gnp_directed_counts_both_orientations() {
        let mut r = default_rng(3);
        let g = gnp(300, 0.02, true, &mut r);
        let expected = 0.02 * (300.0 * 299.0);
        assert!((g.num_edges() as f64 - expected).abs() < expected * 0.25);
        assert!(g.is_directed());
    }

    #[test]
    fn gnm_exact_count_and_distinct() {
        let mut r = default_rng(4);
        let g = gnm(50, 200, false, &mut r);
        assert_eq!(g.num_edges(), 200);
        let d = gnm(50, 200, true, &mut r);
        assert_eq!(d.num_edges(), 200);
    }

    #[test]
    fn gnm_full_graph() {
        let mut r = default_rng(5);
        let g = gnm(10, 45, false, &mut r);
        assert_eq!(g.num_edges(), 45);
        assert_eq!(algo::diameter(&g), Some(1));
    }

    #[test]
    #[should_panic(expected = "exceeds available pairs")]
    fn gnm_rejects_oversized_m() {
        let mut r = default_rng(5);
        let _ = gnm(10, 46, false, &mut r);
    }

    #[test]
    fn random_tree_is_a_tree() {
        let mut r = default_rng(6);
        for n in [1usize, 2, 3, 10, 100, 1000] {
            let g = random_tree(n, &mut r);
            assert_eq!(g.num_edges(), n - 1, "n={n}");
            assert!(algo::is_connected(&g), "n={n}");
        }
    }

    #[test]
    fn random_tree_degree_distribution_sane() {
        // In a uniform labelled tree the expected number of leaves is ≈ n/e.
        let mut r = default_rng(7);
        let n = 2000;
        let g = random_tree(n, &mut r);
        let leaves = g.nodes().filter(|&v| g.out_degree(v) == 1).count();
        let expected = n as f64 / std::f64::consts::E;
        assert!(
            (leaves as f64 - expected).abs() < expected * 0.15,
            "leaves {leaves} vs {expected}"
        );
    }

    #[test]
    fn random_regular_degrees() {
        let mut r = default_rng(8);
        let g = random_regular(100, 4, &mut r);
        assert_eq!(g.num_edges(), 200);
        for v in g.nodes() {
            assert_eq!(g.out_degree(v), 4);
        }
    }

    #[test]
    fn random_regular_zero_degree() {
        let mut r = default_rng(9);
        let g = random_regular(10, 0, &mut r);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn gnp_above_connectivity_threshold_is_connected() {
        // p = 3 ln n / n is safely above the threshold.
        let mut r = default_rng(10);
        let n = 500;
        let p = 3.0 * (n as f64).ln() / n as f64;
        let connected = (0..10)
            .filter(|_| algo::is_connected(&gnp(n, p, false, &mut r)))
            .count();
        assert!(connected >= 9, "connected {connected}/10");
    }
}
