//! Structured deterministic families with a spread of diameters — the
//! "general graphs" on which §5's box-scheme bound `r > 2·d(G)·log n` is
//! exercised.

use crate::{Graph, GraphBuilder};

/// `rows × cols` grid; node `(r, c)` has id `r·cols + c`.
/// Diameter `rows + cols − 2`.
#[must_use]
pub fn grid(rows: usize, cols: usize) -> Graph {
    let n = rows * cols;
    let mut b = GraphBuilder::new_undirected(n);
    let id = |r: usize, c: usize| (r * cols + c) as u32;
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.add_edge(id(r, c), id(r, c + 1));
            }
            if r + 1 < rows {
                b.add_edge(id(r, c), id(r + 1, c));
            }
        }
    }
    b.build().expect("grid construction is always valid")
}

/// `rows × cols` torus (grid with wraparound). Requires `rows, cols ≥ 3`
/// so the wrap edges are distinct. Diameter `⌊rows/2⌋ + ⌊cols/2⌋`.
///
/// # Panics
/// If `rows < 3` or `cols < 3`.
#[must_use]
pub fn torus(rows: usize, cols: usize) -> Graph {
    assert!(rows >= 3 && cols >= 3, "torus requires rows, cols >= 3");
    let n = rows * cols;
    let mut b = GraphBuilder::new_undirected(n);
    let id = |r: usize, c: usize| (r * cols + c) as u32;
    for r in 0..rows {
        for c in 0..cols {
            b.add_edge(id(r, c), id(r, (c + 1) % cols));
            b.add_edge(id(r, c), id((r + 1) % rows, c));
        }
    }
    b.build().expect("torus construction is always valid")
}

/// `dim`-dimensional hypercube `Q_dim` on `2^dim` nodes; neighbors differ in
/// one bit. Diameter `dim`.
///
/// # Panics
/// If `dim >= 31` (id overflow).
#[must_use]
pub fn hypercube(dim: u32) -> Graph {
    assert!(dim < 31, "hypercube dimension too large: {dim}");
    let n = 1usize << dim;
    let mut b = GraphBuilder::new_undirected(n);
    b.reserve(n * dim as usize / 2);
    for v in 0..n as u32 {
        for bit in 0..dim {
            let w = v ^ (1 << bit);
            if v < w {
                b.add_edge(v, w);
            }
        }
    }
    b.build().expect("hypercube construction is always valid")
}

/// Complete binary tree on `n` nodes in heap order: node `v` has children
/// `2v+1`, `2v+2`. Diameter `≈ 2·log₂ n`.
#[must_use]
pub fn binary_tree(n: usize) -> Graph {
    balanced_tree(2, n)
}

/// Complete `arity`-ary tree on exactly `n` nodes in heap order: node `v`
/// has children `arity·v + 1 … arity·v + arity` (those that are `< n`).
///
/// # Panics
/// If `arity == 0`.
#[must_use]
pub fn balanced_tree(arity: usize, n: usize) -> Graph {
    assert!(arity >= 1, "tree arity must be >= 1");
    let mut b = GraphBuilder::new_undirected(n);
    for v in 0..n {
        for k in 1..=arity {
            let child = arity * v + k;
            if child < n {
                b.add_edge(v as u32, child as u32);
            }
        }
    }
    b.build()
        .expect("balanced tree construction is always valid")
}

/// Barbell graph: two `K_k` cliques joined by a single bridge edge.
/// `n = 2k`, diameter 3 (for `k ≥ 2`).
///
/// # Panics
/// If `k < 1`.
#[must_use]
pub fn barbell(k: usize) -> Graph {
    assert!(k >= 1, "barbell requires k >= 1");
    let n = 2 * k;
    let mut b = GraphBuilder::new_undirected(n);
    for u in 0..k as u32 {
        for v in (u + 1)..k as u32 {
            b.add_edge(u, v);
        }
    }
    for u in k as u32..n as u32 {
        for v in (u + 1)..n as u32 {
            b.add_edge(u, v);
        }
    }
    // Bridge between the two cliques.
    b.add_edge(k as u32 - 1, k as u32);
    b.build().expect("barbell construction is always valid")
}

/// Lollipop graph: a `K_k` clique with a path of `path_len` extra nodes
/// attached to node `k−1`. `n = k + path_len`.
///
/// # Panics
/// If `k < 1`.
#[must_use]
pub fn lollipop(k: usize, path_len: usize) -> Graph {
    assert!(k >= 1, "lollipop requires a clique of k >= 1");
    let n = k + path_len;
    let mut b = GraphBuilder::new_undirected(n);
    for u in 0..k as u32 {
        for v in (u + 1)..k as u32 {
            b.add_edge(u, v);
        }
    }
    for i in 0..path_len {
        let prev = if i == 0 {
            k as u32 - 1
        } else {
            (k + i - 1) as u32
        };
        b.add_edge(prev, (k + i) as u32);
    }
    b.build().expect("lollipop construction is always valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo;

    #[test]
    fn grid_shape() {
        let g = grid(3, 4);
        assert_eq!(g.num_nodes(), 12);
        assert_eq!(g.num_edges(), 3 * 3 + 2 * 4); // horizontal + vertical
        assert_eq!(algo::diameter(&g), Some(5));
    }

    #[test]
    fn grid_degenerate_is_path() {
        let g = grid(1, 5);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(algo::diameter(&g), Some(4));
    }

    #[test]
    fn torus_shape() {
        let g = torus(4, 4);
        assert_eq!(g.num_nodes(), 16);
        assert_eq!(g.num_edges(), 32);
        for v in g.nodes() {
            assert_eq!(g.out_degree(v), 4);
        }
        assert_eq!(algo::diameter(&g), Some(4));
    }

    #[test]
    fn hypercube_shape() {
        let g = hypercube(4);
        assert_eq!(g.num_nodes(), 16);
        assert_eq!(g.num_edges(), 32);
        assert_eq!(algo::diameter(&g), Some(4));
        for v in g.nodes() {
            assert_eq!(g.out_degree(v), 4);
        }
    }

    #[test]
    fn hypercube_dim_zero_is_a_point() {
        let g = hypercube(0);
        assert_eq!(g.num_nodes(), 1);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn binary_tree_shape() {
        let g = binary_tree(7); // perfect depth-2 tree
        assert_eq!(g.num_edges(), 6);
        assert!(algo::is_connected(&g));
        assert_eq!(algo::diameter(&g), Some(4));
    }

    #[test]
    fn balanced_ternary_tree() {
        let g = balanced_tree(3, 13); // root + 3 + 9
        assert_eq!(g.num_edges(), 12);
        assert_eq!(g.out_degree(0), 3);
        assert_eq!(algo::diameter(&g), Some(4));
    }

    #[test]
    fn barbell_shape() {
        let g = barbell(4);
        assert_eq!(g.num_nodes(), 8);
        assert_eq!(g.num_edges(), 6 + 6 + 1);
        assert_eq!(algo::diameter(&g), Some(3));
    }

    #[test]
    fn lollipop_shape() {
        let g = lollipop(4, 3);
        assert_eq!(g.num_nodes(), 7);
        assert_eq!(g.num_edges(), 6 + 3);
        assert_eq!(algo::diameter(&g), Some(4));
        assert!(algo::is_connected(&g));
    }
}
