//! The immutable CSR graph type.

use crate::{EdgeId, NodeId};

/// An immutable (di)graph in CSR form. Construct via
/// [`crate::GraphBuilder`] or the [`crate::generators`].
///
/// For **undirected** graphs every edge `{u, v}` appears in both adjacency
/// rows with the *same* [`EdgeId`]; in-adjacency accessors alias the
/// out-adjacency. For **directed** graphs each arc `(u, v)` is one edge id
/// and a separate in-adjacency CSR is maintained.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    directed: bool,
    num_nodes: u32,
    /// Edge endpoints in insertion order; undirected edges are canonicalized
    /// to `(min, max)`.
    endpoints: Vec<(u32, u32)>,
    // Out-adjacency CSR (for undirected graphs: full adjacency).
    out_offsets: Vec<u32>,
    out_node: Vec<u32>,
    out_edge: Vec<u32>,
    // In-adjacency CSR (directed only; empty when undirected).
    in_offsets: Vec<u32>,
    in_node: Vec<u32>,
    in_edge: Vec<u32>,
}

impl Graph {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        directed: bool,
        num_nodes: u32,
        endpoints: Vec<(u32, u32)>,
        out_offsets: Vec<u32>,
        out_node: Vec<u32>,
        out_edge: Vec<u32>,
        in_offsets: Vec<u32>,
        in_node: Vec<u32>,
        in_edge: Vec<u32>,
    ) -> Self {
        debug_assert_eq!(out_offsets.len(), num_nodes as usize + 1);
        Self {
            directed,
            num_nodes,
            endpoints,
            out_offsets,
            out_node,
            out_edge,
            in_offsets,
            in_node,
            in_edge,
        }
    }

    /// Is this a directed graph?
    #[must_use]
    pub const fn is_directed(&self) -> bool {
        self.directed
    }

    /// Number of nodes `n`.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.num_nodes as usize
    }

    /// Number of edges `m` (arcs for directed graphs, undirected edges
    /// otherwise).
    #[must_use]
    pub fn num_edges(&self) -> usize {
        self.endpoints.len()
    }

    /// Endpoints of edge `e`: `(tail, head)` for arcs, `(min, max)` for
    /// undirected edges.
    ///
    /// # Panics
    /// If `e >= num_edges()`.
    #[inline]
    #[must_use]
    pub fn endpoints(&self, e: EdgeId) -> (NodeId, NodeId) {
        self.endpoints[e as usize]
    }

    /// All edges as `(edge_id, u, v)` in id order.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, NodeId, NodeId)> + '_ {
        self.endpoints
            .iter()
            .enumerate()
            .map(|(e, &(u, v))| (e as EdgeId, u, v))
    }

    /// All node ids `0..n`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        0..self.num_nodes
    }

    #[inline]
    fn out_range(&self, v: NodeId) -> std::ops::Range<usize> {
        self.out_offsets[v as usize] as usize..self.out_offsets[v as usize + 1] as usize
    }

    #[inline]
    fn in_range(&self, v: NodeId) -> std::ops::Range<usize> {
        self.in_offsets[v as usize] as usize..self.in_offsets[v as usize + 1] as usize
    }

    /// Out-neighbors of `v` with the connecting edge id, sorted by neighbor.
    /// For undirected graphs this is *all* neighbors.
    #[inline]
    pub fn out_neighbors(&self, v: NodeId) -> impl Iterator<Item = (NodeId, EdgeId)> + '_ {
        let r = self.out_range(v);
        self.out_node[r.clone()]
            .iter()
            .copied()
            .zip(self.out_edge[r].iter().copied())
    }

    /// In-neighbors of `v` with the connecting edge id, sorted by neighbor.
    /// For undirected graphs this aliases [`Graph::out_neighbors`].
    #[inline]
    pub fn in_neighbors(&self, v: NodeId) -> Box<dyn Iterator<Item = (NodeId, EdgeId)> + '_> {
        if self.directed {
            let r = self.in_range(v);
            Box::new(
                self.in_node[r.clone()]
                    .iter()
                    .copied()
                    .zip(self.in_edge[r].iter().copied()),
            )
        } else {
            Box::new(self.out_neighbors(v))
        }
    }

    /// Raw out-adjacency slices `(neighbors, edge_ids)` — the zero-overhead
    /// accessor for hot loops.
    #[inline]
    #[must_use]
    pub fn out_adjacency(&self, v: NodeId) -> (&[u32], &[u32]) {
        let r = self.out_range(v);
        (&self.out_node[r.clone()], &self.out_edge[r])
    }

    /// Raw in-adjacency slices `(neighbors, edge_ids)`. For undirected
    /// graphs this is the full adjacency (same as out).
    #[inline]
    #[must_use]
    pub fn in_adjacency(&self, v: NodeId) -> (&[u32], &[u32]) {
        if self.directed {
            let r = self.in_range(v);
            (&self.in_node[r.clone()], &self.in_edge[r])
        } else {
            self.out_adjacency(v)
        }
    }

    /// Out-degree of `v` (degree for undirected graphs).
    #[inline]
    #[must_use]
    pub fn out_degree(&self, v: NodeId) -> usize {
        self.out_range(v).len()
    }

    /// In-degree of `v` (degree for undirected graphs).
    #[inline]
    #[must_use]
    pub fn in_degree(&self, v: NodeId) -> usize {
        if self.directed {
            self.in_range(v).len()
        } else {
            self.out_degree(v)
        }
    }

    /// Degree of `v`: out-degree + in-degree for directed graphs, plain
    /// degree for undirected ones.
    #[must_use]
    pub fn degree(&self, v: NodeId) -> usize {
        if self.directed {
            self.out_degree(v) + self.in_degree(v)
        } else {
            self.out_degree(v)
        }
    }

    /// Does the edge/arc `u → v` exist? `O(log deg(u))`.
    #[must_use]
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.find_edge(u, v).is_some()
    }

    /// The edge id of `u → v` if present. `O(log deg(u))`.
    #[must_use]
    pub fn find_edge(&self, u: NodeId, v: NodeId) -> Option<EdgeId> {
        if u >= self.num_nodes || v >= self.num_nodes {
            return None;
        }
        let (nodes, edges) = self.out_adjacency(u);
        nodes.binary_search(&v).ok().map(|i| edges[i])
    }

    /// Edge density: `m / (n choose 2)` for undirected, `m / (n(n−1))` for
    /// directed. `None` for `n < 2`.
    #[must_use]
    pub fn density(&self) -> Option<f64> {
        let n = self.num_nodes() as f64;
        if self.num_nodes() < 2 {
            return None;
        }
        let pairs = if self.directed {
            n * (n - 1.0)
        } else {
            n * (n - 1.0) / 2.0
        };
        Some(self.num_edges() as f64 / pairs)
    }

    /// The directed graph with every arc reversed (identity on undirected
    /// graphs). Edge ids are preserved: arc `e = (u, v)` becomes `e = (v, u)`.
    #[must_use]
    pub fn reversed(&self) -> Self {
        if !self.directed {
            return self.clone();
        }
        Self {
            directed: true,
            num_nodes: self.num_nodes,
            endpoints: self.endpoints.iter().map(|&(u, v)| (v, u)).collect(),
            out_offsets: self.in_offsets.clone(),
            out_node: self.in_node.clone(),
            out_edge: self.in_edge.clone(),
            in_offsets: self.out_offsets.clone(),
            in_node: self.out_node.clone(),
            in_edge: self.out_edge.clone(),
        }
    }

    /// The undirected graph on the same node set with an edge wherever this
    /// graph has an arc in either direction (parallel arcs collapse). Used
    /// for weak connectivity of directed graphs. Identity on undirected
    /// graphs.
    #[must_use]
    pub fn underlying_undirected(&self) -> Self {
        if !self.directed {
            return self.clone();
        }
        let mut pairs: Vec<(u32, u32)> = self
            .endpoints
            .iter()
            .map(|&(u, v)| if u < v { (u, v) } else { (v, u) })
            .collect();
        pairs.sort_unstable();
        pairs.dedup();
        let mut b = crate::GraphBuilder::new_undirected(self.num_nodes());
        for (u, v) in pairs {
            b.add_edge(u, v);
        }
        b.build().expect("deduped canonical pairs are always valid")
    }
}

#[cfg(test)]
mod tests {
    use crate::generators;
    use crate::GraphBuilder;

    #[test]
    fn undirected_edge_ids_are_shared() {
        let mut b = GraphBuilder::new_undirected(3);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        let g = b.build().unwrap();
        let via_0 = g.find_edge(0, 1).unwrap();
        let via_1 = g.find_edge(1, 0).unwrap();
        assert_eq!(via_0, via_1);
        assert_eq!(g.endpoints(via_0), (0, 1));
    }

    #[test]
    fn directed_adjacency_is_one_way() {
        let mut b = GraphBuilder::new_directed(3);
        b.add_edge(0, 1);
        let g = b.build().unwrap();
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(1, 0));
        assert_eq!(g.out_degree(0), 1);
        assert_eq!(g.in_degree(0), 0);
        assert_eq!(g.in_degree(1), 1);
        assert_eq!(g.degree(0), 1);
    }

    #[test]
    fn in_neighbors_of_directed_graph() {
        let mut b = GraphBuilder::new_directed(4);
        b.add_edge(0, 3);
        b.add_edge(1, 3);
        b.add_edge(3, 2);
        let g = b.build().unwrap();
        let ins: Vec<u32> = g.in_neighbors(3).map(|(v, _)| v).collect();
        assert_eq!(ins, vec![0, 1]);
        let outs: Vec<u32> = g.out_neighbors(3).map(|(v, _)| v).collect();
        assert_eq!(outs, vec![2]);
    }

    #[test]
    fn reversed_swaps_adjacency() {
        let mut b = GraphBuilder::new_directed(3);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        let g = b.build().unwrap();
        let r = g.reversed();
        assert!(r.has_edge(1, 0));
        assert!(r.has_edge(2, 1));
        assert!(!r.has_edge(0, 1));
        // Edge ids preserved.
        assert_eq!(g.find_edge(0, 1), r.find_edge(1, 0));
        assert_eq!(r.endpoints(g.find_edge(0, 1).unwrap()), (1, 0));
    }

    #[test]
    fn reversed_undirected_is_identity() {
        let g = generators::cycle(5);
        assert_eq!(g.reversed(), g);
    }

    #[test]
    fn underlying_undirected_collapses_arc_pairs() {
        let mut b = GraphBuilder::new_directed(3);
        b.add_edge(0, 1);
        b.add_edge(1, 0);
        b.add_edge(1, 2);
        let g = b.build().unwrap();
        let u = g.underlying_undirected();
        assert!(!u.is_directed());
        assert_eq!(u.num_edges(), 2);
        assert!(u.has_edge(0, 1) && u.has_edge(1, 0));
    }

    #[test]
    fn density() {
        let g = generators::clique(5, false);
        assert!((g.density().unwrap() - 1.0).abs() < 1e-12);
        let d = generators::clique(5, true);
        assert!((d.density().unwrap() - 1.0).abs() < 1e-12);
        let mut b = GraphBuilder::new_undirected(1);
        let _ = &mut b;
        assert!(b.build().unwrap().density().is_none());
    }

    #[test]
    fn edges_iterator_matches_endpoints() {
        let g = generators::path(4);
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 3);
        for (e, u, v) in edges {
            assert_eq!(g.endpoints(e), (u, v));
        }
    }

    #[test]
    fn find_edge_out_of_range_is_none() {
        let g = generators::path(3);
        assert_eq!(g.find_edge(0, 99), None);
        assert_eq!(g.find_edge(99, 0), None);
    }
}
