//! # ephemeral-graph
//!
//! A compact CSR (compressed sparse row) graph substrate for the
//! `ephemeral-networks` workspace — the static "underlying graph `G = (V,E)`"
//! on which temporal labels are overlaid (Akrida et al., SPAA'14, §2).
//!
//! Design notes (following the workspace's HPC guides):
//!
//! * Nodes and edges are dense `u32` ids ([`NodeId`], [`EdgeId`]): half the
//!   memory traffic of `usize` on 64-bit targets, and the experiment sizes
//!   (`n ≤ 2²⁰`, `m ≤ 2³¹`) fit comfortably.
//! * Storage is immutable CSR built once by [`GraphBuilder`]; adjacency lists
//!   are sorted by target so `has_edge` is `O(log deg)` and iteration is
//!   cache-linear.
//! * Directed graphs carry both out- and in-adjacency (the paper's reverse
//!   expansion process out of the target `t` walks in-arcs).
//!
//! ## Modules
//!
//! * [`generators`] — deterministic families (clique, star, path, cycle,
//!   complete bipartite, wheel, grid, torus, hypercube, trees, barbell,
//!   lollipop) and random families (`G(n,p)`, `G(n,m)`, uniform random trees,
//!   random regular graphs).
//! * [`algo`] — BFS, connected components, union–find, exact diameter and
//!   two-sweep bounds, spanning trees.
//! * [`dot`] — Graphviz export for the examples.
//!
//! ```
//! use ephemeral_graph::{generators, algo};
//!
//! let g = generators::star(8);
//! assert_eq!(g.num_nodes(), 8);
//! assert_eq!(g.num_edges(), 7);
//! assert_eq!(algo::diameter(&g), Some(2));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algo;
mod builder;
pub mod dot;
mod error;
pub mod generators;
mod graph;

pub use builder::GraphBuilder;
pub use error::GraphError;
pub use graph::Graph;

/// Dense node identifier (`0..n`).
pub type NodeId = u32;

/// Dense edge identifier (`0..m`), in insertion order. For directed graphs
/// an edge is an arc; for undirected graphs both adjacency directions share
/// one id (temporal labels attach to the *edge*, as in the paper's
/// undirected model, Remark 1).
pub type EdgeId = u32;

/// Sentinel for "no node" / "unreachable" in distance arrays.
pub const INVALID_NODE: NodeId = NodeId::MAX;
