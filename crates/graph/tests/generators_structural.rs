//! Exhaustive structural checks for every generator family, across sizes —
//! the invariants the experiments implicitly rely on.

use ephemeral_graph::algo::{connected_components, diameter, is_connected};
use ephemeral_graph::generators;
use ephemeral_graph::Graph;

fn degree_sequence(g: &Graph) -> Vec<usize> {
    let mut d: Vec<usize> = g.nodes().map(|v| g.out_degree(v)).collect();
    d.sort_unstable();
    d
}

#[test]
fn clique_degrees_and_diameter_across_sizes() {
    for n in [2usize, 3, 5, 9, 17] {
        let g = generators::clique(n, false);
        assert!(degree_sequence(&g).iter().all(|&d| d == n - 1), "n={n}");
        assert_eq!(diameter(&g), Some(1), "n={n}");
    }
}

#[test]
fn star_is_bipartite_with_unique_hub() {
    for n in [3usize, 8, 33] {
        let g = generators::star(n);
        let degs = degree_sequence(&g);
        assert_eq!(degs[n - 1], n - 1, "hub degree, n={n}");
        assert!(degs[..n - 1].iter().all(|&d| d == 1), "leaves, n={n}");
        // Bipartite: no odd cycles — a star has no cycles at all.
        assert_eq!(g.num_edges(), n - 1);
    }
}

#[test]
fn paths_and_cycles_have_expected_eccentricities() {
    for n in [3usize, 6, 11] {
        assert_eq!(diameter(&generators::path(n)), Some(n as u32 - 1));
        assert_eq!(diameter(&generators::cycle(n)), Some(n as u32 / 2));
    }
}

#[test]
fn grid_and_torus_regularity() {
    for (r, c) in [(3usize, 3usize), (4, 6), (5, 5)] {
        let g = generators::grid(r, c);
        assert_eq!(g.num_edges(), r * (c - 1) + c * (r - 1), "grid {r}x{c}");
        assert_eq!(diameter(&g), Some((r + c - 2) as u32), "grid {r}x{c}");

        let t = generators::torus(r, c);
        assert_eq!(t.num_edges(), 2 * r * c, "torus {r}x{c}");
        assert!(degree_sequence(&t).iter().all(|&d| d == 4), "torus {r}x{c}");
        assert_eq!(diameter(&t), Some((r / 2 + c / 2) as u32), "torus {r}x{c}");
    }
}

#[test]
fn hypercube_is_dim_regular_with_dim_diameter() {
    for dim in [1u32, 2, 3, 5, 7] {
        let g = generators::hypercube(dim);
        assert_eq!(g.num_nodes(), 1 << dim);
        assert!(degree_sequence(&g).iter().all(|&d| d == dim as usize));
        assert_eq!(diameter(&g), Some(dim));
        // Bipartite by parity: endpoints of every edge differ in one bit.
        for (_, u, v) in g.edges() {
            assert_eq!((u ^ v).count_ones(), 1);
        }
    }
}

#[test]
fn trees_have_no_cycles_and_correct_counts() {
    for n in [1usize, 2, 7, 20, 100] {
        for arity in [1usize, 2, 3, 5] {
            let t = generators::balanced_tree(arity, n);
            assert_eq!(t.num_edges(), n.saturating_sub(1), "arity {arity}, n {n}");
            assert!(is_connected(&t));
        }
    }
}

#[test]
fn barbell_and_lollipop_composition() {
    for k in [2usize, 4, 7] {
        let b = generators::barbell(k);
        assert_eq!(b.num_nodes(), 2 * k);
        assert_eq!(b.num_edges(), k * (k - 1) + 1);
        assert!(is_connected(&b));

        let l = generators::lollipop(k, 3);
        assert_eq!(l.num_nodes(), k + 3);
        assert_eq!(l.num_edges(), k * (k - 1) / 2 + 3);
        assert!(is_connected(&l));
    }
}

#[test]
fn wheel_rim_plus_hub() {
    for n in [4usize, 7, 12] {
        let w = generators::wheel(n);
        assert_eq!(w.num_edges(), 2 * (n - 1));
        let degs = degree_sequence(&w);
        assert_eq!(degs[n - 1], n - 1, "hub");
        assert!(
            degs[..n - 1].iter().all(|&d| d == 3),
            "rim nodes have degree 3"
        );
    }
}

#[test]
fn complete_bipartite_partition_sizes() {
    for (a, b) in [(1usize, 1usize), (2, 5), (4, 4)] {
        let g = generators::complete_bipartite(a, b);
        assert_eq!(g.num_edges(), a * b);
        // Part A nodes have degree b, part B nodes degree a.
        for u in 0..a as u32 {
            assert_eq!(g.out_degree(u), b);
        }
        for v in a as u32..(a + b) as u32 {
            assert_eq!(g.out_degree(v), a);
        }
    }
}

#[test]
fn gnp_monotone_in_p_on_average() {
    let mut rng = ephemeral_rng::default_rng(31);
    let n = 300;
    let sparse: usize = (0..5)
        .map(|_| generators::gnp(n, 0.01, false, &mut rng).num_edges())
        .sum();
    let dense: usize = (0..5)
        .map(|_| generators::gnp(n, 0.05, false, &mut rng).num_edges())
        .sum();
    assert!(dense > 3 * sparse, "dense {dense} vs sparse {sparse}");
}

#[test]
fn random_regular_is_connected_whp_for_d3() {
    // Random 3-regular graphs are connected w.h.p.; over 10 samples at
    // n = 60 none should be disconnected (prob ≪ 1e-3 each).
    let mut rng = ephemeral_rng::default_rng(32);
    for _ in 0..10 {
        let g = generators::random_regular(60, 3, &mut rng);
        assert!(is_connected(&g));
        assert_eq!(connected_components(&g).count, 1);
    }
}
