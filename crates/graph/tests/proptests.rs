//! Property-based tests for the CSR graph substrate.

use ephemeral_graph::algo::{
    bfs_distances, connected_components, diameter, two_sweep_lower_bound, UnionFind, UNREACHABLE,
};
use ephemeral_graph::{generators, GraphBuilder};
use ephemeral_rng::SeedSequence;
use proptest::prelude::*;
use std::collections::HashSet;

/// Arbitrary undirected edge list over up to 24 nodes (deduplicated).
fn arb_edges() -> impl Strategy<Value = (usize, Vec<(u32, u32)>)> {
    (2usize..24).prop_flat_map(|n| {
        let edges = prop::collection::vec((0..n as u32, 0..n as u32), 0..60);
        (Just(n), edges)
    })
}

proptest! {
    #[test]
    fn builder_roundtrips_edge_sets((n, raw) in arb_edges()) {
        let mut b = GraphBuilder::new_undirected(n);
        b.dedup_edges();
        let mut expected: HashSet<(u32, u32)> = HashSet::new();
        for (u, v) in raw {
            if u != v {
                b.add_edge(u, v);
                expected.insert((u.min(v), u.max(v)));
            }
        }
        let g = b.build().unwrap();
        prop_assert_eq!(g.num_edges(), expected.len());
        // Every stored edge is queryable in both directions.
        for &(u, v) in &expected {
            prop_assert!(g.has_edge(u, v));
            prop_assert!(g.has_edge(v, u));
        }
        // Degree sum = 2m.
        let degree_sum: usize = g.nodes().map(|v| g.out_degree(v)).sum();
        prop_assert_eq!(degree_sum, 2 * g.num_edges());
        // Adjacency rows sorted strictly.
        for v in g.nodes() {
            let (nbrs, _) = g.out_adjacency(v);
            prop_assert!(nbrs.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn components_partition_the_nodes((n, raw) in arb_edges()) {
        let mut b = GraphBuilder::new_undirected(n);
        b.dedup_edges();
        for (u, v) in raw {
            if u != v {
                b.add_edge(u, v);
            }
        }
        let g = b.build().unwrap();
        let c = connected_components(&g);
        prop_assert_eq!(c.labels.len(), n);
        prop_assert_eq!(c.sizes.iter().map(|&s| s as usize).sum::<usize>(), n);
        prop_assert!(c.labels.iter().all(|&l| (l as usize) < c.count));
        // BFS reach from any node equals its component size.
        let dist = bfs_distances(&g, 0);
        let reach = dist.iter().filter(|&&d| d != UNREACHABLE).count();
        prop_assert_eq!(reach as u32, c.sizes[c.labels[0] as usize]);
    }

    #[test]
    fn two_sweep_never_exceeds_diameter((n, raw) in arb_edges()) {
        let mut b = GraphBuilder::new_undirected(n);
        b.dedup_edges();
        for (u, v) in raw {
            if u != v {
                b.add_edge(u, v);
            }
        }
        let g = b.build().unwrap();
        if let Some(exact) = diameter(&g) {
            let lb = two_sweep_lower_bound(&g, 0).unwrap();
            prop_assert!(lb <= exact);
        }
    }

    #[test]
    fn union_find_agrees_with_components((n, raw) in arb_edges()) {
        let mut b = GraphBuilder::new_undirected(n);
        b.dedup_edges();
        let mut uf = UnionFind::new(n);
        for (u, v) in raw {
            if u != v {
                b.add_edge(u, v);
                uf.union(u, v);
            }
        }
        let g = b.build().unwrap();
        prop_assert_eq!(uf.num_sets(), connected_components(&g).count);
    }

    #[test]
    fn gnp_edges_within_deterministic_bounds(seed: u64, n in 2usize..120, p in 0.0f64..=1.0) {
        let mut rng = SeedSequence::new(seed).rng(0);
        let g = generators::gnp(n, p, false, &mut rng);
        prop_assert_eq!(g.num_nodes(), n);
        prop_assert!(g.num_edges() <= n * (n - 1) / 2);
        if p == 0.0 {
            prop_assert_eq!(g.num_edges(), 0);
        }
        if p == 1.0 {
            prop_assert_eq!(g.num_edges(), n * (n - 1) / 2);
        }
    }

    #[test]
    fn random_trees_are_trees(seed: u64, n in 1usize..300) {
        let mut rng = SeedSequence::new(seed).rng(1);
        let t = generators::random_tree(n, &mut rng);
        prop_assert_eq!(t.num_edges(), n - 1);
        prop_assert!(ephemeral_graph::algo::is_connected(&t));
        // Two-sweep is exact on trees: it equals the full diameter scan.
        if n >= 2 {
            prop_assert_eq!(two_sweep_lower_bound(&t, 0), diameter(&t));
        }
    }

    #[test]
    fn gnm_has_exact_count(seed: u64, n in 2usize..60, frac in 0.0f64..=1.0) {
        let max_m = n * (n - 1) / 2;
        let m = (max_m as f64 * frac) as usize;
        let mut rng = SeedSequence::new(seed).rng(2);
        let g = generators::gnm(n, m, false, &mut rng);
        prop_assert_eq!(g.num_edges(), m);
    }

    #[test]
    fn reversal_is_an_involution_on_digraphs(seed: u64, n in 2usize..40) {
        let mut rng = SeedSequence::new(seed).rng(3);
        let g = generators::gnp(n, 0.2, true, &mut rng);
        prop_assert_eq!(g.reversed().reversed(), g.clone());
        // Degree swap.
        for v in g.nodes() {
            prop_assert_eq!(g.out_degree(v), g.reversed().in_degree(v));
        }
    }
}
