//! Adaptive (CI-driven) Monte Carlo: run trials in fixed-size batches and
//! stop as soon as the confidence interval is tight enough — or a trial cap
//! is hit — instead of hard-coding a trial count per experiment cell.
//!
//! Determinism contract (the same one [`MonteCarlo`](crate::MonteCarlo)
//! upholds): trial `i` always draws from the generator derived from
//! `(seed, i)`, samples are folded into the accumulator **in trial order**
//! on the coordinating thread, and the stopping rule is evaluated only at
//! fixed batch boundaries taken from [`AdaptiveConfig`]. The result is
//! therefore bit-identical no matter how many worker threads execute the
//! batches — the property the sweep engine's resumable output relies on.

use crate::faults::{self, site, WorkerPanic};
use crate::montecarlo::Proportion;
use crate::pool::par_for_with;
use crate::stats::{wilson_half_width, OnlineStats};
use ephemeral_rng::{DefaultRng, SeedSequence};
use parking_lot::Mutex;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Stopping knobs of an adaptive run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveConfig {
    /// Stop once the CI half-width is at or below this value.
    pub target_half_width: f64,
    /// Confidence level of the interval (snapped to the supported table,
    /// see [`z_for_confidence`](crate::stats::z_for_confidence)).
    pub confidence: f64,
    /// Never stop (except at the cap) before this many trials.
    pub min_trials: usize,
    /// Hard trial cap; the run reports `converged = false` when it stops
    /// here with the interval still wider than the target.
    pub max_trials: usize,
    /// Trials per batch. The stopping rule is only consulted at batch
    /// boundaries, which is what makes the trial count — and hence the
    /// result — independent of thread scheduling.
    pub batch: usize,
}

impl AdaptiveConfig {
    /// A config targeting `target_half_width` at 95% confidence, with
    /// moderate defaults (min 16, cap 4096, batches of 32).
    #[must_use]
    pub const fn new(target_half_width: f64) -> Self {
        Self {
            target_half_width,
            confidence: 0.95,
            min_trials: 16,
            max_trials: 4096,
            batch: 32,
        }
    }

    /// Override the confidence level.
    #[must_use]
    pub const fn with_confidence(mut self, confidence: f64) -> Self {
        self.confidence = confidence;
        self
    }

    /// Override the minimum trial count.
    #[must_use]
    pub const fn with_min_trials(mut self, min_trials: usize) -> Self {
        self.min_trials = min_trials;
        self
    }

    /// Override the trial cap.
    #[must_use]
    pub const fn with_max_trials(mut self, max_trials: usize) -> Self {
        self.max_trials = max_trials;
        self
    }

    /// Override the batch size.
    #[must_use]
    pub const fn with_batch(mut self, batch: usize) -> Self {
        self.batch = batch;
        self
    }
}

/// How an adaptive run folds per-trial samples into a stoppable estimate.
///
/// Implementations must be order-insensitive in distribution but are always
/// fed samples **in trial order**, so floating-point results are exactly
/// reproducible.
pub trait AdaptiveAccumulator: Default {
    /// The per-trial sample type.
    type Sample: Send;

    /// Absorb one sample.
    fn push(&mut self, sample: Self::Sample);

    /// Number of samples absorbed so far.
    fn trials(&self) -> usize;

    /// Current CI half-width at the given confidence level
    /// (`f64::INFINITY` while the estimate is undefined).
    fn half_width(&self, confidence: f64) -> f64;
}

/// Accumulates real-valued samples; half-width is the normal interval
/// `z·sem` over all samples.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MeanAccumulator {
    /// The running moments.
    pub stats: OnlineStats,
}

impl AdaptiveAccumulator for MeanAccumulator {
    type Sample = f64;

    fn push(&mut self, sample: f64) {
        self.stats.push(sample);
    }

    fn trials(&self) -> usize {
        self.stats.count() as usize
    }

    fn half_width(&self, confidence: f64) -> f64 {
        self.stats.half_width(confidence)
    }
}

/// Accumulates boolean samples; half-width is the Wilson score interval's,
/// which stays honest at `p̂ = 0` or `1` (the regime success-probability
/// experiments hit routinely).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProportionAccumulator {
    /// Number of `true` samples.
    pub successes: usize,
    /// Total samples.
    pub count: usize,
}

impl AdaptiveAccumulator for ProportionAccumulator {
    type Sample = bool;

    fn push(&mut self, sample: bool) {
        self.successes += usize::from(sample);
        self.count += 1;
    }

    fn trials(&self) -> usize {
        self.count
    }

    fn half_width(&self, confidence: f64) -> f64 {
        if self.count == 0 {
            f64::INFINITY
        } else {
            wilson_half_width(self.successes, self.count, confidence)
        }
    }
}

/// Accumulates `(value, accept)` samples: accepted values feed the mean,
/// rejected trials are only counted. The temporal-diameter metric uses this
/// — an instance with an unreachable pair has no finite diameter, but the
/// trial still happened and the rejection rate is itself reported.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FilteredMeanAccumulator {
    /// Moments of the accepted samples.
    pub accepted: OnlineStats,
    /// Number of rejected trials.
    pub rejected: usize,
}

impl FilteredMeanAccumulator {
    /// Fraction of trials rejected (0 when no trials ran).
    #[must_use]
    pub fn rejected_fraction(&self) -> f64 {
        let total = self.trials();
        if total == 0 {
            0.0
        } else {
            self.rejected as f64 / total as f64
        }
    }
}

impl AdaptiveAccumulator for FilteredMeanAccumulator {
    type Sample = (f64, bool);

    fn push(&mut self, (value, accept): (f64, bool)) {
        if accept {
            self.accepted.push(value);
        } else {
            self.rejected += 1;
        }
    }

    fn trials(&self) -> usize {
        self.accepted.count() as usize + self.rejected
    }

    fn half_width(&self, confidence: f64) -> f64 {
        self.accepted.half_width(confidence)
    }
}

/// Outcome of [`run_adaptive`].
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveRun<A> {
    /// The folded samples.
    pub accumulator: A,
    /// Trials executed (a multiple of the batch size, clipped at the cap).
    pub trials: usize,
    /// Final CI half-width.
    pub half_width: f64,
    /// Did the half-width reach the target before (or at) the cap?
    pub converged: bool,
}

/// A caller-owned pool of warm scratch states for the `_pooled` adaptive
/// runners ([`try_run_adaptive_pooled`],
/// [`adaptive_proportion_pooled_with`]). Within one run, states already
/// pool across batch boundaries; sharing a `StatePool` additionally
/// carries them across *runs* — `minimal_r`'s per-candidate-`r` probes,
/// a sweep grid's cells over one family — so a sequence of runs on
/// `threads` workers builds at most `threads` states total instead of
/// `threads` per run. The pool never validates what it holds: only share
/// one across runs whose `init`/`sim` pairs accept each other's states.
#[derive(Debug)]
pub struct StatePool<S> {
    states: Mutex<Vec<S>>,
}

impl<S> StatePool<S> {
    /// An empty pool.
    #[must_use]
    pub fn new() -> Self {
        Self {
            states: Mutex::new(Vec::new()),
        }
    }

    /// Number of idle states currently parked in the pool.
    #[must_use]
    pub fn idle(&self) -> usize {
        self.states.lock().len()
    }
}

impl<S> Default for StatePool<S> {
    fn default() -> Self {
        Self::new()
    }
}

/// Hands a pooled scratch state back when its worker finishes a batch, so
/// the next batch's workers reuse it instead of paying `init()` again —
/// a trial scratch can be a ~100 MB network copy. A state whose trial
/// panicked is set to `None` *before* the unwind propagates, so a
/// half-updated scratch is dropped, never re-pooled (no poisoned state).
struct PooledState<'a, S> {
    state: Option<S>,
    pool: &'a Mutex<Vec<S>>,
}

impl<S> Drop for PooledState<'_, S> {
    fn drop(&mut self) {
        if let Some(s) = self.state.take() {
            self.pool.lock().push(s);
        }
    }
}

/// Run batches of trials until `accumulator.half_width(confidence)` drops
/// to the target or `max_trials` is reached. `init()` builds per-worker
/// scratch state exactly as in
/// [`MonteCarlo::run_with`](crate::MonteCarlo::run_with); `sim` receives
/// the scratch, the global trial index and the trial's own generator.
/// States are pooled across batch boundaries: at most `threads` are ever
/// built per run, however many batches the stopping rule takes.
///
/// Deterministic: the executed trial count and every reported number depend
/// only on `(cfg, seed)`, never on `threads`.
///
/// # Panics
/// If `batch == 0` or `max_trials == 0`, or — re-thrown with its structured
/// [`WorkerPanic`] payload — when a trial panics; use
/// [`try_run_adaptive`] to receive that as an `Err` instead.
pub fn run_adaptive<A, S, I, F>(
    cfg: &AdaptiveConfig,
    seed: u64,
    threads: usize,
    init: I,
    sim: F,
) -> AdaptiveRun<A>
where
    A: AdaptiveAccumulator,
    A::Sample: Send,
    S: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &mut DefaultRng) -> A::Sample + Sync,
{
    match try_run_adaptive(cfg, seed, threads, init, sim) {
        Ok(run) => run,
        Err(wp) => std::panic::panic_any(wp),
    }
}

/// Panic-isolated [`run_adaptive`]: a panicking trial is caught, its scratch
/// state is discarded instead of returning to the state pool, the remaining
/// trials of the batch still execute (so [`faults`] attempt counters advance
/// uniformly and a retried run converges), and the structured
/// [`WorkerPanic`] for the **lowest** failing trial index is returned —
/// deterministic across thread counts, like every other number here.
///
/// # Panics
/// If `batch == 0` or `max_trials == 0`.
pub fn try_run_adaptive<A, S, I, F>(
    cfg: &AdaptiveConfig,
    seed: u64,
    threads: usize,
    init: I,
    sim: F,
) -> Result<AdaptiveRun<A>, WorkerPanic>
where
    A: AdaptiveAccumulator,
    A::Sample: Send,
    S: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &mut DefaultRng) -> A::Sample + Sync,
{
    try_run_adaptive_pooled(cfg, seed, threads, &StatePool::new(), init, sim)
}

/// [`try_run_adaptive`] drawing scratch states from (and returning them
/// to) a **caller-owned** pool, so a sequence of runs — `minimal_r`'s
/// per-candidate-`r` probes, a sweep grid's cells over one family —
/// reuses the same warm states instead of paying `init()` again per run.
/// The pool is consulted before `init`: pass an empty pool for the old
/// behaviour. States poisoned by a panicking trial are dropped, never
/// re-pooled, exactly as in [`try_run_adaptive`].
///
/// Results are bit-identical to [`try_run_adaptive`] whenever the pooled
/// states are interchangeable with freshly `init()`-ed ones after `sim`'s
/// own per-trial reset (the contract `init`/`sim` pairs already obey for
/// cross-batch pooling within a single run).
///
/// # Panics
/// If `batch == 0` or `max_trials == 0`.
pub fn try_run_adaptive_pooled<A, S, I, F>(
    cfg: &AdaptiveConfig,
    seed: u64,
    threads: usize,
    pool: &StatePool<S>,
    init: I,
    sim: F,
) -> Result<AdaptiveRun<A>, WorkerPanic>
where
    A: AdaptiveAccumulator,
    A::Sample: Send,
    S: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &mut DefaultRng) -> A::Sample + Sync,
{
    assert!(cfg.batch >= 1, "batch size must be positive");
    assert!(cfg.max_trials >= 1, "trial cap must be positive");
    let pool = &pool.states;
    let seq = SeedSequence::new(seed);
    let mut accumulator = A::default();
    let mut done = 0usize;
    let half_width = loop {
        let batch = cfg.batch.min(cfg.max_trials - done);
        let samples: Vec<Result<A::Sample, WorkerPanic>> = par_for_with(
            batch,
            threads,
            || PooledState {
                state: None, // lazily filled from the pool on first trial
                pool,
            },
            |pooled, i| {
                let trial = done + i;
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    let state = pooled
                        .state
                        .get_or_insert_with(|| pool.lock().pop().unwrap_or_else(&init));
                    faults::hit(site::ADAPTIVE_TRIAL, trial as u64);
                    sim(state, trial, &mut seq.rng(trial as u64))
                }));
                match outcome {
                    Ok(s) => Ok(s),
                    Err(payload) => {
                        pooled.state = None; // poisoned scratch: never re-pool
                        Err(WorkerPanic::from_payload(trial, payload.as_ref()))
                    }
                }
            },
        );
        // Fold in trial order; the lowest failing trial index wins.
        for s in samples {
            accumulator.push(s?);
        }
        done += batch;
        let hw = accumulator.half_width(cfg.confidence);
        if (done >= cfg.min_trials && hw <= cfg.target_half_width) || done >= cfg.max_trials {
            break hw;
        }
    };
    Ok(AdaptiveRun {
        converged: half_width <= cfg.target_half_width,
        trials: done,
        half_width,
        accumulator,
    })
}

/// An adaptively estimated mean.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveMean {
    /// Moments of the samples.
    pub stats: OnlineStats,
    /// Final CI half-width (`mean ± half_width` at the config's level).
    pub half_width: f64,
    /// Trials executed.
    pub trials: usize,
    /// Did the run hit the target precision?
    pub converged: bool,
}

/// Adaptive mean with per-worker scratch state.
pub fn adaptive_mean_with<S, I, F>(
    cfg: &AdaptiveConfig,
    seed: u64,
    threads: usize,
    init: I,
    sim: F,
) -> AdaptiveMean
where
    S: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &mut DefaultRng) -> f64 + Sync,
{
    let run: AdaptiveRun<MeanAccumulator> = run_adaptive(cfg, seed, threads, init, sim);
    AdaptiveMean {
        stats: run.accumulator.stats,
        half_width: run.half_width,
        trials: run.trials,
        converged: run.converged,
    }
}

/// Adaptive estimate of `E[sim]` for a real-valued simulation.
pub fn adaptive_mean<F>(cfg: &AdaptiveConfig, seed: u64, threads: usize, sim: F) -> AdaptiveMean
where
    F: Fn(usize, &mut DefaultRng) -> f64 + Sync,
{
    adaptive_mean_with(cfg, seed, threads, || (), |(), i, rng| sim(i, rng))
}

/// An adaptively estimated success probability.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveProportion {
    /// The estimate with its 95% Wilson interval.
    pub proportion: Proportion,
    /// Final Wilson half-width at the **config's** confidence level (which
    /// may differ from the fixed 95% interval inside [`Proportion`]).
    pub half_width: f64,
    /// Did the run hit the target precision?
    pub converged: bool,
}

/// Adaptive success probability with per-worker scratch state.
pub fn adaptive_proportion_with<S, I, F>(
    cfg: &AdaptiveConfig,
    seed: u64,
    threads: usize,
    init: I,
    sim: F,
) -> AdaptiveProportion
where
    S: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &mut DefaultRng) -> bool + Sync,
{
    let run: AdaptiveRun<ProportionAccumulator> = run_adaptive(cfg, seed, threads, init, sim);
    AdaptiveProportion {
        proportion: Proportion::new(run.accumulator.successes, run.accumulator.count),
        half_width: run.half_width,
        converged: run.converged,
    }
}

/// [`adaptive_proportion_with`] drawing scratch from a caller-owned pool
/// (see [`try_run_adaptive_pooled`]): a bisection probing many configs
/// over the same instance keeps its warm sweep state across probes.
///
/// # Panics
/// On invalid config or a panicking trial, as [`adaptive_proportion_with`].
pub fn adaptive_proportion_pooled_with<S, I, F>(
    cfg: &AdaptiveConfig,
    seed: u64,
    threads: usize,
    pool: &StatePool<S>,
    init: I,
    sim: F,
) -> AdaptiveProportion
where
    S: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &mut DefaultRng) -> bool + Sync,
{
    let run: Result<AdaptiveRun<ProportionAccumulator>, WorkerPanic> =
        try_run_adaptive_pooled(cfg, seed, threads, pool, init, sim);
    let run = match run {
        Ok(run) => run,
        Err(wp) => std::panic::panic_any(wp),
    };
    AdaptiveProportion {
        proportion: Proportion::new(run.accumulator.successes, run.accumulator.count),
        half_width: run.half_width,
        converged: run.converged,
    }
}

/// Adaptive estimate of `P[sim]` for a boolean simulation.
pub fn adaptive_proportion<F>(
    cfg: &AdaptiveConfig,
    seed: u64,
    threads: usize,
    sim: F,
) -> AdaptiveProportion
where
    F: Fn(usize, &mut DefaultRng) -> bool + Sync,
{
    adaptive_proportion_with(cfg, seed, threads, || (), |(), i, rng| sim(i, rng))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ephemeral_rng::RandomSource;

    #[test]
    fn converges_on_an_easy_mean() {
        let cfg = AdaptiveConfig::new(0.02).with_max_trials(100_000);
        let est = adaptive_mean(&cfg, 1, 2, |_, rng| rng.unit_f64());
        assert!(est.converged);
        assert!(est.half_width <= 0.02);
        assert!(
            (est.stats.mean() - 0.5).abs() < 0.05,
            "{}",
            est.stats.mean()
        );
        // Uniform sd ≈ 0.2887 ⇒ ~800 trials for hw 0.02; far below the cap.
        assert!(est.trials < 10_000, "{}", est.trials);
    }

    #[test]
    fn spends_more_trials_where_variance_demands() {
        let cfg = AdaptiveConfig::new(0.05).with_max_trials(100_000);
        let narrow = adaptive_mean(&cfg, 2, 2, |_, rng| rng.unit_f64());
        let wide = adaptive_mean(&cfg, 2, 2, |_, rng| rng.unit_f64() * 10.0);
        assert!(narrow.converged && wide.converged);
        assert!(
            wide.trials >= narrow.trials * 4,
            "narrow {} wide {}",
            narrow.trials,
            wide.trials
        );
    }

    #[test]
    fn caps_and_reports_non_convergence() {
        let cfg = AdaptiveConfig::new(1e-9)
            .with_max_trials(100)
            .with_batch(32);
        let est = adaptive_mean(&cfg, 3, 2, |_, rng| rng.unit_f64());
        assert!(!est.converged);
        assert_eq!(est.trials, 100, "cap is exact, not rounded to a batch");
        assert!(est.half_width > 1e-9);
    }

    #[test]
    fn respects_min_trials_even_with_zero_variance() {
        let cfg = AdaptiveConfig::new(0.1).with_min_trials(50).with_batch(16);
        let est = adaptive_mean(&cfg, 4, 1, |_, _| 7.0);
        // Constant samples have hw 0 immediately, but min_trials holds.
        assert!(est.trials >= 50, "{}", est.trials);
        assert!(est.converged);
        assert_eq!(est.stats.mean(), 7.0);
    }

    #[test]
    fn adaptive_results_are_thread_invariant() {
        let cfg = AdaptiveConfig::new(0.05)
            .with_min_trials(16)
            .with_batch(16)
            .with_max_trials(2_000);
        let base = adaptive_mean(&cfg, 9, 1, |i, rng| rng.unit_f64() + (i % 3) as f64);
        for threads in [2, 8] {
            let other = adaptive_mean(&cfg, 9, threads, |i, rng| rng.unit_f64() + (i % 3) as f64);
            assert_eq!(base, other, "threads={threads}");
        }
    }

    #[test]
    fn proportion_converges_and_covers_truth() {
        let cfg = AdaptiveConfig::new(0.03).with_max_trials(50_000);
        let est = adaptive_proportion(&cfg, 5, 2, |_, rng| rng.bernoulli(0.3));
        assert!(est.converged);
        assert!(est.half_width <= 0.03);
        let p = est.proportion;
        assert!(p.lo <= 0.3 && 0.3 <= p.hi, "{p}");
    }

    #[test]
    fn extreme_proportions_converge_fast() {
        // p̂ = 1 has a tight Wilson interval long before a mid-range p̂ does
        // — the speed win of adaptive allocation.
        let cfg = AdaptiveConfig::new(0.05).with_max_trials(50_000);
        let sure = adaptive_proportion(&cfg, 6, 2, |_, _| true);
        let coin = adaptive_proportion(&cfg, 6, 2, |_, rng| rng.bernoulli(0.5));
        assert!(sure.converged && coin.converged);
        assert!(
            sure.proportion.trials * 3 <= coin.proportion.trials,
            "sure {} coin {}",
            sure.proportion.trials,
            coin.proportion.trials
        );
        assert_eq!(sure.proportion.estimate, 1.0);
    }

    #[test]
    fn filtered_accumulator_tracks_rejections() {
        let mut acc = FilteredMeanAccumulator::default();
        assert_eq!(acc.rejected_fraction(), 0.0);
        acc.push((3.0, true));
        acc.push((0.0, false));
        acc.push((5.0, true));
        acc.push((0.0, false));
        assert_eq!(acc.trials(), 4);
        assert_eq!(acc.rejected, 2);
        assert!((acc.rejected_fraction() - 0.5).abs() < 1e-12);
        assert!((acc.accepted.mean() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn all_rejected_runs_to_the_cap() {
        let cfg = AdaptiveConfig::new(0.5)
            .with_min_trials(8)
            .with_batch(8)
            .with_max_trials(40);
        let run: AdaptiveRun<FilteredMeanAccumulator> =
            run_adaptive(&cfg, 7, 2, || (), |(), _, _| (0.0, false));
        assert!(!run.converged);
        assert_eq!(run.trials, 40);
        assert_eq!(run.accumulator.rejected, 40);
        assert_eq!(run.half_width, f64::INFINITY);
    }

    #[test]
    fn scratch_state_does_not_leak_into_results() {
        let cfg = AdaptiveConfig::new(0.1).with_max_trials(500);
        let stateless = adaptive_mean(&cfg, 11, 1, |_, rng| rng.unit_f64());
        for threads in [1, 4] {
            let stateful =
                adaptive_mean_with(&cfg, 11, threads, Vec::<u64>::new, |scratch, _, rng| {
                    scratch.push(scratch.len() as u64); // grows per worker; must not matter
                    rng.unit_f64()
                });
            assert_eq!(stateless, stateful, "threads={threads}");
        }
    }

    #[test]
    fn scratch_states_are_pooled_across_batches() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        // Force many batches (1-trial batches, cap 64) and count init()
        // calls: the state pool must keep them at ≤ threads per run, not
        // one per batch.
        let inits = AtomicUsize::new(0);
        let threads = 4;
        let cfg = AdaptiveConfig::new(0.0)
            .with_min_trials(64)
            .with_batch(1)
            .with_max_trials(64);
        let est = adaptive_mean_with(
            &cfg,
            13,
            threads,
            || {
                inits.fetch_add(1, Ordering::Relaxed);
                0u8
            },
            |_, _, rng| rng.unit_f64(),
        );
        assert_eq!(est.trials, 64);
        let calls = inits.load(Ordering::Relaxed);
        assert!(
            calls <= threads,
            "init called {calls} times across 64 batches on {threads} threads"
        );
    }

    #[test]
    fn caller_owned_pool_spans_runs_without_changing_results() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        // A shared pool across a *sequence* of runs (minimal_r's per-r
        // probes) must build at most `threads` states total, and must
        // not perturb any reported number versus per-run local pools.
        let inits = AtomicUsize::new(0);
        let threads = 3;
        let cfg = AdaptiveConfig::new(0.0)
            .with_min_trials(32)
            .with_batch(8)
            .with_max_trials(32);
        let pool: StatePool<u8> = StatePool::new();
        for seed in [5u64, 6, 7] {
            let pooled = adaptive_proportion_pooled_with(
                &cfg,
                seed,
                threads,
                &pool,
                || {
                    inits.fetch_add(1, Ordering::Relaxed);
                    0u8
                },
                |_, _, rng| rng.unit_f64() < 0.4,
            );
            let fresh = adaptive_proportion_with(
                &cfg,
                seed,
                threads,
                || 0u8,
                |_, _, rng| rng.unit_f64() < 0.4,
            );
            assert_eq!(pooled.proportion, fresh.proportion, "seed {seed}");
            assert_eq!(pooled.half_width, fresh.half_width, "seed {seed}");
        }
        let calls = inits.load(Ordering::Relaxed);
        assert!(
            calls <= threads,
            "init called {calls} times across 3 runs on {threads} threads"
        );
    }

    #[test]
    fn batch_larger_than_cap_is_clipped() {
        let cfg = AdaptiveConfig::new(0.0)
            .with_batch(1_000)
            .with_min_trials(1)
            .with_max_trials(10);
        let est = adaptive_mean(&cfg, 12, 2, |_, rng| rng.unit_f64());
        assert_eq!(est.trials, 10);
    }

    #[test]
    #[should_panic(expected = "batch size must be positive")]
    fn zero_batch_panics() {
        let cfg = AdaptiveConfig::new(0.1).with_batch(0);
        let _ = adaptive_mean(&cfg, 0, 1, |_, _| 0.0);
    }
}
