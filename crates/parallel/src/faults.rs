//! Deterministic fault injection and cooperative cancellation.
//!
//! The paper studies networks whose links fail at random; this module gives
//! the *runtime* the same discipline. A [`FaultSchedule`] is a seeded,
//! reproducible description of which named failpoints ([`site`]) fire, with
//! what [`Fault`], on which attempt — derived from [`SeedSequence`] so an
//! injected panic happens at exactly the same `(site, key)` pairs run after
//! run, regardless of thread count or scheduling. Layers above
//! (pool, adaptive runner, sweep engines, the sweep grid) call
//! [`hit`] at their failpoints; when no schedule is installed the call is a
//! single relaxed atomic load.
//!
//! Three pieces:
//!
//! * **Failpoints** — [`install`] a [`FaultSchedule`] (or
//!   [`install_from_env`] for CI via `EPHEMERAL_FAULTS`), and every
//!   [`hit`] consults it. Injected panics carry a typed
//!   [`InjectedFault`] payload so handlers can attribute the failure to a
//!   site. Per-`(site, key)` attempt counters make *bounded retry*
//!   converge: a schedule with `fires = 1` fails the first attempt and
//!   passes the retry, which (with deterministic per-cell seeds) makes the
//!   retried result byte-identical to a fault-free run.
//! * **Structured worker errors** — [`WorkerPanic`] is what a caught panic
//!   becomes on the way out of a pool/adaptive call: the smallest failing
//!   item index plus the payload, decoded. Deterministic across thread
//!   counts because every item is still evaluated (the queue drains) and
//!   the minimum index wins.
//! * **Cancellation** — [`CancelToken`] is a cooperative stop flag with an
//!   optional wall-clock deadline. Engines call [`CancelToken::checkpoint`]
//!   at bucket boundaries: a relaxed flag load every bucket, an
//!   `Instant::now()` only every 64th, so the hot path stays within the
//!   CI cancellation-overhead gate. Firing unwinds with a typed
//!   [`Cancelled`] payload caught at cell granularity.
//!
//! ```
//! use ephemeral_parallel::faults::{self, Fault, FaultSchedule};
//!
//! // Fire a panic at every `pool::item` failpoint, first attempt only.
//! let guard = faults::install(
//!     FaultSchedule::new(7, 1.0, Fault::Panic).sites(&[faults::site::POOL_ITEM]),
//! );
//! let err = ephemeral_parallel::try_par_map(&[1u32, 2, 3], 2, |_, &x| x * 2).unwrap_err();
//! assert_eq!(err.index, 0); // smallest failing index, deterministically
//! assert!(err.injected.is_some());
//! // Attempt counters advanced: the retry passes and is byte-identical.
//! assert_eq!(
//!     ephemeral_parallel::try_par_map(&[1u32, 2, 3], 2, |_, &x| x * 2).unwrap(),
//!     vec![2, 4, 6]
//! );
//! drop(guard);
//! ```

use ephemeral_rng::SeedSequence;
use parking_lot::{Mutex, MutexGuard};
use std::any::Any;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The failpoint catalog: every named site the runtime can fail at.
///
/// | site | layer | key | fired from |
/// |------|-------|-----|------------|
/// | [`site::POOL_ITEM`] | pool | item index | `try_par_map`/`try_par_map_with` per item |
/// | [`site::POOL_JOB`] | pool | submission # | `ThreadPool::execute` jobs |
/// | [`site::ADAPTIVE_TRIAL`] | adaptive | trial index | every `run_adaptive` trial |
/// | [`site::ENGINE_BUCKET`] | engines | bucket time | each sweep bucket boundary |
/// | [`site::SWEEP_CELL`] | sweep grid | cell index | cell evaluation start |
/// | [`site::SWEEP_EMIT`] | sweep grid | cell index | after compute, before the row posts |
/// | [`site::SERVE_QUERY`] | query service | request sequence # | before a query joins its lane batch |
pub mod site {
    /// One item of a `try_par_map`/`try_par_map_with` call (key: item index).
    pub const POOL_ITEM: &str = "pool::item";
    /// One `ThreadPool` job (key: submission number).
    pub const POOL_JOB: &str = "pool::job";
    /// One adaptive Monte Carlo trial (key: global trial index).
    pub const ADAPTIVE_TRIAL: &str = "adaptive::trial";
    /// One sweep-engine bucket boundary (key: bucket time).
    pub const ENGINE_BUCKET: &str = "engine::bucket";
    /// Start of one sweep-grid cell evaluation (key: cell index).
    pub const SWEEP_CELL: &str = "sweep::cell";
    /// After a cell computes, before its row posts (key: cell index).
    pub const SWEEP_EMIT: &str = "sweep::emit";
    /// One query of the long-lived reachability service (key: request
    /// sequence number), fired as the query joins its lane batch.
    pub const SERVE_QUERY: &str = "serve::query";
    /// Every named failpoint, for schedules and docs.
    pub const ALL: &[&str] = &[
        POOL_ITEM,
        POOL_JOB,
        ADAPTIVE_TRIAL,
        ENGINE_BUCKET,
        SWEEP_CELL,
        SWEEP_EMIT,
        SERVE_QUERY,
    ];
}

/// What an armed failpoint does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Unwind with an [`InjectedFault`] payload.
    Panic,
    /// Sleep for this many milliseconds (exercises watchdogs/timeouts).
    Delay(u64),
    /// Allocate-and-touch this many bytes, then free them (exercises the
    /// degradation paths that react to memory pressure).
    AllocPressure(usize),
}

/// Typed payload of an injected panic: which failpoint fired, on what key,
/// on which attempt. Handlers downcast this (see [`injected_fault`]) to
/// attribute a failure to its site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectedFault {
    /// The failpoint name (one of [`site::ALL`]).
    pub site: &'static str,
    /// The caller-supplied scope key (item/trial/cell index, bucket time).
    pub key: u64,
    /// Zero-based attempt number at this `(site, key)`.
    pub attempt: u32,
}

impl std::fmt::Display for InjectedFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "injected fault at {} (key {}, attempt {})",
            self.site, self.key, self.attempt
        )
    }
}

/// A reproducible fault schedule: every decision is a pure function of
/// `(seed, site, key)` plus a per-`(site, key)` attempt counter, so firing
/// is independent of thread count and scheduling order.
#[derive(Debug, Clone)]
pub struct FaultSchedule {
    seed: u64,
    rate: f64,
    kind: Fault,
    /// Sites the schedule arms; empty = all.
    sites: Vec<String>,
    /// Fire only on attempts `0..fires` at each `(site, key)` — the default
    /// of 1 makes a single bounded retry converge.
    fires: u32,
}

impl FaultSchedule {
    /// A schedule firing `kind` at each armed `(site, key)` with probability
    /// `rate` (derived from `seed`), on the first attempt only.
    #[must_use]
    pub fn new(seed: u64, rate: f64, kind: Fault) -> Self {
        Self {
            seed,
            rate: rate.clamp(0.0, 1.0),
            kind,
            sites: Vec::new(),
            fires: 1,
        }
    }

    /// Restrict the schedule to the named sites (default: all sites).
    #[must_use]
    pub fn sites(mut self, sites: &[&str]) -> Self {
        self.sites = sites.iter().map(|s| (*s).to_string()).collect();
        self
    }

    /// Fire on the first `fires` attempts at each `(site, key)` instead of
    /// just the first — `fires >= retry limit` exercises quarantine.
    #[must_use]
    pub fn fires(mut self, fires: u32) -> Self {
        self.fires = fires;
        self
    }

    /// Parse a schedule from an `EPHEMERAL_FAULTS`-style spec: comma-separated
    /// `key=value` pairs. Recognised keys: `seed=<u64>`, `rate=<f64>`,
    /// `kind=panic|delay:<ms>|alloc:<bytes>`, `sites=<name>+<name>+…`,
    /// `fires=<u32>`. Example: `seed=42,rate=0.3,kind=panic,sites=sweep::cell`.
    ///
    /// Returns `None` for an empty spec; unknown keys or malformed values
    /// are an `Err` so CI misconfiguration fails loudly.
    pub fn parse(spec: &str) -> Result<Option<Self>, String> {
        let spec = spec.trim();
        if spec.is_empty() {
            return Ok(None);
        }
        let mut schedule = Self::new(0, 1.0, Fault::Panic);
        for pair in spec.split(',') {
            let (k, v) = pair
                .split_once('=')
                .ok_or_else(|| format!("fault spec entry `{pair}` is not key=value"))?;
            match k.trim() {
                "seed" => {
                    schedule.seed = v
                        .trim()
                        .parse()
                        .map_err(|e| format!("bad seed `{v}`: {e}"))?;
                }
                "rate" => {
                    let r: f64 = v
                        .trim()
                        .parse()
                        .map_err(|e| format!("bad rate `{v}`: {e}"))?;
                    schedule.rate = r.clamp(0.0, 1.0);
                }
                "fires" => {
                    schedule.fires = v
                        .trim()
                        .parse()
                        .map_err(|e| format!("bad fires `{v}`: {e}"))?;
                }
                "kind" => {
                    let v = v.trim();
                    schedule.kind = if v == "panic" {
                        Fault::Panic
                    } else if let Some(ms) = v.strip_prefix("delay:") {
                        Fault::Delay(ms.parse().map_err(|e| format!("bad delay `{v}`: {e}"))?)
                    } else if let Some(b) = v.strip_prefix("alloc:") {
                        Fault::AllocPressure(
                            b.parse().map_err(|e| format!("bad alloc `{v}`: {e}"))?,
                        )
                    } else {
                        return Err(format!("unknown fault kind `{v}`"));
                    };
                }
                "sites" => {
                    schedule.sites = v.split('+').map(|s| s.trim().to_string()).collect();
                    for s in &schedule.sites {
                        if !site::ALL.contains(&s.as_str()) {
                            return Err(format!("unknown failpoint site `{s}`"));
                        }
                    }
                }
                other => return Err(format!("unknown fault spec key `{other}`")),
            }
        }
        Ok(Some(schedule))
    }

    fn armed(&self, at: &str) -> bool {
        self.sites.is_empty() || self.sites.iter().any(|s| s == at)
    }

    /// Would this schedule fire at `(site, key)` on `attempt`? Pure —
    /// ignores and does not advance the attempt counters.
    #[must_use]
    pub fn would_fire(&self, at: &str, key: u64, attempt: u32) -> bool {
        if !self.armed(at) || attempt >= self.fires {
            return false;
        }
        let v = SeedSequence::new(self.seed).child(site_tag(at)).derive(key);
        // 53-bit mantissa uniform in [0, 1).
        let u = (v >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < self.rate
    }
}

/// FNV-1a over the site name: a stable per-site stream tag.
fn site_tag(site: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in site.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

struct Installed {
    schedule: FaultSchedule,
    attempts: Mutex<HashMap<(u64, u64), u32>>,
    fired: AtomicUsize,
}

static ACTIVE: AtomicBool = AtomicBool::new(false);
static REGISTRY: Mutex<Option<Arc<Installed>>> = Mutex::new(None);
static INSTALL_LOCK: Mutex<()> = Mutex::new(());

/// Holds a schedule installed; uninstalls on drop. Installation is global
/// and exclusive — a second [`install`] blocks until the first guard drops,
/// which keeps concurrently running fault tests from trampling each other.
pub struct FaultGuard {
    installed: Arc<Installed>,
    _exclusive: MutexGuard<'static, ()>,
}

impl FaultGuard {
    /// Total faults this schedule has fired since installation.
    #[must_use]
    pub fn fired(&self) -> usize {
        self.installed.fired.load(Ordering::Relaxed)
    }
}

impl Drop for FaultGuard {
    fn drop(&mut self) {
        *REGISTRY.lock() = None;
        ACTIVE.store(false, Ordering::Release);
    }
}

/// Install a fault schedule globally; faults fire until the guard drops.
#[must_use]
pub fn install(schedule: FaultSchedule) -> FaultGuard {
    let exclusive = INSTALL_LOCK.lock();
    let installed = Arc::new(Installed {
        schedule,
        attempts: Mutex::new(HashMap::new()),
        fired: AtomicUsize::new(0),
    });
    *REGISTRY.lock() = Some(Arc::clone(&installed));
    ACTIVE.store(true, Ordering::Release);
    FaultGuard {
        installed,
        _exclusive: exclusive,
    }
}

/// Install the schedule described by the `EPHEMERAL_FAULTS` environment
/// variable (the CI hook), if set and non-empty.
///
/// # Panics
/// On a malformed spec — CI misconfiguration must fail loudly.
pub fn install_from_env() -> Option<FaultGuard> {
    let spec = std::env::var("EPHEMERAL_FAULTS").ok()?;
    match FaultSchedule::parse(&spec) {
        Ok(schedule) => schedule.map(install),
        Err(e) => panic!("EPHEMERAL_FAULTS: {e}"),
    }
}

/// Is any fault schedule currently installed?
#[must_use]
pub fn active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// A failpoint: no-op (one relaxed load) unless a schedule is installed, in
/// which case the schedule decides — deterministically from
/// `(seed, site, key, attempt)` — whether to panic, delay or apply
/// allocation pressure here.
#[inline]
pub fn hit(at: &'static str, key: u64) {
    if ACTIVE.load(Ordering::Relaxed) {
        hit_slow(at, key);
    }
}

#[cold]
fn hit_slow(at: &'static str, key: u64) {
    let Some(installed) = REGISTRY.lock().clone() else {
        return;
    };
    if !installed.schedule.armed(at) {
        return;
    }
    let attempt = {
        let mut attempts = installed.attempts.lock();
        let slot = attempts.entry((site_tag(at), key)).or_insert(0);
        let attempt = *slot;
        *slot += 1;
        attempt
    };
    if !installed.schedule.would_fire(at, key, attempt) {
        return;
    }
    installed.fired.fetch_add(1, Ordering::Relaxed);
    match installed.schedule.kind {
        Fault::Panic => std::panic::panic_any(InjectedFault {
            site: at,
            key,
            attempt,
        }),
        Fault::Delay(ms) => std::thread::sleep(Duration::from_millis(ms)),
        Fault::AllocPressure(bytes) => {
            // Touch a page at a time so the pressure is real, then free.
            let mut buf = vec![0u8; bytes];
            let mut i = 0;
            while i < buf.len() {
                buf[i] = 1;
                i += 4096;
            }
            std::hint::black_box(&buf);
        }
    }
}

/// Why a [`CancelToken`] fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelReason {
    /// [`CancelToken::cancel`] was called.
    Requested,
    /// The wall-clock deadline passed.
    TimedOut,
}

/// Typed payload of a cancellation unwind (see [`CancelToken::checkpoint`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cancelled {
    /// What pulled the trigger.
    pub reason: CancelReason,
}

impl std::fmt::Display for Cancelled {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.reason {
            CancelReason::Requested => write!(f, "sweep cancelled"),
            CancelReason::TimedOut => write!(f, "cell timed out"),
        }
    }
}

struct CancelInner {
    flag: AtomicBool,
    reason_timeout: AtomicBool,
    deadline: Option<Instant>,
    ticks: AtomicU64,
}

/// A cooperative cancellation token, shared by clone across the shards of a
/// sweep. Engines call [`checkpoint`](Self::checkpoint) at bucket
/// boundaries: the cost when nothing fired is one relaxed load per bucket
/// plus an `Instant::now()` every 64th bucket when a deadline is set.
#[derive(Clone)]
pub struct CancelToken {
    inner: Arc<CancelInner>,
}

impl Default for CancelToken {
    fn default() -> Self {
        Self::new()
    }
}

impl CancelToken {
    /// A token with no deadline; fires only via [`cancel`](Self::cancel).
    #[must_use]
    pub fn new() -> Self {
        Self {
            inner: Arc::new(CancelInner {
                flag: AtomicBool::new(false),
                reason_timeout: AtomicBool::new(false),
                deadline: None,
                ticks: AtomicU64::new(0),
            }),
        }
    }

    /// A token that also fires once `timeout` of wall-clock time passes —
    /// the per-cell watchdog behind `--cell-timeout`.
    #[must_use]
    pub fn with_deadline(timeout: Duration) -> Self {
        Self {
            inner: Arc::new(CancelInner {
                flag: AtomicBool::new(false),
                reason_timeout: AtomicBool::new(false),
                deadline: Some(Instant::now() + timeout),
                ticks: AtomicU64::new(0),
            }),
        }
    }

    /// Request cancellation; every clone's next checkpoint fires.
    pub fn cancel(&self) {
        self.inner.flag.store(true, Ordering::Relaxed);
    }

    /// Has the token fired (or been cancelled)?
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.inner.flag.load(Ordering::Relaxed)
    }

    /// The bucket-boundary check: unwinds with a [`Cancelled`] payload when
    /// the token has fired. Checks the flag every call; consults the
    /// wall clock only every 64th call (and sets the flag, so sibling
    /// shards stop at their next boundary).
    ///
    /// # Panics
    /// With a [`Cancelled`] payload — by design; callers catch it at cell
    /// granularity.
    #[inline]
    pub fn checkpoint(&self) {
        if self.inner.flag.load(Ordering::Relaxed) {
            self.fire();
        }
        if self.inner.deadline.is_some() {
            let t = self.inner.ticks.fetch_add(1, Ordering::Relaxed);
            if t.is_multiple_of(64) {
                self.check_deadline();
            }
        }
    }

    #[cold]
    fn check_deadline(&self) {
        if let Some(deadline) = self.inner.deadline {
            if Instant::now() >= deadline {
                self.inner.reason_timeout.store(true, Ordering::Relaxed);
                self.inner.flag.store(true, Ordering::Relaxed);
                self.fire();
            }
        }
    }

    #[cold]
    fn fire(&self) {
        let reason = if self.inner.reason_timeout.load(Ordering::Relaxed) {
            CancelReason::TimedOut
        } else {
            CancelReason::Requested
        };
        std::panic::panic_any(Cancelled { reason });
    }
}

impl std::fmt::Debug for CancelToken {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CancelToken")
            .field("cancelled", &self.is_cancelled())
            .field("deadline", &self.inner.deadline)
            .finish()
    }
}

/// The structured error a caught worker panic becomes: the smallest failing
/// item/trial index plus the decoded payload. `Err(WorkerPanic)` from the
/// `try_` pool entry points is deterministic across thread counts — every
/// item is still evaluated (the queue drains; attempt counters advance
/// uniformly) and the minimum index wins.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerPanic {
    /// The smallest item/trial index whose evaluation panicked.
    pub index: usize,
    /// The panic message (or a placeholder for non-string payloads).
    pub message: String,
    /// Present when the panic was an injected fault — carries the site.
    pub injected: Option<InjectedFault>,
    /// Present when the panic was a cancellation/timeout unwind.
    pub cancelled: Option<CancelReason>,
}

impl WorkerPanic {
    /// Decode a caught panic payload for item `index`.
    #[must_use]
    pub fn from_payload(index: usize, payload: &(dyn Any + Send)) -> Self {
        let injected = payload.downcast_ref::<InjectedFault>().copied();
        let cancelled = payload.downcast_ref::<Cancelled>().map(|c| c.reason);
        // A WorkerPanic re-thrown via panic_any keeps its decoded fields.
        if let Some(inner) = payload.downcast_ref::<WorkerPanic>() {
            return Self {
                index,
                ..inner.clone()
            };
        }
        Self {
            index,
            message: panic_message(payload),
            injected,
            cancelled,
        }
    }
}

impl std::fmt::Display for WorkerPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "worker panicked at item {}: {}",
            self.index, self.message
        )
    }
}

impl std::error::Error for WorkerPanic {}

/// Render a caught panic payload as a message: handles `&str`/`String`
/// panics, typed [`InjectedFault`]/[`Cancelled`]/[`WorkerPanic`] payloads,
/// and falls back to a placeholder for anything else.
#[must_use]
pub fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(f) = payload.downcast_ref::<InjectedFault>() {
        f.to_string()
    } else if let Some(c) = payload.downcast_ref::<Cancelled>() {
        c.to_string()
    } else if let Some(w) = payload.downcast_ref::<WorkerPanic>() {
        w.to_string()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Extract the [`InjectedFault`] from a caught panic payload, if that is
/// what unwound (directly or wrapped in a [`WorkerPanic`]).
#[must_use]
pub fn injected_fault(payload: &(dyn Any + Send)) -> Option<InjectedFault> {
    payload
        .downcast_ref::<InjectedFault>()
        .copied()
        .or_else(|| {
            payload
                .downcast_ref::<WorkerPanic>()
                .and_then(|w| w.injected)
        })
}

/// Extract the [`CancelReason`] from a caught panic payload, if the unwind
/// was a cancellation (directly or wrapped in a [`WorkerPanic`]).
#[must_use]
pub fn cancel_reason(payload: &(dyn Any + Send)) -> Option<CancelReason> {
    payload
        .downcast_ref::<Cancelled>()
        .map(|c| c.reason)
        .or_else(|| {
            payload
                .downcast_ref::<WorkerPanic>()
                .and_then(|w| w.cancelled)
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn would_fire_is_deterministic_and_respects_fires() {
        let s = FaultSchedule::new(42, 0.5, Fault::Panic);
        for key in 0..64 {
            let first = s.would_fire(site::SWEEP_CELL, key, 0);
            assert_eq!(first, s.would_fire(site::SWEEP_CELL, key, 0));
            // Default fires=1: the retry always passes.
            assert!(!s.would_fire(site::SWEEP_CELL, key, 1));
        }
        let always = FaultSchedule::new(42, 1.0, Fault::Panic).fires(3);
        assert!(always.would_fire(site::SWEEP_CELL, 9, 2));
        assert!(!always.would_fire(site::SWEEP_CELL, 9, 3));
    }

    #[test]
    fn rate_zero_never_fires_rate_one_always_fires() {
        let never = FaultSchedule::new(1, 0.0, Fault::Panic);
        let always = FaultSchedule::new(1, 1.0, Fault::Panic);
        for key in 0..32 {
            assert!(!never.would_fire(site::POOL_ITEM, key, 0));
            assert!(always.would_fire(site::POOL_ITEM, key, 0));
        }
    }

    #[test]
    fn site_filter_arms_only_named_sites() {
        let s = FaultSchedule::new(3, 1.0, Fault::Panic).sites(&[site::SWEEP_CELL]);
        assert!(s.would_fire(site::SWEEP_CELL, 0, 0));
        assert!(!s.would_fire(site::POOL_ITEM, 0, 0));
    }

    #[test]
    fn hit_panics_with_typed_payload_and_counts_fires() {
        let guard = install(FaultSchedule::new(5, 1.0, Fault::Panic).sites(&[site::POOL_JOB]));
        assert!(active());
        let caught = std::panic::catch_unwind(|| hit(site::POOL_JOB, 17)).expect_err("must fire");
        let fault = injected_fault(caught.as_ref()).expect("typed payload");
        assert_eq!(fault.site, site::POOL_JOB);
        assert_eq!(fault.key, 17);
        assert_eq!(fault.attempt, 0);
        assert_eq!(guard.fired(), 1);
        // Second attempt at the same key passes (fires=1).
        hit(site::POOL_JOB, 17);
        assert_eq!(guard.fired(), 1);
        drop(guard);
        assert!(!active());
        hit(site::POOL_JOB, 17); // uninstalled: no-op
    }

    #[test]
    fn parse_round_trips_the_ci_spec() {
        let s = FaultSchedule::parse("seed=42,rate=0.25,kind=panic,sites=sweep::cell+pool::item")
            .unwrap()
            .unwrap();
        assert_eq!(s.seed, 42);
        assert!((s.rate - 0.25).abs() < 1e-12);
        assert_eq!(s.kind, Fault::Panic);
        assert!(s.armed(site::SWEEP_CELL) && s.armed(site::POOL_ITEM));
        assert!(!s.armed(site::ADAPTIVE_TRIAL));

        let d = FaultSchedule::parse("kind=delay:5,fires=2")
            .unwrap()
            .unwrap();
        assert_eq!(d.kind, Fault::Delay(5));
        assert_eq!(d.fires, 2);
        let a = FaultSchedule::parse("kind=alloc:4096").unwrap().unwrap();
        assert_eq!(a.kind, Fault::AllocPressure(4096));

        assert!(FaultSchedule::parse("").unwrap().is_none());
        assert!(FaultSchedule::parse("kind=frobnicate").is_err());
        assert!(FaultSchedule::parse("sites=no::such").is_err());
        assert!(FaultSchedule::parse("gibberish").is_err());
    }

    #[test]
    fn delay_and_alloc_faults_do_not_unwind() {
        let guard = install(
            FaultSchedule::new(2, 1.0, Fault::AllocPressure(1 << 16)).sites(&[site::SWEEP_CELL]),
        );
        hit(site::SWEEP_CELL, 0);
        assert_eq!(guard.fired(), 1);
        drop(guard);
        let guard = install(FaultSchedule::new(2, 1.0, Fault::Delay(1)).sites(&[site::SWEEP_CELL]));
        hit(site::SWEEP_CELL, 0);
        assert_eq!(guard.fired(), 1);
    }

    #[test]
    fn cancel_token_fires_on_request_with_typed_payload() {
        let token = CancelToken::new();
        token.checkpoint(); // not yet cancelled: no-op
        token.cancel();
        let caught = std::panic::catch_unwind(|| token.checkpoint()).expect_err("must fire");
        assert_eq!(
            cancel_reason(caught.as_ref()),
            Some(CancelReason::Requested)
        );
    }

    #[test]
    fn cancel_token_deadline_fires_as_timeout() {
        let token = CancelToken::with_deadline(Duration::from_millis(0));
        // Tick 0 consults the wall clock immediately.
        let caught = std::panic::catch_unwind(|| token.checkpoint()).expect_err("must fire");
        assert_eq!(cancel_reason(caught.as_ref()), Some(CancelReason::TimedOut));
        assert!(token.is_cancelled());
    }

    #[test]
    fn generous_deadline_does_not_fire() {
        let token = CancelToken::with_deadline(Duration::from_secs(3600));
        for _ in 0..1000 {
            token.checkpoint();
        }
        assert!(!token.is_cancelled());
    }

    #[test]
    fn worker_panic_decodes_payload_kinds() {
        let caught = std::panic::catch_unwind(|| panic!("boom {}", 7)).unwrap_err();
        let wp = WorkerPanic::from_payload(3, caught.as_ref());
        assert_eq!(wp.index, 3);
        assert_eq!(wp.message, "boom 7");
        assert!(wp.injected.is_none() && wp.cancelled.is_none());

        let caught = std::panic::catch_unwind(|| {
            std::panic::panic_any(InjectedFault {
                site: site::SWEEP_CELL,
                key: 4,
                attempt: 0,
            })
        })
        .unwrap_err();
        let wp = WorkerPanic::from_payload(4, caught.as_ref());
        assert_eq!(wp.injected.unwrap().site, site::SWEEP_CELL);

        // Re-thrown WorkerPanic keeps its decoded fields.
        let rethrown = std::panic::catch_unwind(|| std::panic::panic_any(wp.clone())).unwrap_err();
        let outer = WorkerPanic::from_payload(9, rethrown.as_ref());
        assert_eq!(outer.index, 9);
        assert_eq!(outer.injected.unwrap().key, 4);
    }
}
