//! # ephemeral-parallel
//!
//! The HPC substrate of the workspace: data-parallel execution and the
//! statistics needed to turn Monte Carlo samples into the numbers reported
//! in EXPERIMENTS.md.
//!
//! * [`par_map`] / [`par_for`]: scoped data-parallelism over slices and index
//!   ranges with atomic chunk stealing (the rayon-style "just parallelise
//!   this loop" primitive, built on `std::thread::scope` so there is nothing
//!   to configure and no global state).
//! * [`par_map_with`] / [`par_for_with`]: the same primitives with
//!   per-worker scratch state (`init()` once per worker, `&mut` per item) —
//!   how batch-of-64 sweep buffers and per-trial label draws are reused
//!   across a Monte Carlo loop without reallocating.
//! * [`ThreadPool`]: a persistent worker pool on crossbeam channels for
//!   irregular task sets.
//! * [`MonteCarlo`]: the deterministic experiment runner. Trial `i` always
//!   receives the generator derived from `(experiment seed, i)`, so results
//!   are **bit-identical no matter how many threads run the experiment** —
//!   the property every number in EXPERIMENTS.md relies on.
//! * [`adaptive`]: CI-driven trial allocation on top of the same contract —
//!   batches run until the normal/Wilson interval half-width hits a target
//!   (or a cap), so trials are spent only where variance demands them. The
//!   executed trial count itself is deterministic and thread-invariant.
//! * [`stats`]: Welford online moments (mergeable, so parallel reductions
//!   are exact), summaries with quantiles, normal & Wilson confidence
//!   intervals, least-squares fits (used to fit `TD ≈ γ·log n`), histograms.
//! * [`faults`]: deterministic fault injection and cooperative
//!   cancellation — a seeded failpoint registry (`faults::site` catalog,
//!   [`FaultSchedule`](faults::FaultSchedule) derived from `SeedSequence`
//!   so injected panics/delays/alloc-pressure reproduce run-to-run), the
//!   structured [`WorkerPanic`] error the `try_` entry
//!   points return, and [`CancelToken`], the
//!   bucket-boundary watchdog behind the sweep grid's `--cell-timeout`.
//! * [`try_par_map`] / [`try_par_map_with`] / [`try_par_for_with`] /
//!   [`adaptive::try_run_adaptive`]: panic-isolated variants — item panics
//!   are caught, the queue drains, poisoned scratch is discarded, and the
//!   smallest failing index surfaces as a deterministic structured error.
//!
//! ```
//! use ephemeral_parallel::MonteCarlo;
//!
//! // Estimate E[max of 3 dice] with 10_000 deterministic trials.
//! let mc = MonteCarlo::new(10_000, 42);
//! let summary = mc.run_summary(|_, rng| {
//!     use ephemeral_rng::RandomSource;
//!     (0..3).map(|_| rng.bounded_u64(6) + 1).max().unwrap() as f64
//! });
//! assert!((summary.mean - 4.96).abs() < 0.05);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive;
pub mod faults;
mod montecarlo;
mod pool;
pub mod stats;

pub use faults::{CancelToken, WorkerPanic};
pub use montecarlo::{MonteCarlo, Proportion};
pub use pool::{
    available_threads, par_for, par_for_with, par_map, par_map_with, try_par_for_with, try_par_map,
    try_par_map_with, PoolClosed, ThreadPool,
};
