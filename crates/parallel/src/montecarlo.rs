//! The deterministic Monte Carlo experiment runner.

use crate::pool::{available_threads, par_for, par_for_with};
use crate::stats::{wilson_interval, Summary};
use ephemeral_rng::{DefaultRng, SeedSequence};

/// Runs `trials` independent simulations with per-trial derived seeds.
///
/// Determinism contract: the generator handed to trial `i` depends only on
/// `(seed, i)`, never on thread scheduling, so every reported number is
/// reproducible with `MonteCarlo::new(trials, seed)` regardless of the
/// machine's core count.
#[derive(Debug, Clone, Copy)]
pub struct MonteCarlo {
    /// Number of independent trials.
    pub trials: usize,
    /// Experiment master seed.
    pub seed: u64,
    /// Worker threads (defaults to the machine's available parallelism).
    pub threads: usize,
}

impl MonteCarlo {
    /// `trials` trials rooted at `seed`, on all available cores.
    #[must_use]
    pub fn new(trials: usize, seed: u64) -> Self {
        Self {
            trials,
            seed,
            threads: available_threads(),
        }
    }

    /// Override the thread count (1 = sequential).
    #[must_use]
    pub const fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Run `sim(trial_index, rng)` for every trial; results in trial order.
    pub fn run<R, F>(&self, sim: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize, &mut DefaultRng) -> R + Sync,
    {
        let seq = SeedSequence::new(self.seed);
        par_for(self.trials, self.threads, |i| {
            let mut rng = seq.rng(i as u64);
            sim(i, &mut rng)
        })
    }

    /// [`MonteCarlo::run`] with per-worker scratch state: `init()` is called
    /// once per worker thread and the state is handed to every trial that
    /// worker executes. The determinism contract is unchanged — trial `i`
    /// still draws from the generator derived from `(seed, i)` — so the
    /// state must only be used for reusable allocations (scratch label
    /// draws, sweep frontiers), never to carry data between trials.
    pub fn run_with<S, R, I, F>(&self, init: I, sim: F) -> Vec<R>
    where
        R: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, usize, &mut DefaultRng) -> R + Sync,
    {
        let seq = SeedSequence::new(self.seed);
        par_for_with(self.trials, self.threads, init, |state, i| {
            let mut rng = seq.rng(i as u64);
            sim(state, i, &mut rng)
        })
    }

    /// Run a real-valued simulation and summarise the samples.
    pub fn run_summary<F>(&self, sim: F) -> Summary
    where
        F: Fn(usize, &mut DefaultRng) -> f64 + Sync,
    {
        Summary::from_samples(&self.run(sim))
    }

    /// Run a boolean simulation and report the empirical success
    /// probability with a 95% Wilson interval.
    pub fn success_probability<F>(&self, sim: F) -> Proportion
    where
        F: Fn(usize, &mut DefaultRng) -> bool + Sync,
    {
        let outcomes = self.run(sim);
        let successes = outcomes.iter().filter(|&&b| b).count();
        Proportion::new(successes, outcomes.len())
    }

    /// [`MonteCarlo::success_probability`] with per-worker scratch state
    /// (see [`MonteCarlo::run_with`]).
    pub fn success_probability_with<S, I, F>(&self, init: I, sim: F) -> Proportion
    where
        I: Fn() -> S + Sync,
        F: Fn(&mut S, usize, &mut DefaultRng) -> bool + Sync,
    {
        let outcomes = self.run_with(init, sim);
        let successes = outcomes.iter().filter(|&&b| b).count();
        Proportion::new(successes, outcomes.len())
    }
}

/// An empirical proportion with its 95% Wilson score interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Proportion {
    /// Number of successes.
    pub successes: usize,
    /// Number of trials.
    pub trials: usize,
    /// Point estimate `successes / trials` (0 when `trials == 0`).
    pub estimate: f64,
    /// Lower end of the 95% Wilson interval.
    pub lo: f64,
    /// Upper end of the 95% Wilson interval.
    pub hi: f64,
}

impl Proportion {
    /// Build from raw counts.
    #[must_use]
    pub fn new(successes: usize, trials: usize) -> Self {
        let estimate = if trials == 0 {
            0.0
        } else {
            successes as f64 / trials as f64
        };
        let (lo, hi) = wilson_interval(successes, trials, 0.95);
        Self {
            successes,
            trials,
            estimate,
            lo,
            hi,
        }
    }
}

impl std::fmt::Display for Proportion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.4} [{:.4}, {:.4}] ({}/{})",
            self.estimate, self.lo, self.hi, self.successes, self.trials
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ephemeral_rng::RandomSource;

    #[test]
    fn results_are_in_trial_order_and_deterministic() {
        let mc = MonteCarlo::new(100, 7);
        let a = mc.run(|i, rng| (i as u64) ^ rng.next_u64());
        let b = mc.run(|i, rng| (i as u64) ^ rng.next_u64());
        assert_eq!(a, b);
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let base: Vec<u64> = MonteCarlo::new(500, 11)
            .with_threads(1)
            .run(|_, rng| rng.next_u64());
        for threads in [2, 4, 16] {
            let other = MonteCarlo::new(500, 11)
                .with_threads(threads)
                .run(|_, rng| rng.next_u64());
            assert_eq!(base, other, "threads={threads}");
        }
    }

    #[test]
    fn run_with_matches_run_and_is_thread_invariant() {
        // A stateful run whose state is pure scratch must reproduce the
        // stateless run bit-for-bit, at any thread count.
        let base: Vec<u64> = MonteCarlo::new(300, 21)
            .with_threads(1)
            .run(|i, rng| (i as u64).wrapping_mul(rng.next_u64()));
        for threads in [1, 3, 8] {
            let stateful = MonteCarlo::new(300, 21).with_threads(threads).run_with(
                Vec::<u64>::new,
                |scratch, i, rng| {
                    scratch.push(i as u64); // grows per worker; must not matter
                    (i as u64).wrapping_mul(rng.next_u64())
                },
            );
            assert_eq!(base, stateful, "threads={threads}");
        }
    }

    #[test]
    fn success_probability_with_matches_stateless() {
        let stateless = MonteCarlo::new(2_000, 5).success_probability(|_, rng| rng.bernoulli(0.4));
        let stateful = MonteCarlo::new(2_000, 5)
            .success_probability_with(|| 0u8, |_, _, rng| rng.bernoulli(0.4));
        assert_eq!(stateless, stateful);
    }

    #[test]
    fn different_seeds_give_different_streams() {
        let a = MonteCarlo::new(50, 1).run(|_, rng| rng.next_u64());
        let b = MonteCarlo::new(50, 2).run(|_, rng| rng.next_u64());
        assert_ne!(a, b);
    }

    #[test]
    fn summary_of_uniform_mean() {
        let mc = MonteCarlo::new(20_000, 3);
        let s = mc.run_summary(|_, rng| rng.unit_f64());
        assert!((s.mean - 0.5).abs() < 0.01, "mean {}", s.mean);
        assert!((s.sd - (1.0f64 / 12.0).sqrt()).abs() < 0.01);
    }

    #[test]
    fn success_probability_wilson_covers_truth() {
        let mc = MonteCarlo::new(5_000, 9);
        let p = mc.success_probability(|_, rng| rng.bernoulli(0.25));
        assert!((p.estimate - 0.25).abs() < 0.03, "{p}");
        assert!(p.lo <= 0.25 && 0.25 <= p.hi, "{p}");
        assert_eq!(p.trials, 5_000);
    }

    #[test]
    fn zero_trials_proportion_is_safe() {
        let p = Proportion::new(0, 0);
        assert_eq!(p.estimate, 0.0);
        assert!(p.lo <= p.hi);
    }

    #[test]
    fn display_formats() {
        let p = Proportion::new(1, 4);
        let s = format!("{p}");
        assert!(s.contains("0.2500"));
        assert!(s.contains("(1/4)"));
    }
}
