//! Data-parallel primitives.

use crate::faults::{self, site, WorkerPanic};
use parking_lot::{Condvar, Mutex};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Number of worker threads to use by default (the machine's available
/// parallelism; 1 if it cannot be determined).
#[must_use]
pub fn available_threads() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Pick a work-stealing block size: small enough to balance, large enough to
/// amortise the atomic increment.
fn block_size(len: usize, threads: usize) -> usize {
    (len / (threads * 8)).max(1)
}

/// Apply `f` to every element of `items` (with its index), in parallel on
/// `threads` threads, preserving order of results.
///
/// Work is distributed by atomic block stealing, so uneven per-item cost
/// balances automatically. Falls back to a plain sequential map when
/// `threads <= 1` or the input is tiny.
///
/// `f` must be `Sync` because multiple workers call it concurrently; it is
/// only given `&T`, never `&mut`.
pub fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map_with(items, threads, || (), |(), i, t| f(i, t))
}

/// [`par_map`] with per-worker scratch state: every worker thread calls
/// `init()` exactly once and threads the resulting value, by `&mut`, through
/// each item it processes. This is the primitive behind batch-scheduled
/// Monte Carlo loops that reuse per-trial scratch buffers (label draws,
/// sweep frontiers) instead of reallocating them on every item.
///
/// The state is deliberately invisible in the output: results depend only on
/// `(index, item)`, so the determinism contract of [`par_map`] carries over
/// — use the state for *allocations*, never for cross-item accumulation.
pub fn par_map_with<T, S, R, I, F>(items: &[T], threads: usize, init: I, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &T) -> R + Sync,
{
    let len = items.len();
    if len == 0 {
        return Vec::new();
    }
    if threads <= 1 || len <= 1 {
        let mut state = init();
        return items
            .iter()
            .enumerate()
            .map(|(i, t)| f(&mut state, i, t))
            .collect();
    }
    let threads = threads.min(len);
    let block = block_size(len, threads);
    let cursor = AtomicUsize::new(0);
    let collected: Mutex<Vec<(usize, Vec<R>)>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut state = init();
                loop {
                    let start = cursor.fetch_add(block, Ordering::Relaxed);
                    if start >= len {
                        break;
                    }
                    let end = (start + block).min(len);
                    let out: Vec<R> = (start..end).map(|i| f(&mut state, i, &items[i])).collect();
                    collected.lock().push((start, out));
                }
            });
        }
    });
    let mut chunks = collected.into_inner();
    chunks.sort_unstable_by_key(|&(start, _)| start);
    let mut result = Vec::with_capacity(len);
    for (_, chunk) in chunks {
        result.extend(chunk);
    }
    debug_assert_eq!(result.len(), len);
    result
}

/// Panic-isolated [`par_map`]: item panics are caught instead of unwinding
/// through the caller, and surface as a structured [`WorkerPanic`] carrying
/// the smallest failing index (see [`try_par_map_with`] for the contract).
pub fn try_par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Result<Vec<R>, WorkerPanic>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    try_par_map_with(items, threads, || (), |(), i, t| f(i, t))
}

/// Panic-isolated [`par_map_with`]: every item is evaluated under
/// `catch_unwind`, and a panicking item does **not** poison the rest of the
/// run —
///
/// * the block queue drains: remaining items are still evaluated, so every
///   [`faults`] attempt counter advances exactly once per item and a retry
///   of the whole call converges deterministically;
/// * a worker whose item unwound discards its scratch state and re-`init`s
///   (a half-updated scratch is never reused);
/// * the error is the [`WorkerPanic`] with the **smallest** item index —
///   identical no matter how many threads ran or how blocks interleaved.
///
/// This is the hardened entry point the sweep grid and adaptive runner sit
/// on; [`par_map_with`] keeps the zero-overhead unwinding behaviour for
/// callers that treat a panic as fatal.
pub fn try_par_map_with<T, S, R, I, F>(
    items: &[T],
    threads: usize,
    init: I,
    f: F,
) -> Result<Vec<R>, WorkerPanic>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &T) -> R + Sync,
{
    let len = items.len();
    if len == 0 {
        return Ok(Vec::new());
    }
    // One catch_unwind frame per item: the item either yields Ok(r) or
    // records its panic and the worker rebuilds its scratch.
    let guarded = |state: &mut Option<S>, i: usize, t: &T| -> Result<R, WorkerPanic> {
        let live = state.get_or_insert_with(&init);
        match catch_unwind(AssertUnwindSafe(|| {
            faults::hit(site::POOL_ITEM, i as u64);
            f(live, i, t)
        })) {
            Ok(r) => Ok(r),
            Err(payload) => {
                *state = None; // poisoned scratch: drop, never reuse
                Err(WorkerPanic::from_payload(i, payload.as_ref()))
            }
        }
    };
    if threads <= 1 || len <= 1 {
        let mut state: Option<S> = None;
        let mut first_panic: Option<WorkerPanic> = None;
        let mut out = Vec::with_capacity(len);
        for (i, t) in items.iter().enumerate() {
            match guarded(&mut state, i, t) {
                Ok(r) => out.push(r),
                Err(wp) => {
                    if first_panic.is_none() {
                        first_panic = Some(wp);
                    }
                }
            }
        }
        return match first_panic {
            None => Ok(out),
            Some(wp) => Err(wp),
        };
    }
    let threads = threads.min(len);
    let block = block_size(len, threads);
    let cursor = AtomicUsize::new(0);
    let collected: Mutex<Vec<(usize, Vec<R>)>> = Mutex::new(Vec::new());
    let panics: Mutex<Vec<WorkerPanic>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut state: Option<S> = None;
                loop {
                    let start = cursor.fetch_add(block, Ordering::Relaxed);
                    if start >= len {
                        break;
                    }
                    let end = (start + block).min(len);
                    let mut out = Vec::with_capacity(end - start);
                    for (i, item) in items.iter().enumerate().take(end).skip(start) {
                        match guarded(&mut state, i, item) {
                            Ok(r) => out.push(r),
                            Err(wp) => panics.lock().push(wp),
                        }
                    }
                    collected.lock().push((start, out));
                }
            });
        }
    });
    let mut panics = panics.into_inner();
    panics.sort_by_key(|wp| wp.index);
    if let Some(wp) = panics.into_iter().next() {
        return Err(wp);
    }
    let mut chunks = collected.into_inner();
    chunks.sort_unstable_by_key(|&(start, _)| start);
    let mut result = Vec::with_capacity(len);
    for (_, chunk) in chunks {
        result.extend(chunk);
    }
    debug_assert_eq!(result.len(), len);
    Ok(result)
}

/// Panic-isolated [`par_for_with`] (see [`try_par_map_with`]).
pub fn try_par_for_with<S, R, I, F>(
    count: usize,
    threads: usize,
    init: I,
    f: F,
) -> Result<Vec<R>, WorkerPanic>
where
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> R + Sync,
{
    let indices: Vec<usize> = (0..count).collect();
    try_par_map_with(&indices, threads, init, |state, _, &i| f(state, i))
}

/// Parallel `for i in 0..count { f(i) }` returning results in index order.
pub fn par_for<R, F>(count: usize, threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let indices: Vec<usize> = (0..count).collect();
    par_map(&indices, threads, |_, &i| f(i))
}

/// [`par_for`] with per-worker scratch state (see [`par_map_with`]).
pub fn par_for_with<S, R, I, F>(count: usize, threads: usize, init: I, f: F) -> Vec<R>
where
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> R + Sync,
{
    let indices: Vec<usize> = (0..count).collect();
    par_map_with(&indices, threads, init, |state, _, &i| f(state, i))
}

type Job = Box<dyn FnOnce() + Send + 'static>;

struct PoolState {
    pending: Mutex<usize>,
    idle: Condvar,
    panicked: AtomicUsize,
}

/// Error from [`ThreadPool::try_execute`]: the pool's job channel is closed
/// (its workers are gone), so the job was not submitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolClosed;

impl std::fmt::Display for PoolClosed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool is closed; job not submitted")
    }
}

impl std::error::Error for PoolClosed {}

/// A persistent worker pool over a crossbeam channel, for irregular task
/// sets where scoped block-stealing does not fit (e.g. recursive work).
///
/// ```
/// use ephemeral_parallel::ThreadPool;
/// use std::sync::atomic::{AtomicUsize, Ordering};
/// use std::sync::Arc;
///
/// let pool = ThreadPool::new(4);
/// let hits = Arc::new(AtomicUsize::new(0));
/// for _ in 0..100 {
///     let hits = Arc::clone(&hits);
///     pool.execute(move || { hits.fetch_add(1, Ordering::Relaxed); });
/// }
/// pool.wait_idle();
/// assert_eq!(hits.load(Ordering::Relaxed), 100);
/// ```
pub struct ThreadPool {
    sender: Option<crossbeam::channel::Sender<Job>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    state: Arc<PoolState>,
    submitted: AtomicUsize,
}

impl ThreadPool {
    /// Spawn a pool with `threads` workers (at least 1).
    #[must_use]
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let (sender, receiver) = crossbeam::channel::unbounded::<Job>();
        let state = Arc::new(PoolState {
            pending: Mutex::new(0),
            idle: Condvar::new(),
            panicked: AtomicUsize::new(0),
        });
        let workers = (0..threads)
            .map(|_| {
                let receiver = receiver.clone();
                let state = Arc::clone(&state);
                std::thread::spawn(move || {
                    while let Ok(job) = receiver.recv() {
                        // Isolate job panics: the worker must survive and the
                        // pending count must drop, or wait_idle would hang.
                        let outcome = catch_unwind(AssertUnwindSafe(job));
                        if outcome.is_err() {
                            state.panicked.fetch_add(1, Ordering::Relaxed);
                        }
                        let mut pending = state.pending.lock();
                        *pending -= 1;
                        if *pending == 0 {
                            state.idle.notify_all();
                        }
                        drop(pending);
                        drop(outcome); // panic payload discarded; job failures are the job's business
                    }
                })
            })
            .collect();
        Self {
            sender: Some(sender),
            workers,
            state,
            submitted: AtomicUsize::new(0),
        }
    }

    /// Number of workers.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Submit a job.
    ///
    /// # Panics
    /// If the pool is closed (cannot happen before `Drop`); use
    /// [`try_execute`](Self::try_execute) for the structured-error form.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        if let Err(e) = self.try_execute(job) {
            panic!("{e}");
        }
    }

    /// Submit a job, reporting a closed pool as a structured [`PoolClosed`]
    /// error instead of unwinding. On error the job was not enqueued and
    /// the pending count is unchanged — [`wait_idle`](Self::wait_idle)
    /// cannot wedge on a rejected submission.
    pub fn try_execute(&self, job: impl FnOnce() + Send + 'static) -> Result<(), PoolClosed> {
        let Some(sender) = self.sender.as_ref() else {
            return Err(PoolClosed);
        };
        let key = self.submitted.fetch_add(1, Ordering::Relaxed) as u64;
        {
            let mut pending = self.state.pending.lock();
            *pending += 1;
        }
        let wrapped = move || {
            faults::hit(site::POOL_JOB, key);
            job();
        };
        if sender.send(Box::new(wrapped)).is_err() {
            // Undo the reservation so wait_idle stays accurate.
            let mut pending = self.state.pending.lock();
            *pending -= 1;
            if *pending == 0 {
                self.state.idle.notify_all();
            }
            return Err(PoolClosed);
        }
        Ok(())
    }

    /// Number of jobs whose closure panicked (and was isolated) since the
    /// pool was built — the pool's health counter: panics never kill
    /// workers, but callers can observe that they happened.
    #[must_use]
    pub fn panicked_jobs(&self) -> usize {
        self.state.panicked.load(Ordering::Relaxed)
    }

    /// Block until every submitted job has finished.
    pub fn wait_idle(&self) {
        let mut pending = self.state.pending.lock();
        while *pending > 0 {
            self.state.idle.wait(&mut pending);
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Close the channel so workers drain and exit, then join them.
        self.sender.take();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let doubled = par_map(&items, 4, |_, &x| x * 2);
        assert_eq!(doubled, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_matches_sequential_for_any_thread_count() {
        let items: Vec<u64> = (0..257).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [1, 2, 3, 7, 16, 64] {
            assert_eq!(
                par_map(&items, threads, |_, &x| x * x),
                expected,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn par_map_passes_correct_indices() {
        let items = vec!["a", "b", "c", "d"];
        let indexed = par_map(&items, 2, |i, &s| format!("{i}{s}"));
        assert_eq!(indexed, vec!["0a", "1b", "2c", "3d"]);
    }

    #[test]
    fn par_map_empty_and_singleton() {
        let empty: Vec<u32> = vec![];
        assert!(par_map(&empty, 8, |_, &x| x).is_empty());
        assert_eq!(par_map(&[7u32], 8, |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn par_map_with_uneven_work() {
        // Items with wildly different cost still produce ordered output.
        let items: Vec<u64> = (0..64).collect();
        let out = par_map(&items, 8, |_, &x| {
            let mut acc = 0u64;
            for i in 0..(x % 7) * 10_000 {
                acc = acc.wrapping_add(i);
            }
            (x, acc).0
        });
        assert_eq!(out, items);
    }

    #[test]
    fn par_map_with_reuses_state_and_matches_sequential() {
        let items: Vec<u64> = (0..513).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * 3).collect();
        for threads in [1, 2, 5, 16] {
            // State is a scratch buffer: correctness must not depend on how
            // items are distributed over workers.
            let out = par_map_with(
                &items,
                threads,
                || Vec::with_capacity(8),
                |scratch: &mut Vec<u64>, _, &x| {
                    scratch.clear();
                    scratch.push(x);
                    scratch[0] * 3
                },
            );
            assert_eq!(out, expected, "threads={threads}");
        }
    }

    #[test]
    fn par_map_with_calls_init_once_per_worker() {
        use std::sync::atomic::AtomicUsize;
        let items: Vec<u64> = (0..100).collect();
        let inits = AtomicUsize::new(0);
        let threads = 4;
        par_map_with(
            &items,
            threads,
            || {
                inits.fetch_add(1, Ordering::Relaxed);
            },
            |(), _, &x| x,
        );
        let calls = inits.load(Ordering::Relaxed);
        assert!(
            calls >= 1 && calls <= threads,
            "init called {calls} times for {threads} workers"
        );
    }

    #[test]
    fn par_map_with_empty_skips_init() {
        use std::sync::atomic::AtomicUsize;
        let inits = AtomicUsize::new(0);
        let empty: Vec<u32> = vec![];
        let out = par_map_with(
            &empty,
            8,
            || {
                inits.fetch_add(1, Ordering::Relaxed);
            },
            |(), _, &x| x,
        );
        assert!(out.is_empty());
        assert_eq!(inits.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn par_for_with_preserves_order() {
        let out = par_for_with(
            1000,
            8,
            || 0u64,
            |acc, i| {
                *acc += 1; // scratch accumulation must not leak into results
                (i * i) as u64
            },
        );
        let expected: Vec<u64> = (0..1000).map(|i: u64| i * i).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn par_for_counts() {
        let squares = par_for(10, 4, |i| i * i);
        assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49, 64, 81]);
    }

    #[test]
    fn pool_runs_all_jobs() {
        let pool = ThreadPool::new(4);
        assert_eq!(pool.threads(), 4);
        let counter = Arc::new(AtomicU64::new(0));
        for i in 0..200u64 {
            let counter = Arc::clone(&counter);
            pool.execute(move || {
                counter.fetch_add(i, Ordering::Relaxed);
            });
        }
        pool.wait_idle();
        assert_eq!(counter.load(Ordering::Relaxed), 199 * 200 / 2);
    }

    #[test]
    fn pool_wait_idle_on_empty_pool_returns() {
        let pool = ThreadPool::new(2);
        pool.wait_idle(); // must not hang
    }

    #[test]
    fn pool_survives_multiple_waves() {
        let pool = ThreadPool::new(3);
        let counter = Arc::new(AtomicU64::new(0));
        for _wave in 0..3 {
            for _ in 0..50 {
                let counter = Arc::clone(&counter);
                pool.execute(move || {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
            pool.wait_idle();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 150);
    }

    #[test]
    fn pool_survives_panicking_jobs() {
        // Failure injection: a panicking job must neither kill its worker
        // nor wedge wait_idle.
        let pool = ThreadPool::new(2);
        let counter = Arc::new(AtomicU64::new(0));
        for i in 0..40u64 {
            let counter = Arc::clone(&counter);
            pool.execute(move || {
                if i % 10 == 3 {
                    panic!("injected failure");
                }
                counter.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.wait_idle();
        assert_eq!(counter.load(Ordering::Relaxed), 36);
        // The pool still works afterwards.
        let counter2 = Arc::clone(&counter);
        pool.execute(move || {
            counter2.fetch_add(1, Ordering::Relaxed);
        });
        pool.wait_idle();
        assert_eq!(counter.load(Ordering::Relaxed), 37);
    }

    #[test]
    fn try_par_map_matches_par_map_when_nothing_panics() {
        let items: Vec<u64> = (0..257).collect();
        let expected = par_map(&items, 4, |i, &x| x * 2 + i as u64);
        for threads in [1, 2, 8] {
            assert_eq!(
                try_par_map(&items, threads, |i, &x| x * 2 + i as u64).unwrap(),
                expected,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn try_par_map_reports_smallest_failing_index_deterministically() {
        let items: Vec<u64> = (0..300).collect();
        for threads in [1, 2, 8] {
            let err = try_par_map(&items, threads, |_, &x| {
                assert!(x % 7 != 3, "injected at {x}");
                x
            })
            .unwrap_err();
            assert_eq!(err.index, 3, "threads={threads}");
            assert!(err.message.contains("injected at 3"), "{}", err.message);
        }
    }

    #[test]
    fn try_par_map_with_discards_poisoned_scratch() {
        // A panic mid-item leaves the scratch half-updated; the worker must
        // re-init rather than reuse it. We detect reuse by pushing a marker
        // before panicking: a fresh scratch never contains the marker.
        let items: Vec<u64> = (0..64).collect();
        for threads in [1, 2, 8] {
            let err = try_par_map_with(&items, threads, Vec::<u64>::new, |scratch, _, &x| {
                assert!(
                    !scratch.contains(&u64::MAX),
                    "poisoned scratch reused at item {x}"
                );
                if x == 9 {
                    scratch.push(u64::MAX); // half-updated state...
                    panic!("die at 9"); // ...must never be seen again
                }
                x
            })
            .unwrap_err();
            assert_eq!(err.index, 9, "threads={threads}");
        }
    }

    #[test]
    fn try_par_for_with_empty_is_ok() {
        let out = try_par_for_with(0, 4, || (), |(), i| i).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn pool_counts_panicked_jobs_and_try_execute_succeeds() {
        let pool = ThreadPool::new(2);
        assert_eq!(pool.panicked_jobs(), 0);
        for i in 0..10u64 {
            pool.try_execute(move || {
                if i % 5 == 1 {
                    panic!("injected");
                }
            })
            .unwrap();
        }
        pool.wait_idle();
        assert_eq!(pool.panicked_jobs(), 2);
    }

    #[test]
    fn pool_zero_threads_clamps_to_one() {
        let pool = ThreadPool::new(0);
        assert_eq!(pool.threads(), 1);
        let flag = Arc::new(AtomicU64::new(0));
        let f2 = Arc::clone(&flag);
        pool.execute(move || {
            f2.store(1, Ordering::Relaxed);
        });
        pool.wait_idle();
        assert_eq!(flag.load(Ordering::Relaxed), 1);
    }
}
