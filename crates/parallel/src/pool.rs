//! Data-parallel primitives.

use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Number of worker threads to use by default (the machine's available
/// parallelism; 1 if it cannot be determined).
#[must_use]
pub fn available_threads() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Pick a work-stealing block size: small enough to balance, large enough to
/// amortise the atomic increment.
fn block_size(len: usize, threads: usize) -> usize {
    (len / (threads * 8)).max(1)
}

/// Apply `f` to every element of `items` (with its index), in parallel on
/// `threads` threads, preserving order of results.
///
/// Work is distributed by atomic block stealing, so uneven per-item cost
/// balances automatically. Falls back to a plain sequential map when
/// `threads <= 1` or the input is tiny.
///
/// `f` must be `Sync` because multiple workers call it concurrently; it is
/// only given `&T`, never `&mut`.
pub fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map_with(items, threads, || (), |(), i, t| f(i, t))
}

/// [`par_map`] with per-worker scratch state: every worker thread calls
/// `init()` exactly once and threads the resulting value, by `&mut`, through
/// each item it processes. This is the primitive behind batch-scheduled
/// Monte Carlo loops that reuse per-trial scratch buffers (label draws,
/// sweep frontiers) instead of reallocating them on every item.
///
/// The state is deliberately invisible in the output: results depend only on
/// `(index, item)`, so the determinism contract of [`par_map`] carries over
/// — use the state for *allocations*, never for cross-item accumulation.
pub fn par_map_with<T, S, R, I, F>(items: &[T], threads: usize, init: I, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &T) -> R + Sync,
{
    let len = items.len();
    if len == 0 {
        return Vec::new();
    }
    if threads <= 1 || len <= 1 {
        let mut state = init();
        return items
            .iter()
            .enumerate()
            .map(|(i, t)| f(&mut state, i, t))
            .collect();
    }
    let threads = threads.min(len);
    let block = block_size(len, threads);
    let cursor = AtomicUsize::new(0);
    let collected: Mutex<Vec<(usize, Vec<R>)>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut state = init();
                loop {
                    let start = cursor.fetch_add(block, Ordering::Relaxed);
                    if start >= len {
                        break;
                    }
                    let end = (start + block).min(len);
                    let out: Vec<R> = (start..end).map(|i| f(&mut state, i, &items[i])).collect();
                    collected.lock().push((start, out));
                }
            });
        }
    });
    let mut chunks = collected.into_inner();
    chunks.sort_unstable_by_key(|&(start, _)| start);
    let mut result = Vec::with_capacity(len);
    for (_, chunk) in chunks {
        result.extend(chunk);
    }
    debug_assert_eq!(result.len(), len);
    result
}

/// Parallel `for i in 0..count { f(i) }` returning results in index order.
pub fn par_for<R, F>(count: usize, threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let indices: Vec<usize> = (0..count).collect();
    par_map(&indices, threads, |_, &i| f(i))
}

/// [`par_for`] with per-worker scratch state (see [`par_map_with`]).
pub fn par_for_with<S, R, I, F>(count: usize, threads: usize, init: I, f: F) -> Vec<R>
where
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> R + Sync,
{
    let indices: Vec<usize> = (0..count).collect();
    par_map_with(&indices, threads, init, |state, _, &i| f(state, i))
}

type Job = Box<dyn FnOnce() + Send + 'static>;

struct PoolState {
    pending: Mutex<usize>,
    idle: Condvar,
}

/// A persistent worker pool over a crossbeam channel, for irregular task
/// sets where scoped block-stealing does not fit (e.g. recursive work).
///
/// ```
/// use ephemeral_parallel::ThreadPool;
/// use std::sync::atomic::{AtomicUsize, Ordering};
/// use std::sync::Arc;
///
/// let pool = ThreadPool::new(4);
/// let hits = Arc::new(AtomicUsize::new(0));
/// for _ in 0..100 {
///     let hits = Arc::clone(&hits);
///     pool.execute(move || { hits.fetch_add(1, Ordering::Relaxed); });
/// }
/// pool.wait_idle();
/// assert_eq!(hits.load(Ordering::Relaxed), 100);
/// ```
pub struct ThreadPool {
    sender: Option<crossbeam::channel::Sender<Job>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    state: Arc<PoolState>,
}

impl ThreadPool {
    /// Spawn a pool with `threads` workers (at least 1).
    #[must_use]
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let (sender, receiver) = crossbeam::channel::unbounded::<Job>();
        let state = Arc::new(PoolState {
            pending: Mutex::new(0),
            idle: Condvar::new(),
        });
        let workers = (0..threads)
            .map(|_| {
                let receiver = receiver.clone();
                let state = Arc::clone(&state);
                std::thread::spawn(move || {
                    while let Ok(job) = receiver.recv() {
                        // Isolate job panics: the worker must survive and the
                        // pending count must drop, or wait_idle would hang.
                        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
                        let mut pending = state.pending.lock();
                        *pending -= 1;
                        if *pending == 0 {
                            state.idle.notify_all();
                        }
                        drop(pending);
                        drop(outcome); // panic payload discarded; job failures are the job's business
                    }
                })
            })
            .collect();
        Self {
            sender: Some(sender),
            workers,
            state,
        }
    }

    /// Number of workers.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Submit a job.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        {
            let mut pending = self.state.pending.lock();
            *pending += 1;
        }
        self.sender
            .as_ref()
            .expect("pool sender alive until drop")
            .send(Box::new(job))
            .expect("workers alive until drop");
    }

    /// Block until every submitted job has finished.
    pub fn wait_idle(&self) {
        let mut pending = self.state.pending.lock();
        while *pending > 0 {
            self.state.idle.wait(&mut pending);
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Close the channel so workers drain and exit, then join them.
        self.sender.take();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let doubled = par_map(&items, 4, |_, &x| x * 2);
        assert_eq!(doubled, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_matches_sequential_for_any_thread_count() {
        let items: Vec<u64> = (0..257).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [1, 2, 3, 7, 16, 64] {
            assert_eq!(
                par_map(&items, threads, |_, &x| x * x),
                expected,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn par_map_passes_correct_indices() {
        let items = vec!["a", "b", "c", "d"];
        let indexed = par_map(&items, 2, |i, &s| format!("{i}{s}"));
        assert_eq!(indexed, vec!["0a", "1b", "2c", "3d"]);
    }

    #[test]
    fn par_map_empty_and_singleton() {
        let empty: Vec<u32> = vec![];
        assert!(par_map(&empty, 8, |_, &x| x).is_empty());
        assert_eq!(par_map(&[7u32], 8, |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn par_map_with_uneven_work() {
        // Items with wildly different cost still produce ordered output.
        let items: Vec<u64> = (0..64).collect();
        let out = par_map(&items, 8, |_, &x| {
            let mut acc = 0u64;
            for i in 0..(x % 7) * 10_000 {
                acc = acc.wrapping_add(i);
            }
            (x, acc).0
        });
        assert_eq!(out, items);
    }

    #[test]
    fn par_map_with_reuses_state_and_matches_sequential() {
        let items: Vec<u64> = (0..513).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * 3).collect();
        for threads in [1, 2, 5, 16] {
            // State is a scratch buffer: correctness must not depend on how
            // items are distributed over workers.
            let out = par_map_with(
                &items,
                threads,
                || Vec::with_capacity(8),
                |scratch: &mut Vec<u64>, _, &x| {
                    scratch.clear();
                    scratch.push(x);
                    scratch[0] * 3
                },
            );
            assert_eq!(out, expected, "threads={threads}");
        }
    }

    #[test]
    fn par_map_with_calls_init_once_per_worker() {
        use std::sync::atomic::AtomicUsize;
        let items: Vec<u64> = (0..100).collect();
        let inits = AtomicUsize::new(0);
        let threads = 4;
        par_map_with(
            &items,
            threads,
            || {
                inits.fetch_add(1, Ordering::Relaxed);
            },
            |(), _, &x| x,
        );
        let calls = inits.load(Ordering::Relaxed);
        assert!(
            calls >= 1 && calls <= threads,
            "init called {calls} times for {threads} workers"
        );
    }

    #[test]
    fn par_map_with_empty_skips_init() {
        use std::sync::atomic::AtomicUsize;
        let inits = AtomicUsize::new(0);
        let empty: Vec<u32> = vec![];
        let out = par_map_with(
            &empty,
            8,
            || {
                inits.fetch_add(1, Ordering::Relaxed);
            },
            |(), _, &x| x,
        );
        assert!(out.is_empty());
        assert_eq!(inits.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn par_for_with_preserves_order() {
        let out = par_for_with(
            1000,
            8,
            || 0u64,
            |acc, i| {
                *acc += 1; // scratch accumulation must not leak into results
                (i * i) as u64
            },
        );
        let expected: Vec<u64> = (0..1000).map(|i: u64| i * i).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn par_for_counts() {
        let squares = par_for(10, 4, |i| i * i);
        assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49, 64, 81]);
    }

    #[test]
    fn pool_runs_all_jobs() {
        let pool = ThreadPool::new(4);
        assert_eq!(pool.threads(), 4);
        let counter = Arc::new(AtomicU64::new(0));
        for i in 0..200u64 {
            let counter = Arc::clone(&counter);
            pool.execute(move || {
                counter.fetch_add(i, Ordering::Relaxed);
            });
        }
        pool.wait_idle();
        assert_eq!(counter.load(Ordering::Relaxed), 199 * 200 / 2);
    }

    #[test]
    fn pool_wait_idle_on_empty_pool_returns() {
        let pool = ThreadPool::new(2);
        pool.wait_idle(); // must not hang
    }

    #[test]
    fn pool_survives_multiple_waves() {
        let pool = ThreadPool::new(3);
        let counter = Arc::new(AtomicU64::new(0));
        for _wave in 0..3 {
            for _ in 0..50 {
                let counter = Arc::clone(&counter);
                pool.execute(move || {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
            pool.wait_idle();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 150);
    }

    #[test]
    fn pool_survives_panicking_jobs() {
        // Failure injection: a panicking job must neither kill its worker
        // nor wedge wait_idle.
        let pool = ThreadPool::new(2);
        let counter = Arc::new(AtomicU64::new(0));
        for i in 0..40u64 {
            let counter = Arc::clone(&counter);
            pool.execute(move || {
                if i % 10 == 3 {
                    panic!("injected failure");
                }
                counter.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.wait_idle();
        assert_eq!(counter.load(Ordering::Relaxed), 36);
        // The pool still works afterwards.
        let counter2 = Arc::clone(&counter);
        pool.execute(move || {
            counter2.fetch_add(1, Ordering::Relaxed);
        });
        pool.wait_idle();
        assert_eq!(counter.load(Ordering::Relaxed), 37);
    }

    #[test]
    fn pool_zero_threads_clamps_to_one() {
        let pool = ThreadPool::new(0);
        assert_eq!(pool.threads(), 1);
        let flag = Arc::new(AtomicU64::new(0));
        let f2 = Arc::clone(&flag);
        pool.execute(move || {
            f2.store(1, Ordering::Relaxed);
        });
        pool.wait_idle();
        assert_eq!(flag.load(Ordering::Relaxed), 1);
    }
}
