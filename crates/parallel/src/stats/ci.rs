//! Confidence intervals.

/// Two-sided standard-normal quantile for the common confidence levels.
/// Inputs are snapped to the nearest supported level
/// (80%, 90%, 95%, 98%, 99%, 99.9%).
#[must_use]
pub fn z_for_confidence(level: f64) -> f64 {
    const TABLE: [(f64, f64); 6] = [
        (0.80, 1.281_551_6),
        (0.90, 1.644_853_6),
        (0.95, 1.959_964_0),
        (0.98, 2.326_347_9),
        (0.99, 2.575_829_3),
        (0.999, 3.290_526_7),
    ];
    let mut best = TABLE[0];
    for &(l, z) in &TABLE[1..] {
        if (l - level).abs() < (best.0 - level).abs() {
            best = (l, z);
        }
    }
    best.1
}

/// Normal-approximation interval `mean ± z·sem`.
#[must_use]
pub fn normal_interval(mean: f64, sem: f64, level: f64) -> (f64, f64) {
    let z = z_for_confidence(level);
    (mean - z * sem, mean + z * sem)
}

/// Wilson score interval for a binomial proportion — well-behaved at the
/// extremes (`p̂ = 0` or `1`), which success-probability experiments such as
/// E06/E08 hit routinely.
///
/// Zero successes pin the lower end at 0 but keep a positive width — the
/// interval never collapses to a point on extreme data:
///
/// ```
/// use ephemeral_parallel::stats::wilson_interval;
/// let (lo, hi) = wilson_interval(0, 50, 0.95);
/// assert_eq!(lo, 0.0);
/// assert!(hi > 0.0 && hi < 0.15);
/// ```
///
/// All successes mirror that exactly (`[1 − hi₀, 1]`):
///
/// ```
/// use ephemeral_parallel::stats::wilson_interval;
/// let (lo0, hi0) = wilson_interval(0, 50, 0.95);
/// let (lo1, hi1) = wilson_interval(50, 50, 0.95);
/// assert!((lo1 - (1.0 - hi0)).abs() < 1e-12);
/// assert!((hi1 - 1.0).abs() < 1e-12);
/// ```
///
/// A single trial stays honest — the interval covers most of `[0, 1]`
/// rather than claiming certainty from one observation:
///
/// ```
/// use ephemeral_parallel::stats::wilson_interval;
/// let (lo, hi) = wilson_interval(1, 1, 0.95);
/// assert!((hi - 1.0).abs() < 1e-12);
/// assert!(lo < 0.3, "one success can't pin the proportion: lo = {lo}");
/// ```
#[must_use]
pub fn wilson_interval(successes: usize, trials: usize, level: f64) -> (f64, f64) {
    if trials == 0 {
        return (0.0, 1.0);
    }
    let n = trials as f64;
    let p = successes as f64 / n;
    let z = z_for_confidence(level);
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let centre = (p + z2 / (2.0 * n)) / denom;
    let half = (z / denom) * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
    ((centre - half).max(0.0), (centre + half).min(1.0))
}

/// Half the width of the Wilson interval — the stopping quantity of the
/// adaptive proportion estimator. `f64::INFINITY` with no trials (an empty
/// experiment has no estimate to bound).
///
/// ```
/// use ephemeral_parallel::stats::wilson_half_width;
/// assert_eq!(wilson_half_width(0, 0, 0.95), f64::INFINITY);
/// assert!(wilson_half_width(500, 1000, 0.95) < wilson_half_width(5, 10, 0.95));
/// ```
#[must_use]
pub fn wilson_half_width(successes: usize, trials: usize, level: f64) -> f64 {
    if trials == 0 {
        return f64::INFINITY;
    }
    let (lo, hi) = wilson_interval(successes, trials, level);
    (hi - lo) / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn z_values_snap_to_levels() {
        assert!((z_for_confidence(0.95) - 1.959_964).abs() < 1e-5);
        assert!((z_for_confidence(0.94) - 1.959_964).abs() < 1e-5); // snaps to 95
        assert!((z_for_confidence(0.99) - 2.575_829).abs() < 1e-5);
        assert!((z_for_confidence(0.999) - 3.290_527).abs() < 1e-5);
    }

    #[test]
    fn normal_interval_is_symmetric() {
        let (lo, hi) = normal_interval(10.0, 0.5, 0.95);
        assert!((10.0 - lo - (hi - 10.0)).abs() < 1e-12);
        assert!((hi - lo - 2.0 * 1.959_964 * 0.5).abs() < 1e-5);
    }

    #[test]
    fn wilson_contains_point_estimate() {
        for &(s, n) in &[(0usize, 100usize), (50, 100), (100, 100), (1, 3)] {
            let (lo, hi) = wilson_interval(s, n, 0.95);
            let p = s as f64 / n as f64;
            assert!(
                lo <= p + 1e-12 && p - 1e-12 <= hi,
                "({s},{n}): [{lo},{hi}] vs {p}"
            );
            assert!((0.0..=1.0).contains(&lo) && (0.0..=1.0).contains(&hi));
        }
    }

    #[test]
    fn wilson_zero_successes_has_positive_width() {
        let (lo, hi) = wilson_interval(0, 50, 0.95);
        assert_eq!(lo, 0.0);
        assert!(hi > 0.0 && hi < 0.15);
    }

    #[test]
    fn wilson_all_successes_mirrors_zero() {
        let (lo0, hi0) = wilson_interval(0, 50, 0.95);
        let (lo1, hi1) = wilson_interval(50, 50, 0.95);
        assert!((lo1 - (1.0 - hi0)).abs() < 1e-12);
        assert!((hi1 - (1.0 - lo0)).abs() < 1e-12);
    }

    #[test]
    fn wilson_no_trials_is_vacuous() {
        assert_eq!(wilson_interval(0, 0, 0.95), (0.0, 1.0));
    }

    #[test]
    fn wilson_narrows_with_more_trials() {
        let (lo1, hi1) = wilson_interval(5, 10, 0.95);
        let (lo2, hi2) = wilson_interval(500, 1000, 0.95);
        assert!(hi2 - lo2 < hi1 - lo1);
    }

    #[test]
    fn wilson_single_trial_edge_cases() {
        let (lo, hi) = wilson_interval(0, 1, 0.95);
        assert_eq!(lo, 0.0);
        assert!(hi > 0.7, "one failure can't rule p out: hi = {hi}");
        let (lo1, hi1) = wilson_interval(1, 1, 0.95);
        assert!((lo1 - (1.0 - hi)).abs() < 1e-12);
        assert!((hi1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn half_width_is_half_the_interval() {
        for &(s, n) in &[(0usize, 20usize), (7, 20), (20, 20), (1, 1)] {
            let (lo, hi) = wilson_interval(s, n, 0.95);
            assert!((wilson_half_width(s, n, 0.95) - (hi - lo) / 2.0).abs() < 1e-15);
        }
        assert_eq!(wilson_half_width(0, 0, 0.99), f64::INFINITY);
    }
}
