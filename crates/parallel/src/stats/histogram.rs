//! Fixed-bin histograms with ASCII rendering for terminal experiment
//! reports.

/// A histogram over `[lo, hi)` with equal-width bins; out-of-range samples
/// are counted in underflow/overflow buckets.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// A histogram over `[lo, hi)` with `bins` equal bins.
    ///
    /// # Panics
    /// If `bins == 0` or `lo >= hi`.
    #[must_use]
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(lo < hi, "histogram range must be non-empty");
        Self {
            lo,
            hi,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Record one sample.
    pub fn add(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let frac = (x - self.lo) / (self.hi - self.lo);
            let bin = ((frac * self.counts.len() as f64) as usize).min(self.counts.len() - 1);
            self.counts[bin] += 1;
        }
    }

    /// Record many samples.
    pub fn extend(&mut self, xs: impl IntoIterator<Item = f64>) {
        for x in xs {
            self.add(x);
        }
    }

    /// Per-bin counts.
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Samples below `lo`.
    #[must_use]
    pub const fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Samples at or above `hi`.
    #[must_use]
    pub const fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total recorded samples (including out-of-range).
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// The half-open range `[lo, hi)` of bin `i`.
    #[must_use]
    pub fn bin_range(&self, i: usize) -> (f64, f64) {
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        (self.lo + width * i as f64, self.lo + width * (i + 1) as f64)
    }

    /// Render as ASCII bars, `width` characters for the fullest bin.
    #[must_use]
    pub fn render(&self, width: usize) -> String {
        let max = self.counts.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        for (i, &c) in self.counts.iter().enumerate() {
            let (lo, hi) = self.bin_range(i);
            let bar_len = ((c as f64 / max as f64) * width as f64).round() as usize;
            out.push_str(&format!(
                "[{lo:10.3}, {hi:10.3}) |{:<width$}| {c}\n",
                "#".repeat(bar_len),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_land_in_the_right_bins() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.extend([0.0, 1.9, 2.0, 5.5, 9.99]);
        assert_eq!(h.counts(), &[2, 1, 1, 0, 1]);
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn out_of_range_goes_to_flows() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.add(-0.1);
        h.add(1.0); // hi is exclusive
        h.add(5.0);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.counts(), &[0, 0]);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn bin_ranges_tile_the_domain() {
        let h = Histogram::new(2.0, 4.0, 4);
        assert_eq!(h.bin_range(0), (2.0, 2.5));
        assert_eq!(h.bin_range(3), (3.5, 4.0));
    }

    #[test]
    fn render_contains_bars() {
        let mut h = Histogram::new(0.0, 2.0, 2);
        h.extend([0.5, 0.6, 1.5]);
        let s = h.render(10);
        assert!(s.contains('#'));
        assert_eq!(s.lines().count(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_panics() {
        let _ = Histogram::new(0.0, 1.0, 0);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_range_panics() {
        let _ = Histogram::new(1.0, 1.0, 3);
    }
}
