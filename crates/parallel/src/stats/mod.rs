//! Statistics for Monte Carlo experiment reporting.

mod ci;
mod histogram;
mod online;
mod regression;
mod summary;

pub use ci::{normal_interval, wilson_half_width, wilson_interval, z_for_confidence};
pub use histogram::Histogram;
pub use online::OnlineStats;
pub use regression::{fit_linear, fit_log2, LinearFit};
pub use summary::{quantile_sorted, Summary};
