//! Welford online moments with exact parallel merging (Chan et al.).

use super::ci::z_for_confidence;

/// Streaming mean/variance/extrema accumulator.
///
/// `merge` implements the numerically stable pairwise-combination formula,
/// so per-thread accumulators can be reduced without bias — the reduction
/// used by the parallel Monte Carlo paths.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Default for OnlineStats {
    fn default() -> Self {
        Self::new()
    }
}

impl OnlineStats {
    /// An empty accumulator.
    #[must_use]
    pub const fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Absorb one sample.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Absorb every sample of another accumulator (exact, order-insensitive
    /// up to floating-point rounding).
    pub fn merge(&mut self, other: &Self) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of samples.
    #[must_use]
    pub const fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 for fewer than two samples).
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    #[must_use]
    pub fn sd(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean (0 when empty).
    #[must_use]
    pub fn sem(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sd() / (self.count as f64).sqrt()
        }
    }

    /// Half-width of the normal-approximation CI for the mean at the given
    /// confidence level: `z·sem`. Returns `f64::INFINITY` for fewer than
    /// two samples — the variance (and hence any honest interval) is
    /// undefined, which is exactly what an adaptive stopping rule should
    /// see so it keeps sampling.
    ///
    /// ```
    /// use ephemeral_parallel::stats::OnlineStats;
    /// let mut s = OnlineStats::new();
    /// assert_eq!(s.half_width(0.95), f64::INFINITY);
    /// s.push(1.0);
    /// assert_eq!(s.half_width(0.95), f64::INFINITY); // one sample: still undefined
    /// s.push(3.0);
    /// // two samples: sd = √2, sem = 1, z(95%) ≈ 1.96.
    /// assert!((s.half_width(0.95) - 1.959_964).abs() < 1e-5);
    /// ```
    #[must_use]
    pub fn half_width(&self, confidence: f64) -> f64 {
        if self.count < 2 {
            f64::INFINITY
        } else {
            z_for_confidence(confidence) * self.sem()
        }
    }

    /// Smallest sample (`+inf` when empty).
    #[must_use]
    pub const fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample (`-inf` when empty).
    #[must_use]
    pub const fn max(&self) -> f64 {
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_moments() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Population variance is 4; sample variance is 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn empty_stats_are_benign() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.sem(), 0.0);
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn single_sample() {
        let mut s = OnlineStats::new();
        s.push(3.5);
        assert_eq!(s.mean(), 3.5);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), 3.5);
        assert_eq!(s.max(), 3.5);
    }

    #[test]
    fn half_width_tracks_sample_count() {
        let mut s = OnlineStats::new();
        for i in 0..100 {
            s.push(f64::from(i % 10));
        }
        let wide = s.half_width(0.95);
        for i in 0..900 {
            s.push(f64::from(i % 10));
        }
        let narrow = s.half_width(0.95);
        assert!(narrow < wide, "{narrow} vs {wide}");
        // 10× the samples ⇒ ~√10 narrower.
        assert!((wide / narrow - 10f64.sqrt()).abs() < 0.2);
        // Higher confidence widens the interval.
        assert!(s.half_width(0.99) > s.half_width(0.95));
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..1000).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut left = OnlineStats::new();
        let mut right = OnlineStats::new();
        for &x in &xs[..317] {
            left.push(x);
        }
        for &x in &xs[317..] {
            right.push(x);
        }
        let mut merged = left;
        merged.merge(&right);
        assert_eq!(merged.count(), whole.count());
        assert!((merged.mean() - whole.mean()).abs() < 1e-10);
        assert!((merged.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(merged.min(), whole.min());
        assert_eq!(merged.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s = OnlineStats::new();
        s.push(1.0);
        s.push(2.0);
        let snapshot = s;
        s.merge(&OnlineStats::new());
        assert_eq!(s, snapshot);

        let mut empty = OnlineStats::new();
        empty.merge(&snapshot);
        assert_eq!(empty, snapshot);
    }

    #[test]
    fn merge_is_associative_enough() {
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        let mut c = OnlineStats::new();
        for i in 0..30 {
            a.push(f64::from(i));
        }
        for i in 30..60 {
            b.push(f64::from(i));
        }
        for i in 60..90 {
            c.push(f64::from(i));
        }
        let mut ab_c = a;
        ab_c.merge(&b);
        ab_c.merge(&c);
        let mut bc = b;
        bc.merge(&c);
        let mut a_bc = a;
        a_bc.merge(&bc);
        assert!((ab_c.mean() - a_bc.mean()).abs() < 1e-10);
        assert!((ab_c.variance() - a_bc.variance()).abs() < 1e-9);
    }
}
