//! Least-squares line fitting.
//!
//! The workhorse of the scaling experiments: Theorem 4 predicts
//! `TD(n) ≈ γ·log n`, so E02 fits measured diameters against `log₂ n` and
//! reports the slope `γ` with its coefficient of determination.

/// Result of a simple linear regression `y ≈ intercept + slope·x`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination `R²` (1 when the fit is perfect; 0 when
    /// no better than the mean; defined as 1 for a zero-variance response).
    pub r2: f64,
}

impl LinearFit {
    /// Predicted response at `x`.
    #[must_use]
    pub fn predict(&self, x: f64) -> f64 {
        self.intercept + self.slope * x
    }
}

/// Ordinary least squares on `(xs[i], ys[i])` pairs.
///
/// # Panics
/// If the slices differ in length, fewer than two points are given, or all
/// `xs` are identical.
#[must_use]
pub fn fit_linear(xs: &[f64], ys: &[f64]) -> LinearFit {
    assert_eq!(xs.len(), ys.len(), "fit_linear: mismatched lengths");
    assert!(xs.len() >= 2, "fit_linear: need at least two points");
    let n = xs.len() as f64;
    let mean_x = xs.iter().sum::<f64>() / n;
    let mean_y = ys.iter().sum::<f64>() / n;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        let dx = x - mean_x;
        let dy = y - mean_y;
        sxx += dx * dx;
        sxy += dx * dy;
        syy += dy * dy;
    }
    assert!(sxx > 0.0, "fit_linear: x values are all identical");
    let slope = sxy / sxx;
    let intercept = mean_y - slope * mean_x;
    let r2 = if syy == 0.0 {
        1.0
    } else {
        (sxy * sxy) / (sxx * syy)
    };
    LinearFit {
        slope,
        intercept,
        r2,
    }
}

/// Fit `y ≈ a + b·log₂ n` — returns the fit in `log₂ n` space, i.e.
/// `slope` is the paper's constant `γ` when `y` is a temporal diameter.
///
/// # Panics
/// As [`fit_linear`]; additionally if any `n` is zero.
#[must_use]
pub fn fit_log2(ns: &[usize], ys: &[f64]) -> LinearFit {
    let xs: Vec<f64> = ns
        .iter()
        .map(|&n| {
            assert!(n > 0, "fit_log2: n must be positive");
            (n as f64).log2()
        })
        .collect();
    fit_linear(&xs, ys)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_is_recovered() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys: Vec<f64> = xs.iter().map(|x| 2.5 * x - 1.0).collect();
        let fit = fit_linear(&xs, &ys);
        assert!((fit.slope - 2.5).abs() < 1e-12);
        assert!((fit.intercept + 1.0).abs() < 1e-12);
        assert!((fit.r2 - 1.0).abs() < 1e-12);
        assert!((fit.predict(10.0) - 24.0).abs() < 1e-12);
    }

    #[test]
    fn noisy_line_has_sub_one_r2() {
        let xs: Vec<f64> = (0..50).map(f64::from).collect();
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, x)| 3.0 * x + if i % 2 == 0 { 5.0 } else { -5.0 })
            .collect();
        let fit = fit_linear(&xs, &ys);
        assert!((fit.slope - 3.0).abs() < 0.05);
        assert!(fit.r2 < 1.0 && fit.r2 > 0.9);
    }

    #[test]
    fn constant_response_is_flat_with_perfect_r2() {
        let fit = fit_linear(&[1.0, 2.0, 3.0], &[4.0, 4.0, 4.0]);
        assert_eq!(fit.slope, 0.0);
        assert_eq!(fit.intercept, 4.0);
        assert_eq!(fit.r2, 1.0);
    }

    #[test]
    fn log2_fit_recovers_gamma() {
        // y = 3·log2(n) + 1
        let ns = [64usize, 128, 256, 512, 1024];
        let ys: Vec<f64> = ns.iter().map(|&n| 3.0 * (n as f64).log2() + 1.0).collect();
        let fit = fit_log2(&ns, &ys);
        assert!((fit.slope - 3.0).abs() < 1e-12);
        assert!((fit.intercept - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "mismatched lengths")]
    fn mismatched_lengths_panic() {
        let _ = fit_linear(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "at least two points")]
    fn single_point_panics() {
        let _ = fit_linear(&[1.0], &[1.0]);
    }

    #[test]
    #[should_panic(expected = "identical")]
    fn degenerate_x_panics() {
        let _ = fit_linear(&[2.0, 2.0], &[1.0, 3.0]);
    }
}
