//! Batch summary of a sample set.

use super::ci::normal_interval;
use super::online::OnlineStats;

/// Descriptive statistics of a finite sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub n: usize,
    /// Sample mean.
    pub mean: f64,
    /// Unbiased sample standard deviation.
    pub sd: f64,
    /// Standard error of the mean.
    pub sem: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Median (interpolated).
    pub median: f64,
    /// Lower quartile (interpolated).
    pub q25: f64,
    /// Upper quartile (interpolated).
    pub q75: f64,
}

impl Summary {
    /// Summarise samples (empty input gives an all-zero summary).
    #[must_use]
    pub fn from_samples(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return Self {
                n: 0,
                mean: 0.0,
                sd: 0.0,
                sem: 0.0,
                min: 0.0,
                max: 0.0,
                median: 0.0,
                q25: 0.0,
                q75: 0.0,
            };
        }
        let mut stats = OnlineStats::new();
        for &x in samples {
            stats.push(x);
        }
        let mut sorted = samples.to_vec();
        sorted.sort_unstable_by(f64::total_cmp);
        Self {
            n: samples.len(),
            mean: stats.mean(),
            sd: stats.sd(),
            sem: stats.sem(),
            min: stats.min(),
            max: stats.max(),
            median: quantile_sorted(&sorted, 0.5),
            q25: quantile_sorted(&sorted, 0.25),
            q75: quantile_sorted(&sorted, 0.75),
        }
    }

    /// Two-sided normal-approximation confidence interval on the mean.
    #[must_use]
    pub fn mean_interval(&self, level: f64) -> (f64, f64) {
        normal_interval(self.mean, self.sem, level)
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={:.4} sd={:.4} min={:.4} med={:.4} max={:.4}",
            self.n, self.mean, self.sd, self.min, self.median, self.max
        )
    }
}

/// Linear-interpolation quantile of an ascending-sorted slice
/// (`q ∈ [0, 1]`; the "type 7" estimator used by R and NumPy).
#[must_use]
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of empty sample");
    assert!((0.0..=1.0).contains(&q), "quantile level must be in [0,1]");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_data() {
        let s = Summary::from_samples(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.n, 5);
        assert!((s.mean - 3.0).abs() < 1e-12);
        assert!((s.median - 3.0).abs() < 1e-12);
        assert!((s.q25 - 2.0).abs() < 1e-12);
        assert!((s.q75 - 4.0).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert!((s.sd - (2.5f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn summary_is_order_invariant() {
        let a = Summary::from_samples(&[3.0, 1.0, 2.0]);
        let b = Summary::from_samples(&[1.0, 2.0, 3.0]);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_summary_is_zeroed() {
        let s = Summary::from_samples(&[]);
        assert_eq!(s.n, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn median_interpolates_even_counts() {
        let s = Summary::from_samples(&[1.0, 2.0, 3.0, 10.0]);
        assert!((s.median - 2.5).abs() < 1e-12);
    }

    #[test]
    fn quantile_endpoints() {
        let sorted = [1.0, 5.0, 9.0];
        assert_eq!(quantile_sorted(&sorted, 0.0), 1.0);
        assert_eq!(quantile_sorted(&sorted, 1.0), 9.0);
        assert_eq!(quantile_sorted(&sorted, 0.5), 5.0);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn quantile_rejects_empty() {
        let _ = quantile_sorted(&[], 0.5);
    }

    #[test]
    fn mean_interval_contains_mean() {
        let s = Summary::from_samples(&(0..100).map(f64::from).collect::<Vec<_>>());
        let (lo, hi) = s.mean_interval(0.95);
        assert!(lo < s.mean && s.mean < hi);
    }

    #[test]
    fn display_mentions_count() {
        let s = Summary::from_samples(&[1.0, 2.0]);
        assert!(format!("{s}").contains("n=2"));
    }
}
