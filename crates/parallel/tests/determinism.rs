//! Cross-thread determinism: the Monte Carlo engine's core contract.
//!
//! Trial `i` must draw the same random stream whether the experiment runs on
//! 1 thread or all of them — threads decide only *which* trials they
//! execute, never what those trials see. This is what makes every number in
//! the experiment tables reproducible on any machine.

use ephemeral_parallel::adaptive::{adaptive_mean, adaptive_proportion, AdaptiveConfig};
use ephemeral_parallel::{available_threads, MonteCarlo};
use ephemeral_rng::{RandomSource, SeedSequence};

/// A small but non-trivial simulation: a random walk whose step count and
/// step sizes both come from the trial's generator.
fn walk(trial: usize, rng: &mut ephemeral_rng::DefaultRng) -> f64 {
    let steps = 8 + rng.index(64);
    let mut position = trial as f64;
    for _ in 0..steps {
        position += rng.unit_f64() - 0.5;
    }
    position
}

#[test]
fn summaries_are_bit_identical_across_thread_counts() {
    let trials = 1003; // deliberately not a multiple of any block size
    let seed = 0xA11CE;

    let sequential = MonteCarlo::new(trials, seed)
        .with_threads(1)
        .run_summary(walk);
    let parallel = MonteCarlo::new(trials, seed)
        .with_threads(available_threads())
        .run_summary(walk);

    // PartialEq would accept -0.0 == 0.0; compare raw bits to rule out even
    // that much divergence.
    assert_eq!(sequential.n, parallel.n);
    for (name, a, b) in [
        ("mean", sequential.mean, parallel.mean),
        ("sd", sequential.sd, parallel.sd),
        ("sem", sequential.sem, parallel.sem),
        ("min", sequential.min, parallel.min),
        ("max", sequential.max, parallel.max),
        ("median", sequential.median, parallel.median),
        ("q25", sequential.q25, parallel.q25),
        ("q75", sequential.q75, parallel.q75),
    ] {
        assert_eq!(a.to_bits(), b.to_bits(), "{name}: {a} != {b}");
    }
}

#[test]
fn raw_trial_outputs_are_identical_across_thread_counts() {
    let seed = 2014;
    let one = MonteCarlo::new(257, seed)
        .with_threads(1)
        .run(|i, rng| (i as u64).wrapping_add(rng.next_u64()));
    for threads in [2, 3, available_threads().max(2)] {
        let many = MonteCarlo::new(257, seed)
            .with_threads(threads)
            .run(|i, rng| (i as u64).wrapping_add(rng.next_u64()));
        assert_eq!(one, many, "threads={threads}");
    }
}

/// The adaptive estimator's whole point is to choose its own trial count —
/// which must still be a pure function of `(config, seed)`. Running on 1, 2
/// and 8 workers has to yield the same trial count, the same moments (to
/// the bit: samples are folded in trial order on one thread) and the same
/// convergence verdict.
#[test]
fn adaptive_estimates_are_identical_across_1_2_and_8_threads() {
    let cfg = AdaptiveConfig::new(0.04)
        .with_min_trials(16)
        .with_batch(16)
        .with_max_trials(5_000);
    let mean_base = adaptive_mean(&cfg, 0xADA7, 1, walk);
    let prop_base = adaptive_proportion(&cfg, 0xADA7, 1, |i, rng| walk(i, rng) > i as f64);
    for threads in [2, 8] {
        let mean = adaptive_mean(&cfg, 0xADA7, threads, walk);
        assert_eq!(mean.trials, mean_base.trials, "threads={threads}");
        assert_eq!(mean.converged, mean_base.converged, "threads={threads}");
        assert_eq!(
            mean.stats.mean().to_bits(),
            mean_base.stats.mean().to_bits(),
            "threads={threads}"
        );
        assert_eq!(
            mean.half_width.to_bits(),
            mean_base.half_width.to_bits(),
            "threads={threads}"
        );
        let prop = adaptive_proportion(&cfg, 0xADA7, threads, |i, rng| walk(i, rng) > i as f64);
        assert_eq!(prop, prop_base, "threads={threads}");
    }
}

/// Golden values locking in the `SeedSequence::derive` construction.
///
/// `MonteCarlo` hands trial `i` the generator `SeedSequence::new(seed).rng(i)`;
/// if the derivation in `crates/rng/src/seeds.rs` changes, every published
/// experiment number silently changes with it. These constants make that
/// loud instead. Update them ONLY with a changelog entry declaring the
/// stream break.
#[test]
fn seed_derivation_contract_is_frozen() {
    let seq = SeedSequence::new(2014);
    let derived: Vec<u64> = (0..4).map(|i| seq.derive(i)).collect();
    assert_eq!(
        derived,
        vec![
            0xa33c_e03d_6365_e349,
            0x8117_30c4_a820_6379,
            0x2aae_47ac_363d_db3e,
            0x9395_81a0_807a_6c69,
        ],
        "SeedSequence::derive changed — this breaks reproducibility of all \
         published experiment numbers"
    );

    // The first output of each trial generator, as MonteCarlo consumes it.
    let firsts: Vec<u64> = (0..3).map(|i| seq.rng(i).next_u64()).collect();
    assert_eq!(
        firsts,
        vec![
            0x1760_098b_8c92_c0d8,
            0x2f42_6b59_c44e_54b2,
            0xe56d_d46c_baca_1b43,
        ],
        "Xoshiro256PlusPlus seeding or output changed"
    );
}
