//! Post-fault determinism of the parallel substrate: after an injected
//! worker panic is caught and reported, the pool and the adaptive runner
//! must stay usable and keep producing **bit-identical** results across
//! 1/2/8 workers — no poisoned state, no scheduling leak into values.
//!
//! The fault registry is process-global, so these tests live in their own
//! integration binary and serialize on [`SERIAL`].

use ephemeral_parallel::adaptive::{
    run_adaptive, try_run_adaptive, AdaptiveConfig, MeanAccumulator,
};
use ephemeral_parallel::faults::{self, site, Fault, FaultSchedule};
use ephemeral_parallel::{par_map, try_par_map, try_par_map_with, ThreadPool};
use std::sync::Mutex;

/// Serializes whole tests: a fault-free phase run while a sibling test's
/// schedule is live would be anything but fault-free.
static SERIAL: Mutex<()> = Mutex::new(());

fn mean_run(threads: usize, trials: usize) -> (f64, usize) {
    let cfg = AdaptiveConfig::new(0.01)
        .with_min_trials(trials)
        .with_batch(trials)
        .with_max_trials(trials);
    let run = run_adaptive(
        &cfg,
        0xBEEF,
        threads,
        || 0u64,
        |_, t, rng| {
            use ephemeral_rng::RandomSource;
            (t as f64).mul_add(1e-6, rng.unit_f64())
        },
    );
    let acc: &MeanAccumulator = &run.accumulator;
    (acc.stats.mean(), run.trials)
}

#[test]
fn pool_survives_injected_item_panic_and_stays_bit_deterministic() {
    let _serial = SERIAL
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let items: Vec<u64> = (0..257).collect();
    let square = |_i: usize, x: &u64| x * x;
    let clean: Vec<u64> = par_map(&items, 4, square);

    // One-shot panics at one in three pool items: the first try_par_map
    // reports the smallest failing index, identically at every width.
    let schedule = FaultSchedule::new(0xAB, 0.34, Fault::Panic).sites(&[site::POOL_ITEM]);
    let mut first_failure = None;
    for threads in [1, 2, 8] {
        let guard = faults::install(schedule.clone());
        let err = try_par_map(&items, threads, square)
            .expect_err("schedule must hit at least one of 257 items");
        let fired = guard.fired();
        drop(guard);
        assert!(fired > 0, "threads={threads}");
        let injected = err.injected.expect("panic payload carries the failpoint");
        assert_eq!(injected.site, site::POOL_ITEM);
        match first_failure {
            None => first_failure = Some(err.index),
            // The queue drains even after a panic, so the *smallest*
            // failing item is reported no matter how chunks landed.
            Some(index) => assert_eq!(err.index, index, "threads={threads}"),
        }
    }

    // After the faulted run, the same entry points keep producing the
    // clean bytes at every width — nothing was poisoned.
    for threads in [1, 2, 8] {
        assert_eq!(par_map(&items, threads, square), clean, "threads={threads}");
        assert_eq!(
            try_par_map(&items, threads, square).expect("no schedule installed"),
            clean,
            "threads={threads}"
        );
    }
}

#[test]
fn poisoned_scratch_is_rebuilt_not_reused_after_injected_panic() {
    let _serial = SERIAL
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let items: Vec<u64> = (0..64).collect();
    // Scratch is a counter; the result leaks it so reuse of a poisoned
    // (post-panic) scratch would shift every later value on that worker.
    let f = |state: &mut u64, _i: usize, x: &u64| {
        *state += 1;
        x + *state - *state // value independent of scratch: x
    };
    let clean = try_par_map_with(&items, 2, || 0u64, f).expect("fault-free");
    let guard =
        faults::install(FaultSchedule::new(0xCD, 1.0, Fault::Panic).sites(&[site::POOL_ITEM]));
    let err = try_par_map_with(&items, 2, || 0u64, f).expect_err("rate-1.0 panics");
    assert_eq!(err.index, 0, "queue drain surfaces the smallest item");
    // Attempt counters advanced on every item, so the retry is clean —
    // and bit-identical to the never-faulted run at every width.
    for threads in [1, 2, 8] {
        assert_eq!(
            try_par_map_with(&items, threads, || 0u64, f).expect("one-shot faults spent"),
            clean,
            "threads={threads}"
        );
    }
    drop(guard);
}

#[test]
fn adaptive_runs_stay_bit_identical_across_widths_after_injected_trial_panic() {
    let _serial = SERIAL
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let trials = 96;
    let clean = mean_run(1, trials);

    let cfg = AdaptiveConfig::new(0.01)
        .with_min_trials(trials)
        .with_batch(trials)
        .with_max_trials(trials);
    let sim = |_: &mut u64, t: usize, rng: &mut ephemeral_rng::DefaultRng| {
        use ephemeral_rng::RandomSource;
        (t as f64).mul_add(1e-6, rng.unit_f64())
    };
    let mut first_failure = None;
    for threads in [1, 2, 8] {
        let guard = faults::install(
            FaultSchedule::new(0xEF, 0.2, Fault::Panic).sites(&[site::ADAPTIVE_TRIAL]),
        );
        let err = try_run_adaptive::<MeanAccumulator, _, _, _>(&cfg, 0xBEEF, threads, || 0u64, sim)
            .expect_err("rate 0.2 over 96 trials fires");
        drop(guard);
        assert_eq!(
            err.injected.expect("injected payload survives").site,
            site::ADAPTIVE_TRIAL
        );
        // Samples fold in trial order, so the reported failure is the
        // lowest faulted trial — the same at every width.
        match first_failure {
            None => first_failure = Some(err.index),
            Some(index) => assert_eq!(err.index, index, "threads={threads}"),
        }
        // The runner is reusable immediately, at full fidelity.
        assert_eq!(mean_run(threads, trials), clean, "threads={threads}");
    }
}

#[test]
fn thread_pool_outlives_injected_job_panics() {
    let _serial = SERIAL
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let pool = ThreadPool::new(4);
    let guard =
        faults::install(FaultSchedule::new(0x11, 1.0, Fault::Panic).sites(&[site::POOL_JOB]));
    let jobs = 16;
    for _ in 0..jobs {
        pool.execute(|| {});
    }
    pool.wait_idle();
    let died = pool.panicked_jobs();
    drop(guard);
    assert_eq!(died, jobs, "one-shot per key: every first submission dies");
    // Workers caught the unwinds; the pool still runs jobs to completion.
    let flag = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
    for _ in 0..jobs {
        let flag = std::sync::Arc::clone(&flag);
        pool.execute(move || {
            flag.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        });
    }
    pool.wait_idle();
    assert_eq!(flag.load(std::sync::atomic::Ordering::Relaxed), jobs);
    assert_eq!(
        pool.panicked_jobs(),
        died,
        "no further deaths without a schedule"
    );
}
