//! Regression tests for `par_map` block-stealing edge cases.
//!
//! Audit notes on `pool.rs`:
//!
//! * `len` not divisible by the block size — the final block is clipped with
//!   `end = (start + block).min(len)`, so no out-of-bounds reads and no
//!   dropped tail elements.
//! * `threads > len` — the worker count is clamped with
//!   `threads.min(len)`, so no thread ever starts with an empty universe
//!   (and `len <= 1` short-circuits to the sequential path entirely).
//!
//! These tests pin that behaviour for adversarial lengths: 1, primes, and
//! `threads * 8 ± 1` (the boundary of the `len / (threads * 8)` block-size
//! heuristic, where rounding once dropped whole tails in similar designs).

use ephemeral_parallel::{available_threads, par_for, par_map};

fn check_matches_sequential(len: usize, threads: usize) {
    let items: Vec<u64> = (0..len as u64).map(|x| x.wrapping_mul(0x9e37)).collect();
    let expected: Vec<u64> = items
        .iter()
        .enumerate()
        .map(|(i, &x)| x.rotate_left((i % 63) as u32) ^ i as u64)
        .collect();
    let got = par_map(&items, threads, |i, &x| {
        x.rotate_left((i % 63) as u32) ^ i as u64
    });
    assert_eq!(got, expected, "len={len} threads={threads}");
}

#[test]
fn adversarial_lengths_match_sequential() {
    for threads in [1, 2, 3, 4, 7, 8, 16, 64] {
        // Singleton and tiny inputs.
        for len in [1, 2, 3] {
            check_matches_sequential(len, threads);
        }
        // Primes: never divisible by any block size > 1.
        for len in [5, 13, 101, 251, 257, 1009] {
            check_matches_sequential(len, threads);
        }
        // The block-size heuristic boundary: threads * 8 ± 1 and exact.
        let pivot = threads * 8;
        for len in [pivot.saturating_sub(1).max(1), pivot, pivot + 1] {
            check_matches_sequential(len, threads);
        }
    }
}

#[test]
fn threads_exceeding_len_are_clamped() {
    // 64 threads over 5 items: must neither panic, spin, nor reorder.
    check_matches_sequential(5, 64);
    check_matches_sequential(2, available_threads().max(2) * 4);
}

#[test]
fn par_for_agrees_with_par_map_on_adversarial_counts() {
    for count in [0, 1, 31, 33, 257] {
        let seq: Vec<usize> = (0..count).map(|i| i * i + 1).collect();
        assert_eq!(par_for(count, 8, |i| i * i + 1), seq, "count={count}");
    }
}

#[test]
fn uneven_work_does_not_break_ordering_at_block_boundaries() {
    // Cost spikes at block boundaries are the worst case for stealing order.
    let threads = 4;
    let len = threads * 8 + 1;
    let items: Vec<u64> = (0..len as u64).collect();
    let out = par_map(&items, threads, |i, &x| {
        if i % 8 == 0 {
            // Busy-work so early blocks finish last.
            let mut acc = x;
            for k in 0..50_000u64 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
            }
            std::hint::black_box(acc);
        }
        x
    });
    assert_eq!(out, items);
}
