//! Property-based tests for the parallel substrate and statistics.

use ephemeral_parallel::stats::{quantile_sorted, OnlineStats, Summary};
use ephemeral_parallel::{par_map, MonteCarlo};
use ephemeral_rng::RandomSource;
use proptest::prelude::*;

proptest! {
    #[test]
    fn par_map_equals_sequential(
        items in prop::collection::vec(any::<u32>(), 0..300),
        threads in 1usize..9,
    ) {
        let seq: Vec<u64> = items
            .iter()
            .enumerate()
            .map(|(i, &x)| u64::from(x) * 3 + i as u64)
            .collect();
        let par = par_map(&items, threads, |i, &x| u64::from(x) * 3 + i as u64);
        prop_assert_eq!(seq, par);
    }

    #[test]
    fn online_stats_merge_any_split(
        xs in prop::collection::vec(-1e6f64..1e6, 2..200),
        split_frac in 0.0f64..=1.0,
    ) {
        let split = ((xs.len() as f64) * split_frac) as usize;
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut left = OnlineStats::new();
        let mut right = OnlineStats::new();
        for &x in &xs[..split] {
            left.push(x);
        }
        for &x in &xs[split..] {
            right.push(x);
        }
        left.merge(&right);
        prop_assert_eq!(left.count(), whole.count());
        prop_assert!((left.mean() - whole.mean()).abs() <= 1e-6 * (1.0 + whole.mean().abs()));
        prop_assert!(
            (left.variance() - whole.variance()).abs()
                <= 1e-5 * (1.0 + whole.variance().abs())
        );
        prop_assert_eq!(left.min(), whole.min());
        prop_assert_eq!(left.max(), whole.max());
    }

    #[test]
    fn summary_bounds_are_consistent(xs in prop::collection::vec(-1e5f64..1e5, 1..200)) {
        let s = Summary::from_samples(&xs);
        prop_assert!(s.min <= s.q25 + 1e-9);
        prop_assert!(s.q25 <= s.median + 1e-9);
        prop_assert!(s.median <= s.q75 + 1e-9);
        prop_assert!(s.q75 <= s.max + 1e-9);
        prop_assert!(s.min <= s.mean && s.mean <= s.max);
        prop_assert!(s.sd >= 0.0 && s.sem >= 0.0);
    }

    #[test]
    fn quantiles_are_monotone_in_q(xs in prop::collection::vec(-1e5f64..1e5, 1..100)) {
        let mut sorted = xs;
        sorted.sort_unstable_by(f64::total_cmp);
        let mut last = f64::NEG_INFINITY;
        for i in 0..=10 {
            let q = quantile_sorted(&sorted, f64::from(i) / 10.0);
            prop_assert!(q >= last - 1e-12);
            last = q;
        }
    }

    #[test]
    fn monte_carlo_thread_invariance(trials in 1usize..200, seed: u64) {
        let one = MonteCarlo::new(trials, seed)
            .with_threads(1)
            .run(|i, rng| rng.next_u64() ^ (i as u64));
        let many = MonteCarlo::new(trials, seed)
            .with_threads(5)
            .run(|i, rng| rng.next_u64() ^ (i as u64));
        prop_assert_eq!(one, many);
    }

    #[test]
    fn proportion_interval_contains_estimate(successes in 0usize..500, extra in 0usize..500) {
        let trials = successes + extra;
        let p = ephemeral_parallel::Proportion::new(successes, trials);
        if trials > 0 {
            prop_assert!(p.lo <= p.estimate + 1e-12);
            prop_assert!(p.estimate <= p.hi + 1e-12);
        }
        prop_assert!(p.lo >= 0.0 && p.hi <= 1.0);
    }
}
