//! # ephemeral-phonecall
//!
//! The **random phone-call model** baselines the paper compares against
//! (§1.1): in each synchronous round every node calls a uniformly random
//! neighbour; informed nodes *push* the rumor along their call, and in the
//! push–pull variant uninformed callers also *pull* it from informed
//! callees.
//!
//! Classical results reproduced by experiment E10:
//!
//! * Frieze & Grimmett / Pittel: push broadcast on `K_n` completes in
//!   `log₂ n + ln n + o(log n)` rounds w.h.p.
//! * Karp, Schindelhauer, Shenker & Vöcking: push–pull completes with
//!   `O(n·log log n)` transmissions (vs `Θ(n·log n)` for pure push).
//!
//! The contrast the paper draws: in the phone-call model *the algorithm*
//! chooses a random partner every round, whereas in a random temporal
//! network the randomness is frozen into the input — each link works
//! exactly at its labelled moments, take it or leave it. The temporal
//! clique still disseminates in `Θ(log n)` time (Theorem 4), but its
//! blind flooding protocol costs `Θ(n²)` messages, and no algorithmic
//! cleverness can trade messages for time the way push–pull does.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod push;
mod pushpull;

pub use push::{push_broadcast, push_broadcast_on_graph, push_broadcast_with_memory, PushOutcome};
pub use pushpull::{push_pull_broadcast, PushPullOutcome};
