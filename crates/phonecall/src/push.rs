//! The push protocol (Demers et al.; Frieze–Grimmett analysis).

use ephemeral_graph::Graph;
use ephemeral_rng::sample::shuffle;
use ephemeral_rng::RandomSource;

/// Result of a push broadcast.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PushOutcome {
    /// Rounds until everyone was informed (or the round limit).
    pub rounds: u32,
    /// Total rumor transmissions (one per informed node per round).
    pub messages: u64,
    /// Nodes informed at the end.
    pub informed: usize,
    /// Did everyone get the rumor?
    pub complete: bool,
}

/// Synchronous push on the complete graph `K_n`: each round, every informed
/// node sends the rumor to a uniformly random *other* node.
///
/// # Panics
/// If `n == 0` or `source >= n`.
#[must_use]
pub fn push_broadcast(
    n: usize,
    source: usize,
    max_rounds: u32,
    rng: &mut impl RandomSource,
) -> PushOutcome {
    assert!(n > 0 && source < n, "bad source/size");
    let mut informed = vec![false; n];
    informed[source] = true;
    let mut informed_list: Vec<u32> = vec![source as u32];
    let mut messages = 0u64;
    let mut rounds = 0u32;
    while informed_list.len() < n && rounds < max_rounds {
        rounds += 1;
        let mut fresh: Vec<u32> = Vec::new();
        for &u in &informed_list {
            // Uniform over the other n−1 nodes.
            let mut v = rng.bounded_u32(n as u32 - 1);
            if v >= u {
                v += 1;
            }
            messages += 1;
            if !informed[v as usize] {
                informed[v as usize] = true;
                fresh.push(v);
            }
        }
        informed_list.extend(fresh);
    }
    PushOutcome {
        rounds,
        messages,
        informed: informed_list.len(),
        complete: informed_list.len() == n,
    }
}

/// Push with per-node memory (Berenbrink et al. / Elsässer–Sauerwald): each
/// node remembers whom it already called and never repeats a partner,
/// i.e. it walks a random permutation of the other nodes. Reduces duplicate
/// deliveries, hence total transmissions, at the cost of `O(n)` memory per
/// node (here: a shuffled contact list).
///
/// # Panics
/// If `n == 0` or `source >= n`.
#[must_use]
pub fn push_broadcast_with_memory(
    n: usize,
    source: usize,
    max_rounds: u32,
    rng: &mut impl RandomSource,
) -> PushOutcome {
    assert!(n > 0 && source < n, "bad source/size");
    let mut informed = vec![false; n];
    informed[source] = true;
    let mut informed_list: Vec<u32> = vec![source as u32];
    // Lazily built shuffled contact lists + cursors.
    let mut contacts: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut cursor: Vec<usize> = vec![0; n];
    let mut messages = 0u64;
    let mut rounds = 0u32;
    while informed_list.len() < n && rounds < max_rounds {
        rounds += 1;
        let mut fresh: Vec<u32> = Vec::new();
        for &u in &informed_list {
            let u = u as usize;
            if contacts[u].is_empty() {
                let mut list: Vec<u32> = (0..n as u32).filter(|&v| v != u as u32).collect();
                shuffle(&mut list, rng);
                contacts[u] = list;
            }
            if cursor[u] >= contacts[u].len() {
                continue; // exhausted everyone
            }
            let v = contacts[u][cursor[u]];
            cursor[u] += 1;
            messages += 1;
            if !informed[v as usize] {
                informed[v as usize] = true;
                fresh.push(v);
            }
        }
        informed_list.extend(fresh);
    }
    PushOutcome {
        rounds,
        messages,
        informed: informed_list.len(),
        complete: informed_list.len() == n,
    }
}

/// Synchronous push on an arbitrary graph: informed nodes call a uniform
/// random neighbour. Nodes with no neighbours stay silent.
///
/// # Panics
/// If the graph is empty or `source` is out of range.
#[must_use]
pub fn push_broadcast_on_graph(
    g: &Graph,
    source: u32,
    max_rounds: u32,
    rng: &mut impl RandomSource,
) -> PushOutcome {
    let n = g.num_nodes();
    assert!(n > 0 && (source as usize) < n, "bad source/size");
    let mut informed = vec![false; n];
    informed[source as usize] = true;
    let mut informed_list: Vec<u32> = vec![source];
    let mut messages = 0u64;
    let mut rounds = 0u32;
    while informed_list.len() < n && rounds < max_rounds {
        rounds += 1;
        let mut fresh: Vec<u32> = Vec::new();
        let mut progress = false;
        for &u in &informed_list {
            let (nbrs, _) = g.out_adjacency(u);
            if nbrs.is_empty() {
                continue;
            }
            let v = nbrs[rng.index(nbrs.len())];
            messages += 1;
            progress = true;
            if !informed[v as usize] {
                informed[v as usize] = true;
                fresh.push(v);
            }
        }
        informed_list.extend(fresh);
        if !progress {
            break;
        }
    }
    PushOutcome {
        rounds,
        messages,
        informed: informed_list.len(),
        complete: informed_list.len() == n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ephemeral_graph::generators;
    use ephemeral_rng::default_rng;

    #[test]
    fn push_completes_in_logarithmic_rounds() {
        let mut rng = default_rng(1);
        let n = 1024;
        let out = push_broadcast(n, 0, 10_000, &mut rng);
        assert!(out.complete);
        // Frieze–Grimmett: ≈ log2 n + ln n ≈ 16.9; generous band.
        let fg = (n as f64).log2() + (n as f64).ln();
        assert!(f64::from(out.rounds) < 2.0 * fg, "rounds {}", out.rounds);
        assert!(
            f64::from(out.rounds) > 0.5 * (n as f64).log2(),
            "rounds {}",
            out.rounds
        );
        // Push sends Θ(n log n) messages.
        assert!(out.messages as f64 > 0.5 * (n as f64) * (n as f64).ln() / 2.0);
    }

    #[test]
    fn round_limit_caps_progress() {
        let mut rng = default_rng(2);
        let out = push_broadcast(1 << 12, 0, 3, &mut rng);
        assert!(!out.complete);
        assert_eq!(out.rounds, 3);
        assert!(
            out.informed <= 8,
            "at most doubling per round: {}",
            out.informed
        );
    }

    #[test]
    fn singleton_is_trivially_complete() {
        let mut rng = default_rng(3);
        let out = push_broadcast(1, 0, 10, &mut rng);
        assert!(out.complete);
        assert_eq!(out.rounds, 0);
        assert_eq!(out.messages, 0);
    }

    #[test]
    fn memory_variant_is_no_worse_and_avoids_repeats() {
        // Memory only forbids repeat *partners*; most duplicate deliveries
        // in push go to already-informed (but different) nodes, so the
        // total is statistically close to plain push — check a modest band
        // rather than strict dominance, plus the structural guarantee that
        // no node ever exceeds n−1 calls.
        let mut rng = default_rng(4);
        let n = 512;
        let mut plain_total = 0u64;
        let mut memory_total = 0u64;
        for _ in 0..10 {
            plain_total += push_broadcast(n, 0, 10_000, &mut rng).messages;
            let out = push_broadcast_with_memory(n, 0, 10_000, &mut rng);
            assert!(out.complete);
            memory_total += out.messages;
        }
        assert!(
            memory_total as f64 <= plain_total as f64 * 1.2,
            "memory {memory_total} vs plain {plain_total}"
        );
    }

    #[test]
    fn memory_variant_completes() {
        let mut rng = default_rng(5);
        let out = push_broadcast_with_memory(256, 3, 10_000, &mut rng);
        assert!(out.complete);
    }

    #[test]
    fn graph_push_respects_topology() {
        let mut rng = default_rng(6);
        // On a path the rumor spreads at most one hop per round per end.
        let g = generators::path(32);
        let out = push_broadcast_on_graph(&g, 0, 10_000, &mut rng);
        assert!(out.complete);
        assert!(
            out.rounds >= 31,
            "needs ≥ n−1 rounds from an end: {}",
            out.rounds
        );
    }

    #[test]
    fn graph_push_on_disconnected_graph_stops() {
        let mut b = ephemeral_graph::GraphBuilder::new_undirected(3);
        b.add_edge(0, 1);
        let g = b.build().unwrap();
        let mut rng = default_rng(7);
        let out = push_broadcast_on_graph(&g, 0, 1000, &mut rng);
        assert!(!out.complete);
        assert_eq!(out.informed, 2);
    }

    #[test]
    fn determinism_under_seed() {
        let a = push_broadcast(128, 0, 1000, &mut default_rng(9));
        let b = push_broadcast(128, 0, 1000, &mut default_rng(9));
        assert_eq!(a, b);
    }
}
