//! The push–pull protocol (Karp, Schindelhauer, Shenker & Vöcking).

use ephemeral_rng::RandomSource;

/// Result of a push–pull broadcast.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PushPullOutcome {
    /// Rounds until everyone was informed (or the round limit).
    pub rounds: u32,
    /// Rumor transmissions: one per informed caller (push) plus one per
    /// uninformed caller whose callee was informed (a successful pull).
    pub transmissions: u64,
    /// Nodes informed at the end.
    pub informed: usize,
    /// Did everyone get the rumor?
    pub complete: bool,
}

/// Synchronous push–pull on the complete graph: every node (informed or
/// not) calls a uniformly random other node each round; the rumor crosses
/// the call in whichever direction it can.
///
/// The quadratic-shrinking phase of the uninformed set is what caps
/// transmissions at `O(n·log log n)` once the rumor saturates — E10
/// measures exactly that contrast with pure push.
///
/// # Panics
/// If `n == 0` or `source >= n`.
#[must_use]
pub fn push_pull_broadcast(
    n: usize,
    source: usize,
    max_rounds: u32,
    rng: &mut impl RandomSource,
) -> PushPullOutcome {
    assert!(n > 0 && source < n, "bad source/size");
    let mut informed = vec![false; n];
    informed[source] = true;
    let mut informed_count = 1usize;
    let mut transmissions = 0u64;
    let mut rounds = 0u32;
    let mut fresh: Vec<u32> = Vec::new();
    while informed_count < n && rounds < max_rounds {
        rounds += 1;
        fresh.clear();
        for u in 0..n as u32 {
            let mut v = rng.bounded_u32(n as u32 - 1);
            if v >= u {
                v += 1;
            }
            match (informed[u as usize], informed[v as usize]) {
                // Push: caller has it, callee may or may not.
                (true, callee) => {
                    transmissions += 1;
                    if !callee {
                        fresh.push(v);
                    }
                }
                // Pull: caller lacks it, callee has it.
                (false, true) => {
                    transmissions += 1;
                    fresh.push(u);
                }
                (false, false) => {}
            }
        }
        for &v in &fresh {
            if !informed[v as usize] {
                informed[v as usize] = true;
                informed_count += 1;
            }
        }
    }
    PushPullOutcome {
        rounds,
        transmissions,
        informed: informed_count,
        complete: informed_count == n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::push_broadcast;
    use ephemeral_rng::default_rng;

    #[test]
    fn push_pull_completes_fast() {
        let mut rng = default_rng(1);
        let n = 1024;
        let out = push_pull_broadcast(n, 0, 10_000, &mut rng);
        assert!(out.complete);
        // Push–pull is no slower than ≈ log2 n + ln ln n + O(1); generous band.
        assert!(
            f64::from(out.rounds) < 2.5 * (n as f64).log2(),
            "rounds {}",
            out.rounds
        );
    }

    #[test]
    fn push_pull_beats_push_in_rounds() {
        let n = 4096;
        let mut pp_rounds = 0u32;
        let mut p_rounds = 0u32;
        for seed in 0..5 {
            pp_rounds += push_pull_broadcast(n, 0, 10_000, &mut default_rng(seed)).rounds;
            p_rounds += push_broadcast(n, 0, 10_000, &mut default_rng(100 + seed)).rounds;
        }
        assert!(
            pp_rounds < p_rounds,
            "push-pull {pp_rounds} !< push {p_rounds}"
        );
    }

    #[test]
    fn transmissions_are_bounded_by_n_per_round() {
        let mut rng = default_rng(2);
        let n = 256;
        let out = push_pull_broadcast(n, 0, 10_000, &mut rng);
        assert!(out.transmissions <= u64::from(out.rounds) * n as u64);
        assert!(out.transmissions >= n as u64 - 1, "at least n−1 deliveries");
    }

    #[test]
    fn round_limit_respected() {
        let mut rng = default_rng(3);
        let out = push_pull_broadcast(1 << 14, 0, 2, &mut rng);
        assert!(!out.complete);
        assert_eq!(out.rounds, 2);
    }

    #[test]
    fn singleton_trivial() {
        let mut rng = default_rng(4);
        let out = push_pull_broadcast(1, 0, 5, &mut rng);
        assert!(out.complete);
        assert_eq!(out.rounds, 0);
        assert_eq!(out.transmissions, 0);
    }

    #[test]
    fn two_nodes_one_round() {
        let mut rng = default_rng(5);
        let out = push_pull_broadcast(2, 0, 5, &mut rng);
        assert!(out.complete);
        assert_eq!(out.rounds, 1);
    }
}
