//! Distribution samplers.
//!
//! Exactly the distributions the SPAA'14 experiments need:
//!
//! * [`Binomial`] — the delayed-revelation oracle asks "how many of the `n`
//!   still-unrevealed arcs out of a frontier vertex carry a label inside the
//!   current window `∆_i`?", which is `Binomial(n, |∆_i|/a)`.
//! * [`Geometric`] — skip-sampling for `G(n,p)` generation and the waiting
//!   time method inside the binomial sampler.
//! * [`Poisson`] — arrival-count models for the F-CASE ("several labels per
//!   edge, drawn per a distribution F") extension.
//! * [`Discrete`]/[`zipf_weights`] — Walker/Vose alias tables for arbitrary
//!   finite label distributions (e.g. Zipf-skewed availability).
//! * [`Exponential`] — continuous-interval availability extension.
//!
//! Every sampler is exact except two documented approximations: binomial
//! falls back to a continuity-corrected normal only when `min(np, n(1−p)) >
//! 1000`, and Poisson only when `λ > 1024`; the experiments in this
//! workspace stay far below both cut-offs, so every published number uses an
//! exact sampler.

use crate::source::RandomSource;

/// Binomial distribution `Bin(n, p)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Binomial {
    n: u64,
    p: f64,
}

impl Binomial {
    /// Create `Bin(n, p)`. Requires `p ∈ [0, 1]` (else panics).
    #[must_use]
    pub fn new(n: u64, p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "binomial p must be in [0,1], got {p}"
        );
        Self { n, p }
    }

    /// Number of trials `n`.
    #[must_use]
    pub const fn n(&self) -> u64 {
        self.n
    }

    /// Success probability `p`.
    #[must_use]
    pub const fn p(&self) -> f64 {
        self.p
    }

    /// Mean `np`.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.n as f64 * self.p
    }

    /// Variance `np(1−p)`.
    #[must_use]
    pub fn variance(&self) -> f64 {
        self.mean() * (1.0 - self.p)
    }

    /// Draw one sample.
    pub fn sample(&self, rng: &mut impl RandomSource) -> u64 {
        sample_binomial(self.n, self.p, rng)
    }
}

fn sample_binomial(n: u64, p: f64, rng: &mut impl RandomSource) -> u64 {
    if n == 0 || p <= 0.0 {
        return 0;
    }
    if p >= 1.0 {
        return n;
    }
    // Exploit symmetry so the waiting-time method sees the small tail.
    if p > 0.5 {
        return n - sample_binomial(n, 1.0 - p, rng);
    }
    let np = n as f64 * p;
    if n <= 64 {
        // Direct Bernoulli counting: cheap and exact for tiny n.
        return (0..n).filter(|_| rng.bernoulli(p)).count() as u64;
    }
    if np <= 1000.0 {
        // Second waiting-time (geometric jumps) method, exact, O(np) expected:
        // successive inter-success gaps are Geometric(p).
        let c = (1.0 - p).ln(); // strictly negative here
        let mut successes: u64 = 0;
        let mut position: u64 = 0;
        loop {
            let gap = (rng.unit_f64_open().ln() / c).floor() as u64;
            position = position.saturating_add(gap).saturating_add(1);
            if position > n {
                return successes;
            }
            successes += 1;
        }
    }
    // Normal approximation with continuity correction — only reachable for
    // min(np, n(1-p)) > 1000 where the relative error is far below Monte
    // Carlo noise. Documented in the module docs.
    let mean = np;
    let sd = (np * (1.0 - p)).sqrt();
    loop {
        let x = (mean + sd * standard_normal(rng)).round();
        if x >= 0.0 && x <= n as f64 {
            return x as u64;
        }
    }
}

/// One standard-normal draw (Marsaglia polar method).
pub fn standard_normal(rng: &mut impl RandomSource) -> f64 {
    loop {
        let u = 2.0 * rng.unit_f64() - 1.0;
        let v = 2.0 * rng.unit_f64() - 1.0;
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * ((-2.0 * s.ln()) / s).sqrt();
        }
    }
}

/// Geometric distribution: number of **failures before the first success**
/// of a Bernoulli(`p`) sequence; support `{0, 1, 2, …}`, mean `(1−p)/p`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Geometric {
    p: f64,
    inv_log_q: f64,
}

impl Geometric {
    /// Create with success probability `p ∈ (0, 1]` (panics otherwise).
    #[must_use]
    pub fn new(p: f64) -> Self {
        assert!(p > 0.0 && p <= 1.0, "geometric p must be in (0,1], got {p}");
        let inv_log_q = if p >= 1.0 { 0.0 } else { 1.0 / (1.0 - p).ln() };
        Self { p, inv_log_q }
    }

    /// Success probability.
    #[must_use]
    pub const fn p(&self) -> f64 {
        self.p
    }

    /// Draw one sample (inversion method, exact).
    #[inline]
    pub fn sample(&self, rng: &mut impl RandomSource) -> u64 {
        if self.p >= 1.0 {
            return 0;
        }
        let draw = rng.unit_f64_open().ln() * self.inv_log_q;
        if draw >= 9.2e18 {
            u64::MAX
        } else {
            draw as u64
        }
    }
}

/// Poisson distribution with rate `λ`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Poisson {
    lambda: f64,
}

impl Poisson {
    /// Create with rate `λ > 0` (panics otherwise).
    #[must_use]
    pub fn new(lambda: f64) -> Self {
        assert!(lambda > 0.0, "poisson lambda must be > 0, got {lambda}");
        Self { lambda }
    }

    /// Rate `λ`.
    #[must_use]
    pub const fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Draw one sample. Exact (Knuth's product method, chunked so the
    /// running product never underflows) for `λ ≤ 1024`; normal
    /// approximation beyond.
    pub fn sample(&self, rng: &mut impl RandomSource) -> u64 {
        if self.lambda > 1024.0 {
            let x = (self.lambda + self.lambda.sqrt() * standard_normal(rng)).round();
            return if x < 0.0 { 0 } else { x as u64 };
        }
        // Sum of independent Poissons is Poisson: draw in chunks of rate ≤ 16
        // so exp(-chunk) stays comfortably above underflow.
        let mut remaining = self.lambda;
        let mut total: u64 = 0;
        while remaining > 0.0 {
            let chunk = remaining.min(16.0);
            remaining -= chunk;
            let limit = (-chunk).exp();
            let mut product = rng.unit_f64_open();
            while product > limit {
                total += 1;
                product *= rng.unit_f64_open();
            }
        }
        total
    }
}

/// Exponential distribution with rate `λ` (mean `1/λ`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Create with rate `λ > 0` (panics otherwise).
    #[must_use]
    pub fn new(rate: f64) -> Self {
        assert!(rate > 0.0, "exponential rate must be > 0, got {rate}");
        Self { rate }
    }

    /// Draw one sample by inversion.
    #[inline]
    pub fn sample(&self, rng: &mut impl RandomSource) -> f64 {
        -rng.unit_f64_open().ln() / self.rate
    }
}

/// A finite discrete distribution sampled in O(1) via a Walker/Vose alias
/// table. Construction is O(k) for `k` outcomes.
#[derive(Debug, Clone)]
pub struct Discrete {
    prob: Vec<f64>,  // acceptance probability of the "home" outcome per column
    alias: Vec<u32>, // fallback outcome per column
}

impl Discrete {
    /// Build from non-negative weights (not necessarily normalized).
    ///
    /// Returns `None` if `weights` is empty, contains a negative or
    /// non-finite value, or sums to zero.
    #[must_use]
    pub fn new(weights: &[f64]) -> Option<Self> {
        let k = weights.len();
        if k == 0 || weights.iter().any(|w| !w.is_finite() || *w < 0.0) {
            return None;
        }
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return None;
        }
        // Scaled weights: mean 1 per column.
        let scale = k as f64 / total;
        let mut scaled: Vec<f64> = weights.iter().map(|w| w * scale).collect();
        let mut small: Vec<u32> = Vec::with_capacity(k);
        let mut large: Vec<u32> = Vec::with_capacity(k);
        for (i, &s) in scaled.iter().enumerate() {
            if s < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        let mut prob = vec![1.0f64; k];
        let mut alias: Vec<u32> = (0..k as u32).collect();
        while let (Some(s), Some(l)) = (small.pop(), large.pop()) {
            prob[s as usize] = scaled[s as usize];
            alias[s as usize] = l;
            scaled[l as usize] = (scaled[l as usize] + scaled[s as usize]) - 1.0;
            if scaled[l as usize] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        // Residual columns (floating-point dust) keep prob = 1.
        Some(Self { prob, alias })
    }

    /// Number of outcomes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// True when the table has no outcomes (never constructed — `new`
    /// rejects empty weights — but included for API completeness).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draw one outcome index.
    #[inline]
    pub fn sample(&self, rng: &mut impl RandomSource) -> usize {
        let col = rng.index(self.prob.len());
        if rng.unit_f64() < self.prob[col] {
            col
        } else {
            self.alias[col] as usize
        }
    }
}

/// Zipf weights `w_k = 1/k^s` for ranks `1..=n`, for use with [`Discrete`].
///
/// ```
/// use ephemeral_rng::distr::{zipf_weights, Discrete};
/// let zipf = Discrete::new(&zipf_weights(100, 1.1)).unwrap();
/// # let _ = zipf;
/// ```
#[must_use]
pub fn zipf_weights(n: usize, s: f64) -> Vec<f64> {
    (1..=n).map(|k| (k as f64).powf(-s)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Xoshiro256PlusPlus;

    fn rng() -> Xoshiro256PlusPlus {
        Xoshiro256PlusPlus::seed_from_u64(20140623) // SPAA'14 started June 23.
    }

    fn mean_of(samples: &[f64]) -> f64 {
        samples.iter().sum::<f64>() / samples.len() as f64
    }

    #[test]
    fn binomial_edge_cases() {
        let mut r = rng();
        assert_eq!(Binomial::new(0, 0.5).sample(&mut r), 0);
        assert_eq!(Binomial::new(10, 0.0).sample(&mut r), 0);
        assert_eq!(Binomial::new(10, 1.0).sample(&mut r), 10);
    }

    #[test]
    #[should_panic(expected = "binomial p")]
    fn binomial_rejects_bad_p() {
        let _ = Binomial::new(10, 1.5);
    }

    #[test]
    fn binomial_small_n_matches_mean_and_variance() {
        let mut r = rng();
        let d = Binomial::new(40, 0.3);
        let samples: Vec<f64> = (0..20_000).map(|_| d.sample(&mut r) as f64).collect();
        let m = mean_of(&samples);
        assert!((m - d.mean()).abs() < 0.15, "mean {m} vs {}", d.mean());
        let var = mean_of(
            &samples
                .iter()
                .map(|x| (x - m) * (x - m))
                .collect::<Vec<_>>(),
        );
        assert!(
            (var - d.variance()).abs() < 0.5,
            "var {var} vs {}",
            d.variance()
        );
    }

    #[test]
    fn binomial_waiting_time_regime() {
        // n large, np moderate: exercises the geometric-jump branch.
        let mut r = rng();
        let d = Binomial::new(1_000_000, 30.0 / 1_000_000.0);
        let samples: Vec<f64> = (0..5_000).map(|_| d.sample(&mut r) as f64).collect();
        let m = mean_of(&samples);
        assert!((m - 30.0).abs() < 0.5, "mean {m}");
        assert!(samples.iter().all(|&x| x <= 1_000_000.0));
    }

    #[test]
    fn binomial_symmetry_branch() {
        let mut r = rng();
        let d = Binomial::new(2000, 0.9);
        let samples: Vec<f64> = (0..5_000).map(|_| d.sample(&mut r) as f64).collect();
        let m = mean_of(&samples);
        assert!((m - 1800.0).abs() < 2.0, "mean {m}");
    }

    #[test]
    fn binomial_never_exceeds_n() {
        let mut r = rng();
        for &(n, p) in &[(1u64, 0.99), (64, 0.5), (65, 0.5), (100, 0.01)] {
            let d = Binomial::new(n, p);
            for _ in 0..500 {
                assert!(d.sample(&mut r) <= n);
            }
        }
    }

    #[test]
    fn geometric_mean() {
        let mut r = rng();
        let d = Geometric::new(0.2); // mean failures = 0.8/0.2 = 4
        let samples: Vec<f64> = (0..40_000).map(|_| d.sample(&mut r) as f64).collect();
        let m = mean_of(&samples);
        assert!((m - 4.0).abs() < 0.15, "mean {m}");
    }

    #[test]
    fn geometric_p_one_is_zero() {
        let mut r = rng();
        let d = Geometric::new(1.0);
        for _ in 0..32 {
            assert_eq!(d.sample(&mut r), 0);
        }
    }

    #[test]
    fn poisson_small_lambda() {
        let mut r = rng();
        let d = Poisson::new(3.5);
        let samples: Vec<f64> = (0..40_000).map(|_| d.sample(&mut r) as f64).collect();
        let m = mean_of(&samples);
        assert!((m - 3.5).abs() < 0.1, "mean {m}");
    }

    #[test]
    fn poisson_chunked_lambda() {
        let mut r = rng();
        let d = Poisson::new(200.0); // exercises chunking (12+ chunks)
        let samples: Vec<f64> = (0..4_000).map(|_| d.sample(&mut r) as f64).collect();
        let m = mean_of(&samples);
        assert!((m - 200.0).abs() < 1.5, "mean {m}");
    }

    #[test]
    fn exponential_mean() {
        let mut r = rng();
        let d = Exponential::new(0.5); // mean 2
        let samples: Vec<f64> = (0..40_000).map(|_| d.sample(&mut r)).collect();
        let m = mean_of(&samples);
        assert!((m - 2.0).abs() < 0.1, "mean {m}");
    }

    #[test]
    fn normal_moments() {
        let mut r = rng();
        let samples: Vec<f64> = (0..40_000).map(|_| standard_normal(&mut r)).collect();
        let m = mean_of(&samples);
        assert!(m.abs() < 0.03, "mean {m}");
        let var = mean_of(&samples.iter().map(|x| x * x).collect::<Vec<_>>());
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn discrete_rejects_bad_weights() {
        assert!(Discrete::new(&[]).is_none());
        assert!(Discrete::new(&[0.0, 0.0]).is_none());
        assert!(Discrete::new(&[1.0, -1.0]).is_none());
        assert!(Discrete::new(&[f64::NAN]).is_none());
        assert!(Discrete::new(&[f64::INFINITY]).is_none());
    }

    #[test]
    fn discrete_matches_weights() {
        let mut r = rng();
        let d = Discrete::new(&[1.0, 2.0, 7.0]).unwrap();
        let mut counts = [0u32; 3];
        const N: usize = 60_000;
        for _ in 0..N {
            counts[d.sample(&mut r)] += 1;
        }
        let fr: Vec<f64> = counts.iter().map(|&c| f64::from(c) / N as f64).collect();
        assert!((fr[0] - 0.1).abs() < 0.01, "{fr:?}");
        assert!((fr[1] - 0.2).abs() < 0.01, "{fr:?}");
        assert!((fr[2] - 0.7).abs() < 0.01, "{fr:?}");
    }

    #[test]
    fn discrete_single_outcome() {
        let mut r = rng();
        let d = Discrete::new(&[3.0]).unwrap();
        assert_eq!(d.len(), 1);
        assert!(!d.is_empty());
        for _ in 0..16 {
            assert_eq!(d.sample(&mut r), 0);
        }
    }

    #[test]
    fn zipf_weights_are_decreasing() {
        let w = zipf_weights(10, 1.0);
        assert_eq!(w.len(), 10);
        for pair in w.windows(2) {
            assert!(pair[0] > pair[1]);
        }
        assert!((w[0] - 1.0).abs() < 1e-12);
        assert!((w[9] - 0.1).abs() < 1e-12);
    }

    #[test]
    fn zipf_sampling_is_head_heavy() {
        let mut r = rng();
        let d = Discrete::new(&zipf_weights(1000, 1.2)).unwrap();
        let head = (0..20_000).filter(|_| d.sample(&mut r) < 10).count();
        // With s=1.2 the top-10 mass dominates; loose check.
        assert!(head > 10_000, "head draws: {head}");
    }
}
