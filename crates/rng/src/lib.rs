//! # ephemeral-rng
//!
//! Self-contained, deterministic pseudo-random number generation for the
//! `ephemeral-networks` workspace.
//!
//! The experiments in this workspace are Monte Carlo reproductions of the
//! probabilistic theorems of Akrida, Gąsieniec, Mertzios and Spirakis,
//! *"Ephemeral Networks with Random Availability of Links: Diameter and
//! Connectivity"* (SPAA 2014). Reproducibility of those experiments — across
//! machines, thread counts and dependency upgrades — is a hard requirement,
//! which is why this crate owns its generators instead of depending on the
//! (API-churning) `rand` ecosystem:
//!
//! * [`SplitMix64`]: the 64-bit state mixer of Steele, Lea and Flood. Used
//!   for seed derivation and as a tiny standalone generator.
//! * [`Xoshiro256PlusPlus`]: Blackman & Vigna's xoshiro256++ 1.0, the
//!   workhorse generator (fast, 256-bit state, passes BigCrush), with the
//!   standard `jump`/`long_jump` sub-sequence machinery for parallel streams.
//! * [`RandomSource`]: the minimal trait the rest of the workspace programs
//!   against (uniform integers via Lemire's method, floats, Bernoulli).
//! * [`distr`]: the distribution samplers the paper's experiments need —
//!   binomial (for the delayed-revelation oracle's "how many arcs land in
//!   this label window" question), geometric, Poisson, Zipf/discrete alias
//!   tables, exponential.
//! * [`sample`]: Fisher–Yates shuffling, Floyd's distinct-k sampling,
//!   reservoir sampling.
//! * [`seeds`]: deterministic per-trial seed derivation so that a Monte Carlo
//!   experiment run on 1 thread and on 64 threads draws identical randomness
//!   for trial *i*.
//!
//! ## Quick example
//!
//! ```
//! use ephemeral_rng::{Xoshiro256PlusPlus, RandomSource};
//!
//! let mut rng = Xoshiro256PlusPlus::seed_from_u64(42);
//! let die = rng.bounded_u64(6) + 1;        // uniform in 1..=6
//! assert!((1..=6).contains(&die));
//! let p = rng.unit_f64();                  // uniform in [0, 1)
//! assert!((0.0..1.0).contains(&p));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod distr;
pub mod sample;
pub mod seeds;
mod source;
mod splitmix;
mod xoshiro;

pub use seeds::SeedSequence;
pub use source::RandomSource;
pub use splitmix::SplitMix64;
pub use xoshiro::Xoshiro256PlusPlus;

/// The default generator used throughout the workspace.
pub type DefaultRng = Xoshiro256PlusPlus;

/// Create the workspace-default generator from a 64-bit seed.
///
/// Convenience for `Xoshiro256PlusPlus::seed_from_u64`.
///
/// ```
/// let mut a = ephemeral_rng::default_rng(7);
/// let mut b = ephemeral_rng::default_rng(7);
/// use ephemeral_rng::RandomSource;
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[must_use]
pub fn default_rng(seed: u64) -> DefaultRng {
    Xoshiro256PlusPlus::seed_from_u64(seed)
}
