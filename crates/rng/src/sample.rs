//! Shuffling and sampling-without-replacement utilities.
//!
//! The delayed-revelation oracle (see `ephemeral-core`) repeatedly needs "`k`
//! distinct vertices out of `n`" with `k ≪ n`; [`sample_indices`] serves that
//! in `O(k)`/`O(k log k)` via Floyd's algorithm, switching to a partial
//! Fisher–Yates when `k` is a large fraction of `n`.

use crate::source::RandomSource;

/// In-place Fisher–Yates shuffle (uniform over all permutations).
pub fn shuffle<T>(items: &mut [T], rng: &mut impl RandomSource) {
    for i in (1..items.len()).rev() {
        let j = rng.index(i + 1);
        items.swap(i, j);
    }
}

/// Partial Fisher–Yates: after the call, `items[..k]` is a uniform sample of
/// `k` distinct elements (in uniform random order); the rest of the slice is
/// unspecified. Requires `k <= items.len()`.
pub fn partial_shuffle<T>(items: &mut [T], k: usize, rng: &mut impl RandomSource) {
    let n = items.len();
    assert!(k <= n, "partial_shuffle: k = {k} > len = {n}");
    for i in 0..k {
        let j = i + rng.index(n - i);
        items.swap(i, j);
    }
}

/// A uniform sample of `k` **distinct** indices from `0..n` (panics if
/// `k > n`). Output order is unspecified (not uniform over orderings).
///
/// Uses Floyd's algorithm with a sorted membership vector when `k` is small
/// relative to `n` (expected `O(k log k)`, no `O(n)` allocation), and a
/// partial Fisher–Yates over `0..n` otherwise.
#[must_use]
pub fn sample_indices(n: usize, k: usize, rng: &mut impl RandomSource) -> Vec<usize> {
    assert!(k <= n, "sample_indices: k = {k} > n = {n}");
    if k == 0 {
        return Vec::new();
    }
    // Heuristic crossover: Floyd wins while the membership structure stays
    // small; 1/8 keeps the binary-search vector cheap.
    if k <= n / 8 || n <= 64 && k < n {
        let mut chosen: Vec<usize> = Vec::with_capacity(k);
        for j in (n - k)..n {
            let t = rng.index(j + 1);
            match chosen.binary_search(&t) {
                // t already chosen: Floyd's rule inserts j instead.
                Ok(_) => {
                    let pos = chosen.binary_search(&j).unwrap_err();
                    chosen.insert(pos, j);
                }
                Err(pos) => chosen.insert(pos, t),
            }
        }
        chosen
    } else {
        let mut all: Vec<usize> = (0..n).collect();
        partial_shuffle(&mut all, k, rng);
        all.truncate(k);
        all
    }
}

/// Uniformly choose one element of a slice (`None` on empty).
#[must_use]
pub fn choose<'a, T>(items: &'a [T], rng: &mut impl RandomSource) -> Option<&'a T> {
    if items.is_empty() {
        None
    } else {
        Some(&items[rng.index(items.len())])
    }
}

/// Reservoir sampling (Algorithm R): a uniform sample of `k` items from an
/// iterator of unknown length. Returns fewer than `k` items iff the iterator
/// yields fewer.
#[must_use]
pub fn reservoir_sample<T, I>(iter: I, k: usize, rng: &mut impl RandomSource) -> Vec<T>
where
    I: IntoIterator<Item = T>,
{
    let mut reservoir: Vec<T> = Vec::with_capacity(k);
    if k == 0 {
        return reservoir;
    }
    for (seen, item) in iter.into_iter().enumerate() {
        if seen < k {
            reservoir.push(item);
        } else {
            let j = rng.index(seen + 1);
            if j < k {
                reservoir[j] = item;
            }
        }
    }
    reservoir
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Xoshiro256PlusPlus;

    fn rng() -> Xoshiro256PlusPlus {
        Xoshiro256PlusPlus::seed_from_u64(271828)
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = rng();
        let mut v: Vec<u32> = (0..100).collect();
        shuffle(&mut v, &mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
    }

    #[test]
    fn shuffle_handles_tiny_slices() {
        let mut r = rng();
        let mut empty: [u8; 0] = [];
        shuffle(&mut empty, &mut r);
        let mut one = [7u8];
        shuffle(&mut one, &mut r);
        assert_eq!(one, [7]);
    }

    #[test]
    fn shuffle_is_roughly_uniform() {
        // Position of element 0 after shuffling [0,1,2] should be ~uniform.
        let mut r = rng();
        let mut counts = [0u32; 3];
        for _ in 0..30_000 {
            let mut v = [0u8, 1, 2];
            shuffle(&mut v, &mut r);
            let pos = v.iter().position(|&x| x == 0).unwrap();
            counts[pos] += 1;
        }
        for &c in &counts {
            let frac = f64::from(c) / 30_000.0;
            assert!((frac - 1.0 / 3.0).abs() < 0.02, "{counts:?}");
        }
    }

    #[test]
    fn partial_shuffle_prefix_is_distinct() {
        let mut r = rng();
        let mut v: Vec<u32> = (0..50).collect();
        partial_shuffle(&mut v, 10, &mut r);
        let mut prefix = v[..10].to_vec();
        prefix.sort_unstable();
        prefix.dedup();
        assert_eq!(prefix.len(), 10);
    }

    #[test]
    fn sample_indices_basic_contract() {
        let mut r = rng();
        for &(n, k) in &[
            (100usize, 5usize),
            (100, 50),
            (100, 100),
            (8, 8),
            (1, 1),
            (10, 0),
        ] {
            let s = sample_indices(n, k, &mut r);
            assert_eq!(s.len(), k, "n={n} k={k}");
            let mut sorted = s.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), k, "duplicates for n={n} k={k}");
            assert!(s.iter().all(|&i| i < n));
        }
    }

    #[test]
    #[should_panic(expected = "k = 5 > n = 3")]
    fn sample_indices_rejects_oversample() {
        let mut r = rng();
        let _ = sample_indices(3, 5, &mut r);
    }

    #[test]
    fn sample_indices_floyd_branch_is_uniform() {
        // n = 100, k = 2 (Floyd branch): each index should appear with
        // probability k/n = 0.02.
        let mut r = rng();
        let mut counts = vec![0u32; 100];
        const TRIALS: usize = 50_000;
        for _ in 0..TRIALS {
            for i in sample_indices(100, 2, &mut r) {
                counts[i] += 1;
            }
        }
        for (i, &c) in counts.iter().enumerate() {
            let frac = f64::from(c) / TRIALS as f64;
            assert!((frac - 0.02).abs() < 0.006, "index {i}: {frac}");
        }
    }

    #[test]
    fn choose_contract() {
        let mut r = rng();
        let empty: [u8; 0] = [];
        assert!(choose(&empty, &mut r).is_none());
        let items = [10, 20, 30];
        for _ in 0..32 {
            assert!(items.contains(choose(&items, &mut r).unwrap()));
        }
    }

    #[test]
    fn reservoir_contract() {
        let mut r = rng();
        let s = reservoir_sample(0..1000, 10, &mut r);
        assert_eq!(s.len(), 10);
        let mut sorted = s.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 10);

        let short = reservoir_sample(0..3, 10, &mut r);
        assert_eq!(short.len(), 3);
        assert!(reservoir_sample(0..100, 0, &mut r).is_empty());
    }

    #[test]
    fn reservoir_is_roughly_uniform() {
        let mut r = rng();
        let mut hits = [0u32; 10];
        const TRIALS: usize = 40_000;
        for _ in 0..TRIALS {
            for x in reservoir_sample(0..10u32, 3, &mut r) {
                hits[x as usize] += 1;
            }
        }
        for &h in &hits {
            let frac = f64::from(h) / TRIALS as f64;
            assert!((frac - 0.3).abs() < 0.02, "{hits:?}");
        }
    }
}
