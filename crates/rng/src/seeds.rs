//! Deterministic seed derivation for parallel Monte Carlo experiments.
//!
//! The contract the workspace relies on: **trial `i` of an experiment draws
//! the same random stream no matter how many threads execute the
//! experiment**. We achieve this by deriving one independent seed per trial
//! from a single experiment seed, and constructing a fresh generator per
//! trial; threads then only decide *which* trials they run, never what those
//! trials draw.

use crate::splitmix::SplitMix64;
use crate::Xoshiro256PlusPlus;

/// Derives independent per-stream seeds from one base seed.
///
/// Each derived seed is `mix64(mix64(base) ⊕ mix64(stream·γ))` — two rounds
/// of the SplitMix64 finalizer keep distinct `(base, stream)` pairs far apart
/// in seed space. The construction is stateless: `derive` may be called from
/// any thread in any order.
///
/// ```
/// use ephemeral_rng::SeedSequence;
/// let seq = SeedSequence::new(42);
/// assert_eq!(seq.derive(3), SeedSequence::new(42).derive(3));
/// assert_ne!(seq.derive(3), seq.derive(4));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedSequence {
    base: u64,
}

impl SeedSequence {
    /// A sequence rooted at `base`.
    #[must_use]
    pub const fn new(base: u64) -> Self {
        Self { base }
    }

    /// The root seed.
    #[must_use]
    pub const fn base(&self) -> u64 {
        self.base
    }

    /// The seed for stream (trial) `stream`.
    #[inline]
    #[must_use]
    pub fn derive(&self, stream: u64) -> u64 {
        let a = SplitMix64::mix(self.base);
        let b = SplitMix64::mix(
            stream.wrapping_mul(crate::splitmix::GOLDEN_GAMMA) ^ 0x5851_F42D_4C95_7F2D,
        );
        SplitMix64::mix(a ^ b.rotate_left(32))
    }

    /// A ready-to-use generator for stream `stream`.
    #[must_use]
    pub fn rng(&self, stream: u64) -> Xoshiro256PlusPlus {
        Xoshiro256PlusPlus::seed_from_u64(self.derive(stream))
    }

    /// A child sequence, for nested experiments (e.g. "per-size sweep, then
    /// per-trial within the size").
    #[must_use]
    pub fn child(&self, tag: u64) -> Self {
        Self::new(self.derive(tag ^ 0xC0FF_EE00_DEAD_BEEF))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RandomSource;
    use std::collections::HashSet;

    #[test]
    fn derivation_is_pure() {
        let s = SeedSequence::new(7);
        let first: Vec<u64> = (0..16).map(|i| s.derive(i)).collect();
        let second: Vec<u64> = (0..16).map(|i| s.derive(i)).collect();
        assert_eq!(first, second);
    }

    #[test]
    fn streams_do_not_collide() {
        let s = SeedSequence::new(0);
        let seeds: HashSet<u64> = (0..10_000).map(|i| s.derive(i)).collect();
        assert_eq!(seeds.len(), 10_000);
    }

    #[test]
    fn different_bases_differ() {
        let a = SeedSequence::new(1);
        let b = SeedSequence::new(2);
        let same = (0..256).filter(|&i| a.derive(i) == b.derive(i)).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn rng_streams_are_independent_looking() {
        let s = SeedSequence::new(99);
        let mut r0 = s.rng(0);
        let mut r1 = s.rng(1);
        let same = (0..512).filter(|_| r0.next_u64() == r1.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn child_sequences_differ_from_parent() {
        let s = SeedSequence::new(5);
        let c = s.child(0);
        assert_ne!(s.base(), c.base());
        let same = (0..256).filter(|&i| s.derive(i) == c.derive(i)).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn stream_zero_is_not_base_identity() {
        let s = SeedSequence::new(1234);
        assert_ne!(s.derive(0), 1234);
    }
}
