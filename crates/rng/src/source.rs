//! The minimal generator trait the workspace programs against.

/// A source of uniformly distributed 64-bit words, with derived helpers.
///
/// Only [`next_u64`](RandomSource::next_u64) is required; everything else is
/// provided. The derived methods use textbook-correct constructions:
/// * bounded integers via Lemire's multiply-shift rejection method
///   (unbiased, at most one multiplication in the common case);
/// * floats via the 53-high-bits construction (`[0, 1)`, dyadic, uniform).
pub trait RandomSource {
    /// Next uniformly distributed 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Next uniformly distributed 32-bit word (upper half of a 64-bit draw —
    /// the high bits are the strongest bits of the xoshiro family).
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform in `[0, bound)`. `bound` must be non-zero.
    ///
    /// Lemire's unbiased multiply-shift method: draw `x`, compute the 128-bit
    /// product `x·bound`; the high 64 bits are the candidate. Only when the
    /// low half lands in the biased zone (probability `< 2⁻⁶⁴·bound`) do we
    /// reject and redraw.
    #[inline]
    fn bounded_u64(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bounded_u64 requires bound > 0");
        let mut x = self.next_u64();
        let mut m = u128::from(x) * u128::from(bound);
        let mut low = m as u64;
        if low < bound {
            // threshold = 2^64 mod bound
            let threshold = bound.wrapping_neg() % bound;
            while low < threshold {
                x = self.next_u64();
                m = u128::from(x) * u128::from(bound);
                low = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform in `[0, bound)` for 32-bit bounds. `bound` must be non-zero.
    #[inline]
    fn bounded_u32(&mut self, bound: u32) -> u32 {
        self.bounded_u64(u64::from(bound)) as u32
    }

    /// Uniform in the inclusive range `[lo, hi]`. Requires `lo <= hi`.
    #[inline]
    fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "range_u64 requires lo <= hi");
        let span = hi - lo;
        if span == u64::MAX {
            self.next_u64()
        } else {
            lo + self.bounded_u64(span + 1)
        }
    }

    /// Uniform in the inclusive range `[lo, hi]` of `u32`. Requires `lo <= hi`.
    #[inline]
    fn range_u32(&mut self, lo: u32, hi: u32) -> u32 {
        self.range_u64(u64::from(lo), u64::from(hi)) as u32
    }

    /// Uniform in `[0, len)` as `usize` — the index helper. `len > 0`.
    #[inline]
    fn index(&mut self, len: usize) -> usize {
        self.bounded_u64(len as u64) as usize
    }

    /// Uniform `f64` in `[0, 1)`: the top 53 bits scaled by `2⁻⁵³`.
    #[inline]
    fn unit_f64(&mut self) -> f64 {
        const SCALE: f64 = 1.0 / (1u64 << 53) as f64;
        (self.next_u64() >> 11) as f64 * SCALE
    }

    /// Uniform `f64` in the open interval `(0, 1]` — safe to pass to `ln`.
    #[inline]
    fn unit_f64_open(&mut self) -> f64 {
        const SCALE: f64 = 1.0 / (1u64 << 53) as f64;
        ((self.next_u64() >> 11) + 1) as f64 * SCALE
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    fn bernoulli(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.unit_f64() < p
        }
    }

    /// Fair coin.
    #[inline]
    fn coin(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

impl<T: RandomSource + ?Sized> RandomSource for &mut T {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Xoshiro256PlusPlus;

    #[test]
    fn bounded_covers_all_residues() {
        let mut g = Xoshiro256PlusPlus::seed_from_u64(11);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[g.bounded_u64(7) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues mod 7 should appear");
    }

    #[test]
    fn bounded_one_is_always_zero() {
        let mut g = Xoshiro256PlusPlus::seed_from_u64(11);
        for _ in 0..32 {
            assert_eq!(g.bounded_u64(1), 0);
        }
    }

    #[test]
    #[should_panic(expected = "bound > 0")]
    fn bounded_zero_panics() {
        let mut g = Xoshiro256PlusPlus::seed_from_u64(11);
        let _ = g.bounded_u64(0);
    }

    #[test]
    fn range_is_inclusive() {
        let mut g = Xoshiro256PlusPlus::seed_from_u64(3);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..2000 {
            let x = g.range_u64(10, 13);
            assert!((10..=13).contains(&x));
            lo_seen |= x == 10;
            hi_seen |= x == 13;
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn full_u64_range_does_not_panic() {
        let mut g = Xoshiro256PlusPlus::seed_from_u64(3);
        let _ = g.range_u64(0, u64::MAX);
    }

    #[test]
    fn bernoulli_extremes() {
        let mut g = Xoshiro256PlusPlus::seed_from_u64(3);
        assert!(!g.bernoulli(0.0));
        assert!(g.bernoulli(1.0));
        assert!(!g.bernoulli(-0.5));
        assert!(g.bernoulli(1.5));
    }

    #[test]
    fn bernoulli_mean_is_close() {
        let mut g = Xoshiro256PlusPlus::seed_from_u64(3);
        let n = 40_000;
        let hits = (0..n).filter(|_| g.bernoulli(0.3)).count();
        let mean = hits as f64 / f64::from(n);
        assert!((mean - 0.3).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn unit_open_never_zero() {
        let mut g = Xoshiro256PlusPlus::seed_from_u64(3);
        for _ in 0..10_000 {
            assert!(g.unit_f64_open() > 0.0);
        }
    }

    #[test]
    fn works_through_mut_reference() {
        fn draw(r: &mut impl RandomSource) -> u64 {
            r.next_u64()
        }
        let mut g = Xoshiro256PlusPlus::seed_from_u64(3);
        let _ = draw(&mut g);
        let borrowed: &mut Xoshiro256PlusPlus = &mut g;
        let _ = draw(&mut &mut *borrowed);
    }
}
