//! SplitMix64: the 64-bit finalizer-based generator of Steele, Lea & Flood
//! ("Fast splittable pseudorandom number generators", OOPSLA 2014), in the
//! form published by Sebastiano Vigna as the recommended seeder for the
//! xoshiro/xoroshiro family.

use crate::source::RandomSource;

/// SplitMix64 pseudo-random generator.
///
/// One `u64` of state, advanced by the golden-ratio increment; every output
/// is a strong avalanche mix of the state. It is equidistributed in 64 bits
/// and cannot return the same value twice within a period of 2⁶⁴.
///
/// Its two roles here:
/// * seeding [`crate::Xoshiro256PlusPlus`] (the upstream-recommended method),
/// * deriving independent per-trial seeds in [`crate::SeedSequence`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

/// Golden-ratio increment: `⌊2⁶⁴ / φ⌋`, odd.
pub(crate) const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

impl SplitMix64 {
    /// Create a generator whose first output mixes `seed + γ`.
    #[must_use]
    pub const fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// The raw mixing function ("mix64"): a bijection on `u64`.
    ///
    /// Exposed because seed derivation wants the stateless form.
    #[inline]
    #[must_use]
    pub const fn mix(mut z: u64) -> u64 {
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Advance the state and return the next output.
    #[inline]
    #[allow(clippy::should_implement_trait)] // RNG convention; these types are not iterators
    pub fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        Self::mix(self.state)
    }

    /// Current internal state (for checkpointing).
    #[must_use]
    pub const fn state(&self) -> u64 {
        self.state
    }
}

impl RandomSource for SplitMix64 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// First outputs for seed 0, as produced by the reference C
    /// implementation (`splitmix64.c`, Vigna, public domain). These constants
    /// appear verbatim in several independent test suites (e.g. NumPy's and
    /// the JDK's SplittableRandom derivation tests).
    #[test]
    fn reference_vector_seed_zero() {
        let mut g = SplitMix64::new(0);
        assert_eq!(g.next(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(g.next(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(g.next(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn mix_is_deterministic_and_nontrivial() {
        assert_eq!(SplitMix64::mix(1), SplitMix64::mix(1));
        assert_ne!(SplitMix64::mix(1), SplitMix64::mix(2));
        // mix is a bijection with fixed point 0 (the stream never feeds it 0
        // because the state is pre-incremented by the odd constant γ).
        assert_eq!(SplitMix64::mix(0), 0);
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..64).filter(|_| a.next() == b.next()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn state_roundtrip() {
        let mut g = SplitMix64::new(99);
        g.next();
        let snapshot = SplitMix64::new(g.state());
        let mut g2 = snapshot;
        let mut g1 = g;
        assert_eq!(g1.next(), g2.next());
    }

    #[test]
    fn output_bits_look_balanced() {
        // Crude sanity: over 4096 outputs, every bit position should be set
        // between 30% and 70% of the time.
        let mut g = SplitMix64::new(0xDEAD_BEEF);
        let mut counts = [0u32; 64];
        const N: u32 = 4096;
        for _ in 0..N {
            let x = g.next();
            for (i, c) in counts.iter_mut().enumerate() {
                *c += ((x >> i) & 1) as u32;
            }
        }
        for &c in &counts {
            let frac = f64::from(c) / f64::from(N);
            assert!((0.3..0.7).contains(&frac), "biased bit: {frac}");
        }
    }
}
