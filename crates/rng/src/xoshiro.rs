//! xoshiro256++ 1.0 — Blackman & Vigna (2019), public domain reference
//! implementation translated to safe Rust.

use crate::source::RandomSource;
use crate::splitmix::SplitMix64;

/// xoshiro256++ 1.0: the workspace's default generator.
///
/// 256 bits of state, period `2²⁵⁶ − 1`, passes BigCrush and PractRand.
/// `jump()` advances by `2¹²⁸` steps and `long_jump()` by `2¹⁹²`, which
/// yields up to `2¹²⁸` non-overlapping parallel sub-sequences — more than
/// enough for the workspace's parallel Monte Carlo runner.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

#[inline]
const fn rotl(x: u64, k: u32) -> u64 {
    x.rotate_left(k)
}

impl Xoshiro256PlusPlus {
    /// Construct from a full 256-bit state.
    ///
    /// The state must not be all zeros (the all-zero state is a fixed point);
    /// such a state is replaced by a SplitMix64-derived non-zero one.
    #[must_use]
    pub fn from_state(state: [u64; 4]) -> Self {
        if state == [0, 0, 0, 0] {
            Self::seed_from_u64(0)
        } else {
            Self { s: state }
        }
    }

    /// Seed via SplitMix64, the method recommended by the xoshiro authors:
    /// the four state words are consecutive SplitMix64 outputs.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s = [sm.next(), sm.next(), sm.next(), sm.next()];
        // SplitMix64 is a bijection sequence; four consecutive outputs are
        // never all zero for any seed, but keep the guard for clarity.
        Self::from_state(s)
    }

    /// Advance the generator and return the next 64-bit output.
    #[inline]
    #[allow(clippy::should_implement_trait)] // RNG convention; these types are not iterators
    pub fn next(&mut self) -> u64 {
        let result = rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = rotl(self.s[3], 45);
        result
    }

    /// Snapshot of the internal state (for checkpoint/restore).
    #[must_use]
    pub const fn state(&self) -> [u64; 4] {
        self.s
    }

    fn polynomial_jump(&mut self, table: [u64; 4]) {
        let mut acc = [0u64; 4];
        for word in table {
            for b in 0..64 {
                if (word >> b) & 1 == 1 {
                    acc[0] ^= self.s[0];
                    acc[1] ^= self.s[1];
                    acc[2] ^= self.s[2];
                    acc[3] ^= self.s[3];
                }
                self.next();
            }
        }
        self.s = acc;
    }

    /// Advance by `2¹²⁸` steps (reference `jump()` polynomial).
    pub fn jump(&mut self) {
        self.polynomial_jump([
            0x180E_C6D3_3CFD_0ABA,
            0xD5A6_1266_F0C9_392C,
            0xA958_2618_E03F_C9AA,
            0x39AB_DC45_29B1_661C,
        ]);
    }

    /// Advance by `2¹⁹²` steps (reference `long_jump()` polynomial).
    pub fn long_jump(&mut self) {
        self.polynomial_jump([
            0x76E1_5D3E_FEFD_CBBF,
            0xC500_4E44_1C52_2FB3,
            0x7771_0069_854E_E241,
            0x3910_9BB0_2ACB_E635,
        ]);
    }

    /// A generator `2¹²⁸` steps ahead, leaving `self` untouched.
    #[must_use]
    pub fn jumped(&self) -> Self {
        let mut c = self.clone();
        c.jump();
        c
    }
}

impl RandomSource for Xoshiro256PlusPlus {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RandomSource;

    /// The reference implementation seeded with state {1, 2, 3, 4} — the
    /// standard cross-implementation check for xoshiro256++ (the same vector
    /// is used by `rand_xoshiro` and several other ports).
    #[test]
    fn reference_vector_state_1234() {
        let mut g = Xoshiro256PlusPlus::from_state([1, 2, 3, 4]);
        let expected: [u64; 6] = [
            41943041,
            58720359,
            3588806011781223,
            3591011842654386,
            9228616714210784205,
            9973669472204895162,
        ];
        for &e in &expected {
            assert_eq!(g.next(), e);
        }
    }

    #[test]
    fn zero_state_is_rejected() {
        let g = Xoshiro256PlusPlus::from_state([0; 4]);
        assert_ne!(g.state(), [0; 4]);
    }

    #[test]
    fn seeding_is_deterministic() {
        let mut a = Xoshiro256PlusPlus::seed_from_u64(123);
        let mut b = Xoshiro256PlusPlus::seed_from_u64(123);
        for _ in 0..32 {
            assert_eq!(a.next(), b.next());
        }
    }

    #[test]
    fn jump_commutes_with_stepping() {
        // jump(); next() must differ from next(); jump() — but
        // jump(); jump() must equal the direct 2^129 jump composition:
        // we verify the weaker, implementation-relevant property that
        // jumped streams never collide with the base stream early on.
        let base = Xoshiro256PlusPlus::seed_from_u64(7);
        let mut a = base.clone();
        let mut b = base.jumped();
        let collisions = (0..1024).filter(|_| a.next() == b.next()).count();
        assert_eq!(collisions, 0);
    }

    #[test]
    fn long_jump_differs_from_jump() {
        let base = Xoshiro256PlusPlus::seed_from_u64(7);
        let mut j = base.clone();
        j.jump();
        let mut lj = base.clone();
        lj.long_jump();
        assert_ne!(j.state(), lj.state());
    }

    #[test]
    fn bounded_u64_is_in_range() {
        let mut g = Xoshiro256PlusPlus::seed_from_u64(5);
        for bound in [1u64, 2, 3, 7, 10, 1000, u64::from(u32::MAX) + 5] {
            for _ in 0..200 {
                assert!(g.bounded_u64(bound) < bound);
            }
        }
    }

    #[test]
    fn unit_f64_is_in_unit_interval() {
        let mut g = Xoshiro256PlusPlus::seed_from_u64(5);
        for _ in 0..10_000 {
            let x = g.unit_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
