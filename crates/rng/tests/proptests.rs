//! Property-based tests for the PRNG stack.

use ephemeral_rng::distr::{Binomial, Discrete, Geometric, Poisson};
use ephemeral_rng::sample::{reservoir_sample, sample_indices, shuffle};
use ephemeral_rng::{RandomSource, SeedSequence, SplitMix64, Xoshiro256PlusPlus};
use proptest::prelude::*;

proptest! {
    #[test]
    fn bounded_u64_is_always_in_range(seed: u64, bound in 1u64..=u64::MAX) {
        let mut g = Xoshiro256PlusPlus::seed_from_u64(seed);
        for _ in 0..16 {
            prop_assert!(g.bounded_u64(bound) < bound);
        }
    }

    #[test]
    fn range_u64_is_inclusive_and_ordered(seed: u64, a: u64, b: u64) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let mut g = Xoshiro256PlusPlus::seed_from_u64(seed);
        for _ in 0..8 {
            let x = g.range_u64(lo, hi);
            prop_assert!(x >= lo && x <= hi);
        }
    }

    #[test]
    fn unit_f64_is_in_unit_interval(seed: u64) {
        let mut g = Xoshiro256PlusPlus::seed_from_u64(seed);
        for _ in 0..64 {
            let x = g.unit_f64();
            prop_assert!((0.0..1.0).contains(&x));
            let y = g.unit_f64_open();
            prop_assert!(y > 0.0 && y <= 1.0);
        }
    }

    #[test]
    fn seed_derivation_is_stable_and_stream_distinct(base: u64, s1: u64, s2: u64) {
        let seq = SeedSequence::new(base);
        prop_assert_eq!(seq.derive(s1), seq.derive(s1));
        if s1 != s2 {
            // Collisions are possible in principle but astronomically rare;
            // treat one as a failure worth investigating.
            prop_assert_ne!(seq.derive(s1), seq.derive(s2));
        }
    }

    #[test]
    fn splitmix_mix_is_injective_on_samples(a: u64, b: u64) {
        if a != b {
            prop_assert_ne!(SplitMix64::mix(a), SplitMix64::mix(b));
        }
    }

    #[test]
    fn binomial_sample_is_bounded(seed: u64, n in 0u64..10_000, p in 0.0f64..=1.0) {
        let mut g = Xoshiro256PlusPlus::seed_from_u64(seed);
        let d = Binomial::new(n, p);
        for _ in 0..8 {
            prop_assert!(d.sample(&mut g) <= n);
        }
    }

    #[test]
    fn geometric_is_finite_for_reasonable_p(seed: u64, p in 0.01f64..=1.0) {
        let mut g = Xoshiro256PlusPlus::seed_from_u64(seed);
        let d = Geometric::new(p);
        for _ in 0..8 {
            let x = d.sample(&mut g);
            prop_assert!(x < 1_000_000, "implausibly long wait {x} at p = {p}");
        }
    }

    #[test]
    fn poisson_is_nonnegative_and_finite(seed: u64, lambda in 0.01f64..500.0) {
        let mut g = Xoshiro256PlusPlus::seed_from_u64(seed);
        let d = Poisson::new(lambda);
        let x = d.sample(&mut g);
        prop_assert!((x as f64) < lambda * 20.0 + 100.0);
    }

    #[test]
    fn discrete_sample_is_in_support(seed: u64, k in 1usize..40) {
        let weights: Vec<f64> = (1..=k).map(|i| i as f64).collect();
        let d = Discrete::new(&weights).unwrap();
        let mut g = Xoshiro256PlusPlus::seed_from_u64(seed);
        for _ in 0..32 {
            prop_assert!(d.sample(&mut g) < k);
        }
    }

    #[test]
    fn shuffle_preserves_multiset(seed: u64, mut v in prop::collection::vec(0u32..100, 0..50)) {
        let mut g = Xoshiro256PlusPlus::seed_from_u64(seed);
        let mut expected = v.clone();
        shuffle(&mut v, &mut g);
        expected.sort_unstable();
        v.sort_unstable();
        prop_assert_eq!(v, expected);
    }

    #[test]
    fn sample_indices_distinct_in_range(seed: u64, n in 1usize..500, frac in 0.0f64..=1.0) {
        let k = ((n as f64) * frac) as usize;
        let mut g = Xoshiro256PlusPlus::seed_from_u64(seed);
        let mut s = sample_indices(n, k, &mut g);
        prop_assert_eq!(s.len(), k);
        s.sort_unstable();
        s.dedup();
        prop_assert_eq!(s.len(), k);
        prop_assert!(s.iter().all(|&i| i < n));
    }

    #[test]
    fn reservoir_respects_length(seed: u64, n in 0usize..200, k in 0usize..50) {
        let mut g = Xoshiro256PlusPlus::seed_from_u64(seed);
        let s = reservoir_sample(0..n, k, &mut g);
        prop_assert_eq!(s.len(), k.min(n));
    }
}
