//! The byte-budgeted instance cache one shard owns.
//!
//! Accounting reuses the streaming-closure discipline of
//! `ephemeral_temporal::sparse`: a monotone clock stamps every touch,
//! eviction walks the slots for the smallest stamp, and the budget is
//! measured in [`QuerySession::resident_bytes`] — a deterministic size
//! model, not an allocator probe — so the same request stream evicts the
//! same instances on every run and platform (the golden-transcript CI
//! check depends on that). A single instance larger than the whole
//! budget is still admitted alone: the budget bounds *cache* growth, it
//! never rejects work.

use ephemeral_temporal::session::QuerySession;
use std::collections::HashMap;

/// Default byte budget per shard (matches the closure cache default).
pub const DEFAULT_BYTE_BUDGET: usize = 256 << 20;

struct Slot {
    session: QuerySession,
    bytes: usize,
    tick: u64,
}

/// Occupancy and traffic counters of one [`InstanceCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Resident instances.
    pub instances: usize,
    /// Size-model bytes they pin.
    pub resident_bytes: usize,
    /// Lookups that found their instance resident.
    pub hits: u64,
    /// Lookups that did not.
    pub misses: u64,
    /// Instances evicted by the byte budget.
    pub evictions: u64,
}

/// LRU map from instance id to its resident [`QuerySession`], bounded by
/// a byte budget over [`QuerySession::resident_bytes`].
pub struct InstanceCache {
    budget: usize,
    clock: u64,
    bytes: usize,
    slots: HashMap<String, Slot>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl InstanceCache {
    /// An empty cache bounded by `budget` size-model bytes.
    #[must_use]
    pub fn new(budget: usize) -> Self {
        Self {
            budget,
            clock: 0,
            bytes: 0,
            slots: HashMap::new(),
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Pin `session` under `id`, replacing any previous instance with
    /// that id, then evict least-recently-touched *other* instances
    /// until the byte budget holds again. Returns how many were evicted.
    pub fn insert(&mut self, id: &str, session: QuerySession) -> usize {
        let bytes = session.resident_bytes();
        self.clock += 1;
        if let Some(old) = self.slots.insert(
            id.to_string(),
            Slot {
                session,
                bytes,
                tick: self.clock,
            },
        ) {
            self.bytes -= old.bytes;
        }
        self.bytes += bytes;
        self.shed(id)
    }

    /// The resident session for `id`, touching its LRU stamp. Counts a
    /// hit or a miss.
    pub fn session(&mut self, id: &str) -> Option<&mut QuerySession> {
        if let Some(slot) = self.slots.get_mut(id) {
            self.hits += 1;
            self.clock += 1;
            slot.tick = self.clock;
            Some(&mut slot.session)
        } else {
            self.misses += 1;
            None
        }
    }

    /// Re-measure `id` after a mutation grew it (a label move records a
    /// cursor), then evict other instances if the budget broke. Returns
    /// how many were evicted.
    pub fn reaccount(&mut self, id: &str) -> usize {
        if let Some(slot) = self.slots.get_mut(id) {
            let bytes = slot.session.resident_bytes();
            self.bytes = self.bytes - slot.bytes + bytes;
            slot.bytes = bytes;
        }
        self.shed(id)
    }

    /// Evict least-recently-touched slots other than `keep` until the
    /// budget holds.
    fn shed(&mut self, keep: &str) -> usize {
        let mut evicted = 0;
        while self.bytes > self.budget && self.slots.len() > 1 {
            let victim = self
                .slots
                .iter()
                .filter(|(id, _)| id.as_str() != keep)
                .min_by_key(|(_, slot)| slot.tick)
                .map(|(id, _)| id.clone());
            let Some(victim) = victim else { break };
            let slot = self.slots.remove(&victim).expect("victim is resident");
            self.bytes -= slot.bytes;
            self.evictions += 1;
            evicted += 1;
        }
        evicted
    }

    /// Current occupancy and traffic counters.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            instances: self.slots.len(),
            resident_bytes: self.bytes,
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
        }
    }
}

impl std::fmt::Debug for InstanceCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InstanceCache")
            .field("budget", &self.budget)
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ephemeral_graph::generators;
    use ephemeral_rng::{RandomSource, SeedSequence};
    use ephemeral_temporal::{LabelAssignment, TemporalNetwork};

    fn session(seed: u64, n: usize) -> QuerySession {
        let mut rng = SeedSequence::new(seed).rng(0);
        let g = generators::gnp(n, 0.2, false, &mut rng);
        let lifetime = n as u32;
        let labels =
            LabelAssignment::from_fn(g.num_edges(), |_| vec![rng.range_u32(1, lifetime)]).unwrap();
        QuerySession::new(TemporalNetwork::new(g, labels, lifetime).unwrap())
    }

    #[test]
    fn lru_evicts_the_stalest_instance_under_the_budget() {
        let one = session(1, 40).resident_bytes();
        // Room for two instances of this size, not three.
        let mut cache = InstanceCache::new(2 * one + one / 2);
        assert_eq!(cache.insert("a", session(1, 40)), 0);
        assert_eq!(cache.insert("b", session(2, 40)), 0);
        assert!(cache.session("a").is_some(), "a is fresher than b now");
        let evicted = cache.insert("c", session(3, 40));
        assert_eq!(evicted, 1);
        assert!(cache.session("b").is_none(), "b was the LRU victim");
        assert!(cache.session("a").is_some() && cache.session("c").is_some());
        let stats = cache.stats();
        assert_eq!(stats.instances, 2);
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 3);
    }

    #[test]
    fn an_oversized_instance_is_admitted_alone() {
        let mut cache = InstanceCache::new(1);
        assert_eq!(cache.insert("big", session(4, 60)), 0);
        assert!(cache.session("big").is_some());
        // A second one displaces it (budget holds at one slot minimum).
        assert_eq!(cache.insert("bigger", session(5, 60)), 1);
        assert!(cache.session("big").is_none());
        assert!(cache.session("bigger").is_some());
    }

    #[test]
    fn reload_replaces_in_place_and_reaccount_tracks_growth() {
        let mut cache = InstanceCache::new(usize::MAX);
        cache.insert("a", session(6, 30));
        let before = cache.stats().resident_bytes;
        cache.insert("a", session(7, 50));
        let after = cache.stats().resident_bytes;
        assert_eq!(cache.stats().instances, 1);
        assert_ne!(before, after, "replacement re-measures");
        // Recording a cursor grows the size model; reaccount sees it.
        cache.session("a").unwrap().record_cursor();
        cache.reaccount("a");
        assert!(cache.stats().resident_bytes > after);
    }
}
