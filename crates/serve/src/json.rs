//! A minimal JSON reader/writer for the line protocol.
//!
//! The workspace builds fully offline, so the service parses its own
//! JSON instead of pulling `serde`: a recursive-descent parser into a
//! small [`Json`] tree (every protocol message is a few dozen tokens;
//! only [distance-row answers](crate::protocol) are ever large, and
//! those are *written*, not parsed). Writing goes through
//! [`escape_into`] plus plain `write!` in the protocol layer, so every
//! response is rendered byte-stably — the golden-transcript CI check
//! depends on that.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (the protocol only uses values exact in an `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Sorted by key (protocol messages never rely on
    /// duplicate keys; the last occurrence wins, like serde's default).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Member `key` of an object, if present.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// This number as a non-negative integer, if it is one exactly.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= 2f64.powi(53) => Some(*x as u64),
            _ => None,
        }
    }

    /// This number, if it is one.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parse one complete JSON value (trailing non-whitespace is an error).
///
/// # Errors
/// A human-readable description of the first syntax error.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing input at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\r' | b'\n') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(format!(
                "unexpected `{}` at byte {}",
                other as char, self.pos
            )),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            // The scan above only stops on ASCII bytes, so the run is
            // whole UTF-8 sequences from valid input `&str`.
            out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).expect("input is utf8"));
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.escape(&mut out)?;
                }
                Some(_) => return Err(format!("raw control byte at {}", self.pos)),
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<(), String> {
        let Some(b) = self.peek() else {
            return Err("unterminated escape".to_string());
        };
        self.pos += 1;
        match b {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'b' => out.push('\u{8}'),
            b'f' => out.push('\u{c}'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'u' => {
                let hi = self.hex4()?;
                let c = if (0xD800..0xDC00).contains(&hi) {
                    // Surrogate pair: the low half must follow.
                    if self.bytes[self.pos..].starts_with(b"\\u") {
                        self.pos += 2;
                        let lo = self.hex4()?;
                        if !(0xDC00..0xE000).contains(&lo) {
                            return Err("unpaired surrogate".to_string());
                        }
                        let c = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                        char::from_u32(c).ok_or("bad surrogate pair")?
                    } else {
                        return Err("unpaired surrogate".to_string());
                    }
                } else {
                    char::from_u32(hi).ok_or("unpaired surrogate")?
                };
                out.push(c);
            }
            other => return Err(format!("bad escape `\\{}`", other as char)),
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos.checked_add(4).filter(|&e| e <= self.bytes.len());
        let slice = end.map(|e| &self.bytes[self.pos..e]);
        let digits = slice
            .and_then(|s| std::str::from_utf8(s).ok())
            .ok_or("truncated \\u escape")?;
        let v = u32::from_str_radix(digits, 16).map_err(|_| "bad \\u escape".to_string())?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number `{text}` at byte {start}"))
    }
}

/// Append `s` to `out` as a JSON string literal (quotes included).
pub fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_protocol_shaped_objects() {
        let v = parse(r#"{"op":"query","u":3,"v":10,"by":7,"tags":[1,2],"deep":{"x":null}}"#)
            .expect("valid json");
        assert_eq!(v.get("op").and_then(Json::as_str), Some("query"));
        assert_eq!(v.get("u").and_then(Json::as_u64), Some(3));
        assert_eq!(
            v.get("tags").and_then(Json::as_arr).map(<[Json]>::len),
            Some(2)
        );
        assert_eq!(v.get("deep").and_then(|d| d.get("x")), Some(&Json::Null));
    }

    #[test]
    fn parses_numbers_strings_and_escapes() {
        assert_eq!(parse("-12.5e1"), Ok(Json::Num(-125.0)));
        assert_eq!(parse("0"), Ok(Json::Num(0.0)));
        assert_eq!(
            parse(r#""a\"b\\c\nA😀""#),
            Ok(Json::Str("a\"b\\c\nA\u{1f600}".to_string()))
        );
        assert!(parse("1.5").unwrap().as_u64().is_none());
        assert_eq!(parse("true").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "nul",
            r#"{"a" 1}"#,
            "1x",
            r#""\q""#,
            r#""\ud800""#,
            "{} {}",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn escape_round_trips() {
        let ugly = "line\nwith \"quotes\" \\ and \u{1} control";
        let mut out = String::new();
        escape_into(&mut out, ugly);
        assert_eq!(parse(&out), Ok(Json::Str(ugly.to_string())));
    }
}
