//! A long-lived reachability service over resident
//! [`QuerySession`](ephemeral_temporal::session::QuerySession)s.
//!
//! The all-pairs engines answer "everything about everything"; this
//! crate serves the other access pattern from the same engine stack:
//! **point queries against instances that stay loaded**. A JSON-lines
//! protocol ([`protocol`]) arrives over stdin or TCP ([`server`]),
//! requests shard by instance id onto workers that each own a
//! byte-budgeted LRU cache of sessions ([`cache`]), consecutive queries
//! per instance coalesce into 64-lane batches of one
//! `BatchSweeper` pass, and answers stream back tagged with request ids
//! in arrival order. Panic isolation and deadlines degrade a poisoned
//! query to a `"status":"failed"` line instead of a dead server.
//!
//! Everything is deterministic by construction — parsing, shard
//! routing, cache eviction, lane semantics, response rendering — so a
//! request script replayed against 1, 2 or 8 shards produces the same
//! transcript byte for byte; CI pins that with a golden transcript.

pub mod cache;
pub mod json;
pub mod protocol;
pub mod server;

pub use cache::{CacheStats, InstanceCache, DEFAULT_BYTE_BUDGET};
pub use protocol::{parse_request, LoadSpec, Request, ServeStats};
pub use server::{run_stdin, serve_lines, serve_listener, shard_of, ServeConfig, ServeSummary};
