//! The JSON-lines line protocol: request grammar and byte-stable
//! response rendering.
//!
//! One request per line, one response line per request, every response
//! tagged `"id"` with the request's arrival sequence number and emitted
//! in arrival order. The grammar (also in the README's "Query service"
//! section):
//!
//! ```text
//! {"op":"load","instance":ID, "nodes":N,"directed":B,"edges":[[u,v],…],
//!      "labels":[[t,…],…],"lifetime":L}
//! {"op":"load","instance":ID, "gnp":{"nodes":N,"avg_degree":D,"seed":S},
//!      "directed":B,"lifetime":L,"labels_per_edge":R,"label_seed":S2}
//! {"op":"query","instance":ID,"type":"reaches","u":U,"v":V,"by":T}
//! {"op":"query","instance":ID,"type":"foremost","u":U,"v":V}
//! {"op":"query","instance":ID,"type":"distance_row","u":U[,"horizon":T]}
//! {"op":"move_label","instance":ID,"edge":E,"from":T1,"to":T2}
//! {"op":"stats"}
//! ```
//!
//! Responses carry `"status":"ok"`, `"status":"error"` (the request was
//! rejected: bad grammar, unknown instance, out-of-range vertex) or
//! `"status":"failed"` (the query was accepted but its evaluation was
//! poisoned — injected fault or deadline — and quarantined without
//! taking the batch down).

use crate::json::{escape_into, parse, Json};
use ephemeral_graph::{generators, EdgeId, GraphBuilder, NodeId};
use ephemeral_rng::{RandomSource, SeedSequence};
use ephemeral_temporal::session::{PointAnswer, PointQuery};
use ephemeral_temporal::{LabelAssignment, TemporalNetwork, Time, NEVER};
use std::fmt::Write as _;

/// One parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Build an instance and pin it resident under `instance`.
    Load {
        /// Cache key; reloading an existing key replaces it.
        instance: String,
        /// How to build the network.
        spec: LoadSpec,
    },
    /// One point query against a resident instance.
    Query {
        /// Cache key.
        instance: String,
        /// The query to lane-batch.
        query: PointQuery,
    },
    /// Move one label of a resident instance (differential maintenance:
    /// the session's cursor retracts and replays instead of rebuilding).
    MoveLabel {
        /// Cache key.
        instance: String,
        /// Edge to move a label of.
        edge: EdgeId,
        /// The label to move.
        from: Time,
        /// Where it moves to.
        to: Time,
    },
    /// Server-wide counters (cache occupancy, hit rate, query totals).
    Stats,
}

/// How a [`Request::Load`] builds its network.
#[derive(Debug, Clone, PartialEq)]
pub enum LoadSpec {
    /// Explicit edge and label lists.
    Explicit {
        /// Vertex count.
        nodes: usize,
        /// Directed edges?
        directed: bool,
        /// Edge endpoints, one pair per edge.
        edges: Vec<(NodeId, NodeId)>,
        /// Labels per edge, aligned with `edges`.
        labels: Vec<Vec<Time>>,
        /// Lifetime `a`.
        lifetime: Time,
    },
    /// A `G(n, p)` instance with `r` uniform labels per edge, both drawn
    /// from fixed seeds — the load-test and CI corpus shape.
    Gnp {
        /// Vertex count.
        nodes: usize,
        /// Expected average degree (`p = avg_degree / n`).
        avg_degree: f64,
        /// Directed edges?
        directed: bool,
        /// Lifetime `a`.
        lifetime: Time,
        /// Uniform labels per edge.
        labels_per_edge: usize,
        /// Seed of the graph draw.
        seed: u64,
        /// Seed of the label draw.
        label_seed: u64,
    },
}

impl LoadSpec {
    /// Build the network this spec describes.
    ///
    /// # Errors
    /// When the spec is structurally invalid (endpoint out of range,
    /// label outside `1..=lifetime`, label/edge count mismatch).
    pub fn build(&self) -> Result<TemporalNetwork, String> {
        match self {
            LoadSpec::Explicit {
                nodes,
                directed,
                edges,
                labels,
                lifetime,
            } => {
                if labels.len() != edges.len() {
                    return Err(format!(
                        "{} edges but {} label lists",
                        edges.len(),
                        labels.len()
                    ));
                }
                let mut b = if *directed {
                    GraphBuilder::new_directed(*nodes)
                } else {
                    GraphBuilder::new_undirected(*nodes)
                };
                for &(u, v) in edges {
                    b.add_edge(u, v);
                }
                let graph = b.build().map_err(|e| e.to_string())?;
                let assignment = LabelAssignment::from_vecs(labels.clone())
                    .ok_or("every edge needs at least one label")?;
                TemporalNetwork::new(graph, assignment, *lifetime).map_err(|e| e.to_string())
            }
            LoadSpec::Gnp {
                nodes,
                avg_degree,
                directed,
                lifetime,
                labels_per_edge,
                seed,
                label_seed,
            } => {
                if *nodes == 0 || *labels_per_edge == 0 || *lifetime == 0 {
                    return Err("nodes, labels_per_edge and lifetime must be positive".into());
                }
                let p = (avg_degree / *nodes as f64).clamp(0.0, 1.0);
                let graph =
                    generators::gnp(*nodes, p, *directed, &mut SeedSequence::new(*seed).rng(1));
                let mut rng = SeedSequence::new(*label_seed).rng(2);
                let r = *labels_per_edge;
                let a = *lifetime;
                let assignment = LabelAssignment::from_fn(graph.num_edges(), |_| {
                    (0..r).map(|_| rng.range_u32(1, a)).collect()
                })
                .ok_or("labels_per_edge must be positive")?;
                TemporalNetwork::new(graph, assignment, a).map_err(|e| e.to_string())
            }
        }
    }
}

fn field<'a>(obj: &'a Json, key: &str) -> Result<&'a Json, String> {
    obj.get(key).ok_or_else(|| format!("missing field `{key}`"))
}

fn str_field(obj: &Json, key: &str) -> Result<String, String> {
    field(obj, key)?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| format!("field `{key}` must be a string"))
}

fn u64_field(obj: &Json, key: &str) -> Result<u64, String> {
    field(obj, key)?
        .as_u64()
        .ok_or_else(|| format!("field `{key}` must be a non-negative integer"))
}

fn u32_field(obj: &Json, key: &str) -> Result<u32, String> {
    u32::try_from(u64_field(obj, key)?).map_err(|_| format!("field `{key}` overflows u32"))
}

fn usize_field(obj: &Json, key: &str) -> Result<usize, String> {
    usize::try_from(u64_field(obj, key)?).map_err(|_| format!("field `{key}` overflows"))
}

fn bool_field(obj: &Json, key: &str) -> Result<bool, String> {
    field(obj, key)?
        .as_bool()
        .ok_or_else(|| format!("field `{key}` must be a boolean"))
}

/// Parse one request line.
///
/// # Errors
/// A description of the first grammar violation (also the text of the
/// `"status":"error"` response).
pub fn parse_request(line: &str) -> Result<Request, String> {
    let msg = parse(line)?;
    let op = str_field(&msg, "op")?;
    match op.as_str() {
        "load" => {
            let instance = str_field(&msg, "instance")?;
            let spec = if let Some(gnp) = msg.get("gnp") {
                LoadSpec::Gnp {
                    nodes: usize_field(gnp, "nodes")?,
                    avg_degree: field(gnp, "avg_degree")?
                        .as_f64()
                        .ok_or("field `avg_degree` must be a number")?,
                    directed: bool_field(&msg, "directed")?,
                    lifetime: u32_field(&msg, "lifetime")?,
                    labels_per_edge: usize_field(&msg, "labels_per_edge")?,
                    seed: u64_field(gnp, "seed")?,
                    label_seed: u64_field(&msg, "label_seed")?,
                }
            } else {
                let edges = field(&msg, "edges")?
                    .as_arr()
                    .ok_or("field `edges` must be an array")?
                    .iter()
                    .map(|pair| {
                        let pair = pair.as_arr().filter(|p| p.len() == 2);
                        let uv = pair.and_then(|p| Some((p[0].as_u64()?, p[1].as_u64()?)));
                        let uv = uv.and_then(|(u, v)| {
                            Some((u32::try_from(u).ok()?, u32::try_from(v).ok()?))
                        });
                        uv.ok_or("each edge must be a [u, v] pair")
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                let labels = field(&msg, "labels")?
                    .as_arr()
                    .ok_or("field `labels` must be an array")?
                    .iter()
                    .map(|per_edge| {
                        per_edge
                            .as_arr()
                            .ok_or("each label list must be an array")?
                            .iter()
                            .map(|t| {
                                t.as_u64()
                                    .and_then(|t| u32::try_from(t).ok())
                                    .ok_or("labels must be non-negative integers")
                            })
                            .collect::<Result<Vec<_>, _>>()
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                LoadSpec::Explicit {
                    nodes: usize_field(&msg, "nodes")?,
                    directed: bool_field(&msg, "directed")?,
                    edges,
                    labels,
                    lifetime: u32_field(&msg, "lifetime")?,
                }
            };
            Ok(Request::Load { instance, spec })
        }
        "query" => {
            let instance = str_field(&msg, "instance")?;
            let shape = str_field(&msg, "type")?;
            let query = match shape.as_str() {
                "reaches" => PointQuery::Reaches {
                    u: u32_field(&msg, "u")?,
                    v: u32_field(&msg, "v")?,
                    by: u32_field(&msg, "by")?,
                },
                "foremost" => PointQuery::Foremost {
                    u: u32_field(&msg, "u")?,
                    v: u32_field(&msg, "v")?,
                },
                "distance_row" => PointQuery::DistanceRow {
                    u: u32_field(&msg, "u")?,
                    horizon: match msg.get("horizon") {
                        Some(_) => u32_field(&msg, "horizon")?,
                        None => NEVER,
                    },
                },
                other => return Err(format!("unknown query type `{other}`")),
            };
            Ok(Request::Query { instance, query })
        }
        "move_label" => Ok(Request::MoveLabel {
            instance: str_field(&msg, "instance")?,
            edge: u32_field(&msg, "edge")?,
            from: u32_field(&msg, "from")?,
            to: u32_field(&msg, "to")?,
        }),
        "stats" => Ok(Request::Stats),
        other => Err(format!("unknown op `{other}`")),
    }
}

/// Render the `"status":"ok"` response to a query.
#[must_use]
pub fn render_answer(id: u64, answer: &PointAnswer) -> String {
    let mut out = String::new();
    let _ = write!(out, "{{\"id\":{id},\"status\":\"ok\",\"op\":\"query\"");
    match answer {
        PointAnswer::Reaches { reached, arrival } => {
            let _ = write!(
                out,
                ",\"type\":\"reaches\",\"reached\":{reached},\"arrival\":"
            );
            push_time(&mut out, *arrival);
        }
        PointAnswer::Foremost(arrival) => {
            let _ = write!(out, ",\"type\":\"foremost\",\"arrival\":");
            push_time(&mut out, *arrival);
        }
        PointAnswer::DistanceRow(row) => {
            out.push_str(",\"type\":\"distance_row\",\"row\":[");
            for (i, &t) in row.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                push_time(&mut out, (t != NEVER).then_some(t));
            }
            out.push(']');
        }
    }
    out.push('}');
    out
}

fn push_time(out: &mut String, t: Option<Time>) {
    match t {
        Some(t) => {
            let _ = write!(out, "{t}");
        }
        None => out.push_str("null"),
    }
}

/// Render the `"status":"ok"` response to a load.
#[must_use]
pub fn render_loaded(
    id: u64,
    instance: &str,
    nodes: usize,
    edges: usize,
    lifetime: Time,
    resident_bytes: usize,
    evicted: usize,
) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"id\":{id},\"status\":\"ok\",\"op\":\"load\",\"instance\":"
    );
    escape_into(&mut out, instance);
    let _ = write!(
        out,
        ",\"nodes\":{nodes},\"edges\":{edges},\"lifetime\":{lifetime},\
         \"resident_bytes\":{resident_bytes},\"evicted\":{evicted}}}"
    );
    out
}

/// Render the `"status":"ok"` response to a label move.
#[must_use]
pub fn render_moved(id: u64, applied: bool, replayed_buckets: usize) -> String {
    format!(
        "{{\"id\":{id},\"status\":\"ok\",\"op\":\"move_label\",\"applied\":{applied},\
         \"replayed_buckets\":{replayed_buckets}}}"
    )
}

/// Server-wide counters reported by [`Request::Stats`], summed over
/// shards at a rendezvous — each shard reports after draining every
/// request that arrived before the stats request, so the numbers are
/// deterministic for a deterministic request stream.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Resident instances across all shard caches.
    pub instances: usize,
    /// Size-model bytes those instances pin.
    pub resident_bytes: usize,
    /// Queries that found their instance resident.
    pub hits: u64,
    /// Queries (and moves) addressing a non-resident instance.
    pub misses: u64,
    /// Instances evicted by the byte budget.
    pub evictions: u64,
    /// Point/row queries answered (including failed ones).
    pub queries: u64,
    /// Lane batches flushed.
    pub batches: u64,
    /// Queries quarantined as `"status":"failed"`.
    pub failed: u64,
}

impl ServeStats {
    /// Fold another shard's counters in.
    pub fn absorb(&mut self, other: &ServeStats) {
        self.instances += other.instances;
        self.resident_bytes += other.resident_bytes;
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
        self.queries += other.queries;
        self.batches += other.batches;
        self.failed += other.failed;
    }

    /// Render the `"status":"ok"` stats response.
    #[must_use]
    pub fn render(&self, id: u64) -> String {
        format!(
            "{{\"id\":{id},\"status\":\"ok\",\"op\":\"stats\",\"instances\":{},\
             \"resident_bytes\":{},\"hits\":{},\"misses\":{},\"evictions\":{},\
             \"queries\":{},\"batches\":{},\"failed\":{}}}",
            self.instances,
            self.resident_bytes,
            self.hits,
            self.misses,
            self.evictions,
            self.queries,
            self.batches,
            self.failed,
        )
    }
}

/// Render a `"status":"error"` rejection.
#[must_use]
pub fn render_error(id: u64, error: &str) -> String {
    let mut out = String::new();
    let _ = write!(out, "{{\"id\":{id},\"status\":\"error\",\"error\":");
    escape_into(&mut out, error);
    out.push('}');
    out
}

/// Render a `"status":"failed"` quarantine (accepted but poisoned).
#[must_use]
pub fn render_failed(id: u64, error: &str) -> String {
    let mut out = String::new();
    let _ = write!(out, "{{\"id\":{id},\"status\":\"failed\",\"error\":");
    escape_into(&mut out, error);
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_op() {
        let q =
            parse_request(r#"{"op":"query","instance":"g","type":"reaches","u":1,"v":2,"by":9}"#)
                .unwrap();
        assert_eq!(
            q,
            Request::Query {
                instance: "g".into(),
                query: PointQuery::Reaches { u: 1, v: 2, by: 9 }
            }
        );
        let row =
            parse_request(r#"{"op":"query","instance":"g","type":"distance_row","u":4}"#).unwrap();
        assert_eq!(
            row,
            Request::Query {
                instance: "g".into(),
                query: PointQuery::DistanceRow {
                    u: 4,
                    horizon: NEVER
                }
            }
        );
        let mv = parse_request(r#"{"op":"move_label","instance":"g","edge":3,"from":1,"to":2}"#)
            .unwrap();
        assert_eq!(
            mv,
            Request::MoveLabel {
                instance: "g".into(),
                edge: 3,
                from: 1,
                to: 2
            }
        );
        assert_eq!(parse_request(r#"{"op":"stats"}"#).unwrap(), Request::Stats);
    }

    #[test]
    fn load_specs_build_networks() {
        let explicit = parse_request(
            r#"{"op":"load","instance":"p","nodes":3,"directed":false,
                "edges":[[0,1],[1,2]],"labels":[[1],[2]],"lifetime":2}"#,
        )
        .unwrap();
        let Request::Load { spec, .. } = explicit else {
            panic!("not a load")
        };
        let tn = spec.build().unwrap();
        assert_eq!(tn.num_nodes(), 3);
        assert_eq!(tn.graph().num_edges(), 2);

        let gnp = parse_request(
            r#"{"op":"load","instance":"g","gnp":{"nodes":64,"avg_degree":4.0,"seed":7},
                "directed":false,"lifetime":256,"labels_per_edge":2,"label_seed":3}"#,
        )
        .unwrap();
        let Request::Load { spec, .. } = gnp else {
            panic!("not a load")
        };
        let tn = spec.build().unwrap();
        assert_eq!(tn.num_nodes(), 64);
        assert!(tn.graph().num_edges() > 0);
        // Deterministic: the same spec builds the same network.
        let again = spec.build().unwrap();
        assert_eq!(tn.graph().num_edges(), again.graph().num_edges());
        assert_eq!(tn.labels(0), again.labels(0));
    }

    #[test]
    fn rejects_bad_requests() {
        for bad in [
            "not json",
            r#"{"op":"warp"}"#,
            r#"{"op":"query","instance":"g","type":"reaches","u":1,"v":2}"#,
            r#"{"op":"query","instance":"g","type":"sideways","u":1}"#,
            r#"{"op":"load","instance":"x","nodes":2,"directed":false,"edges":[[0]],"labels":[[1]],"lifetime":1}"#,
            r#"{"op":"move_label","instance":"g","edge":-1,"from":1,"to":2}"#,
        ] {
            assert!(parse_request(bad).is_err(), "accepted {bad}");
        }
    }

    #[test]
    fn responses_render_compact_single_lines() {
        let r = render_answer(
            7,
            &PointAnswer::Reaches {
                reached: true,
                arrival: Some(4),
            },
        );
        assert_eq!(
            r,
            r#"{"id":7,"status":"ok","op":"query","type":"reaches","reached":true,"arrival":4}"#
        );
        let f = render_answer(8, &PointAnswer::Foremost(None));
        assert_eq!(
            f,
            r#"{"id":8,"status":"ok","op":"query","type":"foremost","arrival":null}"#
        );
        let row = render_answer(9, &PointAnswer::DistanceRow(vec![0, NEVER, 3]));
        assert_eq!(
            row,
            r#"{"id":9,"status":"ok","op":"query","type":"distance_row","row":[0,null,3]}"#
        );
        let e = render_error(1, "unknown instance \"zap\"");
        assert_eq!(
            e,
            r#"{"id":1,"status":"error","error":"unknown instance \"zap\""}"#
        );
        assert!(!render_failed(2, "injected fault").contains('\n'));
    }
}
