//! The long-lived reachability service: reader → sharded workers → writer.
//!
//! One reader (the calling thread) parses JSON lines and routes each
//! request by `hash(instance) % shards` over an unbounded channel; each
//! shard worker owns a byte-budgeted [`InstanceCache`] of resident
//! [`QuerySession`]s and **coalesces** consecutive queries per instance
//! into lane batches of up to [`MAX_LANES`], flushed when a batch
//! fills, when a mutating request must order against it, or when the
//! shard's queue drains; one writer thread re-sequences answers into
//! arrival order. Because lane batching is pinned bit-identical to the
//! scalar oracle (`tests/session_proptests.rs` in `ephemeral-temporal`),
//! the transcript is byte-stable however the timing slices the batches —
//! the CI smoke test replays a script against a golden transcript and
//! `cmp`s.
//!
//! Every batch runs inside `catch_unwind` with an optional
//! [`CancelToken`] deadline. A poisoned batch is degraded, not fatal:
//! the shard resets its engine scratch and replays each query alone, so
//! only the poisoned query answers `"status":"failed"` (the
//! `serve::query` failpoint in [`faults`] injects exactly this in CI).

use crate::cache::InstanceCache;
use crate::protocol::{
    parse_request, render_answer, render_error, render_failed, render_loaded, render_moved,
    Request, ServeStats,
};
use crossbeam::channel::{unbounded, Receiver, Sender};
use ephemeral_parallel::faults::{self, CancelReason, CancelToken};
use ephemeral_temporal::engine::MAX_LANES;
use ephemeral_temporal::session::{PointQuery, QuerySession};
use std::any::Any;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::io::{self, BufRead, Write};
use std::net::TcpListener;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

/// Tuning knobs of one server.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Instance shards (each owns one cache and one worker thread).
    pub shards: usize,
    /// Byte budget per shard cache ([`crate::cache::DEFAULT_BYTE_BUDGET`]).
    pub byte_budget: usize,
    /// Wall-clock deadline per lane batch; a batch over it degrades to
    /// single-query replays and `"status":"failed"` quarantines.
    pub deadline: Option<Duration>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            shards: 1,
            byte_budget: crate::cache::DEFAULT_BYTE_BUDGET,
            deadline: None,
        }
    }
}

/// What a finished [`serve_lines`] call saw.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeSummary {
    /// Request lines consumed (responses emitted).
    pub requests: u64,
    /// Final counters, summed over shards.
    pub stats: ServeStats,
}

/// Stable shard routing: FNV-1a over the instance id.
#[must_use]
pub fn shard_of(instance: &str, shards: usize) -> usize {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in instance.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h % shards.max(1) as u64) as usize
}

enum ShardMsg {
    Req {
        seq: u64,
        req: Request,
    },
    /// Flush everything queued so far and report counters.
    Probe {
        reply: Sender<ServeStats>,
    },
}

/// Serve the line protocol from `input` to `output` until EOF.
/// Blocks the calling thread (it is the reader); shard workers and the
/// re-sequencing writer run on scoped threads.
///
/// # Errors
/// Only I/O errors propagate; protocol violations are answered in-band
/// with `"status":"error"` lines.
///
/// # Panics
/// If `cfg.shards == 0`.
pub fn serve_lines<R: BufRead, W: Write + Send>(
    input: R,
    output: W,
    cfg: &ServeConfig,
) -> io::Result<ServeSummary> {
    assert!(cfg.shards >= 1, "at least one shard");
    let (out_tx, out_rx) = unbounded::<(u64, String)>();
    let mut shard_txs: Vec<Sender<ShardMsg>> = Vec::with_capacity(cfg.shards);
    let mut shard_rxs: Vec<Receiver<ShardMsg>> = Vec::with_capacity(cfg.shards);
    for _ in 0..cfg.shards {
        let (tx, rx) = unbounded();
        shard_txs.push(tx);
        shard_rxs.push(rx);
    }
    std::thread::scope(|scope| {
        let writer = scope.spawn(move || write_in_order(output, &out_rx));
        for rx in shard_rxs.drain(..) {
            let out = out_tx.clone();
            scope.spawn(move || shard_worker(&rx, &out, cfg));
        }

        let mut seq = 0u64;
        let mut read_error = None;
        for line in input.lines() {
            let line = match line {
                Ok(line) => line,
                Err(e) => {
                    read_error = Some(e);
                    break;
                }
            };
            if line.trim().is_empty() {
                continue; // blank lines consume no sequence number
            }
            match parse_request(&line) {
                Err(e) => {
                    let _ = out_tx.send((seq, render_error(seq, &e)));
                }
                Ok(Request::Stats) => {
                    // Rendezvous: each shard drains everything that
                    // arrived before this request, then reports — the
                    // counters are deterministic for a deterministic
                    // request stream.
                    let stats = probe_all(&shard_txs, seq);
                    let _ = out_tx.send((seq, stats.render(seq)));
                }
                Ok(req) => {
                    let shard = match &req {
                        Request::Load { instance, .. }
                        | Request::Query { instance, .. }
                        | Request::MoveLabel { instance, .. } => shard_of(instance, cfg.shards),
                        Request::Stats => unreachable!("handled above"),
                    };
                    let _ = shard_txs[shard].send(ShardMsg::Req { seq, req });
                }
            }
            seq += 1;
        }
        // Final rendezvous for the summary, then shut the pipeline down.
        let stats = probe_all(&shard_txs, seq);
        drop(shard_txs);
        drop(out_tx);
        let write_result = writer
            .join()
            .unwrap_or_else(|p| std::panic::resume_unwind(p));
        if let Some(e) = read_error {
            return Err(e);
        }
        write_result?;
        Ok(ServeSummary {
            requests: seq,
            stats,
        })
    })
}

/// Flush every shard and sum their counters (`seq` orders the probe only
/// for diagnostics; the probe consumes no sequence number by itself).
fn probe_all(shard_txs: &[Sender<ShardMsg>], _seq: u64) -> ServeStats {
    let (reply_tx, reply_rx) = unbounded();
    for tx in shard_txs {
        let _ = tx.send(ShardMsg::Probe {
            reply: reply_tx.clone(),
        });
    }
    drop(reply_tx);
    let mut stats = ServeStats::default();
    while let Ok(shard) = reply_rx.recv() {
        stats.absorb(&shard);
    }
    stats
}

/// Writer thread: answers arrive tagged with their request sequence
/// number in completion order; emit them in **arrival** order.
fn write_in_order<W: Write>(mut output: W, rx: &Receiver<(u64, String)>) -> io::Result<()> {
    let mut heap: BinaryHeap<Reverse<(u64, String)>> = BinaryHeap::new();
    let mut next = 0u64;
    while let Ok(item) = rx.recv() {
        heap.push(Reverse(item));
        let mut wrote = false;
        while heap.peek().is_some_and(|Reverse((seq, _))| *seq == next) {
            let Reverse((_, line)) = heap.pop().expect("peeked");
            output.write_all(line.as_bytes())?;
            output.write_all(b"\n")?;
            next += 1;
            wrote = true;
        }
        if wrote {
            output.flush()?;
        }
    }
    // The channel only closes once every response was sent, so the heap
    // is drained (a hole would mean a request got no response).
    while let Some(Reverse((_, line))) = heap.pop() {
        output.write_all(line.as_bytes())?;
        output.write_all(b"\n")?;
    }
    output.flush()
}

/// One pending lane batch of queries against a single instance.
struct PendingBatch {
    instance: String,
    seqs: Vec<u64>,
    queries: Vec<PointQuery>,
}

/// Shard worker: drain the queue, coalescing runs of queries per
/// instance into lane batches; mutating requests flush first so FIFO
/// semantics hold per instance.
fn shard_worker(rx: &Receiver<ShardMsg>, out: &Sender<(u64, String)>, cfg: &ServeConfig) {
    let mut cache = InstanceCache::new(cfg.byte_budget);
    let mut pending: Vec<PendingBatch> = Vec::new();
    let mut queries = 0u64;
    let mut batches = 0u64;
    let mut failed = 0u64;
    loop {
        let msg = if let Some(m) = rx.try_recv() {
            m
        } else {
            // Queue drained: answer what is buffered, then sleep.
            flush_all(
                &mut pending,
                &mut cache,
                out,
                cfg,
                &mut queries,
                &mut batches,
                &mut failed,
            );
            match rx.recv() {
                Ok(m) => m,
                Err(_) => break,
            }
        };
        match msg {
            ShardMsg::Probe { reply } => {
                flush_all(
                    &mut pending,
                    &mut cache,
                    out,
                    cfg,
                    &mut queries,
                    &mut batches,
                    &mut failed,
                );
                let c = cache.stats();
                let _ = reply.send(ServeStats {
                    instances: c.instances,
                    resident_bytes: c.resident_bytes,
                    hits: c.hits,
                    misses: c.misses,
                    evictions: c.evictions,
                    queries,
                    batches,
                    failed,
                });
            }
            ShardMsg::Req { seq, req } => match req {
                Request::Query { instance, query } => {
                    let batch = match pending.iter_mut().find(|b| b.instance == instance) {
                        Some(b) => b,
                        None => {
                            pending.push(PendingBatch {
                                instance,
                                seqs: Vec::with_capacity(MAX_LANES),
                                queries: Vec::with_capacity(MAX_LANES),
                            });
                            pending.last_mut().expect("just pushed")
                        }
                    };
                    batch.seqs.push(seq);
                    batch.queries.push(query);
                    if batch.queries.len() == MAX_LANES {
                        let full = pending.swap_remove(
                            pending
                                .iter()
                                .position(|b| b.queries.len() == MAX_LANES)
                                .expect("full"),
                        );
                        flush_batch(
                            full,
                            &mut cache,
                            out,
                            cfg,
                            &mut queries,
                            &mut batches,
                            &mut failed,
                        );
                    }
                }
                Request::Load { instance, spec } => {
                    // Loading may evict arbitrary residents: order every
                    // buffered query before it.
                    flush_all(
                        &mut pending,
                        &mut cache,
                        out,
                        cfg,
                        &mut queries,
                        &mut batches,
                        &mut failed,
                    );
                    let built = catch_unwind(AssertUnwindSafe(|| spec.build()));
                    match built {
                        Ok(Ok(tn)) => {
                            let session = QuerySession::new(tn);
                            let (nodes, edges, lifetime) = (
                                session.num_nodes(),
                                session.network().graph().num_edges(),
                                session.network().lifetime(),
                            );
                            let bytes = session.resident_bytes();
                            let evicted = cache.insert(&instance, session);
                            let _ = out.send((
                                seq,
                                render_loaded(
                                    seq, &instance, nodes, edges, lifetime, bytes, evicted,
                                ),
                            ));
                        }
                        Ok(Err(e)) => {
                            let _ = out.send((seq, render_error(seq, &e)));
                        }
                        Err(panic) => {
                            failed += 1;
                            let _ = out.send((seq, render_failed(seq, &describe_panic(&panic))));
                        }
                    }
                }
                Request::MoveLabel {
                    instance,
                    edge,
                    from,
                    to,
                } => {
                    // The cursor growth may evict others on reaccount:
                    // same ordering rule as a load.
                    flush_all(
                        &mut pending,
                        &mut cache,
                        out,
                        cfg,
                        &mut queries,
                        &mut batches,
                        &mut failed,
                    );
                    let Some(session) = cache.session(&instance) else {
                        let _ = out.send((
                            seq,
                            render_error(seq, &format!("unknown instance {instance:?}")),
                        ));
                        continue;
                    };
                    if (edge as usize) >= session.network().graph().num_edges() {
                        let _ = out
                            .send((seq, render_error(seq, &format!("edge {edge} out of range"))));
                        continue;
                    }
                    let moved =
                        catch_unwind(AssertUnwindSafe(|| session.move_label(edge, from, to)));
                    match moved {
                        Ok(Some(apply)) => {
                            let _ =
                                out.send((seq, render_moved(seq, true, apply.replayed_buckets)));
                            cache.reaccount(&instance);
                        }
                        Ok(None) => {
                            let _ = out.send((seq, render_moved(seq, false, 0)));
                        }
                        Err(panic) => {
                            // The network's own move completed or never
                            // started; only the memoized log and engine
                            // buffers are suspect.
                            session.invalidate_cursor();
                            session.reset_scratch();
                            failed += 1;
                            let _ = out.send((seq, render_failed(seq, &describe_panic(&panic))));
                        }
                    }
                }
                Request::Stats => unreachable!("stats never routes to a shard"),
            },
        }
    }
    flush_all(
        &mut pending,
        &mut cache,
        out,
        cfg,
        &mut queries,
        &mut batches,
        &mut failed,
    );
}

#[allow(clippy::too_many_arguments)]
fn flush_all(
    pending: &mut Vec<PendingBatch>,
    cache: &mut InstanceCache,
    out: &Sender<(u64, String)>,
    cfg: &ServeConfig,
    queries: &mut u64,
    batches: &mut u64,
    failed: &mut u64,
) {
    for batch in pending.drain(..) {
        flush_batch(batch, cache, out, cfg, queries, batches, failed);
    }
}

#[allow(clippy::too_many_arguments)]
fn flush_batch(
    batch: PendingBatch,
    cache: &mut InstanceCache,
    out: &Sender<(u64, String)>,
    cfg: &ServeConfig,
    queries: &mut u64,
    batches: &mut u64,
    failed: &mut u64,
) {
    *batches += 1;
    *queries += batch.seqs.len() as u64;
    let Some(session) = cache.session(&batch.instance) else {
        for &seq in &batch.seqs {
            let _ = out.send((
                seq,
                render_error(seq, &format!("unknown instance {:?}", batch.instance)),
            ));
        }
        return;
    };
    // Range-check before packing lanes: one bad vertex must reject that
    // query, not poison the batch.
    let n = session.num_nodes() as u32;
    let mut seqs = Vec::with_capacity(batch.seqs.len());
    let mut lanes = Vec::with_capacity(batch.queries.len());
    for (&seq, &query) in batch.seqs.iter().zip(&batch.queries) {
        let bad = match query {
            PointQuery::Reaches { u, v, .. } | PointQuery::Foremost { u, v } => {
                (u >= n).then_some(u).or((v >= n).then_some(v))
            }
            PointQuery::DistanceRow { u, .. } => (u >= n).then_some(u),
        };
        if let Some(vertex) = bad {
            let _ = out.send((
                seq,
                render_error(seq, &format!("vertex {vertex} out of range (n = {n})")),
            ));
        } else {
            seqs.push(seq);
            lanes.push(query);
        }
    }
    run_queries(session, &seqs, &lanes, out, cfg, failed);
}

/// Run one lane batch under panic isolation and the optional deadline.
/// A poisoned batch resets the engine scratch and replays each query
/// alone, so only the poisoned one quarantines.
fn run_queries(
    session: &mut QuerySession,
    seqs: &[u64],
    lanes: &[PointQuery],
    out: &Sender<(u64, String)>,
    cfg: &ServeConfig,
    failed: &mut u64,
) {
    if seqs.is_empty() {
        return;
    }
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        if let Some(d) = cfg.deadline {
            session.set_cancel_token(Some(CancelToken::with_deadline(d)));
        }
        for &seq in seqs {
            faults::hit(faults::site::SERVE_QUERY, seq);
        }
        let answers = session.answer_batch(lanes);
        session.set_cancel_token(None);
        answers
    }));
    match outcome {
        Ok(answers) => {
            for (&seq, answer) in seqs.iter().zip(&answers) {
                let _ = out.send((seq, render_answer(seq, answer)));
            }
        }
        Err(panic) => {
            // Engine buffers may be mid-sweep: replace them wholesale
            // (the resident network itself is untouched by queries).
            session.set_cancel_token(None);
            session.reset_scratch();
            if seqs.len() == 1 {
                *failed += 1;
                let _ = out.send((seqs[0], render_failed(seqs[0], &describe_panic(&panic))));
            } else {
                for (&seq, &query) in seqs.iter().zip(lanes) {
                    run_queries(session, &[seq], &[query], out, cfg, failed);
                }
            }
        }
    }
}

fn describe_panic(payload: &Box<dyn Any + Send>) -> String {
    if let Some(f) = faults::injected_fault(payload.as_ref()) {
        // Deliberately attempt-free: the same fault must render the
        // same bytes whether it fired in a batch or in its lone replay.
        return format!("injected fault at {} (key {})", f.site, f.key);
    }
    if let Some(reason) = faults::cancel_reason(payload.as_ref()) {
        return match reason {
            CancelReason::TimedOut => "batch deadline exceeded".to_string(),
            CancelReason::Requested => "batch cancelled".to_string(),
        };
    }
    if let Some(s) = payload.downcast_ref::<&str>() {
        return (*s).to_string();
    }
    if let Some(s) = payload.downcast_ref::<String>() {
        return s.clone();
    }
    "panic".to_string()
}

/// Serve `connections` TCP connections (all of them when `None`), one
/// at a time, each speaking the same line protocol as stdin.
///
/// # Errors
/// Accept/read/write errors propagate.
pub fn serve_listener(
    listener: &TcpListener,
    cfg: &ServeConfig,
    connections: Option<usize>,
) -> io::Result<()> {
    let mut served = 0usize;
    while connections.is_none_or(|k| served < k) {
        let (stream, _) = listener.accept()?;
        let reader = io::BufReader::new(stream.try_clone()?);
        serve_lines(reader, stream, cfg)?;
        served += 1;
    }
    Ok(())
}

/// Serve stdin → stdout until EOF (the `experiments serve` default).
///
/// # Errors
/// Read/write errors propagate.
pub fn run_stdin(cfg: &ServeConfig) -> io::Result<ServeSummary> {
    let stdin = io::stdin();
    serve_lines(stdin.lock(), io::stdout(), cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn serve_script(script: &str, cfg: &ServeConfig) -> (Vec<String>, ServeSummary) {
        let mut out = Vec::new();
        let summary = serve_lines(script.as_bytes(), &mut out, cfg).expect("in-memory io");
        let text = String::from_utf8(out).expect("utf8 output");
        (text.lines().map(str::to_string).collect(), summary)
    }

    const PATH3: &str = r#"{"op":"load","instance":"p","nodes":3,"directed":false,"edges":[[0,1],[1,2]],"labels":[[1],[2]],"lifetime":2}"#;

    #[test]
    fn loads_queries_and_answers_in_arrival_order() {
        let script = format!(
            "{PATH3}\n\
             {{\"op\":\"query\",\"instance\":\"p\",\"type\":\"foremost\",\"u\":0,\"v\":2}}\n\
             {{\"op\":\"query\",\"instance\":\"p\",\"type\":\"reaches\",\"u\":0,\"v\":2,\"by\":1}}\n\
             {{\"op\":\"query\",\"instance\":\"p\",\"type\":\"distance_row\",\"u\":1}}\n\
             {{\"op\":\"stats\"}}\n"
        );
        let (lines, summary) = serve_script(&script, &ServeConfig::default());
        assert_eq!(lines.len(), 5);
        assert!(lines[0].starts_with(r#"{"id":0,"status":"ok","op":"load","instance":"p""#));
        assert_eq!(
            lines[1],
            r#"{"id":1,"status":"ok","op":"query","type":"foremost","arrival":2}"#
        );
        assert_eq!(
            lines[2],
            r#"{"id":2,"status":"ok","op":"query","type":"reaches","reached":false,"arrival":null}"#
        );
        assert_eq!(
            lines[3],
            r#"{"id":3,"status":"ok","op":"query","type":"distance_row","row":[1,0,2]}"#
        );
        assert!(lines[4].contains(r#""op":"stats""#));
        assert!(lines[4].contains(r#""queries":3"#), "{}", lines[4]);
        assert_eq!(summary.requests, 5);
        assert_eq!(summary.stats.queries, 3);
        assert_eq!(summary.stats.failed, 0);
        assert_eq!(summary.stats.instances, 1);
    }

    #[test]
    fn rejections_are_in_band_and_do_not_stall_the_stream() {
        let script = format!(
            "this is not json\n\
             {{\"op\":\"query\",\"instance\":\"ghost\",\"type\":\"foremost\",\"u\":0,\"v\":1}}\n\
             {PATH3}\n\
             {{\"op\":\"query\",\"instance\":\"p\",\"type\":\"foremost\",\"u\":9,\"v\":0}}\n\
             {{\"op\":\"move_label\",\"instance\":\"p\",\"edge\":7,\"from\":1,\"to\":2}}\n\
             {{\"op\":\"query\",\"instance\":\"p\",\"type\":\"foremost\",\"u\":0,\"v\":1}}\n"
        );
        let (lines, summary) = serve_script(&script, &ServeConfig::default());
        assert_eq!(lines.len(), 6);
        assert!(lines[0].starts_with(r#"{"id":0,"status":"error""#));
        assert_eq!(
            lines[1],
            r#"{"id":1,"status":"error","error":"unknown instance \"ghost\""}"#
        );
        assert!(lines[3].contains("vertex 9 out of range (n = 3)"));
        assert!(lines[4].contains("edge 7 out of range"));
        assert_eq!(
            lines[5],
            r#"{"id":5,"status":"ok","op":"query","type":"foremost","arrival":1}"#
        );
        assert_eq!(summary.stats.failed, 0);
        assert_eq!(summary.stats.misses, 1);
    }

    #[test]
    fn moves_apply_through_the_resident_cursor() {
        let script = format!(
            "{PATH3}\n\
             {{\"op\":\"query\",\"instance\":\"p\",\"type\":\"foremost\",\"u\":0,\"v\":2}}\n\
             {{\"op\":\"move_label\",\"instance\":\"p\",\"edge\":0,\"from\":1,\"to\":2}}\n\
             {{\"op\":\"query\",\"instance\":\"p\",\"type\":\"foremost\",\"u\":0,\"v\":2}}\n\
             {{\"op\":\"move_label\",\"instance\":\"p\",\"edge\":0,\"from\":2,\"to\":1}}\n\
             {{\"op\":\"query\",\"instance\":\"p\",\"type\":\"foremost\",\"u\":0,\"v\":2}}\n"
        );
        let (lines, _) = serve_script(&script, &ServeConfig::default());
        assert_eq!(
            lines[1],
            r#"{"id":1,"status":"ok","op":"query","type":"foremost","arrival":2}"#
        );
        assert!(lines[2].contains(r#""applied":true"#));
        // Labels 2,2 on a path need strict increase: 0 can no longer
        // reach 2.
        assert_eq!(
            lines[3],
            r#"{"id":3,"status":"ok","op":"query","type":"foremost","arrival":null}"#
        );
        // Moving it back restores the original answer bit-for-bit
        // (modulo the request id).
        assert_eq!(
            lines[5],
            r#"{"id":5,"status":"ok","op":"query","type":"foremost","arrival":2}"#
        );
    }

    #[test]
    fn shard_routing_is_stable_and_in_range() {
        for shards in [1usize, 2, 8] {
            for id in ["a", "b", "corpus-7", ""] {
                let s = shard_of(id, shards);
                assert!(s < shards);
                assert_eq!(s, shard_of(id, shards), "routing is a pure function");
            }
        }
    }
}
