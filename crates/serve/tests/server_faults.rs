//! Fault quarantine in the query service: an injected panic at the
//! `serve::query` failpoint must degrade exactly that query to
//! `"status":"failed"` — its batchmates still answer, the instance
//! stays resident, and the transcript is otherwise byte-identical to a
//! fault-free run. The fault registry is process-global, so these tests
//! live in their own integration binary.
//!
//! `fires=2` matters: a poisoned *batch* is replayed one query at a
//! time, so the poisoned query is attempted twice (batch, then alone) —
//! the schedule must fire on both attempts for the quarantine to stick,
//! and [`FaultSchedule::would_fire`] is attempt-independent below the
//! cutoff, so it deterministically does.

use ephemeral_parallel::faults::{self, site, Fault, FaultSchedule};
use ephemeral_serve::server::{serve_lines, ServeConfig};

fn script() -> String {
    let mut s = String::new();
    s.push_str(
        "{\"op\":\"load\",\"instance\":\"g\",\"gnp\":{\"nodes\":40,\"avg_degree\":3.0,\
         \"seed\":9},\"directed\":false,\"lifetime\":80,\"labels_per_edge\":2,\
         \"label_seed\":10}\n",
    );
    for i in 0..30u32 {
        let (u, v) = ((i * 7) % 40, (i * 11 + 1) % 40);
        match i % 3 {
            0 => s.push_str(&format!(
                "{{\"op\":\"query\",\"instance\":\"g\",\"type\":\"foremost\",\"u\":{u},\"v\":{v}}}\n"
            )),
            1 => s.push_str(&format!(
                "{{\"op\":\"query\",\"instance\":\"g\",\"type\":\"reaches\",\"u\":{u},\"v\":{v},\
                 \"by\":{}}}\n",
                10 + i
            )),
            _ => s.push_str(&format!(
                "{{\"op\":\"query\",\"instance\":\"g\",\"type\":\"distance_row\",\"u\":{u}}}\n"
            )),
        }
    }
    s
}

fn run(script: &str, shards: usize) -> Vec<String> {
    let mut out = Vec::new();
    serve_lines(
        script.as_bytes(),
        &mut out,
        &ServeConfig {
            shards,
            ..ServeConfig::default()
        },
    )
    .expect("in-memory io");
    String::from_utf8(out)
        .expect("utf8")
        .lines()
        .map(str::to_string)
        .collect()
}

/// The query sequence numbers of [`script`] are 1..=30 (seq 0 loads).
/// Find a schedule that fires on exactly one of them.
fn one_shot_schedule() -> (FaultSchedule, u64) {
    for seed in 0..10_000u64 {
        let schedule = FaultSchedule::new(seed, 0.04, Fault::Panic)
            .sites(&[site::SERVE_QUERY])
            .fires(2);
        let firing: Vec<u64> = (1..=30)
            .filter(|&k| schedule.would_fire(site::SERVE_QUERY, k, 0))
            .collect();
        if firing.len() == 1 {
            return (schedule, firing[0]);
        }
    }
    panic!("no single-firing seed below 10000");
}

#[test]
fn one_poisoned_query_quarantines_and_its_batchmates_answer() {
    let baseline = run(&script(), 1);
    let (schedule, victim) = one_shot_schedule();

    let guard = faults::install(schedule);
    let faulted = run(&script(), 1);
    let fired = guard.fired();
    drop(guard);

    assert!(fired >= 2, "batch attempt and lone replay both fired");
    assert_eq!(baseline.len(), faulted.len());
    for (seq, (clean, dirty)) in baseline.iter().zip(&faulted).enumerate() {
        if seq as u64 == victim {
            assert_eq!(
                *dirty,
                format!(
                    "{{\"id\":{victim},\"status\":\"failed\",\"error\":\
                     \"injected fault at serve::query (key {victim})\"}}"
                ),
                "the poisoned query is quarantined with an attempt-free message"
            );
        } else {
            assert_eq!(clean, dirty, "request {seq} is unaffected by the fault");
        }
    }
}

/// Pin the schedule the CI serve-smoke job installs via
/// `EPHEMERAL_FAULTS='seed=1,rate=0.04,kind=panic,sites=serve::query,fires=2'`
/// over `ci/serve_script.jsonl` (query seqs 2..=37): it fires on seq 24
/// and nothing else, which is exactly what
/// `ci/serve_golden_faulted.jsonl` quarantines.
#[test]
fn ci_fault_spec_fires_on_seq_24_only() {
    let schedule = FaultSchedule::new(1, 0.04, Fault::Panic)
        .sites(&[site::SERVE_QUERY])
        .fires(2);
    let firing: Vec<u64> = (2..=37)
        .filter(|&k| schedule.would_fire(site::SERVE_QUERY, k, 0))
        .collect();
    assert_eq!(firing, vec![24]);
}

#[test]
fn quarantine_is_shard_invariant() {
    let (schedule, victim) = one_shot_schedule();
    let mut transcripts = Vec::new();
    for shards in [1usize, 2, 8] {
        let guard = faults::install(schedule.clone());
        transcripts.push(run(&script(), shards));
        drop(guard);
    }
    let base = &transcripts[0];
    assert!(base[victim as usize].contains("\"status\":\"failed\""));
    for other in &transcripts[1..] {
        assert_eq!(base, other);
    }
}

#[test]
fn a_deadline_of_zero_degrades_to_failed_not_a_dead_server() {
    // A deadline that has already passed cancels every batch that
    // sweeps; each swept query must quarantine individually and the
    // server must keep serving. Target queries the session answers
    // straight from its static component index (cross-component pairs)
    // never sweep, so they legitimately succeed — but only with an
    // unreachable answer.
    let mut out = Vec::new();
    let script = script();
    serve_lines(
        script.as_bytes(),
        &mut out,
        &ServeConfig {
            shards: 2,
            deadline: Some(std::time::Duration::ZERO),
            ..ServeConfig::default()
        },
    )
    .expect("in-memory io");
    let lines: Vec<String> = String::from_utf8(out)
        .expect("utf8")
        .lines()
        .map(str::to_string)
        .collect();
    assert_eq!(lines.len(), 31);
    assert!(
        lines[0].contains("\"status\":\"ok\""),
        "loads have no deadline"
    );
    let mut failed = 0usize;
    for (seq, line) in lines.iter().enumerate().skip(1) {
        if line.contains("\"status\":\"failed\"") {
            assert!(line.contains("batch deadline exceeded"), "{line}");
            failed += 1;
        } else {
            assert!(
                line.contains("\"arrival\":null"),
                "request {seq} answered under an expired deadline without \
                 sweeping — must be a component-index unreachable: {line}"
            );
        }
    }
    // Row queries (seqs 3, 6, …, 30) always sweep; every one must fail.
    for seq in (3..=30).step_by(3) {
        assert!(
            lines[seq].contains("\"status\":\"failed\""),
            "row request {seq} must sweep and hit the deadline: {}",
            lines[seq]
        );
    }
    assert!(failed >= 10, "at least every row query quarantines");
}
