//! Shard-count invariance and differential oracles for the query
//! service: the same request script must produce the same transcript
//! byte for byte on 1, 2 and 8 shards, every query answer must match a
//! singleton (non-coalesced) [`QuerySession`] replay of the same
//! request stream, label moves on a resident instance must leave it
//! answer-equivalent to a cold rebuild with the moved labels, and the
//! TCP front must speak the exact same bytes as the stdin front.

use ephemeral_serve::protocol::{parse_request, render_answer, LoadSpec, Request};
use ephemeral_serve::server::{serve_lines, serve_listener, ServeConfig};
use ephemeral_temporal::session::QuerySession;
use std::collections::HashMap;
use std::io::{BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};

fn cfg(shards: usize) -> ServeConfig {
    ServeConfig {
        shards,
        ..ServeConfig::default()
    }
}

fn run(script: &str, cfg: &ServeConfig) -> Vec<String> {
    let mut out = Vec::new();
    serve_lines(script.as_bytes(), &mut out, cfg).expect("in-memory io");
    String::from_utf8(out)
        .expect("utf8")
        .lines()
        .map(str::to_string)
        .collect()
}

/// A mixed workload over three resident instances: interleaved shapes,
/// mid-stream label moves, one final stats request.
fn mixed_script() -> String {
    let mut script = String::new();
    script.push_str(
        "{\"op\":\"load\",\"instance\":\"path\",\"nodes\":6,\"directed\":false,\
         \"edges\":[[0,1],[1,2],[2,3],[3,4],[4,5]],\
         \"labels\":[[1],[2,7],[3],[4,9],[5]],\"lifetime\":12}\n",
    );
    script.push_str(
        "{\"op\":\"load\",\"instance\":\"gnp-a\",\"gnp\":{\"nodes\":48,\"avg_degree\":3.5,\
         \"seed\":11},\"directed\":false,\"lifetime\":96,\"labels_per_edge\":2,\
         \"label_seed\":5}\n",
    );
    script.push_str(
        "{\"op\":\"load\",\"instance\":\"gnp-b\",\"gnp\":{\"nodes\":32,\"avg_degree\":4.0,\
         \"seed\":12},\"directed\":true,\"lifetime\":64,\"labels_per_edge\":1,\
         \"label_seed\":6}\n",
    );
    let sizes = [("path", 6u32), ("gnp-a", 48), ("gnp-b", 32)];
    for i in 0..60u32 {
        let (instance, n) = sizes[(i % 3) as usize];
        let u = (i * 7) % n;
        let v = (i * 13 + 3) % n;
        match i % 4 {
            0 => script.push_str(&format!(
                "{{\"op\":\"query\",\"instance\":\"{instance}\",\"type\":\"foremost\",\
                 \"u\":{u},\"v\":{v}}}\n"
            )),
            1 => script.push_str(&format!(
                "{{\"op\":\"query\",\"instance\":\"{instance}\",\"type\":\"reaches\",\
                 \"u\":{u},\"v\":{v},\"by\":{}}}\n",
                8 + i % 40
            )),
            2 => script.push_str(&format!(
                "{{\"op\":\"query\",\"instance\":\"{instance}\",\"type\":\"distance_row\",\
                 \"u\":{u}}}\n"
            )),
            _ => script.push_str(&format!(
                "{{\"op\":\"query\",\"instance\":\"{instance}\",\"type\":\"distance_row\",\
                 \"u\":{u},\"horizon\":{}}}\n",
                4 + i % 20
            )),
        }
        if i == 20 {
            script.push_str(
                "{\"op\":\"move_label\",\"instance\":\"path\",\"edge\":1,\"from\":7,\
                 \"to\":6}\n",
            );
        }
        if i == 40 {
            script.push_str(
                "{\"op\":\"move_label\",\"instance\":\"gnp-b\",\"edge\":0,\"from\":0,\
                 \"to\":1}\n",
            );
        }
    }
    script.push_str("{\"op\":\"stats\"}\n");
    script
}

#[test]
fn transcripts_are_byte_identical_across_shard_counts() {
    let script = mixed_script();
    let base = run(&script, &cfg(1));
    for shards in [2usize, 8] {
        let other = run(&script, &cfg(shards));
        assert_eq!(base.len(), other.len());
        for (a, b) in base.iter().zip(&other) {
            // Batch/hit counters legitimately depend on the shard
            // count; every answer line must not.
            if a.contains("\"op\":\"stats\"") {
                continue;
            }
            assert_eq!(a, b, "shards={shards}");
        }
    }
}

#[test]
fn coalesced_answers_match_a_singleton_session_replay() {
    let script = mixed_script();
    let served = run(&script, &cfg(4));
    // Oracle: replay the same request stream through uncoalesced
    // sessions, one query per call.
    let mut oracle: HashMap<String, QuerySession> = HashMap::new();
    let mut seq = 0u64;
    for line in script.lines().filter(|l| !l.trim().is_empty()) {
        match parse_request(line).expect("script is well-formed") {
            Request::Load { instance, spec } => {
                oracle.insert(instance, QuerySession::new(spec.build().unwrap()));
            }
            Request::MoveLabel {
                instance,
                edge,
                from,
                to,
            } => {
                oracle
                    .get_mut(&instance)
                    .unwrap()
                    .move_label(edge, from, to);
            }
            Request::Query { instance, query } => {
                let answer = oracle.get_mut(&instance).unwrap().answer(&query);
                assert_eq!(
                    served[seq as usize],
                    render_answer(seq, &answer),
                    "request {seq}: {line}"
                );
            }
            Request::Stats => {}
        }
        seq += 1;
    }
    assert!(seq > 60, "the script actually exercised the server");
}

#[test]
fn moved_resident_instance_answers_like_a_cold_rebuild() {
    // Mutate a resident gnp instance through the protocol, then compare
    // its answers with a cold explicit load of the post-move labels.
    let spec = LoadSpec::Gnp {
        nodes: 40,
        avg_degree: 3.0,
        directed: false,
        lifetime: 80,
        labels_per_edge: 2,
        seed: 21,
        label_seed: 22,
    };
    let tn = spec.build().unwrap();
    let mut reference = QuerySession::new(spec.build().unwrap());
    let edges = tn.graph().num_edges() as u32;

    let mut warm = String::new();
    warm.push_str(
        "{\"op\":\"load\",\"instance\":\"m\",\"gnp\":{\"nodes\":40,\"avg_degree\":3.0,\
         \"seed\":21},\"directed\":false,\"lifetime\":80,\"labels_per_edge\":2,\
         \"label_seed\":22}\n",
    );
    // One warm-up query records the delta cursor, then N moves replay
    // through it instead of rebuilding.
    warm.push_str("{\"op\":\"query\",\"instance\":\"m\",\"type\":\"distance_row\",\"u\":0}\n");
    let mut moved_any = false;
    for k in 0..10u32 {
        let e = (k * 5 + 1) % edges;
        let from = *reference
            .network()
            .labels(e)
            .first()
            .expect("every edge has a label");
        let to = 1 + (from + 11 + k) % 80;
        moved_any |= reference.move_label(e, from, to).is_some();
        warm.push_str(&format!(
            "{{\"op\":\"move_label\",\"instance\":\"m\",\"edge\":{e},\"from\":{from},\
             \"to\":{to}}}\n"
        ));
    }
    assert!(moved_any, "the move schedule touched the instance");
    for u in 0..40u32 {
        warm.push_str(&format!(
            "{{\"op\":\"query\",\"instance\":\"m\",\"type\":\"distance_row\",\"u\":{u}}}\n"
        ));
    }
    let warm_lines = run(&warm, &cfg(1));

    // Cold rebuild: explicit load of the reference's post-move labels.
    let mut cold = String::new();
    cold.push_str(
        "{\"op\":\"load\",\"instance\":\"m\",\"nodes\":40,\"directed\":false,\"edges\":[",
    );
    for e in 0..edges {
        if e > 0 {
            cold.push(',');
        }
        let (u, v) = reference.network().graph().endpoints(e);
        cold.push_str(&format!("[{u},{v}]"));
    }
    cold.push_str("],\"labels\":[");
    for e in 0..edges {
        if e > 0 {
            cold.push(',');
        }
        let labels: Vec<String> = reference
            .network()
            .labels(e)
            .iter()
            .map(ToString::to_string)
            .collect();
        cold.push_str(&format!("[{}]", labels.join(",")));
    }
    cold.push_str("],\"lifetime\":80}\n");
    for u in 0..40u32 {
        cold.push_str(&format!(
            "{{\"op\":\"query\",\"instance\":\"m\",\"type\":\"distance_row\",\"u\":{u}}}\n"
        ));
    }
    let cold_lines = run(&cold, &cfg(1));

    // Rows sit at the tail of both transcripts, ids differ (the warm
    // script spent ids on moves) — compare payload past the id.
    let payload = |line: &str| {
        line.split_once(',')
            .map(|(_, rest)| rest.to_string())
            .unwrap()
    };
    let warm_rows: Vec<_> = warm_lines[warm_lines.len() - 40..]
        .iter()
        .map(|l| payload(l))
        .collect();
    let cold_rows: Vec<_> = cold_lines[cold_lines.len() - 40..]
        .iter()
        .map(|l| payload(l))
        .collect();
    assert_eq!(warm_rows, cold_rows);
}

#[test]
fn tcp_front_speaks_the_same_bytes_as_stdin() {
    let script = mixed_script();
    let expected = run(&script, &cfg(2));

    let listener = TcpListener::bind("127.0.0.1:0").expect("bind an ephemeral port");
    let addr = listener.local_addr().unwrap();
    let server = std::thread::spawn(move || {
        serve_listener(&listener, &cfg(2), Some(1)).expect("serve one connection");
    });

    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(script.as_bytes()).expect("send script");
    stream
        .shutdown(std::net::Shutdown::Write)
        .expect("half-close");
    let mut got = String::new();
    BufReader::new(&mut stream)
        .read_to_string(&mut got)
        .expect("read transcript");
    server.join().expect("server thread");

    let got: Vec<String> = got.lines().map(str::to_string).collect();
    assert_eq!(expected.len(), got.len());
    for (a, b) in expected.iter().zip(&got) {
        if a.contains("\"op\":\"stats\"") {
            continue; // hit/batch counters may differ, answers may not
        }
        assert_eq!(a, b);
    }
}
