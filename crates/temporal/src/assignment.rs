//! CSR storage of per-edge time-label sets.

use crate::Time;

/// The label assignment `L = {L_e : e ∈ E}` of a temporal network, stored
/// as one flat CSR array (offsets per edge, labels sorted ascending and
/// deduplicated within each edge).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LabelAssignment {
    offsets: Vec<u32>,
    labels: Vec<Time>,
}

impl Default for LabelAssignment {
    /// An assignment covering zero edges — the natural scratch seed for the
    /// in-place `refill_*` APIs. Performs **no allocation**, so
    /// `std::mem::take` in a buffer-swap loop is free.
    fn default() -> Self {
        Self {
            offsets: Vec::new(),
            labels: Vec::new(),
        }
    }
}

impl LabelAssignment {
    /// Build from one label vector per edge. Labels are sorted and
    /// deduplicated per edge; zero labels are rejected (`None`) because the
    /// paper's label sets are subsets of `{1, 2, …, a}`. Empty per-edge sets
    /// are allowed (an edge that is never available).
    #[must_use]
    pub fn from_vecs(per_edge: Vec<Vec<Time>>) -> Option<Self> {
        let mut offsets = Vec::with_capacity(per_edge.len() + 1);
        offsets.push(0u32);
        let total: usize = per_edge.iter().map(Vec::len).sum();
        let mut labels = Vec::with_capacity(total);
        for mut edge_labels in per_edge {
            if edge_labels.contains(&0) {
                return None;
            }
            edge_labels.sort_unstable();
            edge_labels.dedup();
            labels.extend_from_slice(&edge_labels);
            offsets.push(labels.len() as u32);
        }
        Some(Self { offsets, labels })
    }

    /// Build from exactly one label per edge (the paper's single-label
    /// model of §3). Rejects zero labels.
    #[must_use]
    pub fn single(labels: Vec<Time>) -> Option<Self> {
        if labels.contains(&0) {
            return None;
        }
        let offsets = (0..=labels.len() as u32).collect();
        Some(Self { offsets, labels })
    }

    /// Build by calling `f(edge_id)` for each of `m` edges.
    #[must_use]
    pub fn from_fn(m: usize, mut f: impl FnMut(u32) -> Vec<Time>) -> Option<Self> {
        Self::from_vecs((0..m as u32).map(&mut f).collect())
    }

    /// Rebuild in place with exactly one label per edge, reusing this
    /// assignment's buffers — the zero-allocation (once warm) per-trial
    /// path of the UNI-CASE Monte Carlo estimators. Returns `false` (and
    /// leaves the assignment empty) if `f` produces a zero label.
    pub fn refill_single(&mut self, m: usize, mut f: impl FnMut(u32) -> Time) -> bool {
        self.offsets.clear();
        self.labels.clear();
        self.offsets.reserve(m + 1);
        self.labels.reserve(m);
        self.offsets.push(0);
        for e in 0..m as u32 {
            let t = f(e);
            if t == 0 {
                self.offsets.truncate(1);
                self.labels.clear();
                return false;
            }
            self.labels.push(t);
            self.offsets.push(e + 1);
        }
        true
    }

    /// Rebuild in place with arbitrary per-edge sets: `f(e, buf)` fills the
    /// (cleared) scratch `buf` with edge `e`'s labels, which are then
    /// sorted, deduplicated and appended — the multi-label analogue of
    /// [`LabelAssignment::refill_single`], sharing one scratch vector
    /// across all edges. Returns `false` (and leaves the assignment empty)
    /// if any label is zero.
    pub fn refill_with(
        &mut self,
        m: usize,
        buf: &mut Vec<Time>,
        mut f: impl FnMut(u32, &mut Vec<Time>),
    ) -> bool {
        self.offsets.clear();
        self.labels.clear();
        self.offsets.reserve(m + 1);
        self.offsets.push(0);
        for e in 0..m as u32 {
            buf.clear();
            f(e, buf);
            if buf.contains(&0) {
                self.offsets.truncate(1);
                self.labels.clear();
                return false;
            }
            buf.sort_unstable();
            buf.dedup();
            self.labels.extend_from_slice(buf);
            self.offsets.push(self.labels.len() as u32);
        }
        true
    }

    /// Number of edges covered.
    #[must_use]
    pub fn num_edges(&self) -> usize {
        // A default-constructed scratch has an empty offsets vector (no
        // allocation); it covers zero edges like `from_vecs(vec![])`.
        self.offsets.len().saturating_sub(1)
    }

    /// The sorted label set of edge `e`.
    ///
    /// # Panics
    /// If `e >= num_edges()`.
    #[inline]
    #[must_use]
    pub fn labels(&self, e: u32) -> &[Time] {
        &self.labels[self.offsets[e as usize] as usize..self.offsets[e as usize + 1] as usize]
    }

    /// Total number of labels `Σ_e |L_e|` — the quantity the paper's `OPT`
    /// and Price of Randomness count.
    #[must_use]
    pub fn total_labels(&self) -> usize {
        self.labels.len()
    }

    /// Largest label anywhere, or `None` if no edge has any label.
    #[must_use]
    pub fn max_label(&self) -> Option<Time> {
        self.labels.iter().copied().max()
    }

    /// Smallest label anywhere, or `None` if no edge has any label.
    #[must_use]
    pub fn min_label(&self) -> Option<Time> {
        self.labels.iter().copied().min()
    }

    /// Does edge `e` carry label `t`? `O(log |L_e|)`.
    #[must_use]
    pub fn has_label(&self, e: u32, t: Time) -> bool {
        self.labels(e).binary_search(&t).is_ok()
    }

    /// Move one label of edge `e` from `from` to `to` in place, keeping
    /// the edge's label set sorted — the `O(|L_e|)` surgery under a
    /// single-label resampling step (no other edge's slice moves).
    /// Returns `false` and leaves the assignment unchanged when `from` is
    /// absent, `to` is zero, or `to` is already present (replacing a label
    /// with an existing one would shrink the set; `from == to` is the
    /// degenerate case).
    ///
    /// # Panics
    /// If `e >= num_edges()`.
    pub fn move_label(&mut self, e: u32, from: Time, to: Time) -> bool {
        if to == 0 {
            return false;
        }
        let lo = self.offsets[e as usize] as usize;
        let hi = self.offsets[e as usize + 1] as usize;
        let slice = &mut self.labels[lo..hi];
        let Ok(mut i) = slice.binary_search(&from) else {
            return false;
        };
        if slice.binary_search(&to).is_ok() {
            return false;
        }
        slice[i] = to;
        // Bubble the replaced entry back to its sorted position.
        while i + 1 < slice.len() && slice[i] > slice[i + 1] {
            slice.swap(i, i + 1);
            i += 1;
        }
        while i > 0 && slice[i] < slice[i - 1] {
            slice.swap(i, i - 1);
            i -= 1;
        }
        true
    }

    /// Iterate `(edge, label)` pairs in edge order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, Time)> + '_ {
        (0..self.num_edges() as u32).flat_map(move |e| self.labels(e).iter().map(move |&l| (e, l)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vecs_sorts_and_dedups() {
        let a = LabelAssignment::from_vecs(vec![vec![3, 1, 3], vec![], vec![2]]).unwrap();
        assert_eq!(a.num_edges(), 3);
        assert_eq!(a.labels(0), &[1, 3]);
        assert_eq!(a.labels(1), &[] as &[Time]);
        assert_eq!(a.labels(2), &[2]);
        assert_eq!(a.total_labels(), 3);
    }

    #[test]
    fn zero_labels_are_rejected() {
        assert!(LabelAssignment::from_vecs(vec![vec![0]]).is_none());
        assert!(LabelAssignment::single(vec![1, 0]).is_none());
    }

    #[test]
    fn single_gives_one_label_per_edge() {
        let a = LabelAssignment::single(vec![5, 2, 9]).unwrap();
        assert_eq!(a.num_edges(), 3);
        assert_eq!(a.labels(1), &[2]);
        assert_eq!(a.max_label(), Some(9));
        assert_eq!(a.min_label(), Some(2));
    }

    #[test]
    fn from_fn_builds_by_edge_id() {
        let a = LabelAssignment::from_fn(3, |e| vec![e + 1, e + 10]).unwrap();
        assert_eq!(a.labels(2), &[3, 12]);
        assert_eq!(a.total_labels(), 6);
    }

    #[test]
    fn has_label_binary_search() {
        let a = LabelAssignment::from_vecs(vec![vec![2, 4, 8]]).unwrap();
        assert!(a.has_label(0, 4));
        assert!(!a.has_label(0, 5));
    }

    #[test]
    fn empty_assignment() {
        let a = LabelAssignment::from_vecs(vec![]).unwrap();
        assert_eq!(a.num_edges(), 0);
        assert_eq!(a.total_labels(), 0);
        assert_eq!(a.max_label(), None);
        assert_eq!(a.min_label(), None);
    }

    #[test]
    fn refill_single_matches_fresh_construction() {
        let mut a = LabelAssignment::default();
        assert_eq!(a.num_edges(), 0);
        assert!(a.refill_single(4, |e| e + 1));
        assert_eq!(a, LabelAssignment::single(vec![1, 2, 3, 4]).unwrap());
        // Shrinking reuse keeps the CSR consistent.
        assert!(a.refill_single(2, |_| 9));
        assert_eq!(a, LabelAssignment::single(vec![9, 9]).unwrap());
        // A zero label empties the assignment and reports failure.
        assert!(!a.refill_single(3, |e| e));
        assert_eq!(a.num_edges(), 0);
        assert_eq!(a.total_labels(), 0);
    }

    #[test]
    fn refill_with_sorts_and_dedups_like_from_vecs() {
        let mut a = LabelAssignment::default();
        let mut buf = Vec::new();
        assert!(a.refill_with(3, &mut buf, |e, b| {
            if e != 1 {
                b.extend_from_slice(&[3, 1, 3]);
            }
        }));
        assert_eq!(
            a,
            LabelAssignment::from_vecs(vec![vec![3, 1, 3], vec![], vec![3, 1, 3]]).unwrap()
        );
        assert!(!a.refill_with(2, &mut buf, |_, b| b.push(0)));
        assert_eq!(a.num_edges(), 0);
    }

    #[test]
    fn move_label_keeps_slices_sorted() {
        let mut a = LabelAssignment::from_vecs(vec![vec![2, 5, 9], vec![4]]).unwrap();
        assert!(a.move_label(0, 5, 7)); // interior, no reorder
        assert_eq!(a.labels(0), &[2, 7, 9]);
        assert!(a.move_label(0, 2, 11)); // bubbles up past both
        assert_eq!(a.labels(0), &[7, 9, 11]);
        assert!(a.move_label(0, 11, 1)); // bubbles down past both
        assert_eq!(a.labels(0), &[1, 7, 9]);
        assert_eq!(a.labels(1), &[4], "other edges untouched");
        assert!(a.move_label(1, 4, 6));
        assert_eq!(a.labels(1), &[6]);
    }

    #[test]
    fn move_label_rejects_bad_moves_unchanged() {
        let mut a = LabelAssignment::from_vecs(vec![vec![2, 5]]).unwrap();
        assert!(!a.move_label(0, 3, 4), "absent source label");
        assert!(!a.move_label(0, 2, 5), "collision with existing label");
        assert!(!a.move_label(0, 2, 2), "degenerate from == to");
        assert!(!a.move_label(0, 2, 0), "zero label");
        assert_eq!(a.labels(0), &[2, 5]);
    }

    #[test]
    fn iter_yields_edge_label_pairs() {
        let a = LabelAssignment::from_vecs(vec![vec![1, 2], vec![7]]).unwrap();
        let pairs: Vec<(u32, Time)> = a.iter().collect();
        assert_eq!(pairs, vec![(0, 1), (0, 2), (1, 7)]);
    }
}
