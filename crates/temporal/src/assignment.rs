//! CSR storage of per-edge time-label sets.

use crate::Time;

/// The label assignment `L = {L_e : e ∈ E}` of a temporal network, stored
/// as one flat CSR array (offsets per edge, labels sorted ascending and
/// deduplicated within each edge).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LabelAssignment {
    offsets: Vec<u32>,
    labels: Vec<Time>,
}

impl LabelAssignment {
    /// Build from one label vector per edge. Labels are sorted and
    /// deduplicated per edge; zero labels are rejected (`None`) because the
    /// paper's label sets are subsets of `{1, 2, …, a}`. Empty per-edge sets
    /// are allowed (an edge that is never available).
    #[must_use]
    pub fn from_vecs(per_edge: Vec<Vec<Time>>) -> Option<Self> {
        let mut offsets = Vec::with_capacity(per_edge.len() + 1);
        offsets.push(0u32);
        let total: usize = per_edge.iter().map(Vec::len).sum();
        let mut labels = Vec::with_capacity(total);
        for mut edge_labels in per_edge {
            if edge_labels.contains(&0) {
                return None;
            }
            edge_labels.sort_unstable();
            edge_labels.dedup();
            labels.extend_from_slice(&edge_labels);
            offsets.push(labels.len() as u32);
        }
        Some(Self { offsets, labels })
    }

    /// Build from exactly one label per edge (the paper's single-label
    /// model of §3). Rejects zero labels.
    #[must_use]
    pub fn single(labels: Vec<Time>) -> Option<Self> {
        if labels.contains(&0) {
            return None;
        }
        let offsets = (0..=labels.len() as u32).collect();
        Some(Self { offsets, labels })
    }

    /// Build by calling `f(edge_id)` for each of `m` edges.
    #[must_use]
    pub fn from_fn(m: usize, mut f: impl FnMut(u32) -> Vec<Time>) -> Option<Self> {
        Self::from_vecs((0..m as u32).map(&mut f).collect())
    }

    /// Number of edges covered.
    #[must_use]
    pub fn num_edges(&self) -> usize {
        self.offsets.len() - 1
    }

    /// The sorted label set of edge `e`.
    ///
    /// # Panics
    /// If `e >= num_edges()`.
    #[inline]
    #[must_use]
    pub fn labels(&self, e: u32) -> &[Time] {
        &self.labels[self.offsets[e as usize] as usize..self.offsets[e as usize + 1] as usize]
    }

    /// Total number of labels `Σ_e |L_e|` — the quantity the paper's `OPT`
    /// and Price of Randomness count.
    #[must_use]
    pub fn total_labels(&self) -> usize {
        self.labels.len()
    }

    /// Largest label anywhere, or `None` if no edge has any label.
    #[must_use]
    pub fn max_label(&self) -> Option<Time> {
        self.labels.iter().copied().max()
    }

    /// Smallest label anywhere, or `None` if no edge has any label.
    #[must_use]
    pub fn min_label(&self) -> Option<Time> {
        self.labels.iter().copied().min()
    }

    /// Does edge `e` carry label `t`? `O(log |L_e|)`.
    #[must_use]
    pub fn has_label(&self, e: u32, t: Time) -> bool {
        self.labels(e).binary_search(&t).is_ok()
    }

    /// Iterate `(edge, label)` pairs in edge order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, Time)> + '_ {
        (0..self.num_edges() as u32).flat_map(move |e| self.labels(e).iter().map(move |&l| (e, l)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vecs_sorts_and_dedups() {
        let a = LabelAssignment::from_vecs(vec![vec![3, 1, 3], vec![], vec![2]]).unwrap();
        assert_eq!(a.num_edges(), 3);
        assert_eq!(a.labels(0), &[1, 3]);
        assert_eq!(a.labels(1), &[] as &[Time]);
        assert_eq!(a.labels(2), &[2]);
        assert_eq!(a.total_labels(), 3);
    }

    #[test]
    fn zero_labels_are_rejected() {
        assert!(LabelAssignment::from_vecs(vec![vec![0]]).is_none());
        assert!(LabelAssignment::single(vec![1, 0]).is_none());
    }

    #[test]
    fn single_gives_one_label_per_edge() {
        let a = LabelAssignment::single(vec![5, 2, 9]).unwrap();
        assert_eq!(a.num_edges(), 3);
        assert_eq!(a.labels(1), &[2]);
        assert_eq!(a.max_label(), Some(9));
        assert_eq!(a.min_label(), Some(2));
    }

    #[test]
    fn from_fn_builds_by_edge_id() {
        let a = LabelAssignment::from_fn(3, |e| vec![e + 1, e + 10]).unwrap();
        assert_eq!(a.labels(2), &[3, 12]);
        assert_eq!(a.total_labels(), 6);
    }

    #[test]
    fn has_label_binary_search() {
        let a = LabelAssignment::from_vecs(vec![vec![2, 4, 8]]).unwrap();
        assert!(a.has_label(0, 4));
        assert!(!a.has_label(0, 5));
    }

    #[test]
    fn empty_assignment() {
        let a = LabelAssignment::from_vecs(vec![]).unwrap();
        assert_eq!(a.num_edges(), 0);
        assert_eq!(a.total_labels(), 0);
        assert_eq!(a.max_label(), None);
        assert_eq!(a.min_label(), None);
    }

    #[test]
    fn iter_yields_edge_label_pairs() {
        let a = LabelAssignment::from_vecs(vec![vec![1, 2], vec![7]]).unwrap();
        let pairs: Vec<(u32, Time)> = a.iter().collect();
        assert_eq!(pairs, vec![(0, 1), (0, 2), (1, 7)]);
    }
}
