//! Compact all-pairs temporal reachability: one bit per ordered pair.
//!
//! For `T_reach`-style analyses over many instances, storing full `n × n`
//! arrival matrices (`4n²` bytes) is wasteful when only reachability is
//! asked. [`ReachabilityMatrix`] packs the closure into `n²/8` bytes of
//! `u64` words and answers pair queries, per-source counts, and the
//! pair-deficit (how many ordered pairs lack a journey) with word-parallel
//! popcounts. The closure is computed by whichever engine the
//! density-aware [`EngineChoice`] selects:
//! the single-pass [`wide`](crate::wide) engine on dense instances above
//! the batch crossover (saturation early-exit, empty-bucket skipping),
//! the event-driven [`sparse`](crate::sparse) engine on sparse ones, and
//! one [`engine`](crate::engine) sweep per batch of 64 sources below the
//! crossover — the per-source scalar sweep remains the differential
//! oracle (see this module's tests, `tests/engine_proptests.rs`,
//! `tests/wide_proptests.rs` and `tests/sparse_proptests.rs`).

use crate::engine::{batch_count, batch_range, BatchSweeper};
use crate::kernels;
use crate::network::TemporalNetwork;
use crate::session::closure_rows_into;
use crate::sparse::{EngineChoice, FrontierRun};
use crate::wide::{source_blocks, FrontierEngine};
use ephemeral_graph::NodeId;
use ephemeral_parallel::{par_for_with, par_map_with};
use std::ops::Range;

/// Bit-packed `n × n` temporal reachability closure (row = source).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReachabilityMatrix {
    n: usize,
    words_per_row: usize,
    bits: Vec<u64>,
}

impl ReachabilityMatrix {
    /// Compute the closure: bit `(s, t)` is set iff a journey `s → t`
    /// exists (diagonal bits are set — a vertex reaches itself). Above
    /// the batch crossover, one full-width sweep per column block (blocks
    /// fanned out over `threads`) through whichever frontier engine the
    /// density-aware [`EngineChoice::pick`] selects; below, one engine
    /// sweep per batch of 64 sources. Every path produces identical bits.
    #[must_use]
    pub fn compute(tn: &TemporalNetwork, threads: usize) -> Self {
        let n = tn.num_nodes();
        let words_per_row = n.div_ceil(64);
        struct Closure<'a> {
            tn: &'a TemporalNetwork,
            threads: usize,
        }
        impl FrontierRun for Closure<'_> {
            type Out = Vec<Vec<u64>>;
            fn run<S: FrontierEngine>(self, shards: usize) -> Self::Out {
                let blocks = source_blocks(self.tn.num_nodes(), shards);
                closure_blocks::<S>(self.tn, self.threads, &blocks)
            }
        }
        let chunks =
            EngineChoice::dispatch(tn, threads, Closure { tn, threads }).unwrap_or_else(|| {
                // Below the crossover each 64-source batch runs through
                // the shared lane-pass core of `session` — the same pass
                // that answers point queries.
                par_for_with(batch_count(n), threads, BatchSweeper::new, |sweeper, b| {
                    let mut rows = Vec::new();
                    closure_rows_into(tn, sweeper, batch_range(n, b), &mut rows);
                    rows
                })
            });
        let mut bits = Vec::with_capacity(n * words_per_row);
        for chunk in chunks {
            bits.extend(chunk);
        }
        Self {
            n,
            words_per_row,
            bits,
        }
    }

    /// Number of vertices.
    #[must_use]
    pub const fn n(&self) -> usize {
        self.n
    }

    /// Does a journey `s → t` exist? (`true` on the diagonal.)
    #[inline]
    #[must_use]
    pub fn reaches(&self, s: NodeId, t: NodeId) -> bool {
        let idx = s as usize * self.words_per_row + t as usize / 64;
        self.bits[idx] >> (t % 64) & 1 == 1
    }

    /// Number of vertices reachable from `s` (including `s`).
    #[must_use]
    pub fn out_count(&self, s: NodeId) -> usize {
        let row = &self.bits[s as usize * self.words_per_row..][..self.words_per_row];
        kernels::popcount_words(row)
    }

    /// Number of vertices that reach `t` (including `t`).
    #[must_use]
    pub fn in_count(&self, t: NodeId) -> usize {
        (0..self.n as NodeId)
            .filter(|&s| self.reaches(s, t))
            .count()
    }

    /// Ordered pairs `(s, t)`, `s ≠ t`, **without** a journey.
    #[must_use]
    pub fn missing_pairs(&self) -> usize {
        let total_set = kernels::popcount_words(&self.bits);
        // Every diagonal bit is set, so reachable ordered off-diagonal pairs
        // are total_set − n.
        self.n * self.n - total_set
    }

    /// Is every ordered pair connected by a journey?
    #[must_use]
    pub fn is_temporally_connected(&self) -> bool {
        self.missing_pairs() == 0
    }
}

/// One full-width sweep per column block through engine `S`, transposing
/// each sweeper's per-vertex lane words into per-source rows of target
/// bits (`O(reached pairs)` single-bit sets). Rows stream through
/// [`FrontierEngine::for_each_reach_row`], so neither engine ever
/// materialises its own `n × ⌈lanes/64⌉` matrix for the transpose — the
/// wide engine lends frontier slices, the sparse engine streams one
/// pooled row at a time out of its reacher lists.
fn closure_blocks<S: FrontierEngine>(
    tn: &TemporalNetwork,
    threads: usize,
    blocks: &[Range<NodeId>],
) -> Vec<Vec<u64>> {
    let n = tn.num_nodes();
    let words_per_row = n.div_ceil(64);
    par_map_with(blocks, threads, S::default, |sweeper, _, block| {
        sweeper.sweep(tn, block.clone(), 0, |_, _, _, _| {});
        let mut rows = vec![0u64; block.len() * words_per_row];
        sweeper.for_each_reach_row(|v, row| {
            let (vw, vb) = (v as usize / 64, v % 64);
            kernels::for_each_set_lane(row, |lane| {
                rows[lane * words_per_row + vw] |= 1 << vb;
            });
        });
        rows
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reachability::temporal_reach;
    use crate::LabelAssignment;
    use ephemeral_graph::generators;
    use ephemeral_rng::{RandomSource, SeedSequence};

    fn random_network(seed: u64, n: usize) -> TemporalNetwork {
        let mut rng = SeedSequence::new(seed).rng(0);
        let g = generators::gnp(n, 0.3, false, &mut rng);
        let lifetime = n as u32;
        let labels =
            LabelAssignment::from_fn(g.num_edges(), |_| vec![rng.range_u32(1, lifetime)]).unwrap();
        TemporalNetwork::new(g, labels, lifetime).unwrap()
    }

    #[test]
    fn closure_matches_per_source_reach() {
        for seed in 0..10 {
            let tn = random_network(seed, 37); // crosses a word boundary? n<64: single word
            let m = ReachabilityMatrix::compute(&tn, 2);
            for s in 0..37u32 {
                let reach = temporal_reach(&tn, s);
                for (t, &r) in reach.iter().enumerate() {
                    assert_eq!(m.reaches(s, t as u32), r, "seed {seed} pair ({s},{t})");
                }
                assert_eq!(m.out_count(s), reach.iter().filter(|&&b| b).count());
            }
        }
    }

    #[test]
    fn closure_works_across_word_boundaries() {
        let tn = random_network(42, 130); // 3 words per row
        let m = ReachabilityMatrix::compute(&tn, 2);
        assert_eq!(m.n(), 130);
        for s in [0u32, 63, 64, 65, 127, 128, 129] {
            let reach = temporal_reach(&tn, s);
            for t in [0u32, 63, 64, 65, 127, 128, 129] {
                assert_eq!(m.reaches(s, t), reach[t as usize], "pair ({s},{t})");
            }
        }
    }

    #[test]
    fn diagonal_is_always_set() {
        let tn = random_network(7, 20);
        let m = ReachabilityMatrix::compute(&tn, 1);
        for v in 0..20u32 {
            assert!(m.reaches(v, v));
        }
    }

    #[test]
    fn missing_pairs_matches_bruteforce() {
        let tn = random_network(3, 25);
        let m = ReachabilityMatrix::compute(&tn, 2);
        let mut brute = 0;
        for s in 0..25u32 {
            let reach = temporal_reach(&tn, s);
            brute += reach.iter().filter(|&&b| !b).count();
        }
        assert_eq!(m.missing_pairs(), brute);
    }

    #[test]
    fn clique_closure_is_complete() {
        let g = generators::clique(10, false);
        let mut rng = SeedSequence::new(5).rng(0);
        let labels =
            LabelAssignment::from_fn(g.num_edges(), |_| vec![rng.range_u32(1, 10)]).unwrap();
        let tn = TemporalNetwork::new(g, labels, 10).unwrap();
        let m = ReachabilityMatrix::compute(&tn, 2);
        assert!(m.is_temporally_connected());
        assert_eq!(m.missing_pairs(), 0);
        assert_eq!(m.in_count(3), 10);
    }

    #[test]
    fn thread_invariance() {
        let tn = random_network(9, 70);
        assert_eq!(
            ReachabilityMatrix::compute(&tn, 1),
            ReachabilityMatrix::compute(&tn, 4)
        );
    }

    #[test]
    fn wide_path_matches_per_source_reach() {
        // Above the crossover the wide engine serves the closure; pin it
        // against the scalar oracle and the thread-count invariance.
        let n = crate::wide::WIDE_CROSSOVER + 13;
        let tn = random_network(21, n);
        let m = ReachabilityMatrix::compute(&tn, 1);
        assert_eq!(m, ReachabilityMatrix::compute(&tn, 4));
        let mut brute_missing = 0;
        for s in 0..n as u32 {
            let reach = temporal_reach(&tn, s);
            assert_eq!(m.out_count(s), reach.iter().filter(|&&b| b).count());
            brute_missing += reach.iter().filter(|&&b| !b).count();
        }
        assert_eq!(m.missing_pairs(), brute_missing);
    }
}
