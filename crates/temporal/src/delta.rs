//! Differential closure maintenance: retract-and-replay of one
//! all-source sweep under single-label moves.
//!
//! Every correlated-resampling loop in `ephemeral-core` perturbs **one
//! edge label at a time** and then asks the same all-pairs question
//! again. A cold sweep re-derives the whole closure from scratch;
//! [`DeltaCursor`] instead memoizes the sweep as a per-row
//! **fresh-word log** and answers a label move `(e, t₁ → t₂)` by
//! replaying only the buckets the move can actually perturb: the two
//! moved buckets plus any bucket containing an edge into a row whose
//! replayed value has diverged from the memoized baseline. Everything
//! else — the whole prefix before `min(t₁, t₂)` and every clean
//! bucket after it — is never even read.
//!
//! ## Why a log is enough
//!
//! A [`FrontierEngine`] sweep sets each `(source, vertex)` reach bit
//! **exactly once**, and its commit callback fires once per freshly set
//! frontier word in non-decreasing bucket time. Recording those
//! `(time, word, fresh-mask)` events per vertex row therefore captures
//! the entire sweep reversibly: because bits only ever turn on, the
//! same log is simultaneously
//!
//! * the **undo log** — `row &= !mask` over a row's log suffix
//!   restores that row's state strictly before a bucket, and
//! * the **redo log** — `row |= mask` replays its commits verbatim.
//!
//! The per-engine snapshot machinery the design sketch called for
//! (row-matrix snapshots for the wide engine, arena watermarks for the
//! sparse one) collapses into this one shared, finer-grained structure:
//! any engine that honours the [`FrontierEngine`] callback contract can
//! record a cursor, so [`DeltaSweep`] is a marker extension with a
//! single provided method. Epoch checkpoints degenerate to per-row log
//! positions — the "nearest checkpoint ≤ min(t₁, t₂)" is found by a
//! binary search over one row's entry times, exact rather than
//! ~√(occupied) apart, and materialized only for the handful of rows a
//! replayed bucket actually reads.
//!
//! ## Lazily opened rows instead of global retraction
//!
//! Retracting the whole log suffix at `min(t₁, t₂)` and fast-forwarding
//! it back is two streamed passes over everything the sweep did after
//! the cut — `O(K)` word writes per apply no matter how small the
//! actual perturbation. Even a passive walk over the occupied suffix
//! asking "is this bucket perturbed?" costs a gate check per bucket.
//! The cursor instead leaves `rows` at the final closure and drives an
//! **agenda** of candidate bucket times: the two moved buckets seed
//! it, and whenever a processed bucket leaves a row diverged from the
//! baseline, the future label times of that row's incident edges — the
//! only buckets that can ever read it — are pushed. A popped candidate
//! is re-checked against the **dirty gate** (is it a moved bucket, or
//! does some edge in it still touch a diverged row?) and processed
//! only then; clean stretches of the sweep are never visited at all.
//! Processing a bucket **opens** each incident row — binary-search its
//! log, clear the suffix masks so the row shows its before-view —
//! recomputes the commits under the frozen-`before` per-bucket
//! semantics shared by all engines, and **splices** the row's log at
//! that time from the old entries to the new ones. Already-open rows
//! are advanced by re-applying their logged entries, which is exact
//! because a bucket left unvisited (or gated off) had no diverged
//! endpoint when its time passed. A shadow copy of the baseline is
//! kept for every word a processed bucket touches; when the tracked
//! divergence set drains at a bucket ≥ max(t₁, t₂) every remaining
//! candidate would gate off anyway, so the walk stops — the early
//! re-convergence exit. At the end every opened row is fast-forwarded
//! through its remaining (still valid) log entries back to the final
//! closure.
//!
//! ## Cost model
//!
//! With `D` processed (dirty) buckets of average bucket degree `d̄`,
//! `R ≤ 2 d̄ D` opened rows of graph degree `δ̄` with logs of average
//! length `ℓ = K/n` (`K` total log entries, `n` vertices,
//! `W = ⌈n/64⌉` words per row):
//!
//! * agenda: `O(δ̄ log)` pushes per newly diverged row, one
//!   `O(d̄)` gate re-check per popped candidate — buckets the
//!   perturbation cannot reach are never visited, so the walk cost is
//!   independent of the lifetime and of the occupied-bucket count;
//! * open / advance / finalize: `O(ℓ + W)` per opened row;
//! * process: `O(d̄ · W)` words per dirty bucket plus a splice of the
//!   touched rows' logs;
//! * memory: `n · W` words of rows plus 16 bytes per log entry, pooled
//!   and reused across applies (zero warm allocations).
//!
//! In the paper's sparse regime (`a = 4n`, average degree 4) the
//! closure is ~1% dense at `n = 4096`, `ℓ` is ~40 and `D` is a few
//! dozen — microseconds against a multi-millisecond cold re-sweep. See
//! the `delta_vs_cold` bench and `BENCH_PR6.json` for measured numbers.
//!
//! ```
//! use ephemeral_graph::generators;
//! use ephemeral_temporal::delta::{DeltaCursor, DeltaSweep};
//! use ephemeral_temporal::wide::WideSweeper;
//! use ephemeral_temporal::{LabelAssignment, TemporalNetwork};
//!
//! // 0—1 @1, 1—2 @2, then move the second edge's label to 1: the
//! // journey 0→2 (strictly increasing labels) disappears.
//! let tn = TemporalNetwork::new(
//!     generators::path(3),
//!     LabelAssignment::from_vecs(vec![vec![1], vec![2]]).unwrap(),
//!     4,
//! )
//! .unwrap();
//! let mut tn = tn;
//! let mut cursor = DeltaCursor::new();
//! let stats = WideSweeper::new().record(&tn, &mut cursor);
//! assert_eq!(stats.reached_bits, 3 + 5); // diagonal + 5 off-diagonal
//! assert_eq!(cursor.reach_word(2, 0), 0b111);
//! let delta = cursor.apply_label_move(&mut tn, 1, 2, 1).unwrap();
//! assert_eq!(cursor.reach_word(2, 0), 0b110); // 0 no longer reaches 2
//! assert!(delta.replayed_buckets >= 1);
//! ```

use crate::kernels::{self, AlignedSlab};
use crate::network::{LabelMove, TemporalNetwork};
use crate::sparse::{EngineChoice, FrontierRun, SparseSweeper};
use crate::wide::{EngineKind, FrontierEngine, SweepScratch, WideStats, WideSweeper};
use crate::Time;
use ephemeral_graph::{EdgeId, Graph, NodeId};
use ephemeral_parallel::faults::{self, CancelToken};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A [`FrontierEngine`] whose sweeps can seed a [`DeltaCursor`].
///
/// Any engine honouring the [`FrontierEngine`] callback contract —
/// each `(word, bit)` set exactly once per sweep, callbacks in
/// non-decreasing bucket time — records correctly, so the trait adds a
/// single provided method and the per-engine impls are empty markers.
/// The 64-lane batched engine is not a [`FrontierEngine`]; dispatch
/// paths record through the wide engine instead (bit-identical rows,
/// see [`SweepScratch::record_delta`]).
pub trait DeltaSweep: FrontierEngine {
    /// Run one full all-source sweep (`sources = 0..n`, start time 0,
    /// full lifetime) through this engine, memoizing it into `cursor`
    /// so subsequent [`DeltaCursor::apply_label_move`] calls replay
    /// differentially instead of re-sweeping cold.
    fn record(&mut self, tn: &TemporalNetwork, cursor: &mut DeltaCursor) -> WideStats
    where
        Self: Sized,
    {
        cursor.record_from(tn, self)
    }
}

impl DeltaSweep for WideSweeper {}
impl DeltaSweep for SparseSweeper {}

/// One logged commit of a row: word `word` of the row gained the
/// `mask` lanes at bucket time `time`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct RowEntry {
    time: Time,
    word: u16,
    mask: u64,
}

/// What one [`DeltaCursor::apply_label_move`] did — the observability
/// the `delta_vs_cold` bench and the sweep rows report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeltaApply {
    /// Buckets re-processed for real (the moved buckets plus buckets
    /// containing an edge into a diverged row).
    pub replayed_buckets: usize,
    /// Agenda candidates popped but gated off — the row that put them
    /// on the agenda had already re-converged by the time they came up.
    pub skipped_buckets: usize,
    /// Rows materialized to a before-view during this apply.
    pub opened_rows: usize,
    /// The bucket time at which the replayed state re-converged onto
    /// the memoized baseline and the walk stopped early, if it did.
    pub reconverged_at: Option<Time>,
}

/// A memoized all-source sweep that maintains itself under
/// [`TemporalNetwork::move_label`] surgery.
///
/// Seed with [`DeltaSweep::record`] (or the pooled, dispatching
/// [`SweepScratch::record_delta`]), then drive with
/// [`DeltaCursor::apply_label_move`]. After every apply the cursor's
/// closure rows, [`DeltaCursor::stats`] `reached_bits` and
/// `last_arrival` are **bit-identical** to a cold all-source sweep of
/// the mutated network (pinned by `tests/delta_proptests.rs` across
/// engines and thread counts). `buckets_visited` reports the number of
/// nonempty log buckets rather than a cold pass's visit count — the
/// one field whose cold meaning does not survive memoization.
///
/// All state is pooled: warm applies allocate nothing (covered by
/// `ephemeral-core`'s allocation regression test).
#[derive(Debug, Clone, Default)]
pub struct DeltaCursor {
    n: usize,
    width: usize,
    /// Row-major `n × width` closure matrix (diagonal seeded) in a
    /// 64-byte-aligned slab, held at the **final** state between
    /// applies; only opened rows are ever rewound mid-apply.
    rows: AlignedSlab,
    /// Word-occupancy summary: bit `w` of `occupancy[v·sw + w/64]` is
    /// set iff word `w` of row `v` is nonzero (`sw = ⌈width/64⌉`) —
    /// lets the frozen accumulation walk only the populated words of a
    /// sparse before-view instead of all `⌈n/64⌉`.
    occupancy: Vec<u64>,
    sw: usize,
    /// Total reach bits set (diagonal included).
    reached: usize,
    /// Per-vertex commit logs in non-decreasing time order — the
    /// memoized sweep.
    rowlog: Vec<Vec<RowEntry>>,
    /// Log entries per bucket time (index `t`), maintaining
    /// `nonempty_buckets` and `last_arrival` incrementally.
    time_entries: Vec<u32>,
    nonempty_buckets: usize,
    last_arrival: Time,
    /// `open_slot[r] != MAX` ⇒ row `r` is open at position
    /// `open_pos[open_slot[r]]` of its log (suffix masks cleared).
    open_slot: Vec<u32>,
    opened: Vec<u32>,
    open_pos: Vec<u32>,
    /// `slot[idx] != MAX` ⇒ word `idx` is tracked at that position of
    /// `tracked`/`shadow` (tracked ⟺ diverged-from-baseline at the
    /// row's current log position).
    slot: Vec<u32>,
    tracked: Vec<u32>,
    shadow: Vec<u64>,
    /// Tracked-word count per vertex row — the O(1) dirty gate.
    row_dirty: Vec<u32>,
    /// Frozen-`before` pending masks for one processed bucket,
    /// epoch-stamped so they never need clearing.
    pending: Vec<u64>,
    pstamp: Vec<u64>,
    epoch: u64,
    touched: Vec<u32>,
    /// Per-bucket scratch: incident-row dedup stamps and list, the old
    /// entry words seen this bucket, and the new commits to splice.
    vstamp: Vec<u64>,
    incident: Vec<u32>,
    bucket_words: Vec<u32>,
    new_entries: Vec<(u32, u64)>,
    /// Candidate bucket times still to visit this apply (min-heap),
    /// and the apply generation at which each row's future incident
    /// times were last pushed (push once per apply — re-divergence is
    /// covered because the earlier push already included all later
    /// times).
    agenda: BinaryHeap<Reverse<Time>>,
    hstamp: Vec<u64>,
    apply_gen: u64,
    /// Cooperative cancellation token checked at every replayed bucket
    /// (`None` = never fires).
    cancel: Option<CancelToken>,
}

impl DeltaCursor {
    /// An empty cursor; [`DeltaSweep::record`] sizes it.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Arm (or clear) the cooperative cancellation token checked at every
    /// replayed bucket of subsequent applies — the sweep grid's per-cell
    /// watchdog (`--cell-timeout`) installs the cell's token here.
    pub fn set_cancel_token(&mut self, token: Option<CancelToken>) {
        self.cancel = token;
    }

    /// Words per closure row of the recorded sweep (`⌈n/64⌉`).
    #[must_use]
    pub const fn words_per_row(&self) -> usize {
        self.width
    }

    /// Word `w` of the closure row of `v`: bit `i` set iff source
    /// `64w + i` reaches `v` (sources count themselves) — the same
    /// layout as [`FrontierEngine::reach_word`] after a full-width
    /// sweep.
    ///
    /// # Panics
    /// If `v` or `w` is out of range for the recorded network.
    #[inline]
    #[must_use]
    pub fn reach_word(&self, v: NodeId, w: usize) -> u64 {
        assert!(w < self.width, "word {w} out of range");
        self.rows.words()[v as usize * self.width + w]
    }

    /// Foremost arrival `δ(u, v)` of the recorded-and-maintained sweep:
    /// the bucket time at which source `u`'s bit committed into row `v`,
    /// `Some(0)` for `u == v` (a source counts itself at the recording's
    /// start time), `None` when `u` never reaches `v`.
    ///
    /// Scans `v`'s commit log: each `(source, vertex)` bit appears in the
    /// log exactly once, in non-decreasing time order, so the first hit
    /// **is** the foremost arrival and stays bit-identical to a cold
    /// sweep after any [`DeltaCursor::apply_label_move`] sequence — this
    /// is the cursor-resident fast path of
    /// [`QuerySession`](crate::session::QuerySession), answering point
    /// queries in `O(|log_v|)` with no sweep at all.
    ///
    /// # Panics
    /// If `u` or `v` is out of range for the recorded network.
    #[must_use]
    pub fn arrival(&self, u: NodeId, v: NodeId) -> Option<Time> {
        assert!((u as usize) < self.n, "source {u} out of range");
        assert!((v as usize) < self.n, "vertex {v} out of range");
        if u == v {
            return Some(0);
        }
        let word = (u as usize / 64) as u16;
        let bit = 1u64 << (u as usize % 64);
        self.rowlog[v as usize]
            .iter()
            .find(|e| e.word == word && e.mask & bit != 0)
            .map(|e| e.time)
    }

    /// Sweep statistics of the maintained closure; see the type-level
    /// note on `buckets_visited`.
    #[must_use]
    pub fn stats(&self) -> WideStats {
        WideStats {
            lanes: self.n,
            reached_bits: self.reached,
            last_arrival: self.last_arrival,
            buckets_visited: self.nonempty_buckets,
            arena_hiwater_words: 0,
            compactions: 0,
            degraded: 0,
        }
    }

    /// Memoize one full all-source sweep of `tn` run through `engine`,
    /// replacing any previously recorded state. Returns the engine's
    /// own sweep stats.
    pub fn record_from<S: FrontierEngine>(
        &mut self,
        tn: &TemporalNetwork,
        engine: &mut S,
    ) -> WideStats {
        let n = tn.num_nodes();
        let width = n.div_ceil(64);
        debug_assert!(width <= 1 << 16, "row word index must fit u16");
        self.n = n;
        self.width = width;
        self.sw = width.div_ceil(64);
        self.rows.resize_zeroed(n * width);
        self.occupancy.clear();
        self.occupancy.resize(n * self.sw, 0);
        for log in &mut self.rowlog {
            log.clear();
        }
        self.rowlog.resize_with(n, Vec::new);
        self.time_entries.clear();
        self.time_entries.resize(tn.lifetime() as usize + 1, 0);
        self.nonempty_buckets = 0;
        self.last_arrival = 0;
        self.open_slot.clear();
        self.open_slot.resize(n, u32::MAX);
        self.opened.clear();
        self.open_pos.clear();
        self.slot.clear();
        self.slot.resize(n * width, u32::MAX);
        self.tracked.clear();
        self.shadow.clear();
        self.row_dirty.clear();
        self.row_dirty.resize(n, 0);
        self.pending.clear();
        self.pending.resize(n * width, 0);
        self.pstamp.clear();
        self.pstamp.resize(n * width, 0);
        self.vstamp.clear();
        self.vstamp.resize(n, 0);
        self.epoch = 0;
        self.agenda.clear();
        self.hstamp.clear();
        self.hstamp.resize(n, 0);
        self.apply_gen = 0;
        {
            let rows = self.rows.words_mut();
            for v in 0..n {
                rows[v * width + v / 64] |= 1 << (v % 64);
            }
        }
        let mut reached = n;
        let Self {
            rows,
            rowlog,
            time_entries,
            nonempty_buckets,
            last_arrival,
            ..
        } = self;
        let rows = rows.words_mut();
        let stats = engine.sweep(tn, 0..n as NodeId, 0, |v, w, fresh, t| {
            let idx = v as usize * width + w;
            debug_assert_eq!(rows[idx] & fresh, 0, "a reach bit set twice");
            rows[idx] |= fresh;
            reached += fresh.count_ones() as usize;
            rowlog[v as usize].push(RowEntry {
                time: t,
                word: w as u16,
                mask: fresh,
            });
            let te = &mut time_entries[t as usize];
            if *te == 0 {
                *nonempty_buckets += 1;
            }
            *te += 1;
            if t > *last_arrival {
                *last_arrival = t;
            }
        });
        debug_assert_eq!(reached, stats.reached_bits);
        self.reached = reached;
        let rows = self.rows.words();
        for v in 0..n {
            kernels::nonzero_word_mask(
                &rows[v * width..(v + 1) * width],
                &mut self.occupancy[v * self.sw..(v + 1) * self.sw],
            );
        }
        stats
    }

    /// Move one label of edge `e` from `from` to `to` **and** update
    /// the memoized closure by replaying the perturbed buckets of the
    /// time-ordered pass. Returns `None` — with both the network and
    /// the cursor untouched — when the move is invalid (see
    /// [`TemporalNetwork::move_label`]).
    ///
    /// # Panics
    /// If no sweep of a same-sized network has been recorded.
    pub fn apply_label_move(
        &mut self,
        tn: &mut TemporalNetwork,
        e: EdgeId,
        from: Time,
        to: Time,
    ) -> Option<DeltaApply> {
        assert!(
            !self.rows.is_empty() && self.n == tn.num_nodes(),
            "record a sweep over this network before applying moves"
        );
        let mv = tn.move_label(e, from, to)?;
        Some(self.replay(tn, mv))
    }

    /// Replay the walk from `mv.earliest()` against the
    /// already-mutated `tn`, processing only perturbed buckets.
    fn replay(&mut self, tn: &TemporalNetwork, mv: LabelMove) -> DeltaApply {
        let t_hi = mv.latest();
        let width = self.width;
        let sw = self.sw;
        let graph = tn.graph();
        let directed = graph.is_directed();
        let (eu, ev) = graph.endpoints(mv.edge);
        let cancel = self.cancel.clone();
        let Self {
            rows,
            occupancy,
            reached,
            rowlog,
            time_entries,
            nonempty_buckets,
            last_arrival,
            open_slot,
            opened,
            open_pos,
            slot,
            tracked,
            shadow,
            row_dirty,
            pending,
            pstamp,
            epoch,
            touched,
            vstamp,
            incident,
            bucket_words,
            new_entries,
            agenda,
            hstamp,
            apply_gen,
            ..
        } = self;
        let rows = rows.words_mut();

        // Seed the agenda with the two moved buckets — `from` must be
        // visited even when the move emptied its bucket (its lingering
        // log entries target `e`'s endpoints and must be consumed).
        // Every other candidate arrives when a row diverges.
        *apply_gen += 1;
        debug_assert!(agenda.is_empty());
        agenda.push(Reverse(mv.from));
        agenda.push(Reverse(mv.to));
        let mut replayed_buckets = 0usize;
        let mut skipped_buckets = 0usize;
        let mut opened_rows = 0usize;
        let mut reconverged_at = None;
        while let Some(Reverse(t)) = agenda.pop() {
            while agenda.peek() == Some(&Reverse(t)) {
                agenda.pop();
            }
            faults::hit(faults::site::ENGINE_BUCKET, u64::from(t));
            if let Some(c) = &cancel {
                c.checkpoint();
            }
            let edges: &[EdgeId] = tn.edges_at(t);
            // The dirty gate: a bucket's commits can differ from its
            // logged entries only if its edge set changed (the moved
            // buckets) or some endpoint row diverged from the baseline.
            let process = t == mv.from
                || t == mv.to
                || (!tracked.is_empty()
                    && edges.iter().any(|&e| {
                        let (u, v) = graph.endpoints(e);
                        row_dirty[u as usize] != 0 || row_dirty[v as usize] != 0
                    }));
            if !process {
                skipped_buckets += 1;
                continue;
            }
            replayed_buckets += 1;
            *epoch += 1;
            // a) Collect this bucket's incident rows — old and new
            // commits can only target these — and open each to its
            // before-view at `t`.
            incident.clear();
            let mut note = |r: NodeId| {
                if vstamp[r as usize] != *epoch {
                    vstamp[r as usize] = *epoch;
                    incident.push(r);
                }
            };
            for &e in edges {
                let (u, v) = graph.endpoints(e);
                note(u);
                note(v);
            }
            if t == mv.from {
                note(eu);
                note(ev);
            }
            for &r in incident.iter() {
                if open_to(
                    rows, occupancy, sw, reached, rowlog, open_slot, opened, open_pos, width,
                    r as usize, t,
                ) {
                    opened_rows += 1;
                }
            }
            // b) Accumulate frozen-`before` pending masks over the
            // bucket's edges (the Definition 2 commit semantics all
            // engines share); `rows` is not written until commit.
            for &e in edges {
                let (u, v) = graph.endpoints(e);
                accumulate(
                    rows, occupancy, sw, pending, pstamp, touched, *epoch, width, u as usize,
                    v as usize,
                );
                if !directed {
                    accumulate(
                        rows, occupancy, sw, pending, pstamp, touched, *epoch, width, v as usize,
                        u as usize,
                    );
                }
            }
            // c) Advance the baseline shadow of every word the old log
            // touches at this time (capture pre-commit rows: untracked
            // ⟺ current equals baseline at the row's log position).
            bucket_words.clear();
            for &r in incident.iter() {
                let log = &rowlog[r as usize];
                let mut p = open_pos[open_slot[r as usize] as usize] as usize;
                while p < log.len() && log[p].time == t {
                    let idx = r as usize * width + log[p].word as usize;
                    track(slot, tracked, shadow, row_dirty, width, idx, rows[idx]);
                    shadow[slot[idx] as usize] |= log[p].mask;
                    bucket_words.push(idx as u32);
                    p += 1;
                }
            }
            // d) Commit the pending masks.
            new_entries.clear();
            for &word in touched.iter() {
                let idx = word as usize;
                let fresh = pending[idx];
                debug_assert!(fresh != 0 && fresh & rows[idx] == 0);
                track(slot, tracked, shadow, row_dirty, width, idx, rows[idx]);
                rows[idx] |= fresh;
                occ_set(occupancy, sw, width, idx);
                *reached += fresh.count_ones() as usize;
                new_entries.push((word, fresh));
            }
            touched.clear();
            // e) Splice each incident row's log at `t` from its old
            // entries to the committed ones, keeping the bucket-time
            // accounting exact.
            new_entries.sort_unstable_by_key(|&(idx, _)| idx);
            for &r in incident.iter() {
                let r = r as usize;
                let s = open_slot[r] as usize;
                let pos = open_pos[s] as usize;
                let log = &mut rowlog[r];
                let mut pos_end = pos;
                while pos_end < log.len() && log[pos_end].time == t {
                    pos_end += 1;
                }
                let old_len = pos_end - pos;
                let lo = new_entries.partition_point(|&(idx, _)| (idx as usize) < r * width);
                let hi = new_entries.partition_point(|&(idx, _)| (idx as usize) < (r + 1) * width);
                let fresh = &new_entries[lo..hi];
                let entry = |&(idx, mask): &(u32, u64)| RowEntry {
                    time: t,
                    word: (idx as usize - r * width) as u16,
                    mask,
                };
                let keep = old_len.min(fresh.len());
                for (dst, src) in log[pos..pos + keep].iter_mut().zip(fresh) {
                    *dst = entry(src);
                }
                if fresh.len() < old_len {
                    log.drain(pos + fresh.len()..pos_end);
                } else if fresh.len() > old_len {
                    log.splice(pos_end..pos_end, fresh[old_len..].iter().map(entry));
                }
                open_pos[s] = (pos + fresh.len()) as u32;
                if fresh.len() != old_len {
                    let te = &mut time_entries[t as usize];
                    let was = *te;
                    *te = *te - old_len as u32 + fresh.len() as u32;
                    if was == 0 {
                        *nonempty_buckets += 1;
                        if t > *last_arrival {
                            *last_arrival = t;
                        }
                    } else if *te == 0 {
                        *nonempty_buckets -= 1;
                    }
                }
            }
            // f) Reconcile: whatever now matches its shadow is clean
            // again — drop it so tracked ⟺ dirty holds at the bucket
            // boundary.
            for &word in bucket_words.iter() {
                reconcile(slot, tracked, shadow, row_dirty, width, rows, word);
            }
            for &(word, _) in new_entries.iter() {
                reconcile(slot, tracked, shadow, row_dirty, width, rows, word);
            }
            // g) Put the future reads of every still-diverged incident
            // row on the agenda: only buckets holding one of the row's
            // incident edges can ever consult it, so their label times
            // are the complete set of buckets the divergence can
            // perturb.
            for &r in incident.iter() {
                if row_dirty[r as usize] != 0 && hstamp[r as usize] != *apply_gen {
                    hstamp[r as usize] = *apply_gen;
                    enqueue_row_reads(agenda, tn, graph, r, t);
                }
            }
            // h) Re-convergence: past both moved buckets with no
            // divergent word left, every remaining candidate would be
            // gated off — stop the walk.
            if t >= t_hi && tracked.is_empty() {
                reconverged_at = Some(t);
                agenda.clear();
                break;
            }
        }
        // Fast-forward every opened row through its remaining (still
        // valid) log entries back to the final closure and release it.
        for (s, &r) in opened.iter().enumerate() {
            let base = r as usize * width;
            for e in &rowlog[r as usize][open_pos[s] as usize..] {
                let idx = base + e.word as usize;
                debug_assert_eq!(rows[idx] & e.mask, 0);
                rows[idx] |= e.mask;
                occ_set(occupancy, sw, width, idx);
                *reached += e.mask.count_ones() as usize;
            }
            open_slot[r as usize] = u32::MAX;
        }
        opened.clear();
        open_pos.clear();
        // The walk may end with genuinely divergent words (the move
        // changed the closure) — reset tracking for the next apply.
        for &word in tracked.iter() {
            slot[word as usize] = u32::MAX;
            row_dirty[word as usize / width] -= 1;
        }
        tracked.clear();
        shadow.clear();
        while *last_arrival > 0 && time_entries[*last_arrival as usize] == 0 {
            *last_arrival -= 1;
        }
        debug_assert!(row_dirty.iter().all(|&d| d == 0));
        DeltaApply {
            replayed_buckets,
            skipped_buckets,
            opened_rows,
            reconverged_at,
        }
    }
}

/// Push every bucket time after `t` at which an edge incident to row
/// `r` fires — the complete set of future buckets that can read or
/// write `r` — onto the agenda. For directed graphs both directions
/// matter: out-edges forward `r`'s (diverged) row, in-edges commit
/// into it.
fn enqueue_row_reads(
    agenda: &mut BinaryHeap<Reverse<Time>>,
    tn: &TemporalNetwork,
    graph: &Graph,
    r: NodeId,
    t: Time,
) {
    let mut push_edges = |edges: &[EdgeId]| {
        for &e in edges {
            let labels = tn.labels(e);
            for &l in &labels[labels.partition_point(|&l| l <= t)..] {
                agenda.push(Reverse(l));
            }
        }
    };
    push_edges(graph.out_adjacency(r).1);
    if graph.is_directed() {
        push_edges(graph.in_adjacency(r).1);
    }
}

/// Open row `r` at time `t` — clear its logged commits at times `≥ t`
/// so `rows` shows the row's before-view (returns `true`) — or advance
/// an already-open row by re-applying its logged commits at times
/// `< t` (returns `false`).
#[inline]
#[allow(clippy::too_many_arguments)]
fn open_to(
    rows: &mut [u64],
    occupancy: &mut [u64],
    sw: usize,
    reached: &mut usize,
    rowlog: &[Vec<RowEntry>],
    open_slot: &mut [u32],
    opened: &mut Vec<u32>,
    open_pos: &mut Vec<u32>,
    width: usize,
    r: usize,
    t: Time,
) -> bool {
    let log = &rowlog[r];
    let base = r * width;
    if open_slot[r] == u32::MAX {
        open_slot[r] = opened.len() as u32;
        let pos = log.partition_point(|e| e.time < t);
        for e in &log[pos..] {
            let idx = base + e.word as usize;
            debug_assert_eq!(rows[idx] & e.mask, e.mask);
            rows[idx] = kernels::ornot_word(rows[idx], e.mask);
            occ_update(occupancy, sw, width, idx, rows[idx]);
            *reached -= e.mask.count_ones() as usize;
        }
        opened.push(r as u32);
        open_pos.push(pos as u32);
        true
    } else {
        let s = open_slot[r] as usize;
        let mut pos = open_pos[s] as usize;
        while pos < log.len() && log[pos].time < t {
            let e = log[pos];
            let idx = base + e.word as usize;
            debug_assert_eq!(rows[idx] & e.mask, 0);
            rows[idx] |= e.mask;
            occ_set(occupancy, sw, width, idx);
            *reached += e.mask.count_ones() as usize;
            pos += 1;
        }
        open_pos[s] = pos as u32;
        false
    }
}

/// Mark word `idx` of the row matrix nonzero in the occupancy summary.
#[inline]
fn occ_set(occupancy: &mut [u64], sw: usize, width: usize, idx: usize) {
    let (v, w) = (idx / width, idx % width);
    occupancy[v * sw + w / 64] |= 1 << (w % 64);
}

/// Re-derive word `idx`'s occupancy bit from its new value `val`.
#[inline]
fn occ_update(occupancy: &mut [u64], sw: usize, width: usize, idx: usize, val: u64) {
    let (v, w) = (idx / width, idx % width);
    let bit = 1u64 << (w % 64);
    if val == 0 {
        occupancy[v * sw + w / 64] &= !bit;
    } else {
        occupancy[v * sw + w / 64] |= bit;
    }
}

/// OR `rows[f] & !rows[tgt]` into `tgt`'s pending masks,
/// epoch-stamping each newly pending word onto `touched` — visiting
/// only the populated words of `f`'s (typically sparse) before-view
/// via the occupancy summary.
#[inline]
#[allow(clippy::too_many_arguments)]
fn accumulate(
    rows: &[u64],
    occupancy: &[u64],
    sw: usize,
    pending: &mut [u64],
    pstamp: &mut [u64],
    touched: &mut Vec<u32>,
    epoch: u64,
    width: usize,
    f: usize,
    tgt: usize,
) {
    let fbase = f * width;
    let tbase = tgt * width;
    for swi in 0..sw {
        let mut summary = occupancy[f * sw + swi];
        while summary != 0 {
            let w = (swi << 6) + summary.trailing_zeros() as usize;
            summary &= summary - 1;
            let fresh = kernels::ornot_word(rows[fbase + w], rows[tbase + w]);
            if fresh != 0 {
                let idx = tbase + w;
                if pstamp[idx] != epoch {
                    pstamp[idx] = epoch;
                    pending[idx] = 0;
                    touched.push(idx as u32);
                }
                pending[idx] |= fresh;
            }
        }
    }
}

/// Start tracking word `idx` with baseline shadow `val` unless already
/// tracked.
#[inline]
fn track(
    slot: &mut [u32],
    tracked: &mut Vec<u32>,
    shadow: &mut Vec<u64>,
    row_dirty: &mut [u32],
    width: usize,
    idx: usize,
    val: u64,
) {
    if slot[idx] == u32::MAX {
        slot[idx] = tracked.len() as u32;
        tracked.push(idx as u32);
        shadow.push(val);
        row_dirty[idx / width] += 1;
    }
}

/// Untrack word `word` if its row value matches its baseline shadow.
#[inline]
fn reconcile(
    slot: &mut [u32],
    tracked: &mut Vec<u32>,
    shadow: &mut Vec<u64>,
    row_dirty: &mut [u32],
    width: usize,
    rows: &[u64],
    word: u32,
) {
    let idx = word as usize;
    let s = slot[idx];
    if s == u32::MAX || rows[idx] != shadow[s as usize] {
        return;
    }
    let s = s as usize;
    let last = tracked.len() - 1;
    tracked.swap(s, last);
    shadow.swap(s, last);
    tracked.pop();
    shadow.pop();
    if s < tracked.len() {
        slot[tracked[s] as usize] = s as u32;
    }
    slot[idx] = u32::MAX;
    row_dirty[idx / width] -= 1;
}

impl SweepScratch {
    /// Record the pooled [`DeltaCursor`] from one all-source sweep,
    /// dispatched density-aware exactly like the cold entry points
    /// ([`EngineChoice::dispatch`]). Instances below the batch
    /// crossover record through the wide engine — the batched sweeper
    /// is not a [`FrontierEngine`], and wide rows are bit-identical to
    /// its lanes — so the reported [`EngineKind`] is the engine that
    /// actually ran. Returns the sweep stats and that attribution.
    pub fn record_delta(&mut self, tn: &TemporalNetwork) -> (WideStats, EngineKind) {
        struct Record<'a> {
            tn: &'a TemporalNetwork,
            delta: &'a mut DeltaCursor,
            scratch: &'a mut SweepScratch,
        }
        impl FrontierRun for Record<'_> {
            type Out = (WideStats, EngineKind);
            fn run<S: FrontierEngine>(self, _shards: usize) -> Self::Out {
                let stats = self
                    .delta
                    .record_from(self.tn, S::from_scratch(self.scratch));
                (stats, S::kind())
            }
        }
        // The cursor rides outside the scratch for the duration of the
        // dispatch so the selected engine can be borrowed from it.
        let mut delta = std::mem::take(&mut self.delta);
        let out = EngineChoice::dispatch(
            tn,
            1,
            Record {
                tn,
                delta: &mut delta,
                scratch: &mut *self,
            },
        )
        .unwrap_or_else(|| (delta.record_from(tn, &mut self.wide), EngineKind::Wide));
        self.delta = delta;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LabelAssignment;
    use ephemeral_graph::{generators, NodeId};
    use ephemeral_rng::{RandomSource, SeedSequence};

    fn random_network(seed: u64, n: usize, directed: bool, lifetime: Time) -> TemporalNetwork {
        let mut rng = SeedSequence::new(seed).rng(0);
        let g = generators::gnp(n, 3.0 / n as f64, directed, &mut rng);
        let labels =
            LabelAssignment::from_fn(g.num_edges(), |_| vec![rng.range_u32(1, lifetime)]).unwrap();
        TemporalNetwork::new(g, labels, lifetime).unwrap()
    }

    /// Assert the cursor is bit-identical to a cold wide re-sweep.
    fn assert_matches_cold(cursor: &DeltaCursor, tn: &TemporalNetwork) {
        let n = tn.num_nodes();
        let mut cold = DeltaCursor::new();
        let stats = WideSweeper::new().record(tn, &mut cold);
        for v in 0..n as NodeId {
            for w in 0..cold.words_per_row() {
                assert_eq!(
                    cursor.reach_word(v, w),
                    cold.reach_word(v, w),
                    "row {v} word {w} diverged from cold sweep"
                );
            }
        }
        assert_eq!(cursor.stats().reached_bits, stats.reached_bits);
        assert_eq!(cursor.stats().last_arrival, stats.last_arrival);
    }

    #[test]
    fn record_matches_engine_rows() {
        let tn = random_network(1, 100, false, 60);
        let mut cursor = DeltaCursor::new();
        let mut wide = WideSweeper::new();
        let stats = wide.record(&tn, &mut cursor);
        assert_eq!(cursor.stats().reached_bits, stats.reached_bits);
        assert_eq!(cursor.stats().last_arrival, stats.last_arrival);
        for v in 0..100 {
            for w in 0..cursor.words_per_row() {
                assert_eq!(cursor.reach_word(v, w), wide.reach_word(v, w));
            }
        }
    }

    #[test]
    fn sparse_and_wide_record_identically() {
        for directed in [false, true] {
            let tn = random_network(2, 90, directed, 200);
            let mut a = DeltaCursor::new();
            let mut b = DeltaCursor::new();
            let sa = WideSweeper::new().record(&tn, &mut a);
            let sb = SparseSweeper::default().record(&tn, &mut b);
            assert_eq!(sa.reached_bits, sb.reached_bits);
            for v in 0..90 {
                for w in 0..a.words_per_row() {
                    assert_eq!(
                        a.reach_word(v, w),
                        b.reach_word(v, w),
                        "directed {directed}"
                    );
                }
            }
        }
    }

    #[test]
    fn single_move_up_and_down_matches_cold() {
        let mut tn = random_network(3, 80, false, 100);
        let mut cursor = DeltaCursor::new();
        WideSweeper::new().record(&tn, &mut cursor);
        let from = tn.labels(0)[0];
        cursor.apply_label_move(&mut tn, 0, from, 100).unwrap();
        assert_matches_cold(&cursor, &tn);
        cursor.apply_label_move(&mut tn, 0, 100, 1).unwrap();
        assert_matches_cold(&cursor, &tn);
    }

    #[test]
    fn doc_example_journey_breaks() {
        let mut tn = TemporalNetwork::new(
            generators::path(3),
            LabelAssignment::from_vecs(vec![vec![1], vec![2]]).unwrap(),
            4,
        )
        .unwrap();
        let mut cursor = DeltaCursor::new();
        WideSweeper::new().record(&tn, &mut cursor);
        assert_eq!(cursor.reach_word(2, 0), 0b111);
        // Move 1—2 to time 1: label sequence 1,1 is not increasing.
        cursor.apply_label_move(&mut tn, 1, 2, 1).unwrap();
        assert_eq!(cursor.reach_word(2, 0), 0b110);
        assert_matches_cold(&cursor, &tn);
        // Move it back out to time 3: journey restored.
        cursor.apply_label_move(&mut tn, 1, 1, 3).unwrap();
        assert_eq!(cursor.reach_word(2, 0), 0b111);
        assert_matches_cold(&cursor, &tn);
    }

    #[test]
    fn random_move_sequences_match_cold_resweeps() {
        for (seed, directed) in [(11u64, false), (12, true)] {
            let mut tn = random_network(seed, 70, directed, 90);
            let mut cursor = DeltaCursor::new();
            SparseSweeper::default().record(&tn, &mut cursor);
            let mut rng = SeedSequence::new(seed).rng(7);
            let m = tn.assignment().num_edges();
            let mut applied = 0;
            for step in 0..120 {
                let e = rng.index(m) as EdgeId;
                let labels = tn.labels(e);
                if labels.is_empty() {
                    continue;
                }
                let from = labels[rng.index(labels.len())];
                let to = rng.range_u32(1, 90);
                if cursor.apply_label_move(&mut tn, e, from, to).is_some() {
                    applied += 1;
                }
                if step % 10 == 0 {
                    assert_matches_cold(&cursor, &tn);
                }
            }
            assert!(applied > 60, "only {applied} moves applied");
            assert_matches_cold(&cursor, &tn);
        }
    }

    #[test]
    fn reconvergence_fires_on_a_far_past_noop_move() {
        // A clique saturates in its first bucket; moving a label among
        // later buckets replays and re-converges without any change.
        let g = generators::clique(8, false);
        let m = g.num_edges();
        let labels = LabelAssignment::from_vecs(vec![(1..=20).collect(); m]).unwrap();
        let mut tn = TemporalNetwork::new(g, labels, 40).unwrap();
        let mut cursor = DeltaCursor::new();
        WideSweeper::new().record(&tn, &mut cursor);
        let before = cursor.stats();
        let delta = cursor.apply_label_move(&mut tn, 0, 10, 30).unwrap();
        assert_eq!(delta.reconverged_at, Some(30));
        assert_eq!(cursor.stats().reached_bits, before.reached_bits);
        assert_matches_cold(&cursor, &tn);
    }

    #[test]
    fn clean_buckets_are_never_even_visited() {
        // Same saturated clique: the buckets between the moved pair
        // never reach the agenda — no row diverges, so nothing puts
        // them there.
        let g = generators::clique(8, false);
        let m = g.num_edges();
        let labels = LabelAssignment::from_vecs(vec![(1..=20).collect(); m]).unwrap();
        let mut tn = TemporalNetwork::new(g, labels, 40).unwrap();
        let mut cursor = DeltaCursor::new();
        WideSweeper::new().record(&tn, &mut cursor);
        let delta = cursor.apply_label_move(&mut tn, 0, 10, 30).unwrap();
        // Only the moved buckets 10 and 30 are visited at all.
        assert_eq!(delta.replayed_buckets, 2);
        assert_eq!(delta.skipped_buckets, 0);
        // Bucket 10 is a clique bucket, so every vertex is incident
        // and opened once (their log suffixes are empty — the clique
        // saturates at time 1); bucket 30 holds only the moved edge,
        // whose endpoints are already open.
        assert_eq!(delta.opened_rows, 8);
    }

    #[test]
    fn moves_that_empty_and_create_buckets_match_cold() {
        // Path 0—1 @{1}, 1—2 @{2}: moving the only label of a bucket
        // both empties its old bucket and creates a new one.
        let mut tn = TemporalNetwork::new(
            generators::path(3),
            LabelAssignment::from_vecs(vec![vec![1], vec![2]]).unwrap(),
            50,
        )
        .unwrap();
        let mut cursor = DeltaCursor::new();
        WideSweeper::new().record(&tn, &mut cursor);
        cursor.apply_label_move(&mut tn, 0, 1, 40).unwrap();
        assert_matches_cold(&cursor, &tn);
        assert_eq!(tn.occupied_times(), &[2, 40]);
        cursor.apply_label_move(&mut tn, 1, 2, 45).unwrap();
        assert_matches_cold(&cursor, &tn);
        assert_eq!(cursor.stats().last_arrival, 45);
    }

    #[test]
    fn invalid_moves_leave_cursor_and_network_untouched() {
        let mut tn = random_network(4, 40, false, 50);
        let mut cursor = DeltaCursor::new();
        WideSweeper::new().record(&tn, &mut cursor);
        let before = cursor.stats();
        assert!(cursor.apply_label_move(&mut tn, 0, 51, 7).is_none());
        let from = tn.labels(0)[0];
        assert!(cursor.apply_label_move(&mut tn, 0, from, 0).is_none());
        assert!(cursor.apply_label_move(&mut tn, 0, from, from).is_none());
        assert_eq!(cursor.stats(), before);
        assert_matches_cold(&cursor, &tn);
    }

    #[test]
    #[should_panic(expected = "record a sweep")]
    fn apply_without_record_panics() {
        let mut tn = random_network(5, 10, false, 10);
        let from = tn.labels(0)[0];
        let _ = DeltaCursor::new().apply_label_move(&mut tn, 0, from, 9);
    }

    #[test]
    fn log_invariants_survive_heavy_churn() {
        let mut tn = random_network(6, 64, false, 40);
        let mut cursor = DeltaCursor::new();
        WideSweeper::new().record(&tn, &mut cursor);
        let mut rng = SeedSequence::new(6).rng(1);
        let m = tn.assignment().num_edges();
        for _ in 0..600 {
            let e = rng.index(m) as EdgeId;
            let labels = tn.labels(e);
            let from = labels[rng.index(labels.len())];
            let _ = cursor.apply_label_move(&mut tn, e, from, rng.range_u32(1, 40));
        }
        // The per-row logs stay time-sorted and per-bit-once, and
        // OR-ing them up reproduces the closure rows exactly.
        let mut logged = 0usize;
        for (r, log) in cursor.rowlog.iter().enumerate() {
            let mut seen = vec![0u64; cursor.width];
            seen[r / 64] |= 1 << (r % 64); // the diagonal is never logged
            for pair in log.windows(2) {
                assert!(pair[0].time <= pair[1].time, "row {r} log out of order");
            }
            for e in log {
                assert_ne!(e.mask, 0, "row {r} carries an empty entry");
                assert_eq!(
                    seen[e.word as usize] & e.mask,
                    0,
                    "row {r} bit logged twice"
                );
                seen[e.word as usize] |= e.mask;
                logged += e.mask.count_ones() as usize;
            }
            for (w, &word) in seen.iter().enumerate() {
                assert_eq!(word, cursor.reach_word(r as NodeId, w), "row {r} word {w}");
            }
        }
        assert_eq!(logged + 64, cursor.stats().reached_bits);
        // The bucket-time accounting matches the logs it summarizes.
        let nonzero = cursor.time_entries.iter().filter(|&&c| c > 0).count();
        assert_eq!(nonzero, cursor.stats().buckets_visited);
        let maxt = cursor
            .time_entries
            .iter()
            .rposition(|&c| c > 0)
            .unwrap_or(0);
        assert_eq!(maxt as Time, cursor.stats().last_arrival);
        assert_matches_cold(&cursor, &tn);
    }

    #[test]
    fn scratch_record_delta_dispatches_and_matches() {
        let mut scratch = SweepScratch::new();
        // Sparse pick: large lifetime, few edges per bucket.
        let tn = random_network(7, 210, false, 2000);
        let (stats, kind) = scratch.record_delta(&tn);
        assert_eq!(kind, EngineChoice::pick_for(&tn));
        assert_eq!(kind, EngineKind::Sparse);
        assert_matches_cold(&scratch.delta, &tn);
        assert!(stats.reached_bits >= 210);
        // Batch-regime instance records through the wide engine.
        let small = random_network(8, 40, false, 20);
        let (_, kind) = scratch.record_delta(&small);
        assert_eq!(kind, EngineKind::Wide);
        assert_matches_cold(&scratch.delta, &small);
    }

    #[test]
    fn arrival_reads_the_foremost_time_from_the_log() {
        use crate::foremost::foremost;
        let mut tn = random_network(10, 50, false, 40);
        let mut cursor = DeltaCursor::new();
        WideSweeper::new().record(&tn, &mut cursor);
        let check = |cursor: &DeltaCursor, tn: &TemporalNetwork| {
            for u in 0..50u32 {
                let run = foremost(tn, u, 0);
                for v in 0..50u32 {
                    assert_eq!(cursor.arrival(u, v), run.arrival(v), "{u} -> {v}");
                }
            }
        };
        check(&cursor, &tn);
        // The log stays the foremost oracle through label-move churn.
        let mut rng = SeedSequence::new(10).rng(1);
        let m = tn.assignment().num_edges();
        for _ in 0..60 {
            let e = rng.index(m) as EdgeId;
            let labels = tn.labels(e);
            let from = labels[rng.index(labels.len())];
            let _ = cursor.apply_label_move(&mut tn, e, from, rng.range_u32(1, 40));
        }
        check(&cursor, &tn);
    }

    #[test]
    fn multi_label_edges_move_one_label_at_a_time() {
        let mut rng = SeedSequence::new(9).rng(0);
        let g = generators::gnp(30, 0.2, false, &mut rng);
        let labels = LabelAssignment::from_fn(g.num_edges(), |_| {
            vec![
                rng.range_u32(1, 60),
                rng.range_u32(1, 60),
                rng.range_u32(1, 60),
            ]
        })
        .unwrap();
        let mut tn = TemporalNetwork::new(g, labels, 60).unwrap();
        let mut cursor = DeltaCursor::new();
        WideSweeper::new().record(&tn, &mut cursor);
        let m = tn.assignment().num_edges();
        for step in 0..80u32 {
            let e = rng.index(m) as EdgeId;
            let labels = tn.labels(e);
            let from = labels[rng.index(labels.len())];
            let _ = cursor.apply_label_move(&mut tn, e, from, rng.range_u32(1, 60));
            if step % 8 == 0 {
                assert_matches_cold(&cursor, &tn);
            }
        }
        assert_matches_cold(&cursor, &tn);
    }
}
