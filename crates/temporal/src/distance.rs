//! Temporal distances, eccentricities, and the instance temporal diameter.
//!
//! The paper's Temporal Diameter (Definition 5) is the **expectation over
//! random instances** of `max_{s,t} δ(s,t)`; this module computes the inner
//! quantity — `max_{s,t} δ(s,t)` of one concrete instance — exactly,
//! through whichever engine the density-aware
//! [`EngineChoice`] selects: the single-pass
//! [`wide`](crate::wide) engine on dense instances above the batch
//! crossover (all sources at once, saturation early-exit, empty-bucket
//! skipping), the event-driven [`sparse`](crate::sparse) engine on sparse
//! ones, and the bit-parallel [`engine`](crate::engine) — one sweep per
//! batch of 64 sources — below. The instance diameter needs no arrival
//! matrix at all — it is the last time any (source, vertex) bit newly
//! sets. The Monte Carlo expectation lives in `ephemeral-core::diameter`;
//! the scalar `foremost` sweep remains the differential oracle for all of
//! this.

use crate::engine::{batch_count, batch_range, BatchSweeper};
use crate::foremost::foremost;
use crate::network::TemporalNetwork;
use crate::sparse::{EngineChoice, FrontierRun};
use crate::wide::{block_schedule, source_blocks, EngineKind, FrontierEngine, SweepScratch};
use crate::{Time, NEVER};
use ephemeral_graph::NodeId;
use ephemeral_parallel::{par_for_with, par_map_with};
use std::ops::Range;

/// Temporal distances `δ(source, ·)` (earliest arrivals from start time 0);
/// [`NEVER`] marks unreachable vertices, and `δ(s, s) = 0`.
#[must_use]
pub fn temporal_distances(tn: &TemporalNetwork, source: NodeId) -> Vec<Time> {
    foremost(tn, source, 0).arrivals().to_vec()
}

/// Dense all-pairs temporal distance matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DistanceMatrix {
    n: usize,
    data: Vec<Time>,
}

impl DistanceMatrix {
    /// `δ(s, t)`; [`NEVER`] when unreachable.
    #[inline]
    #[must_use]
    pub fn get(&self, s: NodeId, t: NodeId) -> Time {
        self.data[s as usize * self.n + t as usize]
    }

    /// Number of vertices.
    #[must_use]
    pub const fn n(&self) -> usize {
        self.n
    }

    /// Row `δ(s, ·)`.
    #[must_use]
    pub fn row(&self, s: NodeId) -> &[Time] {
        &self.data[s as usize * self.n..(s as usize + 1) * self.n]
    }

    /// Iterate `(s, t, δ(s,t))` over ordered pairs with `s ≠ t`.
    pub fn pairs(&self) -> impl Iterator<Item = (NodeId, NodeId, Time)> + '_ {
        (0..self.n as u32).flat_map(move |s| {
            (0..self.n as u32)
                .filter(move |&t| t != s)
                .map(move |t| (s, t, self.get(s, t)))
        })
    }
}

/// All-pairs temporal distances, dispatched through the density-aware
/// [`EngineChoice`]: above the batch crossover one full-width sweep per
/// column block — wide on dense instances, event-driven sparse on sparse
/// ones — parallel over blocks; below, one engine sweep per batch of 64
/// sources, parallel over batches. Every entry bit-identical to a
/// per-source scalar sweep on every path.
#[must_use]
pub fn all_pairs_temporal_distances(tn: &TemporalNetwork, threads: usize) -> DistanceMatrix {
    let n = tn.num_nodes();
    struct Arrivals<'a> {
        tn: &'a TemporalNetwork,
        threads: usize,
    }
    impl FrontierRun for Arrivals<'_> {
        type Out = Vec<Vec<Time>>;
        fn run<S: FrontierEngine>(self, shards: usize) -> Self::Out {
            let blocks = source_blocks(self.tn.num_nodes(), shards);
            arrival_blocks::<S>(self.tn, self.threads, &blocks)
        }
    }
    let chunks =
        EngineChoice::dispatch(tn, threads, Arrivals { tn, threads }).unwrap_or_else(|| {
            par_for_with(batch_count(n), threads, BatchSweeper::new, |sweeper, b| {
                let sources: Vec<NodeId> = batch_range(n, b).collect();
                let mut rows = vec![NEVER; sources.len() * n];
                sweeper.arrivals_into(tn, &sources, 0, &mut rows);
                rows
            })
        });
    let mut data = Vec::with_capacity(n * n);
    for chunk in chunks {
        data.extend(chunk);
    }
    DistanceMatrix { n, data }
}

/// One full-width `arrivals_into` per column block through engine `S`.
fn arrival_blocks<S: FrontierEngine>(
    tn: &TemporalNetwork,
    threads: usize,
    blocks: &[Range<NodeId>],
) -> Vec<Vec<Time>> {
    let n = tn.num_nodes();
    par_map_with(blocks, threads, S::default, |sweeper, _, block| {
        let mut rows = vec![NEVER; block.len() * n];
        sweeper.arrivals_into(tn, block.clone(), 0, &mut rows);
        rows
    })
}

/// Temporal eccentricity of `source`: `max_t δ(source, t)`, or `None` when
/// some vertex is unreachable.
#[must_use]
pub fn temporal_eccentricity(tn: &TemporalNetwork, source: NodeId) -> Option<Time> {
    let arr = foremost(tn, source, 0).arrivals().to_vec();
    let mut max = 0;
    for &a in &arr {
        if a == NEVER {
            return None;
        }
        max = max.max(a);
    }
    Some(max)
}

/// `max_{s,t} δ(s,t)` of one instance, with unreachable-pair accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InstanceDiameter {
    /// Largest finite temporal distance observed.
    pub max_finite: Time,
    /// Number of ordered pairs `(s, t)`, `s ≠ t`, with no journey.
    pub unreachable_pairs: usize,
}

impl InstanceDiameter {
    /// The instance temporal diameter, or `None` if any pair is unreachable
    /// (the diameter is then `∞`).
    #[must_use]
    pub const fn value(&self) -> Option<Time> {
        if self.unreachable_pairs == 0 {
            Some(self.max_finite)
        } else {
            None
        }
    }
}

/// Compute the instance temporal diameter, dispatched through the
/// density-aware [`EngineChoice`]: above the batch crossover one
/// full-width sweep per column block (parallel over blocks; wide on
/// dense instances, event-driven sparse on sparse ones); below, one
/// engine sweep per batch of 64 sources, parallel over batches. No
/// arrival matrix is materialised — the diameter contribution is simply
/// the last time any bit newly set.
#[must_use]
pub fn instance_temporal_diameter(tn: &TemporalNetwork, threads: usize) -> InstanceDiameter {
    let n = tn.num_nodes();
    struct Diameter<'a> {
        tn: &'a TemporalNetwork,
        threads: usize,
    }
    impl FrontierRun for Diameter<'_> {
        type Out = InstanceDiameter;
        fn run<S: FrontierEngine>(self, shards: usize) -> Self::Out {
            let blocks = source_blocks(self.tn.num_nodes(), shards);
            reduce_batches(diameter_blocks::<S>(self.tn, self.threads, &blocks))
        }
    }
    EngineChoice::dispatch(tn, threads, Diameter { tn, threads }).unwrap_or_else(|| {
        let per_batch = par_for_with(batch_count(n), threads, BatchSweeper::new, |sweeper, b| {
            diameter_batch(tn, sweeper, b)
        });
        reduce_batches(per_batch)
    })
}

/// One full-width stats-only sweep per column block through engine `S`.
fn diameter_blocks<S: FrontierEngine>(
    tn: &TemporalNetwork,
    threads: usize,
    blocks: &[Range<NodeId>],
) -> Vec<(Time, usize)> {
    let n = tn.num_nodes();
    par_map_with(blocks, threads, S::default, |sweeper, _, block| {
        let stats = sweeper.sweep(tn, block.clone(), 0, |_, _, _, _| {});
        (stats.last_arrival, stats.unreached_pairs(n))
    })
}

/// Sequential [`instance_temporal_diameter`] reusing a caller-owned sweeper
/// — the zero-allocation inner loop of the Monte Carlo estimators in
/// `ephemeral-core`, which keep one sweeper per worker across trials.
/// Always runs the batched engine; use
/// [`instance_temporal_diameter_scratch`] to dispatch density-aware
/// between the batched, wide and sparse engines.
#[must_use]
pub fn instance_temporal_diameter_reusing(
    tn: &TemporalNetwork,
    sweeper: &mut BatchSweeper,
) -> InstanceDiameter {
    let n = tn.num_nodes();
    reduce_batches((0..batch_count(n)).map(|b| diameter_batch(tn, sweeper, b)))
}

/// Sequential instance temporal diameter dispatched through the
/// density-aware [`EngineChoice`] — the zero-allocation per-trial path of
/// the Monte Carlo estimators in `ephemeral-core` (locked in by
/// `crates/core/tests/alloc_regression.rs` on all three paths): on dense
/// instances above the batch crossover one single-pass wide sweep per
/// cache-sized column block out of `scratch.wide` ([`block_schedule`]
/// iterates the schedule without allocating), on sparse ones a single
/// full-width event-driven sweep out of `scratch.sparse`, below the
/// crossover `⌈n/64⌉` batched sweeps out of `scratch.batch`. All paths
/// report identical numbers.
#[must_use]
pub fn instance_temporal_diameter_scratch(
    tn: &TemporalNetwork,
    scratch: &mut SweepScratch,
) -> InstanceDiameter {
    instance_temporal_diameter_scratch_traced(tn, scratch).0
}

/// [`instance_temporal_diameter_scratch`] that also reports which engine
/// served the instance — the attribution `experiments sweep` rows carry
/// (see `ephemeral-core`'s `Metric`): [`EngineKind::Wide`],
/// [`EngineKind::Sparse`] or [`EngineKind::Batch`] exactly as the
/// dispatch ran.
#[must_use]
pub fn instance_temporal_diameter_scratch_traced(
    tn: &TemporalNetwork,
    scratch: &mut SweepScratch,
) -> (InstanceDiameter, EngineKind) {
    struct DiameterScratch<'a> {
        tn: &'a TemporalNetwork,
        scratch: &'a mut SweepScratch,
    }
    impl FrontierRun for DiameterScratch<'_> {
        type Out = (InstanceDiameter, EngineKind);
        fn run<S: FrontierEngine>(self, shards: usize) -> Self::Out {
            // With `workers = 1` the wide engine shards to exactly its
            // cache schedule; the sparse engine gets the single block
            // `0..n` — its lists are cache-light and column blocking
            // would only multiply the occupied-bucket walk.
            let n = self.tn.num_nodes();
            let sweeper = S::from_scratch(self.scratch);
            let d = reduce_batches(block_schedule(n, shards).map(|block| {
                let stats = sweeper.sweep(self.tn, block, 0, |_, _, _, _| {});
                (stats.last_arrival, stats.unreached_pairs(n))
            }));
            (d, S::kind())
        }
    }
    EngineChoice::dispatch(
        tn,
        1,
        DiameterScratch {
            tn,
            scratch: &mut *scratch,
        },
    )
    .unwrap_or_else(|| {
        (
            instance_temporal_diameter_reusing(tn, &mut scratch.batch),
            EngineKind::Batch,
        )
    })
}

fn diameter_batch(tn: &TemporalNetwork, sweeper: &mut BatchSweeper, b: usize) -> (Time, usize) {
    let n = tn.num_nodes();
    let mut sources = [0 as NodeId; crate::engine::MAX_LANES];
    let mut lanes = 0;
    for s in batch_range(n, b) {
        sources[lanes] = s;
        lanes += 1;
    }
    let stats = sweeper.sweep(tn, &sources[..lanes], 0, |_, _, _| {});
    (stats.last_arrival, stats.unreached_pairs(n))
}

fn reduce_batches(per_batch: impl IntoIterator<Item = (Time, usize)>) -> InstanceDiameter {
    let mut max_finite = 0;
    let mut unreachable_pairs = 0;
    for (max, missing) in per_batch {
        max_finite = max_finite.max(max);
        unreachable_pairs += missing;
    }
    InstanceDiameter {
        max_finite,
        unreachable_pairs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LabelAssignment;
    use ephemeral_graph::generators;

    fn cycle_network() -> TemporalNetwork {
        // 4-cycle, edges 0-1,1-2,2-3,3-0 with labels 1,2,3,4.
        let g = generators::cycle(4);
        TemporalNetwork::new(g, LabelAssignment::single(vec![1, 2, 3, 4]).unwrap(), 4).unwrap()
    }

    #[test]
    fn distances_match_foremost() {
        let tn = cycle_network();
        let d = temporal_distances(&tn, 0);
        assert_eq!(d[0], 0);
        assert_eq!(d[1], 1);
        assert_eq!(d[2], 2);
        assert_eq!(d[3], 3); // 0-1-2-3 via 1,2,3 beats direct 3-0 (label 4)? direct is 4, path is 3
    }

    #[test]
    fn all_pairs_rows_match_single_source() {
        let tn = cycle_network();
        let m = all_pairs_temporal_distances(&tn, 2);
        assert_eq!(m.n(), 4);
        for s in 0..4u32 {
            assert_eq!(m.row(s), temporal_distances(&tn, s).as_slice(), "row {s}");
        }
    }

    #[test]
    fn all_pairs_thread_invariance() {
        let tn = cycle_network();
        let a = all_pairs_temporal_distances(&tn, 1);
        let b = all_pairs_temporal_distances(&tn, 8);
        assert_eq!(a, b);
    }

    #[test]
    fn pairs_iterator_skips_diagonal() {
        let tn = cycle_network();
        let m = all_pairs_temporal_distances(&tn, 1);
        let pairs: Vec<_> = m.pairs().collect();
        assert_eq!(pairs.len(), 12);
        assert!(pairs.iter().all(|&(s, t, _)| s != t));
    }

    #[test]
    fn eccentricity_and_diameter() {
        let tn = cycle_network();
        // From 0: farthest arrival is 3 (see distances_match_foremost).
        assert_eq!(temporal_eccentricity(&tn, 0), Some(3));
        // From 3 the labels around the cycle are all in the past once 3's
        // incident edges fire (2-3@3, 3-0@4), so vertex 1 is unreachable
        // and the instance diameter is infinite.
        assert_eq!(temporal_eccentricity(&tn, 3), None);
        let d = instance_temporal_diameter(&tn, 2);
        assert!(d.unreachable_pairs > 0);
        assert_eq!(d.value(), None);
        assert!(d.max_finite >= 3);
    }

    #[test]
    fn unreachable_pairs_are_counted() {
        let tn = cycle_network();
        let d = instance_temporal_diameter(&tn, 1);
        // From 3, vertex 1 is unreachable (all labels around are in the
        // past once 3's edges fire); likewise check consistency for all
        // sources against brute foremost runs.
        let mut expected_missing = 0;
        for s in 0..4u32 {
            let arr = temporal_distances(&tn, s);
            expected_missing += arr.iter().filter(|&&a| a == NEVER).count();
        }
        assert_eq!(d.unreachable_pairs, expected_missing);
        assert!(d.unreachable_pairs > 0);
        assert_eq!(d.value(), None);
    }

    #[test]
    fn fully_available_network_has_finite_diameter() {
        // Every edge available at every time 1..=4: diameter = hop diameter.
        let g = generators::cycle(5);
        let m = g.num_edges();
        let labels = LabelAssignment::from_vecs(vec![vec![1, 2, 3, 4]; m]).unwrap();
        let tn = TemporalNetwork::new(g, labels, 4).unwrap();
        let d = instance_temporal_diameter(&tn, 2);
        assert_eq!(d.unreachable_pairs, 0);
        assert_eq!(d.value(), Some(2)); // hop diameter of C5 is 2
    }

    #[test]
    fn engine_matrix_matches_scalar_sweeps_across_batches() {
        // 130 vertices = 3 batches; compare every row against the scalar
        // oracle (the differential contract of the engine refactor).
        use ephemeral_rng::{RandomSource, SeedSequence};
        let mut rng = SeedSequence::new(77).rng(0);
        let g = generators::gnp(130, 0.05, false, &mut rng);
        let labels =
            LabelAssignment::from_fn(g.num_edges(), |_| vec![rng.range_u32(1, 64)]).unwrap();
        let tn = TemporalNetwork::new(g, labels, 64).unwrap();
        let m = all_pairs_temporal_distances(&tn, 3);
        for s in 0..130u32 {
            assert_eq!(m.row(s), temporal_distances(&tn, s).as_slice(), "row {s}");
        }
        // The diameter agrees between the parallel and reusing paths, and
        // with a brute-force reduction of the matrix.
        let d = instance_temporal_diameter(&tn, 3);
        let mut sweeper = crate::engine::BatchSweeper::new();
        assert_eq!(d, instance_temporal_diameter_reusing(&tn, &mut sweeper));
        let mut max = 0;
        let mut missing = 0;
        for (_, _, t) in m.pairs() {
            if t == NEVER {
                missing += 1;
            } else {
                max = max.max(t);
            }
        }
        assert_eq!(d.max_finite, max);
        assert_eq!(d.unreachable_pairs, missing);
    }

    #[test]
    fn wide_path_matches_scalar_above_the_crossover() {
        // Above WIDE_CROSSOVER the wide engine serves all-pairs distances
        // and the instance diameter; pin both against the scalar oracle,
        // the batched reference, and across thread counts.
        use ephemeral_rng::{RandomSource, SeedSequence};
        let n = crate::wide::WIDE_CROSSOVER + 21;
        let mut rng = SeedSequence::new(5).rng(3);
        let g = generators::gnp(n, 0.04, false, &mut rng);
        let labels =
            LabelAssignment::from_fn(g.num_edges(), |_| vec![rng.range_u32(1, 96)]).unwrap();
        let tn = TemporalNetwork::new(g, labels, 96).unwrap();
        let m = all_pairs_temporal_distances(&tn, 1);
        assert_eq!(m, all_pairs_temporal_distances(&tn, 4));
        for s in (0..n as u32).step_by(17) {
            assert_eq!(m.row(s), temporal_distances(&tn, s).as_slice(), "row {s}");
        }
        let d = instance_temporal_diameter(&tn, 3);
        let mut batch = crate::engine::BatchSweeper::new();
        assert_eq!(d, instance_temporal_diameter_reusing(&tn, &mut batch));
        let mut scratch = crate::wide::SweepScratch::new();
        assert_eq!(d, instance_temporal_diameter_scratch(&tn, &mut scratch));
    }

    #[test]
    fn scratch_dispatch_matches_below_the_crossover() {
        let tn = cycle_network();
        let mut scratch = crate::wide::SweepScratch::new();
        assert_eq!(
            instance_temporal_diameter_scratch(&tn, &mut scratch),
            instance_temporal_diameter(&tn, 1)
        );
    }

    #[test]
    fn eccentricity_none_when_unreachable() {
        let g = generators::path(3);
        let labels = LabelAssignment::from_vecs(vec![vec![2], vec![1]]).unwrap();
        let tn = TemporalNetwork::new(g, labels, 2).unwrap();
        assert_eq!(temporal_eccentricity(&tn, 0), None);
    }
}
