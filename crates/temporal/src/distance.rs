//! Temporal distances, eccentricities, and the instance temporal diameter.
//!
//! The paper's Temporal Diameter (Definition 5) is the **expectation over
//! random instances** of `max_{s,t} δ(s,t)`; this module computes the inner
//! quantity — `max_{s,t} δ(s,t)` of one concrete instance — exactly, with
//! the per-source foremost sweeps fanned out over threads. The Monte Carlo
//! expectation lives in `ephemeral-core::diameter`.

use crate::foremost::foremost;
use crate::network::TemporalNetwork;
use crate::{Time, NEVER};
use ephemeral_graph::NodeId;
use ephemeral_parallel::par_for;

/// Temporal distances `δ(source, ·)` (earliest arrivals from start time 0);
/// [`NEVER`] marks unreachable vertices, and `δ(s, s) = 0`.
#[must_use]
pub fn temporal_distances(tn: &TemporalNetwork, source: NodeId) -> Vec<Time> {
    foremost(tn, source, 0).arrivals().to_vec()
}

/// Dense all-pairs temporal distance matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DistanceMatrix {
    n: usize,
    data: Vec<Time>,
}

impl DistanceMatrix {
    /// `δ(s, t)`; [`NEVER`] when unreachable.
    #[inline]
    #[must_use]
    pub fn get(&self, s: NodeId, t: NodeId) -> Time {
        self.data[s as usize * self.n + t as usize]
    }

    /// Number of vertices.
    #[must_use]
    pub const fn n(&self) -> usize {
        self.n
    }

    /// Row `δ(s, ·)`.
    #[must_use]
    pub fn row(&self, s: NodeId) -> &[Time] {
        &self.data[s as usize * self.n..(s as usize + 1) * self.n]
    }

    /// Iterate `(s, t, δ(s,t))` over ordered pairs with `s ≠ t`.
    pub fn pairs(&self) -> impl Iterator<Item = (NodeId, NodeId, Time)> + '_ {
        (0..self.n as u32).flat_map(move |s| {
            (0..self.n as u32)
                .filter(move |&t| t != s)
                .map(move |t| (s, t, self.get(s, t)))
        })
    }
}

/// All-pairs temporal distances: one foremost sweep per source, parallel
/// over sources. `O(n · (M + a))` work.
#[must_use]
pub fn all_pairs_temporal_distances(tn: &TemporalNetwork, threads: usize) -> DistanceMatrix {
    let n = tn.num_nodes();
    let rows = par_for(n, threads, |s| {
        foremost(tn, s as NodeId, 0).arrivals().to_vec()
    });
    let mut data = Vec::with_capacity(n * n);
    for row in rows {
        data.extend(row);
    }
    DistanceMatrix { n, data }
}

/// Temporal eccentricity of `source`: `max_t δ(source, t)`, or `None` when
/// some vertex is unreachable.
#[must_use]
pub fn temporal_eccentricity(tn: &TemporalNetwork, source: NodeId) -> Option<Time> {
    let arr = foremost(tn, source, 0).arrivals().to_vec();
    let mut max = 0;
    for &a in &arr {
        if a == NEVER {
            return None;
        }
        max = max.max(a);
    }
    Some(max)
}

/// `max_{s,t} δ(s,t)` of one instance, with unreachable-pair accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InstanceDiameter {
    /// Largest finite temporal distance observed.
    pub max_finite: Time,
    /// Number of ordered pairs `(s, t)`, `s ≠ t`, with no journey.
    pub unreachable_pairs: usize,
}

impl InstanceDiameter {
    /// The instance temporal diameter, or `None` if any pair is unreachable
    /// (the diameter is then `∞`).
    #[must_use]
    pub const fn value(&self) -> Option<Time> {
        if self.unreachable_pairs == 0 {
            Some(self.max_finite)
        } else {
            None
        }
    }
}

/// Compute the instance temporal diameter by `n` parallel foremost sweeps.
#[must_use]
pub fn instance_temporal_diameter(tn: &TemporalNetwork, threads: usize) -> InstanceDiameter {
    let n = tn.num_nodes();
    let per_source = par_for(n, threads, |s| {
        let run = foremost(tn, s as NodeId, 0);
        let mut max = 0 as Time;
        let mut missing = 0usize;
        for (v, &a) in run.arrivals().iter().enumerate() {
            if a == NEVER {
                missing += 1;
            } else if v != s {
                max = max.max(a);
            }
        }
        (max, missing)
    });
    let mut max_finite = 0;
    let mut unreachable_pairs = 0;
    for (max, missing) in per_source {
        max_finite = max_finite.max(max);
        unreachable_pairs += missing;
    }
    InstanceDiameter {
        max_finite,
        unreachable_pairs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LabelAssignment;
    use ephemeral_graph::generators;

    fn cycle_network() -> TemporalNetwork {
        // 4-cycle, edges 0-1,1-2,2-3,3-0 with labels 1,2,3,4.
        let g = generators::cycle(4);
        TemporalNetwork::new(g, LabelAssignment::single(vec![1, 2, 3, 4]).unwrap(), 4).unwrap()
    }

    #[test]
    fn distances_match_foremost() {
        let tn = cycle_network();
        let d = temporal_distances(&tn, 0);
        assert_eq!(d[0], 0);
        assert_eq!(d[1], 1);
        assert_eq!(d[2], 2);
        assert_eq!(d[3], 3); // 0-1-2-3 via 1,2,3 beats direct 3-0 (label 4)? direct is 4, path is 3
    }

    #[test]
    fn all_pairs_rows_match_single_source() {
        let tn = cycle_network();
        let m = all_pairs_temporal_distances(&tn, 2);
        assert_eq!(m.n(), 4);
        for s in 0..4u32 {
            assert_eq!(m.row(s), temporal_distances(&tn, s).as_slice(), "row {s}");
        }
    }

    #[test]
    fn all_pairs_thread_invariance() {
        let tn = cycle_network();
        let a = all_pairs_temporal_distances(&tn, 1);
        let b = all_pairs_temporal_distances(&tn, 8);
        assert_eq!(a, b);
    }

    #[test]
    fn pairs_iterator_skips_diagonal() {
        let tn = cycle_network();
        let m = all_pairs_temporal_distances(&tn, 1);
        let pairs: Vec<_> = m.pairs().collect();
        assert_eq!(pairs.len(), 12);
        assert!(pairs.iter().all(|&(s, t, _)| s != t));
    }

    #[test]
    fn eccentricity_and_diameter() {
        let tn = cycle_network();
        // From 0: farthest arrival is 3 (see distances_match_foremost).
        assert_eq!(temporal_eccentricity(&tn, 0), Some(3));
        // From 3 the labels around the cycle are all in the past once 3's
        // incident edges fire (2-3@3, 3-0@4), so vertex 1 is unreachable
        // and the instance diameter is infinite.
        assert_eq!(temporal_eccentricity(&tn, 3), None);
        let d = instance_temporal_diameter(&tn, 2);
        assert!(d.unreachable_pairs > 0);
        assert_eq!(d.value(), None);
        assert!(d.max_finite >= 3);
    }

    #[test]
    fn unreachable_pairs_are_counted() {
        let tn = cycle_network();
        let d = instance_temporal_diameter(&tn, 1);
        // From 3, vertex 1 is unreachable (all labels around are in the
        // past once 3's edges fire); likewise check consistency for all
        // sources against brute foremost runs.
        let mut expected_missing = 0;
        for s in 0..4u32 {
            let arr = temporal_distances(&tn, s);
            expected_missing += arr.iter().filter(|&&a| a == NEVER).count();
        }
        assert_eq!(d.unreachable_pairs, expected_missing);
        assert!(d.unreachable_pairs > 0);
        assert_eq!(d.value(), None);
    }

    #[test]
    fn fully_available_network_has_finite_diameter() {
        // Every edge available at every time 1..=4: diameter = hop diameter.
        let g = generators::cycle(5);
        let m = g.num_edges();
        let labels = LabelAssignment::from_vecs(vec![vec![1, 2, 3, 4]; m]).unwrap();
        let tn = TemporalNetwork::new(g, labels, 4).unwrap();
        let d = instance_temporal_diameter(&tn, 2);
        assert_eq!(d.unreachable_pairs, 0);
        assert_eq!(d.value(), Some(2)); // hop diameter of C5 is 2
    }

    #[test]
    fn eccentricity_none_when_unreachable() {
        let g = generators::path(3);
        let labels = LabelAssignment::from_vecs(vec![vec![2], vec![1]]).unwrap();
        let tn = TemporalNetwork::new(g, labels, 2).unwrap();
        assert_eq!(temporal_eccentricity(&tn, 0), None);
    }
}
